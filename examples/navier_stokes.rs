//! Honest physics: run the 2-D projection-method Navier-Stokes solver
//! (extruded along the tapered span) instead of the analytic model, and
//! visualize the resulting wake with streaklines.
//!
//! ```sh
//! cargo run --release --example navier_stokes
//! ```

use distributed_virtual_windtunnel as dvw;
use dvw::cfd::solver::{simulate_extruded, ExtrudeConfig, Solver2D, SolverConfig};
use dvw::tracer::{Domain, Rake, Streakline, StreaklineConfig, ToolKind};
use dvw::vecmath::{Mat4, Pose, Vec3};
use dvw::vr::ppm::write_ppm;
use dvw::vr::stereo::{render_anaglyph, StereoCamera};
use dvw::vr::Framebuffer;
use std::time::Instant;

fn main() {
    // First, a peek at one 2-D layer: spin the solver up and report
    // diagnostics so the physics is visibly sane.
    let cfg2d = SolverConfig::default();
    let mut probe = Solver2D::new(cfg2d);
    println!(
        "solving one {}x{} layer (cylinder r={}, Re~{:.0})...",
        cfg2d.nx,
        cfg2d.ny,
        cfg2d.cylinder_radius,
        cfg2d.u_inflow * 2.0 * cfg2d.cylinder_radius / cfg2d.viscosity
    );
    let t0 = Instant::now();
    for step in 0..300 {
        probe.step();
        if step % 100 == 99 {
            println!(
                "  step {:4}: max |u| = {:.2}, max div = {:.4}",
                step + 1,
                probe.max_speed(),
                probe.max_divergence()
            );
        }
    }
    println!("  300 steps in {:.1?}", t0.elapsed());

    // Wake unsteadiness probe: transverse velocity behind the cylinder.
    let (cx, cy) = cfg2d.cylinder_center;
    let mut v_series = Vec::new();
    for _ in 0..60 {
        for _ in 0..5 {
            probe.step();
        }
        v_series.push(probe.velocity_at(cx + 4.0 * cfg2d.cylinder_radius, cy).1);
    }
    let v_min = v_series.iter().cloned().fold(f32::INFINITY, f32::min);
    let v_max = v_series.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    println!("  wake transverse velocity range over time: [{v_min:+.3}, {v_max:+.3}]");

    // Now the extruded 3-D run: independent layers along the tapered span.
    let cfg = ExtrudeConfig {
        base: SolverConfig {
            nx: 72,
            ny: 36,
            ..SolverConfig::default()
        },
        layers: 6,
        warmup_steps: 250,
        steps_per_snapshot: 8,
        snapshots: 24,
        out_nx: 36,
        out_ny: 18,
        ..ExtrudeConfig::default()
    };
    println!(
        "extruding {} layers x {} snapshots (this runs {} solver layers in parallel)...",
        cfg.layers, cfg.snapshots, cfg.layers
    );
    let t0 = Instant::now();
    let dataset = simulate_extruded(&cfg, "ns-tapered").expect("simulate");
    println!(
        "  simulated in {:.1?}; dataset dims {}",
        t0.elapsed(),
        dataset.dims()
    );

    // Streaklines through the simulated wake.
    let domain = Domain::boxed(dataset.dims());
    let dims = dataset.dims();
    let rake = Rake::new(
        Vec3::new(4.0, (dims.nj / 2) as f32 - 2.0, 0.5),
        Vec3::new(4.0, (dims.nj / 2) as f32 + 2.0, (dims.nk - 1) as f32 - 0.5),
        10,
        ToolKind::Streakline,
    );
    let mut streak = Streakline::new(
        rake.seeds(),
        StreaklineConfig {
            dt: 0.8,
            ..Default::default()
        },
    );
    for loop_pass in 0..3 {
        for t in 0..dataset.timestep_count() {
            streak.advance(dataset.timestep(t).unwrap(), &domain);
        }
        println!(
            "  pass {}: {} smoke particles",
            loop_pass + 1,
            streak.particle_count()
        );
    }

    // Render.
    let grid = dataset.grid();
    let lines: Vec<(Vec<Vec3>, u8)> = streak
        .filaments()
        .into_iter()
        .filter(|l| l.len() > 1)
        .map(|l| (grid.path_to_physical(&l), 220))
        .collect();
    let camera = {
        let eye = Vec3::new(-2.0, 10.0, 16.0);
        let target = Vec3::new(6.0, 3.0, 4.0);
        let mut cam = StereoCamera::new(Pose::from_mat4(
            &Mat4::look_at(eye, target, Vec3::Y).inverse_rigid(),
        ));
        cam.aspect = 4.0 / 3.0;
        cam
    };
    let mut fb = Framebuffer::new(512, 384);
    render_anaglyph(&mut fb, &camera, &lines);
    let out = std::env::temp_dir().join("dvw-navier-stokes.ppm");
    write_ppm(&out, &fb).expect("write");
    println!("wrote {} ({} filaments)", out.display(), lines.len());
}
