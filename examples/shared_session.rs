//! Shared session: two workstations, one server, one contested rake.
//!
//! Reproduces §5.1's multi-user scenario end-to-end over real sockets:
//! Alice and Bob connect to the same windtunnel server; Alice grabs a
//! rake first and Bob is locked out until she lets go; both see the same
//! environment state; Bob (not Alice) drives the shared clock.
//!
//! ```sh
//! cargo run --release --example shared_session
//! ```

use distributed_virtual_windtunnel as dvw;
use dvw::cfd::tapered_cylinder::{generate_dataset, TaperedCylinderFlow};
use dvw::flowfield::Dims;
use dvw::storage::MemoryStore;
use dvw::tracer::ToolKind;
use dvw::vecmath::Vec3;
use dvw::vr::Gesture;
use dvw::windtunnel::{serve, Command, ServerOptions, TimeCommand, WindtunnelClient};
use std::sync::Arc;

fn main() {
    // Server side: a small tapered-cylinder dataset in memory.
    let flow = TaperedCylinderFlow {
        spec: dvw::cfd::OGridSpec {
            dims: Dims::new(33, 17, 9),
            ..Default::default()
        },
        ..Default::default()
    };
    println!("[server] generating dataset...");
    let dataset = generate_dataset(&flow, "shared", 12, 0.25).expect("generate");
    let grid = dataset.grid().clone();
    let store = Arc::new(MemoryStore::from_dataset(dataset));
    let opts = ServerOptions {
        periodic_i: true,
        ..Default::default()
    };
    let handle = serve(store, grid, opts, "127.0.0.1:0").expect("serve");
    println!("[server] listening on {}", handle.addr());

    // Two workstations join.
    let mut alice = WindtunnelClient::connect(handle.addr()).expect("alice connects");
    let mut bob = WindtunnelClient::connect(handle.addr()).expect("bob connects");
    println!(
        "[alice] joined '{}' as user {}",
        alice.hello().dataset_name,
        alice.user_id()
    );
    println!("[bob]   joined as user {}", bob.user_id());

    // Alice creates a rake upstream of the cylinder (physical coords).
    alice
        .send(&Command::AddRake {
            a: Vec3::new(-2.5, 0.0, 1.0),
            b: Vec3::new(-2.5, 0.0, 7.0),
            seed_count: 10,
            tool: ToolKind::Streamline,
        })
        .expect("add rake");
    let frame = alice.frame(false).expect("frame");
    let rake = &frame.rakes[0];
    println!(
        "[alice] created rake {} with {} streamline paths in the frame",
        rake.id,
        frame.paths.len()
    );
    let grab_point = (rake.a + rake.b) * 0.5;

    // Alice grabs the center; Bob tries the same handle and is refused.
    alice
        .send(&Command::Hand {
            position: grab_point,
            gesture: Gesture::Fist,
        })
        .expect("alice grab");
    bob.send(&Command::Hand {
        position: grab_point,
        gesture: Gesture::Fist,
    })
    .expect("bob grab attempt");
    let f = bob.frame(false).expect("frame");
    println!(
        "[bob]   rake owner is user {} (me: {}) -> {}",
        f.rakes[0].owner,
        bob.user_id(),
        if f.rakes[0].owner == alice.user_id() {
            "locked out, first come first served"
        } else {
            "UNEXPECTED"
        }
    );

    // Alice drags; both clients observe the motion.
    alice
        .send(&Command::Hand {
            position: grab_point + Vec3::new(0.0, 1.5, 0.0),
            gesture: Gesture::Fist,
        })
        .expect("alice drag");
    let fa = alice.frame(false).expect("frame");
    let fb_ = bob.frame(false).expect("frame");
    println!(
        "[both]  rake center y after Alice's drag: alice sees {:.2}, bob sees {:.2}",
        (fa.rakes[0].a.y + fa.rakes[0].b.y) * 0.5,
        (fb_.rakes[0].a.y + fb_.rakes[0].b.y) * 0.5
    );

    // Alice releases; Bob grabs successfully.
    alice
        .send(&Command::Hand {
            position: grab_point + Vec3::new(0.0, 1.5, 0.0),
            gesture: Gesture::Open,
        })
        .expect("alice release");
    bob.send(&Command::Hand {
        position: grab_point + Vec3::new(0.0, 1.5, 0.0),
        gesture: Gesture::Fist,
    })
    .expect("bob grab");
    let f = bob.frame(false).expect("frame");
    println!(
        "[bob]   after Alice released, owner is user {} -> {}",
        f.rakes[0].owner,
        if f.rakes[0].owner == bob.user_id() {
            "got it"
        } else {
            "UNEXPECTED"
        }
    );

    // Bob drives the shared clock while Alice watches.
    bob.send(&Command::Time(TimeCommand::Play)).expect("play");
    for _ in 0..5 {
        bob.frame(true).expect("tick");
    }
    let fa = alice.frame(false).expect("frame");
    println!(
        "[alice] shared clock advanced to timestep {} (driven by bob)",
        fa.timestep
    );

    handle.shutdown();
    println!("done.");
}
