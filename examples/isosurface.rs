//! Isosurface extraction — the tool §1.2 of the paper excludes from the
//! interactive loop, demonstrated offline with a budget measurement.
//!
//! Extracts an isosurface of velocity magnitude around the tapered
//! cylinder, times it against the 1/8-s virtual-environment budget and
//! against the 100×200 streamline frame the budget *does* accommodate,
//! and renders the triangles with the software rasterizer.
//!
//! ```sh
//! cargo run --release --example isosurface
//! ```

use distributed_virtual_windtunnel as dvw;

// The bench crate isn't a dependency of the umbrella crate, so inline the
// two helpers we need.
mod helpers {
    use distributed_virtual_windtunnel as dvw;
    use dvw::cfd::tapered_cylinder::{sample_physical, TaperedCylinderFlow};
    use dvw::cfd::OGridSpec;
    use dvw::flowfield::{Dims, VectorField};
    use dvw::tracer::Domain;

    pub fn spec() -> OGridSpec {
        OGridSpec {
            dims: Dims::new(49, 33, 17),
            ..OGridSpec::default()
        }
    }

    pub fn field_at(t: f32) -> (VectorField, Domain, dvw::flowfield::CurvilinearGrid) {
        let spec = spec();
        let flow = TaperedCylinderFlow {
            spec,
            ..TaperedCylinderFlow::default()
        };
        let grid = spec.build().unwrap();
        let inv = grid.precompute_inverse_jacobians().unwrap();
        let physical = sample_physical(&flow, t);
        let field = grid.convert_field_with(&inv, &physical).unwrap();
        (field, Domain::o_grid(spec.dims), grid)
    }
}

fn main() {
    use dvw::tracer::isosurface::{isosurface, surface_area};
    use dvw::tracer::{trace_batch_scalar, TraceConfig};
    use dvw::vecmath::{Mat4, Pose, Vec3};
    use dvw::vr::ppm::write_ppm;
    use dvw::vr::{Framebuffer, Rgb};
    use std::time::Instant;

    let (field, domain, grid) = helpers::field_at(8.0);
    let spec = helpers::spec();
    let mag = field.magnitude_field();
    let (lo, hi) = mag.range().unwrap();
    let iso = lo + 0.55 * (hi - lo);
    println!(
        "velocity-magnitude range on the {} grid: [{lo:.3}, {hi:.3}], extracting iso = {iso:.3}",
        spec.dims
    );

    // Time the excluded tool.
    let t0 = Instant::now();
    let tris = isosurface(&mag, iso);
    let iso_time = t0.elapsed();
    println!(
        "isosurface: {} triangles, area {:.1}, computed in {:.1?}",
        tris.len(),
        surface_area(&tris),
        iso_time
    );

    // Time the included tool (the paper's benchmark frame).
    let seeds: Vec<Vec3> = (0..100)
        .map(|s| {
            let f = s as f32 / 100.0;
            Vec3::new(
                (spec.dims.ni - 1) as f32 * (0.3 + 0.4 * f),
                (spec.dims.nj - 1) as f32 * 0.45,
                (spec.dims.nk - 1) as f32 * (0.1 + 0.8 * f),
            )
        })
        .collect();
    let cfg = TraceConfig {
        dt: 0.04,
        max_points: 200,
        ..Default::default()
    };
    let t0 = Instant::now();
    let lines = trace_batch_scalar(&field, &domain, &seeds, &cfg);
    let stream_time = t0.elapsed();
    println!(
        "streamline frame: {} paths / {} points in {:.1?}",
        lines.len(),
        lines.iter().map(|l| l.len()).sum::<usize>(),
        stream_time
    );
    println!(
        "ratio isosurface/streamlines = {:.1}x  (the 1/8 s budget is 125 ms)",
        iso_time.as_secs_f64() / stream_time.as_secs_f64().max(1e-9),
    );
    // 34 years of hardware rewrote the absolute verdict: on a 2026 core
    // *both* tools fit the 1/8 s budget at this resolution. What survives
    // is the scaling argument — isosurface work is Θ(grid cells) and
    // cannot be throttled below grid resolution, while streamline work is
    // Θ(requested points) and degrades gracefully (see the governor). On
    // the 1992 Convex (~40 MFLOPS) this cell count put marching cubes at
    // seconds per frame, which is why §1.2 excluded it.
    let cells = spec.dims.cell_count();
    println!(
        "scaling: isosurface visits all {cells} cells every frame; streamlines visit only \
         the ~20k cells their paths cross and can be cut by the frame governor."
    );

    // Convert triangle vertices to physical space and render.
    let tris_phys: Vec<[Vec3; 3]> = tris
        .iter()
        .filter_map(|t| {
            Some([
                grid.to_physical(t[0])?,
                grid.to_physical(t[1])?,
                grid.to_physical(t[2])?,
            ])
        })
        .collect();
    let eye = Vec3::new(-6.0, 10.0, spec.span * 0.5 + 14.0);
    let target = Vec3::new(2.0, 0.0, spec.span * 0.5);
    let mvp = Mat4::perspective(0.9, 4.0 / 3.0, 0.1, 200.0)
        * Pose::from_mat4(&Mat4::look_at(eye, target, Vec3::Y).inverse_rigid()).view_matrix();
    let mut fb = Framebuffer::new(640, 480);
    fb.draw_triangles(&mvp, &tris_phys, Rgb::new(90, 170, 255));
    for l in &lines {
        let phys = grid.path_to_physical(l);
        fb.draw_polyline(&mvp, &phys, Rgb::new(255, 200, 80));
    }
    let out = std::env::temp_dir().join("dvw-isosurface.ppm");
    write_ppm(&out, &fb).expect("write");
    println!(
        "wrote {} ({} triangles rendered)",
        out.display(),
        tris_phys.len()
    );
    println!();
    println!("paper context (§1.2): 'interactive streamlines ... can be used, but interactive");
    println!("isosurfaces, which require computationally intensive algorithms such as marching");
    println!("cubes, can not' — true on 1992 hardware; the scaling asymmetry is what remains.");
}
