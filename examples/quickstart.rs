//! Quickstart: generate a small unsteady dataset, trace the three
//! visualization tools through it, and render a picture.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distributed_virtual_windtunnel as dvw;
use dvw::cfd::tapered_cylinder::{generate_dataset, TaperedCylinderFlow};
use dvw::flowfield::Dims;
use dvw::tracer::{
    pathline, streamline, Domain, PathlineConfig, Rake, Streakline, StreaklineConfig, ToolKind,
    TraceConfig,
};
use dvw::vecmath::{Pose, Vec3};
use dvw::vr::ppm::write_ppm;
use dvw::vr::stereo::{render_anaglyph, StereoCamera};
use dvw::vr::Framebuffer;

fn main() {
    // 1. A reduced tapered-cylinder dataset: same O-grid topology as the
    //    131 072-point original, 20 timesteps of shedding.
    let flow = TaperedCylinderFlow {
        spec: dvw::cfd::OGridSpec {
            dims: Dims::new(33, 17, 9),
            ..Default::default()
        },
        ..Default::default()
    };
    println!(
        "generating dataset ({} points/timestep)...",
        flow.spec.dims.point_count()
    );
    let dataset = generate_dataset(&flow, "quickstart", 20, 0.25).expect("generate");
    let grid = dataset.grid();
    let domain = Domain::o_grid(dataset.dims());

    // 2. A rake of seeds upstream of the cylinder (grid coordinates).
    let dims = dataset.dims();
    let rake = Rake::new(
        Vec3::new((dims.ni - 1) as f32 * 0.5, 5.0, 1.0),
        Vec3::new((dims.ni - 1) as f32 * 0.5, 5.0, 7.0),
        8,
        ToolKind::Streamline,
    );

    // 3. Streamlines through the instantaneous field of timestep 10.
    let field = dataset.timestep(10).unwrap();
    let cfg = TraceConfig {
        dt: 0.05,
        max_points: 150,
        ..Default::default()
    };
    let streamlines: Vec<Vec<Vec3>> = rake
        .seeds()
        .iter()
        .map(|&s| streamline(field, &domain, s, &cfg))
        .collect();
    println!(
        "traced {} streamlines, {} total points",
        streamlines.len(),
        streamlines.iter().map(|l| l.len()).sum::<usize>()
    );

    // 4. A particle path through the *unsteady* sequence from the first
    //    seed, and a streakline system from the same rake.
    let path = pathline(
        dataset.timesteps(),
        &domain,
        rake.seeds()[0],
        0,
        &PathlineConfig {
            dt_per_timestep: 0.25,
            ..Default::default()
        },
    );
    println!(
        "particle path: {} points across {} timesteps",
        path.len(),
        dataset.timestep_count()
    );

    let mut streak = Streakline::new(
        rake.seeds(),
        StreaklineConfig {
            dt: 0.1,
            ..Default::default()
        },
    );
    for t in 0..dataset.timestep_count() {
        streak.advance(dataset.timestep(t).unwrap(), &domain);
    }
    println!(
        "streakline smoke: {} particles after {} frames",
        streak.particle_count(),
        streak.frame_count()
    );

    // 5. Render everything in the paper's red/blue stereo and save a PPM.
    let mut lines: Vec<(Vec<Vec3>, u8)> = Vec::new();
    for l in &streamlines {
        lines.push((grid.path_to_physical(l), 235));
    }
    lines.push((grid.path_to_physical(&path), 180));
    for f in streak.filaments() {
        if f.len() > 1 {
            lines.push((grid.path_to_physical(&f), 140));
        }
    }
    let camera = {
        let eye = Vec3::new(-4.0, 8.0, 14.0);
        let target = Vec3::new(2.0, 0.0, 4.0);
        let view = dvw::vecmath::Mat4::look_at(eye, target, Vec3::Y);
        let mut cam = StereoCamera::new(Pose::from_mat4(&view.inverse_rigid()));
        cam.aspect = 4.0 / 3.0;
        cam
    };
    let mut fb = Framebuffer::new(640, 480);
    render_anaglyph(&mut fb, &camera, &lines);
    let out = std::path::Path::new("quickstart.ppm");
    write_ppm(out, &fb).expect("write image");
    println!(
        "wrote {} ({} polylines) — view with any PPM-capable viewer",
        out.display(),
        lines.len()
    );
}
