//! The "conventional screen and mouse environment" of §6: a desktop
//! client driving the same server with keyboard + mouse instead of BOOM +
//! glove, with the whole session recorded and replayed.
//!
//! ```sh
//! cargo run --release --example desktop_session
//! ```

use distributed_virtual_windtunnel as dvw;
use dvw::cfd::tapered_cylinder::{generate_dataset, TaperedCylinderFlow};
use dvw::flowfield::Dims;
use dvw::storage::MemoryStore;
use dvw::tracer::ToolKind;
use dvw::vecmath::{Mat4, Pose, Vec3};
use dvw::vr::ppm::write_ppm;
use dvw::vr::stereo::StereoCamera;
use dvw::vr::Framebuffer;
use dvw::windtunnel::client::Palette;
use dvw::windtunnel::desktop::{DesktopInput, Key};
use dvw::windtunnel::record::{load, replay, SessionRecorder};
use dvw::windtunnel::{serve, Command, ServerOptions, WindtunnelClient};
use std::sync::Arc;

fn main() {
    // Server.
    let flow = TaperedCylinderFlow {
        spec: dvw::cfd::OGridSpec {
            dims: Dims::new(33, 17, 9),
            ..Default::default()
        },
        ..Default::default()
    };
    println!("[server] generating dataset...");
    let dataset = generate_dataset(&flow, "desktop", 10, 0.3).expect("generate");
    let grid = dataset.grid().clone();
    let make_store = {
        let ds = dataset.clone();
        move || Arc::new(MemoryStore::from_dataset(ds.clone()))
    };
    let handle = serve(
        make_store(),
        grid.clone(),
        ServerOptions {
            periodic_i: true,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("serve");

    // Desktop client with a fixed screen camera.
    let mut client = WindtunnelClient::connect(handle.addr()).expect("connect");
    let bounds = client.hello().bounds();
    let center = bounds.center();
    let eye = center + Vec3::new(0.0, 0.3 * bounds.diagonal(), 0.85 * bounds.diagonal());
    let mut cam = StereoCamera::new(Pose::from_mat4(
        &Mat4::look_at(eye, center, Vec3::Y).inverse_rigid(),
    ));
    cam.aspect = 4.0 / 3.0;
    let mvp = cam.projection() * cam.head.view_matrix();
    let (w, h) = (640.0f32, 480.0f32);

    let mut desk = DesktopInput::new();
    let mut rec = SessionRecorder::new();
    let send = |client: &mut WindtunnelClient, rec: &mut SessionRecorder, cmd: Command| {
        client.send(&cmd).expect("send");
        rec.command(&cmd);
    };

    // Build the scene.
    send(
        &mut client,
        &mut rec,
        Command::AddRake {
            a: Vec3::new(-2.5, 0.0, 1.5),
            b: Vec3::new(-2.5, 0.0, 6.5),
            seed_count: 10,
            tool: ToolKind::Streamline,
        },
    );

    // Keyboard: play at half rate.
    send(&mut client, &mut rec, desk.key(Key::Space));
    send(&mut client, &mut rec, desk.key(Key::Slower));
    for _ in 0..4 {
        client.frame(true).expect("tick");
        rec.tick();
    }

    // Mouse: grab the rake center on screen and drag it upward.
    let frame = client.frame(false).expect("frame");
    let rake_center = (frame.rakes[0].a + frame.rakes[0].b) * 0.5;
    let (cx, cy) = {
        let hcoords = mvp.transform_point_h(rake_center);
        (
            (hcoords[0] / hcoords[3] * 0.5 + 0.5) * (w - 1.0),
            (0.5 - hcoords[1] / hcoords[3] * 0.5) * (h - 1.0),
        )
    };
    if let Some(cmd) = desk.mouse_down(cx, cy, &frame, &mvp, w, h) {
        println!("[mouse] grabbed the rake at pixel ({cx:.0}, {cy:.0})");
        send(&mut client, &mut rec, cmd);
        for step in 1..=5 {
            let cmd = desk
                .mouse_drag(cx, cy - 12.0 * step as f32, &mvp, w, h)
                .unwrap();
            send(&mut client, &mut rec, cmd);
        }
        send(&mut client, &mut rec, desk.mouse_up().unwrap());
    } else {
        println!("[mouse] pick missed — rake center off screen?");
    }

    let after = client.frame(false).expect("frame");
    let moved = (after.rakes[0].a + after.rakes[0].b) * 0.5;
    println!(
        "[mouse] rake center moved {:.2} -> {:.2} in y",
        rake_center.y, moved.y
    );

    // Render the final view (mono, as a desktop screen would).
    let mut fb = Framebuffer::new(w as usize, h as usize);
    WindtunnelClient::render_mono(&after, &mut fb, &mvp, &Palette::default());
    let img = std::env::temp_dir().join("dvw-desktop.ppm");
    write_ppm(&img, &fb).expect("write");
    println!("[render] wrote {}", img.display());

    // Save the recording and replay it against a *fresh* server.
    let rec_path = std::env::temp_dir().join("dvw-desktop.dvwr");
    rec.save(&rec_path).expect("save recording");
    println!(
        "[record] saved {} events to {}",
        rec.len(),
        rec_path.display()
    );
    drop(client);
    handle.shutdown();

    let handle2 = serve(
        make_store(),
        grid,
        ServerOptions {
            periodic_i: true,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("serve again");
    let mut replay_client = WindtunnelClient::connect(handle2.addr()).expect("connect");
    let events = load(&rec_path).expect("load recording");
    let n = replay(&mut replay_client, &events, 0.0).expect("replay");
    let replayed = replay_client.frame(false).expect("frame");
    let rcenter = (replayed.rakes[0].a + replayed.rakes[0].b) * 0.5;
    println!(
        "[replay] {n} events against a fresh server: rake center y = {:.2} (live session had {:.2})",
        rcenter.y, moved.y
    );
    handle2.shutdown();
    println!("done.");
}
