//! A full virtual-environment session, devices and all: the BOOM head
//! tracker and DataGlove are simulated, their samples flow through the
//! command protocol to a windtunnel server, and the returned geometry is
//! rendered head-tracked in red/blue stereo — the complete figure-9
//! workstation loop with synthetic hardware.
//!
//! The scripted user: looks around (BOOM joints move), reaches out,
//! makes a fist near the rake center, drags the rake through the flow,
//! releases, and watches the streamlines respond.
//!
//! ```sh
//! cargo run --release --example vr_session
//! ```

use distributed_virtual_windtunnel as dvw;
use dvw::cfd::tapered_cylinder::{generate_dataset, TaperedCylinderFlow};
use dvw::flowfield::Dims;
use dvw::storage::MemoryStore;
use dvw::tracer::ToolKind;
use dvw::vecmath::Vec3;
use dvw::vr::boom::{Boom, BoomGeometry};
use dvw::vr::glove::{bends_fist, bends_open, DataGlove, GloveCalibration, GloveReading};
use dvw::vr::ppm::write_ppm;
use dvw::vr::stereo::StereoCamera;
use dvw::vr::Framebuffer;
use dvw::windtunnel::client::Palette;
use dvw::windtunnel::{serve, Command, ServerOptions, WindtunnelClient};
use std::sync::Arc;

fn main() {
    // ---------------- server ----------------
    let flow = TaperedCylinderFlow {
        spec: dvw::cfd::OGridSpec {
            dims: Dims::new(33, 17, 9),
            ..Default::default()
        },
        ..Default::default()
    };
    println!("[server] generating dataset...");
    let dataset = generate_dataset(&flow, "vr", 8, 0.3).expect("generate");
    let grid = dataset.grid().clone();
    let handle = serve(
        Arc::new(MemoryStore::from_dataset(dataset)),
        grid,
        ServerOptions {
            periodic_i: true,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .expect("serve");

    // ---------------- workstation ----------------
    let mut client = WindtunnelClient::connect(handle.addr()).expect("connect");
    let bounds = client.hello().bounds();
    println!(
        "[client] in session; dataset bounds {:?} .. {:?}",
        bounds.min, bounds.max
    );

    // The devices.
    let mut boom = Boom::new(BoomGeometry::default());
    let mut glove = DataGlove::new(GloveCalibration::default());

    // A rake near the wake.
    client
        .send(&Command::AddRake {
            a: Vec3::new(-2.5, 0.0, 2.0),
            b: Vec3::new(-2.5, 0.0, 6.0),
            seed_count: 8,
            tool: ToolKind::Streamline,
        })
        .expect("add rake");
    let rake_center = {
        let f = client.frame(false).expect("frame");
        (f.rakes[0].a + f.rakes[0].b) * 0.5
    };

    // Scripted session: 40 frames of head motion + a grab-drag-release.
    let frames = 40usize;
    let mut saved = 0usize;
    for f in 0..frames {
        let t = f as f32 / frames as f32;

        // BOOM: the user slowly swings the display around the scene.
        boom.set_angles([
            -0.6 + 1.0 * t, // azimuth sweep
            0.25,           // shoulder
            -0.9,           // elbow
            0.3 - 0.4 * t,  // head yaw
            -0.15,          // head pitch
            0.0,
        ]);
        let head = boom.head_pose();
        client
            .send(&Command::HeadPose { pose: head })
            .expect("head");

        // Glove: approach the rake (frames 5-12), fist and drag (13-28),
        // release (29+).
        let (hand_pos, bends) = if f < 13 {
            let approach = t * 2.0;
            (
                rake_center + Vec3::new(0.0, 2.0 - 2.0 * approach.min(1.0), 0.0),
                bends_open(),
            )
        } else if f < 29 {
            let drag = (f - 13) as f32 / 16.0;
            (rake_center + Vec3::new(0.0, 1.2 * drag, 0.0), bends_fist())
        } else {
            (rake_center + Vec3::new(0.0, 1.2, 0.0), bends_open())
        };
        let gesture = glove.update(&GloveReading {
            pose: dvw::vecmath::Pose::new(hand_pos, Default::default()),
            bends,
        });
        client
            .send(&Command::Hand {
                position: hand_pos,
                gesture,
            })
            .expect("hand");

        // Fetch and render the frame from the tracked head pose. Scale
        // the boom's ~2 m working volume up to scene scale.
        let frame = client.frame(true).expect("frame");
        if f % 10 == 0 || f == frames - 1 {
            let mut cam = StereoCamera::new(dvw::vecmath::Pose {
                position: head.position * 6.0 + Vec3::new(2.0, 0.0, 16.0),
                orientation: head.orientation,
            });
            cam.aspect = 4.0 / 3.0;
            let mut fb = Framebuffer::new(512, 384);
            WindtunnelClient::render_stereo(&frame, &mut fb, &cam, &Palette::default());
            let path = std::env::temp_dir().join(format!("dvw-vr-{saved:02}.ppm"));
            write_ppm(&path, &fb).expect("write");
            saved += 1;
            println!(
                "[client] frame {f}: gesture {:?}, rake owner {}, rake center y {:+.2}, {} paths -> {}",
                gesture,
                frame.rakes[0].owner,
                (frame.rakes[0].a.y + frame.rakes[0].b.y) * 0.5,
                frame.paths.len(),
                path.display()
            );
        }
    }

    let f = client.frame(false).expect("frame");
    println!(
        "[client] session end: rake center moved to y = {:+.2} (dragged by the glove), owner now {}",
        (f.rakes[0].a.y + f.rakes[0].b.y) * 0.5,
        f.rakes[0].owner
    );
    handle.shutdown();
}
