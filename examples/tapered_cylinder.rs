//! The paper's flagship workload, end to end: generate the unsteady
//! tapered-cylinder dataset, write it as a dataset directory, stream it
//! back from disk through the prefetching double-buffer (figure 8), and
//! animate streaklines — saving anaglyph frames along the way.
//!
//! Defaults to a reduced grid; pass `--full` for the paper's 64×64×32 ×
//! a shorter run of timesteps (the full 800-step dataset is ~1.2 GB and
//! takes a while; the architecture is identical).
//!
//! ```sh
//! cargo run --release --example tapered_cylinder [-- --full]
//! ```

use distributed_virtual_windtunnel as dvw;
use dvw::cfd::tapered_cylinder::{generate_dataset, TaperedCylinderFlow};
use dvw::cfd::OGridSpec;
use dvw::flowfield::{format, Dims};
use dvw::storage::{DiskStore, Prefetcher, TimestepStore};
use dvw::tracer::{Domain, Rake, Streakline, StreaklineConfig, ToolKind};
use dvw::vecmath::{Mat4, Pose, Vec3};
use dvw::vr::ppm::write_ppm;
use dvw::vr::stereo::{render_anaglyph, StereoCamera};
use dvw::vr::Framebuffer;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let spec = if full {
        OGridSpec::default() // 64 × 64 × 32 = 131 072 points
    } else {
        OGridSpec {
            dims: Dims::new(33, 17, 9),
            ..Default::default()
        }
    };
    let timesteps = if full { 48 } else { 32 };
    let flow = TaperedCylinderFlow {
        spec,
        ..Default::default()
    };
    let period = 1.0 / flow.shedding_frequency(0.0);
    let dt = period / 16.0;

    println!(
        "generating {} timesteps on a {} grid ({} points, {:.1} MB/timestep)...",
        timesteps,
        spec.dims,
        spec.dims.point_count(),
        spec.dims.timestep_bytes() as f64 / 1e6
    );
    let t0 = Instant::now();
    let dataset = generate_dataset(&flow, "tapered-cylinder", timesteps, dt).expect("generate");
    println!("  generated in {:.1?}", t0.elapsed());

    // Write the dataset directory (grid + meta + one file per timestep).
    let dir = std::env::temp_dir().join("dvw-tapered-cylinder");
    let t0 = Instant::now();
    format::write_dataset(&dir, &dataset).expect("write dataset");
    println!(
        "  wrote {} ({:.1} MB) in {:.1?}",
        dir.display(),
        dataset.meta().total_velocity_bytes() as f64 / 1e6,
        t0.elapsed()
    );
    let grid = dataset.grid().clone();
    drop(dataset); // from here on everything streams from disk

    // Re-open from disk and stream with the figure-8 prefetcher.
    let store = Arc::new(DiskStore::open(&dir).expect("open dataset"));
    let prefetcher = Prefetcher::new(Arc::clone(&store));
    let domain = Domain::o_grid(spec.dims);

    // A streakline rake along the span, upstream.
    let dims = spec.dims;
    let rake = Rake::new(
        Vec3::new(
            (dims.ni - 1) as f32 * 0.5,
            (dims.nj - 1) as f32 * 0.3,
            (dims.nk - 1) as f32 * 0.1,
        ),
        Vec3::new(
            (dims.ni - 1) as f32 * 0.5,
            (dims.nj - 1) as f32 * 0.3,
            (dims.nk - 1) as f32 * 0.9,
        ),
        12,
        ToolKind::Streakline,
    );
    let mut streak = Streakline::new(
        rake.seeds(),
        StreaklineConfig {
            dt: dt * 0.8,
            max_age: 300,
            ..Default::default()
        },
    );

    // Camera for the saved frames.
    let camera = {
        let eye = Vec3::new(-4.0, 8.0, spec.span * 0.5 + 11.0);
        let target = Vec3::new(2.5, 0.0, spec.span * 0.5);
        let mut cam = StereoCamera::new(Pose::from_mat4(
            &Mat4::look_at(eye, target, Vec3::Y).inverse_rigid(),
        ));
        cam.aspect = 4.0 / 3.0;
        cam
    };

    println!(
        "streaming {} frames from disk (prefetch pipeline)...",
        timesteps * 2
    );
    let t0 = Instant::now();
    prefetcher.request(0);
    let mut saved = 0;
    for frame_idx in 0..timesteps * 2 {
        let ts = frame_idx % store.timestep_count();
        prefetcher.request((ts + 1) % store.timestep_count());
        let field = prefetcher.wait(ts).expect("timestep");
        streak.advance(field.as_ref(), &domain);

        if frame_idx % (timesteps / 2).max(1) == 0 {
            let lines: Vec<(Vec<Vec3>, u8)> = streak
                .filaments()
                .into_iter()
                .filter(|l| l.len() > 1)
                .map(|l| (grid.path_to_physical(&l), 210))
                .collect();
            let mut fb = Framebuffer::new(512, 384);
            render_anaglyph(&mut fb, &camera, &lines);
            let path = std::env::temp_dir().join(format!("dvw-smoke-{saved:02}.ppm"));
            write_ppm(&path, &fb).expect("write frame");
            saved += 1;
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "  {} frames in {:.1?} ({:.1} fps), {} smoke particles live, {:.1} MB read from disk",
        timesteps * 2,
        elapsed,
        (timesteps * 2) as f64 / elapsed.as_secs_f64(),
        streak.particle_count(),
        store.bytes_read() as f64 / 1e6
    );
    println!(
        "  saved {saved} anaglyph frames to {}/dvw-smoke-NN.ppm",
        std::env::temp_dir().display()
    );
    println!("paper context: Table 2 row 1 — this dataset needs 15 MB/s of disk for 10 fps;");
    println!("the prefetcher overlaps that load with the visualization compute (figure 8).");
}
