#!/usr/bin/env sh
# Full pre-merge check: release build, tests, and warning-free clippy.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

echo "check.sh: all green"
