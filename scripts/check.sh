#!/usr/bin/env sh
# Full pre-merge check: formatting, release build, tests, warning-free
# clippy, and a smoke run of the bench harnesses (--quick: scaled-down
# workloads, nothing written, so recorded BENCH_*.json stay untouched).
set -eu
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release
cargo test -q
# Workspace invariant checker (hard gate): panic-path, wire-protocol,
# lock-order, hygiene, blocking, and stats passes over the tree. Exit 1
# on any finding. The JSON document (every active finding plus every
# reasoned escape hatch) is archived for auditing; the gate itself stays
# the exit code. The timing assertion keeps the whole-workspace lint —
# call graph and all — under 5 s so it stays cheap enough to run first.
mkdir -p bench_out
lint_start=$(date +%s%N)
cargo run --release -q -p dvw-lint -- --format json > bench_out/lint_findings.json
lint_ms=$(( ($(date +%s%N) - lint_start) / 1000000 ))
echo "dvw-lint: full workspace in ${lint_ms} ms (findings archived to bench_out/lint_findings.json)"
test "$lint_ms" -lt 5000
cargo clippy --workspace --all-targets -- -D warnings
# Chaos pass: seeded fault schedules against live servers. The proptest
# shim seeds from the test name, so these replay identically every run;
# PROPTEST_CASES pins the round count and RUST_BACKTRACE locates any
# failure inside the storm.
PROPTEST_CASES=32 RUST_BACKTRACE=1 cargo test -q -p dvw-dlib --test chaos
RUST_BACKTRACE=1 cargo test -q --test chaos_resync
# Disk chaos: seeded read faults (transient, torn, bit flips, one dead
# timestep) under live looped playback; recovery counters must match the
# injected schedule exactly and a clean disk must report all zeros.
PROPTEST_CASES=32 RUST_BACKTRACE=1 cargo test -q --test disk_chaos
cargo run --release -p dvw-bench --bin bench_frame -- --quick
cargo run --release -p dvw-bench --bin bench_delta -- --quick
cargo run --release -p dvw-bench --bin bench_trace -- --quick
cargo run --release -p dvw-bench --bin bench_storage -- --quick
# Scalar-vs-batch streakline bitwise equality under a pinned case count
# (the batch kernel is only as good as this proptest says it is).
PROPTEST_CASES=64 RUST_BACKTRACE=1 cargo test -q --release -p dvw-tracer --test streak_equiv
# v2 container codec: write->read must be bitwise identical whatever the
# bit patterns (NaN payloads, -0.0, denormals), and truncation/corruption
# must be rejected, never mis-decoded.
PROPTEST_CASES=64 RUST_BACKTRACE=1 cargo test -q --release -p dvw-flowfield --test codec_roundtrip

echo "check.sh: all green"
