#!/usr/bin/env sh
# Full pre-merge check: formatting, release build, tests, warning-free
# clippy, and a smoke run of the bench harnesses (--quick: scaled-down
# workloads, nothing written, so recorded BENCH_*.json stay untouched).
set -eu
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo run --release -p dvw-bench --bin bench_frame -- --quick
cargo run --release -p dvw-bench --bin bench_delta -- --quick

echo "check.sh: all green"
