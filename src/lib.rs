#![deny(unsafe_op_in_unsafe_fn, unused_must_use)]
//! Umbrella crate for the Distributed Virtual Windtunnel reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use distributed_virtual_windtunnel as dvw;`.

pub use cfd;
pub use dlib;
pub use flowfield;
pub use storage;
pub use tracer;
pub use vecmath;
pub use vr;
pub use windtunnel;
