//! Cross-crate property tests: invariants that must hold for *any* input,
//! exercised through the public APIs.

use distributed_virtual_windtunnel as dvw;
use dvw::flowfield::{CurvilinearGrid, Dims, FieldSample, VectorField};
use dvw::tracer::{streamline, Domain, Integrator, TraceConfig};
use dvw::vecmath::Vec3;
use dvw::windtunnel::{PlaybackMode, TimeController};
use proptest::prelude::*;

proptest! {
    /// The time controller never leaves the valid timestep range, no
    /// matter what sequence of knobs the user mashes.
    #[test]
    fn time_controller_stays_in_range(
        len in 1usize..200,
        ops in proptest::collection::vec(0u8..7, 1..60),
        rates in proptest::collection::vec(-8.0f32..8.0, 1..60),
    ) {
        let mut t = TimeController::new(len);
        for (op, rate) in ops.iter().zip(rates.iter().cycle()) {
            match op {
                0 => t.play(),
                1 => t.pause(),
                2 => t.reverse(),
                3 => t.set_rate(*rate),
                4 => t.jump((rate.abs() * 50.0) as usize),
                5 => t.step(if *rate > 0.0 { 1 } else { -1 }),
                _ => {
                    t.set_mode(match (*rate * 10.0) as i32 % 3 {
                        0 => PlaybackMode::Loop,
                        1 => PlaybackMode::Clamp,
                        _ => PlaybackMode::Bounce,
                    });
                }
            }
            let ts = t.advance();
            prop_assert!(ts < len, "timestep {ts} out of range 0..{len}");
            prop_assert!(t.time() >= 0.0 && t.time() <= (len - 1) as f32 + 1e-3);
        }
    }

    /// A streamline in any random (bounded) field never produces a point
    /// outside the domain, never a NaN, and never exceeds max_points + 1.
    #[test]
    fn streamline_output_always_valid(
        seed_x in 0.0f32..7.0,
        seed_y in 0.0f32..7.0,
        seed_z in 0.0f32..7.0,
        field_seed in 0u64..500,
        dt in 0.01f32..1.0,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(field_seed);
        let dims = Dims::new(8, 8, 8);
        let field = VectorField::from_fn(dims, |_, _, _| {
            Vec3::new(
                rng.random_range(-2.0..2.0),
                rng.random_range(-2.0..2.0),
                rng.random_range(-2.0..2.0),
            )
        });
        let domain = Domain::boxed(dims);
        let cfg = TraceConfig {
            dt,
            max_points: 64,
            integrator: Integrator::Rk2,
            ..Default::default()
        };
        let path = streamline(&field, &domain, Vec3::new(seed_x, seed_y, seed_z), &cfg);
        prop_assert!(path.len() <= 65);
        for p in &path {
            prop_assert!(p.is_finite());
            prop_assert!(dims.contains_grid_coord(*p), "{p:?} escaped the domain");
        }
    }

    /// Sampling any in-domain point of a bounded random field returns a
    /// value inside the field's own per-component bounds (interpolation
    /// is a convex combination), for both layouts.
    #[test]
    fn interpolation_is_convex_everywhere(
        px in 0.0f32..5.0, py in 0.0f32..5.0, pz in 0.0f32..5.0,
        field_seed in 0u64..200,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(field_seed);
        let dims = Dims::new(6, 6, 6);
        let field = VectorField::from_fn(dims, |_, _, _| {
            Vec3::new(
                rng.random_range(-3.0..3.0),
                rng.random_range(-3.0..3.0),
                rng.random_range(-3.0..3.0),
            )
        });
        let soa = field.to_soa();
        let p = Vec3::new(px, py, pz);
        let a = field.sample(p).unwrap();
        let b = soa.sample(p).unwrap();
        prop_assert!(a.distance(b) < 1e-4);
        for comp in 0..3 {
            prop_assert!(a[comp] >= -3.0 - 1e-4 && a[comp] <= 3.0 + 1e-4);
        }
    }

    /// The grid→physical→grid round trip holds across random smooth
    /// (shear + stretch) grids — the §2.1 coordinate machinery.
    #[test]
    fn coordinate_roundtrip_on_random_smooth_grids(
        shear in -0.4f32..0.4,
        stretch_x in 0.5f32..2.0,
        stretch_y in 0.5f32..2.0,
        gx in 0.5f32..4.5, gy in 0.5f32..4.5, gz in 0.5f32..4.5,
    ) {
        let dims = Dims::new(6, 6, 6);
        let grid = CurvilinearGrid::from_fn(dims, |i, j, k| {
            Vec3::new(
                i as f32 * stretch_x + shear * j as f32,
                j as f32 * stretch_y,
                k as f32 + shear * 0.5 * i as f32,
            )
        })
        .unwrap();
        let gc = Vec3::new(gx, gy, gz);
        let phys = grid.to_physical(gc).unwrap();
        if let Some(found) = grid.locate(phys) {
            let back = grid.to_physical(found).unwrap();
            prop_assert!(back.distance(phys) < 1e-2, "{back:?} vs {phys:?}");
        }
    }

    /// Rake geometry: dragging any handle by d then by -d restores the
    /// rake exactly (grid coordinates are plain affine state).
    #[test]
    fn rake_drag_is_invertible(
        hx in -3.0f32..3.0, hy in -3.0f32..3.0, hz in -3.0f32..3.0,
        which in 0u8..3,
    ) {
        use dvw::tracer::{Handle, Rake, ToolKind};
        let original = Rake::new(Vec3::ZERO, Vec3::new(4.0, 1.0, 0.0), 7, ToolKind::Streakline);
        let handle = match which {
            0 => Handle::Center,
            1 => Handle::EndA,
            _ => Handle::EndB,
        };
        let d = Vec3::new(hx, hy, hz);
        let mut r = original;
        r.drag(handle, d);
        r.drag(handle, -d);
        prop_assert!(r.a.distance(original.a) < 1e-4);
        prop_assert!(r.b.distance(original.b) < 1e-4);
    }

    /// The delta protocol's core guarantee: applying a FRAME_DELTA stream
    /// to the client's retained scene reconstructs a frame byte-identical
    /// to the full-frame encoding, across random rake add / drag / delete
    /// / streak-advance sequences and forced keyframe resyncs.
    #[test]
    fn delta_stream_byte_identical_to_full_frames(
        ops in proptest::collection::vec((0u8..6, 0.0f32..1.0), 1..25),
    ) {
        use dvw::windtunnel::proto::{Command, TimeCommand};
        use dvw::windtunnel::{serve, ServerOptions, WindtunnelClient};
        use dvw::flowfield::{dataset::VelocityCoords, Dataset, DatasetMeta, VectorField};
        use dvw::storage::MemoryStore;
        use dvw::tracer::ToolKind;
        use dvw::vecmath::{Aabb, Pose};
        use dvw::vr::Gesture;
        use std::sync::Arc;

        let dims = Dims::new(12, 7, 7);
        let grid = CurvilinearGrid::cartesian(
            dims,
            Aabb::new(Vec3::ZERO, Vec3::new(11.0, 6.0, 6.0)),
        ).unwrap();
        let meta = DatasetMeta {
            name: "delta-prop".into(),
            dims,
            timestep_count: 4,
            dt: 0.1,
            coords: VelocityCoords::Grid,
        };
        let fields = (0..4)
            .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X * 0.5))
            .collect();
        let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
        let store = Arc::new(MemoryStore::from_dataset(ds));
        let handle = serve(store, grid, ServerOptions::default(), "127.0.0.1:0").unwrap();

        let mut inc = WindtunnelClient::connect(handle.addr()).unwrap();
        let mut full = WindtunnelClient::connect(handle.addr()).unwrap();
        let mut live_rakes: Vec<u32> = Vec::new();
        let mut next_id = 1u32;
        for (op, x) in ops {
            match op {
                0 => {
                    // Add a rake (alternating tools).
                    let y = 1.0 + x * 4.0;
                    let tool = if next_id.is_multiple_of(2) {
                        ToolKind::Streakline
                    } else {
                        ToolKind::Streamline
                    };
                    inc.send(&Command::AddRake {
                        a: Vec3::new(2.0, y, 3.0),
                        b: Vec3::new(2.0, y + 1.0, 3.0),
                        seed_count: 2,
                        tool,
                    }).unwrap();
                    live_rakes.push(next_id);
                    next_id += 1;
                }
                1 => {
                    // Drag: grab near some rake's center and move it (a
                    // miss is harmless — the hand just closes on air).
                    if !live_rakes.is_empty() {
                        let y = 1.0 + x * 4.0;
                        inc.send(&Command::Hand {
                            position: Vec3::new(2.0, y + 0.5, 3.0),
                            gesture: Gesture::Fist,
                        }).unwrap();
                        inc.send(&Command::Hand {
                            position: Vec3::new(2.0 + x, y + 0.5, 3.0),
                            gesture: Gesture::Fist,
                        }).unwrap();
                        inc.send(&Command::Hand {
                            position: Vec3::new(2.0 + x, y + 0.5, 3.0),
                            gesture: Gesture::Open,
                        }).unwrap();
                    }
                }
                2 => {
                    // Delete the oldest live rake.
                    if !live_rakes.is_empty() {
                        let id = live_rakes.remove(0);
                        inc.send(&Command::RemoveRake { id }).unwrap();
                    }
                }
                3 => {
                    // Advance the clock (streak systems tick).
                    inc.send(&Command::Time(TimeCommand::Play)).unwrap();
                    inc.frame_delta(true).unwrap();
                }
                4 => {
                    // Head-pose-only mutation.
                    inc.send(&Command::HeadPose {
                        pose: Pose::new(Vec3::new(x, 1.7, 2.0), Default::default()),
                    }).unwrap();
                }
                _ => {
                    // Forced resync: drop the retained scene, next reply
                    // must be a keyframe.
                    inc.reset_scene();
                }
            }
            let df = inc.frame_delta(false).unwrap();
            let ff = full.frame(false).unwrap();
            // Byte-identity: the delta reconstruction must match the
            // full-frame encoding exactly.
            prop_assert_eq!(df.encode(), ff.encode());
        }
        handle.shutdown();
    }

    /// Disk-model arithmetic: read time is monotone in bytes and inversely
    /// monotone in bandwidth.
    #[test]
    fn disk_model_monotonicity(
        bytes_a in 1u64..100_000_000,
        bytes_b in 1u64..100_000_000,
        bw in 1.0e6f64..1.0e10,
    ) {
        use dvw::storage::DiskModel;
        use std::time::Duration;
        let m = DiskModel { bandwidth_bytes_per_sec: bw, seek: Duration::from_millis(1) };
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(m.read_duration(lo) <= m.read_duration(hi));
        let faster = DiskModel { bandwidth_bytes_per_sec: bw * 2.0, seek: Duration::from_millis(1) };
        prop_assert!(faster.read_duration(hi) <= m.read_duration(hi));
    }
}
