//! The paper's quantitative claims, checked as executable assertions.
//! Each test cites the section it reproduces.

use distributed_virtual_windtunnel as dvw;
use dvw::flowfield::{DatasetMeta, Dims};
use dvw::storage::constraints as c;
use dvw::storage::DiskModel;
use dvw::tracer::benchmark as b;
use std::time::Duration;

#[test]
fn section1_tapered_cylinder_size() {
    // §1: "Each timestep consists of about one and a half megabytes of
    // velocity data, and 800 timesteps were computed."
    let meta = DatasetMeta::tapered_cylinder();
    let mb = meta.dims.timestep_bytes() as f64 / (1024.0 * 1024.0);
    assert!((mb - 1.5).abs() < 0.01, "timestep = {mb} MiB");
    assert_eq!(meta.timestep_count, 800);
    // Total ≈ 1.2 decimal GB — the "four times the workstation's 256 MB"
    // regime of §5.1.
    assert!(meta.total_velocity_bytes() > 250 * 1024 * 1024 * 4);
}

#[test]
fn section12_frame_budget() {
    // §1.2: react in < 1/8 s; ten frames/second desired.
    assert_eq!(c::REACTION_BUDGET, Duration::from_millis(125));
    assert_eq!(c::TARGET_FPS, 10.0);
    assert!(b::FRAME_BUDGET <= c::REACTION_BUDGET);
}

#[test]
fn table1_all_rows() {
    // Bytes/frame at 12 B/particle.
    assert_eq!(c::frame_bytes(10_000), 120_000);
    assert_eq!(c::frame_bytes(50_000), 600_000);
    assert_eq!(c::frame_bytes(100_000), 1_200_000);
    // Bandwidth (binary MB/s, as printed).
    assert!((c::required_network_mbytes_per_sec(10_000, 10.0) - 1.144).abs() < 1e-3);
    assert!((c::required_network_mbytes_per_sec(50_000, 10.0) - 5.722).abs() < 1e-3);
    // (The paper's third row is arithmetically inconsistent; see
    // EXPERIMENTS.md.)
}

#[test]
fn section51_stereo_projection_argument() {
    // §5.1: sending 3-D points is 12 B/pt; stereo screen coordinates
    // would be two projections × 8 B = 16 B/pt. 12 < 16 ⇒ world-space
    // points win. (This is the design argument, as arithmetic.)
    let world_bytes_per_point = 12u32;
    let mono_projected = 8u32;
    let stereo_projected = 2 * mono_projected;
    assert!(world_bytes_per_point < stereo_projected);
}

#[test]
fn table2_all_rows() {
    for (points, bytes, per_gib) in [
        (131_072u64, 1_572_864u64, 682u64),
        (1_000_000, 12_000_000, 89),
        (3_000_000, 36_000_000, 29),
    ] {
        assert_eq!(c::timestep_bytes(points), bytes);
        assert_eq!(c::timesteps_per_gibibyte(points), per_gib);
    }
}

#[test]
fn section51_convex_disk_observations() {
    // "The Convex C3240 with its disk I/O bandwidth of 30
    // megabytes/second can load datasets of up to about three and a
    // quarter megabytes in 1/8th of a second."
    let max = c::max_timestep_bytes_within_budget(30.0e6, c::REACTION_BUDGET);
    assert!(max >= 3_250_000, "max loadable = {max}");
    // "the hovering Harrier … about 36 megabytes per timestep …
    // will require a disk bandwidth of about 600 megabytes per second."
    let harrier = c::required_disk_bandwidth(3_000_000, 10.0);
    assert!((harrier - 360.0e6).abs() < 1.0, "{harrier}");
    // At 10 fps a 36 MB timestep needs 360 MB/s by the 12 B/pt rule; the
    // paper's 600 MB/s figure uses the Harrier's full q-file (36 MB of
    // *velocity* plus the other flow quantities). Either way the Convex
    // cannot stream it:
    assert!(DiskModel::convex_c3240().timesteps_per_sec(36_000_000) < 1.0);
}

#[test]
fn table3_all_rows() {
    let rows = [
        (0.25, 8_000usize, 40usize),
        (0.19, 10_526, 52),
        (0.13, 15_384, 76),
        (0.10, 20_000, 100),
        (0.05, 40_000, 200),
    ];
    for (secs, particles, lines) in rows {
        let t = Duration::from_secs_f64(secs);
        assert_eq!(
            b::max_particles(t, b::PAPER_PARTICLES, b::FRAME_BUDGET),
            particles
        );
        assert_eq!(
            b::max_streamlines_200(t, b::PAPER_PARTICLES, b::FRAME_BUDGET),
            lines
        );
    }
}

#[test]
fn section53_benchmark_definition() {
    // "a benchmark computation of 100 streamlines each containing 200
    // points … 20,000 points with a transfer over the networks of
    // 240,000 bytes".
    assert_eq!(b::PAPER_STREAMLINES, 100);
    assert_eq!(b::PAPER_POINTS, 200);
    assert_eq!(b::PAPER_PARTICLES, 20_000);
    assert_eq!(b::PAPER_WIRE_BYTES, 240_000);
}

#[test]
fn section53_vectorized_beats_scalar_on_this_substrate() {
    // The §5.3 finding, measured live on a small field: the SoA lockstep
    // kernel outperforms the AoS per-streamline kernel at equal thread
    // count. (Run in release for meaningful margins; in debug we only
    // require it not be dramatically slower.)
    use dvw::flowfield::VectorField;
    use dvw::tracer::{Domain, TraceConfig};
    use dvw::vecmath::Vec3;

    let dims = Dims::new(48, 48, 16);
    let field = VectorField::from_fn(dims, |i, j, _| {
        let c = 23.5;
        Vec3::new(-(j as f32 - c) * 0.05, (i as f32 - c) * 0.05, 0.02)
    });
    let bench = b::BenchField::new(field, Domain::boxed(dims));
    let seeds = b::benchmark_seeds(dims, 100);
    let cfg = TraceConfig {
        dt: 0.3,
        max_points: 200,
        ..Default::default()
    };
    // Warm up and take best-of-3 for each kernel.
    let best = |k: b::Kernel| {
        let _ = b::run_kernel(k, &bench, &seeds, &cfg);
        (0..3)
            .map(|_| b::run_kernel(k, &bench, &seeds, &cfg).1)
            .min()
            .unwrap()
    };
    let scalar = best(b::Kernel::Scalar);
    let vector = best(b::Kernel::Vector);
    assert!(
        vector.as_secs_f64()
            < scalar.as_secs_f64() * if cfg!(debug_assertions) { 2.5 } else { 1.1 },
        "vector {vector:?} vs scalar {scalar:?}"
    );
}
