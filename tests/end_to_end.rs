//! End-to-end integration: generate a dataset, persist it, serve it from
//! disk through cache + prefetch, drive a multi-user session over real
//! sockets, and render the result — every crate in one flow.

use distributed_virtual_windtunnel as dvw;
use dvw::cfd::tapered_cylinder::{generate_dataset, TaperedCylinderFlow};
use dvw::cfd::OGridSpec;
use dvw::flowfield::{format, Dims};
use dvw::storage::{CachedStore, DiskStore, TimestepStore};
use dvw::tracer::ToolKind;
use dvw::vecmath::Vec3;
use dvw::vr::stereo::StereoCamera;
use dvw::vr::{Framebuffer, Gesture};
use dvw::windtunnel::client::Palette;
use dvw::windtunnel::{serve, Command, ServerOptions, TimeCommand, WindtunnelClient};
use std::sync::Arc;

fn small_flow() -> TaperedCylinderFlow {
    TaperedCylinderFlow {
        spec: OGridSpec {
            dims: Dims::new(25, 13, 7),
            ..OGridSpec::default()
        },
        ..TaperedCylinderFlow::default()
    }
}

#[test]
fn full_pipeline_disk_to_pixels() {
    // 1. Generate + persist.
    let flow = small_flow();
    let dataset = generate_dataset(&flow, "e2e", 6, 0.3).unwrap();
    let dir = tempfile::tempdir().unwrap();
    format::write_dataset(dir.path(), &dataset).unwrap();
    let grid = dataset.grid().clone();

    // 2. Serve from disk with an LRU window.
    let disk = DiskStore::open(dir.path()).unwrap();
    let store = Arc::new(CachedStore::new(disk, 4));
    let handle = serve(
        store,
        grid,
        ServerOptions {
            periodic_i: true,
            ..ServerOptions::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();

    // 3. A client builds a scene and plays time.
    let mut client = WindtunnelClient::connect(handle.addr()).unwrap();
    assert_eq!(client.hello().dataset_name, "e2e");
    assert_eq!(client.hello().timestep_count, 6);
    client
        .send(&Command::AddRake {
            a: Vec3::new(-2.0, 0.0, 1.0),
            b: Vec3::new(-2.0, 0.0, 5.0),
            seed_count: 6,
            tool: ToolKind::Streamline,
        })
        .unwrap();
    client.send(&Command::Time(TimeCommand::Play)).unwrap();

    let mut last_timestep = 0;
    let mut total_points = 0usize;
    for _ in 0..4 {
        let frame = client.frame(true).unwrap();
        last_timestep = frame.timestep;
        total_points += frame.particle_count();
        assert_eq!(frame.rakes.len(), 1);
        assert!(!frame.paths.is_empty(), "streamlines must be produced");
        // All geometry is physical-space and inside (near) the grid
        // bounds.
        let bounds = client.hello().bounds().inflated(1.0);
        for p in &frame.paths {
            for pt in &p.points {
                assert!(bounds.contains(*pt), "{pt:?} outside {bounds:?}");
            }
        }
    }
    assert!(last_timestep > 0, "clock must have advanced");
    assert!(total_points > 50);

    // 4. Render the last frame to pixels.
    let frame = client.frame(false).unwrap();
    let mut fb = Framebuffer::new(128, 96);
    let cam = StereoCamera::new(dvw::vecmath::Pose::new(
        Vec3::new(0.0, 0.0, 30.0),
        Default::default(),
    ));
    WindtunnelClient::render_stereo(&frame, &mut fb, &cam, &Palette::default());
    assert!(fb.count_pixels(|c| c.r > 0 || c.b > 0) > 10);

    handle.shutdown();
}

#[test]
fn disk_and_memory_stores_agree_exactly() {
    use dvw::storage::MemoryStore;
    let flow = small_flow();
    let dataset = generate_dataset(&flow, "agree", 4, 0.25).unwrap();
    let dir = tempfile::tempdir().unwrap();
    format::write_dataset(dir.path(), &dataset).unwrap();

    let mem = MemoryStore::from_dataset(dataset);
    let disk = DiskStore::open(dir.path()).unwrap();
    for t in 0..4 {
        let a = mem.fetch(t).unwrap();
        let b = disk.fetch(t).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "timestep {t} differs");
    }
}

#[test]
fn three_users_share_consistently() {
    let flow = small_flow();
    let dataset = generate_dataset(&flow, "trio", 4, 0.3).unwrap();
    let grid = dataset.grid().clone();
    let store = Arc::new(dvw::storage::MemoryStore::from_dataset(dataset));
    let handle = serve(
        store,
        grid,
        ServerOptions {
            periodic_i: true,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();

    let mut users: Vec<WindtunnelClient> = (0..3)
        .map(|_| WindtunnelClient::connect(handle.addr()).unwrap())
        .collect();

    users[0]
        .send(&Command::AddRake {
            a: Vec3::new(-2.0, 0.0, 1.0),
            b: Vec3::new(-2.0, 0.0, 4.0),
            seed_count: 4,
            tool: ToolKind::Streamline,
        })
        .unwrap();

    // Everyone sees the same revision and identical frames.
    let frames: Vec<_> = users.iter_mut().map(|u| u.frame(false).unwrap()).collect();
    assert_eq!(frames[0], frames[1]);
    assert_eq!(frames[1], frames[2]);

    // User 1 grabs, user 2 fails, user 0 observes the lock.
    let center = (frames[0].rakes[0].a + frames[0].rakes[0].b) * 0.5;
    let grab = |u: &mut WindtunnelClient| {
        u.send(&Command::Hand {
            position: center,
            gesture: Gesture::Fist,
        })
        .unwrap()
    };
    grab(&mut users[1]);
    grab(&mut users[2]);
    let owner_ids: Vec<u64> = users
        .iter_mut()
        .map(|u| u.frame(false).unwrap().rakes[0].owner)
        .collect();
    let u1 = users[1].user_id();
    assert!(owner_ids.iter().all(|&o| o == u1));

    handle.shutdown();
}
