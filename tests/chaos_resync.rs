//! Windtunnel-level chaos: a resilient delta-streaming client under a
//! seeded fault schedule must converge back to frames byte-identical to
//! the full-frame encoding once the faults stop, and the server must end
//! with zero sessions for the departed incarnations.

#![allow(clippy::disallowed_methods)] // tests sleep to let real threads make progress
use distributed_virtual_windtunnel as dvw;
use dvw::dlib::{FaultConfig, FaultPlan};
use dvw::flowfield::{
    dataset::VelocityCoords, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField,
};
use dvw::tracer::{ToolKind, TraceConfig};
use dvw::vecmath::{Aabb, Pose, Vec3};
use dvw::windtunnel::compute::ComputeConfig;
use dvw::windtunnel::{
    serve, Command, ResilientClient, ServerOptions, TimeCommand, WindtunnelClient, WindtunnelHandle,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

fn chaos_server() -> WindtunnelHandle {
    let dims = Dims::new(16, 9, 9);
    let grid =
        CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(15.0, 8.0, 8.0))).unwrap();
    let meta = DatasetMeta {
        name: "chaos".into(),
        dims,
        timestep_count: 8,
        dt: 0.1,
        coords: VelocityCoords::Grid,
    };
    let fields = (0..8)
        .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X))
        .collect();
    let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
    let store = Arc::new(dvw::storage::MemoryStore::from_dataset(ds));
    let opts = ServerOptions {
        heartbeat_timeout: Some(Duration::from_millis(500)),
        compute: ComputeConfig {
            trace: TraceConfig {
                dt: 1.0,
                max_points: 6,
                ..TraceConfig::default()
            },
            ..ComputeConfig::default()
        },
        ..ServerOptions::default()
    };
    serve(store, grid, opts, "127.0.0.1:0").unwrap()
}

fn storm_config() -> FaultConfig {
    FaultConfig {
        drop: 0.0, // drops cost a full call timeout each; covered in dlib's chaos suite
        delay: 0.15,
        duplicate: 0.08,
        truncate: 0.05,
        disconnect: 0.10,
        max_delay: Duration::from_millis(3),
    }
}

fn chaos_round(seed: u64) {
    let server = chaos_server();
    // The observer fetches full frames over a clean connection — the
    // ground truth the chaotic delta stream must converge to.
    let mut observer = WindtunnelClient::connect(server.addr()).unwrap();
    let mut rc = ResilientClient::connect(server.addr()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rakes_added = 0u32;
    let mut skipped = 0u32;

    for i in 0..30u64 {
        // Sporadically sabotage whatever connection is currently live;
        // reconnects come up clean until the next sabotage.
        if rng.random_range(0..3u32) == 0 {
            if let Some(c) = rc.dlib_mut().client_mut() {
                c.set_fault_plan(FaultPlan::new(seed ^ i, storm_config()));
            }
        }
        // One random session op. Remote rejections (e.g. a seed-count
        // request for a never-added rake) are fine — only transport
        // errors mean a skipped update.
        let op = match rng.random_range(0..4u32) {
            0 => {
                let y0 = rng.random_range(1.0f32..6.0);
                rakes_added += 1;
                rc.send(&Command::AddRake {
                    a: Vec3::new(2.0, y0, 4.0),
                    b: Vec3::new(2.0, y0 + 1.0, 4.0),
                    seed_count: rng.random_range(2u32..5),
                    tool: ToolKind::Streamline,
                })
            }
            1 => rc.send(&Command::HeadPose {
                pose: Pose::new(
                    Vec3::new(rng.random_range(0.0f32..15.0), 1.7, 5.0),
                    Default::default(),
                ),
            }),
            2 => rc.send(&Command::Time(TimeCommand::Jump(rng.random_range(0u32..8)))),
            _ if rakes_added > 0 => rc.send(&Command::SetSeedCount {
                id: rng.random_range(1..=rakes_added),
                n: rng.random_range(2u32..6),
            }),
            _ => Ok(()),
        };
        if op.is_err() {
            skipped += 1;
        }
        // One frame round trip; errors are skipped frames, never a wedge.
        if rc.frame_delta(false).is_err() {
            skipped += 1;
        }
    }

    // Calm down: shed any still-sabotaged connection, then the delta
    // stream must reconstruct exactly what a full fetch sees.
    rc.dlib_mut().disconnect();
    let f_inc = rc.frame_delta(false).unwrap();
    let f_full = observer.frame(false).unwrap();
    assert_eq!(
        f_inc.encode(),
        f_full.encode(),
        "seed {seed}: reconstructed frame diverged after {skipped} skipped updates"
    );

    // Departure: every dead incarnation of the chaotic client gets
    // reaped; only the observer remains.
    let generations = rc.generation();
    assert!(generations >= 1);
    drop(rc);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = observer.stats().unwrap();
        if stats.live_sessions == 1 && stats.cum_reaped_sessions >= generations {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "seed {seed}: sessions not reaped ({generations} generations): {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn chaotic_delta_streams_converge_to_full_frames() {
    // Fixed seeds: every run replays the same fault schedules.
    for seed in [7u64, 1992, 0x5EED_CAFE] {
        chaos_round(seed);
    }
}
