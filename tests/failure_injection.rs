//! Failure injection: corrupt files, dead servers, byzantine peers.
//! The 1992 system ran on a dedicated machine room; a 2026 open-source
//! release has to survive hostile inputs.

#![allow(clippy::disallowed_methods)] // tests sleep to let real threads make progress
use distributed_virtual_windtunnel as dvw;
use dvw::cfd::tapered_cylinder::{generate_dataset, TaperedCylinderFlow};
use dvw::cfd::OGridSpec;
use dvw::flowfield::{format, Dims};
use dvw::storage::{DiskStore, TimestepStore};
use dvw::tracer::ToolKind;
use dvw::vecmath::Vec3;
use dvw::windtunnel::{serve, Command, ServerOptions, WindtunnelClient};
use std::io::Write;
use std::sync::Arc;

fn small_dataset() -> dvw::flowfield::Dataset {
    let flow = TaperedCylinderFlow {
        spec: OGridSpec {
            dims: Dims::new(17, 9, 5),
            ..OGridSpec::default()
        },
        ..TaperedCylinderFlow::default()
    };
    generate_dataset(&flow, "fault", 4, 0.3).unwrap()
}

#[test]
fn corrupt_timestep_file_fails_cleanly_and_locally() {
    let ds = small_dataset();
    let dir = tempfile::tempdir().unwrap();
    format::write_dataset(dir.path(), &ds).unwrap();

    // Truncate timestep 2.
    let victim = format::velocity_path(dir.path(), 2);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 3]).unwrap();

    let store = DiskStore::open(dir.path()).unwrap();
    assert!(store.fetch(0).is_ok());
    assert!(store.fetch(2).is_err(), "corrupt file must error");
    assert!(store.fetch(3).is_ok(), "other timesteps unaffected");
}

#[test]
fn wrong_magic_grid_file_rejected_at_open() {
    let ds = small_dataset();
    let dir = tempfile::tempdir().unwrap();
    format::write_dataset(dir.path(), &ds).unwrap();
    // Stomp the grid file header.
    let grid_path = format::grid_path(dir.path());
    let mut f = std::fs::OpenOptions::new()
        .write(true)
        .open(&grid_path)
        .unwrap();
    f.write_all(b"XXXX").unwrap();
    drop(f);
    assert!(DiskStore::open(dir.path()).is_err());
}

#[test]
fn mismatched_grid_and_meta_rejected() {
    let ds = small_dataset();
    let dir = tempfile::tempdir().unwrap();
    format::write_dataset(dir.path(), &ds).unwrap();
    // Replace the meta with different dims.
    let mut meta = ds.meta().clone();
    meta.dims = Dims::new(4, 4, 4);
    format::write_meta(&format::meta_path(dir.path()), &meta).unwrap();
    assert!(DiskStore::open(dir.path()).is_err());
}

#[test]
fn server_fetch_failure_degrades_to_a_substituted_frame_not_a_hang() {
    // Serve a dataset directory, then delete a timestep file out from
    // under the server: playback substitutes the nearest healthy
    // timestep (DESIGN.md §6.6) instead of erring the frame, and the
    // degradation is visible in the wire stats.
    let ds = small_dataset();
    let dir = tempfile::tempdir().unwrap();
    format::write_dataset(dir.path(), &ds).unwrap();
    let grid = ds.grid().clone();
    let store = Arc::new(DiskStore::open(dir.path()).unwrap());
    let handle = serve(
        store,
        grid,
        ServerOptions {
            periodic_i: true,
            ..Default::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();

    let mut client = WindtunnelClient::connect(handle.addr()).unwrap();
    client
        .send(&Command::AddRake {
            a: Vec3::new(-2.0, 0.0, 1.0),
            b: Vec3::new(-2.0, 0.0, 3.0),
            seed_count: 2,
            tool: ToolKind::Streamline,
        })
        .unwrap();
    // First frame works (timestep 0 exists).
    assert!(client.frame(false).is_ok());
    assert!(!client.store_degraded().unwrap());
    // Nuke timestep 1 and jump to it: the frame must still come back,
    // computed from the nearest healthy neighbour, with the *requested*
    // timestep on the wire and the substitution counted.
    std::fs::remove_file(format::velocity_path(dir.path(), 1)).unwrap();
    client
        .send(&Command::Time(dvw::windtunnel::TimeCommand::Jump(1)))
        .unwrap();
    let frame = client
        .frame(false)
        .expect("missing timestep must degrade, not err");
    assert_eq!(frame.timestep, 1, "wire keeps the requested timestep");
    assert!(
        !frame.paths.is_empty(),
        "substituted frame carries geometry"
    );
    let stats = client.stats().unwrap();
    assert!(stats.cum_substituted_fetches >= 1, "substitution counted");
    assert!(client.store_degraded().unwrap());
    // The session survives: jump back and keep working.
    client
        .send(&Command::Time(dvw::windtunnel::TimeCommand::Jump(0)))
        .unwrap();
    assert!(client.frame(false).is_ok());
    handle.shutdown();
}

#[test]
fn client_of_dead_server_errors_quickly() {
    let ds = small_dataset();
    let grid = ds.grid().clone();
    let store = Arc::new(dvw::storage::MemoryStore::from_dataset(ds));
    let handle = serve(store, grid, ServerOptions::default(), "127.0.0.1:0").unwrap();
    let mut client = WindtunnelClient::connect(handle.addr()).unwrap();
    assert!(client.frame(false).is_ok());
    handle.shutdown();
    // Server gone: next call errors (possibly after the OS notices), and
    // must not panic or hang.
    let start = std::time::Instant::now();
    let r = client.frame(false);
    assert!(r.is_err());
    assert!(start.elapsed() < std::time::Duration::from_secs(5));
}

#[test]
fn byzantine_bytes_on_the_dlib_port_dont_kill_the_server() {
    let ds = small_dataset();
    let grid = ds.grid().clone();
    let store = Arc::new(dvw::storage::MemoryStore::from_dataset(ds));
    let handle = serve(store, grid, ServerOptions::default(), "127.0.0.1:0").unwrap();

    // A peer that sends garbage frames.
    {
        let mut sock = std::net::TcpStream::connect(handle.addr()).unwrap();
        sock.write_all(&[0xFF; 64]).unwrap();
        // (dropped: disconnect)
    }
    // A peer that announces an absurd frame length.
    {
        let mut sock = std::net::TcpStream::connect(handle.addr()).unwrap();
        sock.write_all(&u32::MAX.to_le_bytes()).unwrap();
    }
    // Honest clients still work.
    let mut client = WindtunnelClient::connect(handle.addr()).unwrap();
    assert!(client.frame(false).is_ok());
    handle.shutdown();
}

#[test]
fn governor_reins_in_oversized_scenes() {
    use dvw::tracer::TraceConfig;
    use dvw::windtunnel::compute::ComputeConfig;
    // A server with a (deliberately absurd) 50 µs compute budget: after a
    // few computed frames the governor must have cut the per-path point
    // budget, so later frames carry fewer points than the first.
    let ds = small_dataset();
    let grid = ds.grid().clone();
    let store = Arc::new(dvw::storage::MemoryStore::from_dataset(ds));
    let opts = ServerOptions {
        periodic_i: true,
        frame_budget: Some(std::time::Duration::from_micros(50)),
        compute: ComputeConfig {
            trace: TraceConfig {
                dt: 0.02,
                max_points: 400,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = serve(store, grid, opts, "127.0.0.1:0").unwrap();
    let mut client = WindtunnelClient::connect(handle.addr()).unwrap();
    client
        .send(&Command::AddRake {
            a: Vec3::new(-2.0, 0.0, 1.0),
            b: Vec3::new(-2.0, 0.0, 3.0),
            seed_count: 16,
            tool: ToolKind::Streamline,
        })
        .unwrap();
    let first = client.frame(false).unwrap().particle_count();
    // Force recomputes (each Step bumps the revision).
    let mut last = first;
    for t in 0..6 {
        client
            .send(&Command::Time(dvw::windtunnel::TimeCommand::Step(
                if t % 2 == 0 { 1 } else { -1 },
            )))
            .unwrap();
        last = client.frame(false).unwrap().particle_count();
    }
    assert!(
        last < first,
        "governor should shrink the scene: first {first}, last {last}"
    );
    handle.shutdown();
}

#[test]
fn client_killed_mid_delta_call_never_wedges_the_server() {
    use bytes::Bytes;
    use dvw::windtunnel::proto::{DeltaRequest, PROC_FRAME_DELTA, PROC_HELLO};

    let ds = small_dataset();
    let grid = ds.grid().clone();
    let store = Arc::new(dvw::storage::MemoryStore::from_dataset(ds));
    let opts = ServerOptions {
        periodic_i: true,
        heartbeat_timeout: Some(std::time::Duration::from_millis(500)),
        ..Default::default()
    };
    let handle = serve(store, grid, opts, "127.0.0.1:0").unwrap();

    // A hand-rolled victim: handshake, issue a clock-advancing
    // FRAME_DELTA call, then vanish without ever reading the reply. The
    // server computes the frame and fails to deliver it — that failure
    // must stay confined to this connection.
    {
        let mut sock = std::net::TcpStream::connect(handle.addr()).unwrap();
        let hello = dvw::dlib::Call {
            seq: 1,
            procedure: PROC_HELLO,
            args: Bytes::new(),
        };
        dvw::dlib::wire::write_frame(&mut sock, &hello.encode()).unwrap();
        dvw::dlib::wire::read_frame(&mut sock).unwrap();
        let call = dvw::dlib::Call {
            seq: 2,
            procedure: PROC_FRAME_DELTA,
            args: DeltaRequest {
                advance: true,
                baseline: 0,
            }
            .encode(),
        };
        dvw::dlib::wire::write_frame(&mut sock, &call.encode()).unwrap();
        sock.shutdown(std::net::Shutdown::Both).unwrap();
    }

    // A well-behaved client still completes a driven frame promptly —
    // the tick never wedges on the dead peer.
    let mut b = WindtunnelClient::connect(handle.addr()).unwrap();
    let start = std::time::Instant::now();
    b.frame(true).unwrap();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "live client's tick must not wait on the dead one"
    );

    // And PROC_STATS reports the reaped session: only the live client
    // remains.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = b.stats().unwrap();
        if stats.cum_reaped_sessions >= 1 && stats.live_sessions == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "victim session never reaped: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    handle.shutdown();
}
