//! Disk-chaos harness: a windtunnel server playing a dataset off a
//! seeded [`FaultyDisk`] — transient read errors, torn reads, flipped
//! chunk bits, and one permanently unreadable timestep — must stream
//! ≥ 200 frames with zero errors, and the recovery counters reported
//! over the wire must match the injected fault schedule *exactly*,
//! replayed from the pure [`DiskFaultPlan`].

use distributed_virtual_windtunnel as dvw;
use dvw::flowfield::{
    dataset::VelocityCoords, format, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField,
};
use dvw::storage::{
    CachedStore, DiskFaultAction, DiskFaultConfig, DiskFaultPlan, FaultyDisk, FileReader,
    ResilientStore, RetryConfig,
};
use dvw::tracer::ToolKind;
use dvw::vecmath::{Aabb, Vec3};
use dvw::windtunnel::{serve, Command, ServerOptions, TimeCommand, WindtunnelClient};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

/// 66×33×9 points → 19 602 values per component → 2 chunks per
/// component at `V2_CHUNK_VALUES = 16 384`, 6 chunks per container.
const DIMS: (u32, u32, u32) = (66, 33, 9);
const CHUNKS: usize = 6;
const TIMESTEPS: usize = 24;
/// The permanently unreadable timestep. Looped playback never visits
/// `TIMESTEPS - 1`, so pick something squarely mid-range.
const DEAD: usize = 11;
const TICKS: usize = 220;

fn write_dataset(dir: &Path) -> (DatasetMeta, CurvilinearGrid) {
    let dims = Dims::new(DIMS.0, DIMS.1, DIMS.2);
    let grid = CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(65.0, 32.0, 8.0)))
        .unwrap();
    let meta = DatasetMeta {
        name: "disk-chaos".into(),
        dims,
        timestep_count: TIMESTEPS,
        dt: 0.1,
        coords: VelocityCoords::Grid,
    };
    let fields = (0..TIMESTEPS)
        .map(|t| {
            VectorField::from_fn(dims, |i, j, _k| {
                Vec3::new(1.0, 0.05 * (t as f32 + i as f32 * 0.01), 0.02 * j as f32)
            })
        })
        .collect();
    let ds = Dataset::new(meta.clone(), grid.clone(), fields).unwrap();
    format::write_dataset_v2(dir, &ds).unwrap();
    (meta, grid)
}

/// Expected recovery counters for the whole run.
#[derive(Debug, Default, PartialEq)]
struct Expected {
    retried: u64,
    salvaged: u64,
    zero_filled: u64,
    quarantined: u64,
}

/// Replay the resilient store's fetch loop for one (cached, so
/// fetched-exactly-once) timestep against the pure fault plan,
/// mirroring `ResilientStore::fetch` + `salvage_chunks`: every disk
/// read consumes one plan attempt, transient/torn first reads retry
/// whole-file, a corrupt delivery enters the salvage loop where only
/// re-corruptions of still-bad chunks keep them bad.
fn replay_fetch(plan: &DiskFaultPlan, index: usize, cfg: &RetryConfig, out: &mut Expected) {
    if plan.is_permanent(index) {
        // Missing ⇒ quarantined on the first attempt, no retries.
        out.quarantined += 1;
        return;
    }
    let mut attempt = 0u64;
    for a in 0..cfg.max_read_attempts.max(1) {
        if a > 0 {
            out.retried += 1;
        }
        let act = plan.action(index, attempt, CHUNKS);
        attempt += 1;
        match act {
            DiskFaultAction::Permanent => unreachable!("checked above"),
            DiskFaultAction::Transient | DiskFaultAction::Torn { .. } => continue,
            DiskFaultAction::Deliver => return,
            DiskFaultAction::Corrupt { chunks } => {
                let initial = chunks.len() as u64;
                let mut bad = chunks;
                for _round in 0..cfg.max_salvage_rereads {
                    if bad.is_empty() {
                        break;
                    }
                    out.retried += 1;
                    let re = plan.action(index, attempt, CHUNKS);
                    attempt += 1;
                    match re {
                        DiskFaultAction::Deliver => bad.clear(),
                        DiskFaultAction::Corrupt { chunks: again } => {
                            bad.retain(|c| again.contains(c));
                        }
                        // Errored or torn re-read: bad set unchanged.
                        DiskFaultAction::Transient | DiskFaultAction::Torn { .. } => {}
                        DiskFaultAction::Permanent => unreachable!("checked above"),
                    }
                }
                out.zero_filled += bad.len() as u64;
                out.salvaged += initial - bad.len() as u64;
                return;
            }
        }
    }
    out.quarantined += 1;
}

struct Run {
    frames_at_dead: u64,
    visited: BTreeSet<usize>,
    stats: dvw::windtunnel::proto::FrameStats,
}

fn play(plan: DiskFaultPlan, dir: &Path, meta: DatasetMeta, grid: CurvilinearGrid) -> Run {
    let cfg = RetryConfig::instant();
    let disk = FaultyDisk::new(FileReader::new(dir), plan);
    let resilient = Arc::new(ResilientStore::with_reader(disk, meta, cfg));
    // Capacity ≥ timestep count: each healthy timestep hits the disk
    // through the resilient store exactly once, so the plan replay is an
    // exact mirror rather than a bound.
    let store = Arc::new(CachedStore::new(Arc::clone(&resilient), TIMESTEPS + 8));
    let server = serve(store, grid, ServerOptions::default(), "127.0.0.1:0").unwrap();

    let mut client = WindtunnelClient::connect(server.addr()).unwrap();
    client
        .send(&Command::AddRake {
            a: Vec3::new(2.0, 8.0, 4.0),
            b: Vec3::new(2.0, 24.0, 4.0),
            seed_count: 4,
            tool: ToolKind::Streamline,
        })
        .unwrap();
    client.send(&Command::Time(TimeCommand::Play)).unwrap();

    let mut run = Run {
        frames_at_dead: 0,
        visited: BTreeSet::new(),
        stats: Default::default(),
    };
    for tick in 0..TICKS {
        let frame = client
            .frame(true)
            .unwrap_or_else(|e| panic!("frame erred at tick {tick}: {e}"));
        let ts = frame.timestep as usize;
        run.visited.insert(ts);
        if ts == DEAD {
            run.frames_at_dead += 1;
        }
        assert!(
            !frame.paths.is_empty(),
            "tick {tick} at timestep {ts} produced no geometry"
        );
    }
    run.stats = client.stats().unwrap();

    // Post-mortem on the store itself, through the kept Arc.
    let disk = resilient.reader();
    let visited_healthy = run.visited.iter().filter(|&&t| t != DEAD).count() as u64;
    if resilient.quarantined() == vec![DEAD] {
        // Chaos run: require the headline fault classes actually fired.
        assert!(
            disk.transient_injected() > 0,
            "schedule injected no transient errors; pick a new seed"
        );
        let delivered_chunks = visited_healthy * CHUNKS as u64;
        assert!(
            disk.chunks_corrupted() * 20 >= delivered_chunks,
            "corruption below 5% of delivered chunks ({} of {})",
            disk.chunks_corrupted(),
            delivered_chunks
        );
        assert_eq!(disk.permanent_denials(), 1, "dead timestep read once");
    } else {
        assert!(
            resilient.quarantined().is_empty(),
            "fault-free run quarantined {:?}",
            resilient.quarantined()
        );
        assert_eq!(disk.reads(), visited_healthy + 1, "one read per timestep");
        assert_eq!(disk.transient_injected() + disk.torn_injected(), 0);
        assert_eq!(disk.chunks_corrupted(), 0);
    }
    server.shutdown();
    run
}

#[test]
fn seeded_disk_chaos_playback_matches_the_injected_schedule() {
    let tmp = tempfile::tempdir().unwrap();
    let (meta, grid) = write_dataset(tmp.path());

    let cfg = DiskFaultConfig {
        transient: 0.15,
        torn: 0.05,
        corrupt: 0.35,
        max_corrupt_chunks: 2,
        permanent: vec![DEAD],
    };
    let plan = DiskFaultPlan::new(0xD15C_CA05, cfg);
    let run = play(plan.clone(), tmp.path(), meta, grid);

    // Looped playback at rate 1 must sweep every loop position
    // (0..TIMESTEPS-1; the last step is the blend bracket, never the
    // frame) well within 220 ticks, and the dead step stays on the wire
    // as the *requested* timestep even though a neighbour was served.
    let all: BTreeSet<usize> = (0..TIMESTEPS - 1).collect();
    assert_eq!(run.visited, all, "playback did not sweep the loop");
    assert!(run.frames_at_dead >= 5, "dead step visited on every lap");

    // Replay the schedule: each visited timestep is fetched exactly
    // once (cache), the dead one quarantines on first touch.
    let mut expected = Expected::default();
    let retry = RetryConfig::instant();
    for &ts in &run.visited {
        replay_fetch(&plan, ts, &retry, &mut expected);
    }
    assert_eq!(
        expected.quarantined, 1,
        "seed must quarantine only the permanent timestep; re-seed if a \
         healthy step exhausted its retry budget: {expected:?}"
    );
    assert!(expected.salvaged > 0, "schedule exercised chunk salvage");

    let s = &run.stats;
    let got = Expected {
        retried: s.cum_store_retries,
        salvaged: s.cum_salvaged_chunks,
        zero_filled: s.cum_zero_filled_chunks,
        quarantined: s.cum_quarantined_steps,
    };
    assert_eq!(got, expected, "wire counters diverge from the schedule");
    // Every frame computed at the dead timestep substituted a healthy
    // neighbour — no more, no fewer.
    assert_eq!(s.cum_substituted_fetches, run.frames_at_dead);
    assert!(s.store_degraded());
}

#[test]
fn fault_free_run_reports_all_zero_health_counters() {
    let tmp = tempfile::tempdir().unwrap();
    let (meta, grid) = write_dataset(tmp.path());

    let plan = DiskFaultPlan::new(0xD15C_CA05, DiskFaultConfig::quiet());
    let run = play(plan, tmp.path(), meta, grid);

    let s = &run.stats;
    assert_eq!(
        (
            s.cum_store_retries,
            s.cum_salvaged_chunks,
            s.cum_zero_filled_chunks,
            s.cum_quarantined_steps,
            s.cum_substituted_fetches,
        ),
        (0, 0, 0, 0, 0),
        "healthy disk must report all-zero health counters"
    );
    assert!(!s.store_degraded());
}
