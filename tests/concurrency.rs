//! Concurrency stress: many clients hammering one server — the dlib
//! serialization guarantee (§4) must keep the shared environment
//! consistent under fire, and the pipeline must survive disconnects.

use distributed_virtual_windtunnel as dvw;
use dvw::flowfield::{
    dataset::VelocityCoords, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField,
};
use dvw::storage::MemoryStore;
use dvw::tracer::ToolKind;
use dvw::vecmath::{Aabb, Vec3};
use dvw::vr::Gesture;
use dvw::windtunnel::{
    serve, Command, ServerOptions, TimeCommand, WindtunnelClient, WindtunnelHandle,
};
use std::sync::Arc;

fn uniform_server() -> WindtunnelHandle {
    let dims = Dims::new(16, 9, 9);
    let grid =
        CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(15.0, 8.0, 8.0))).unwrap();
    let meta = DatasetMeta {
        name: "stress".into(),
        dims,
        timestep_count: 4,
        dt: 0.1,
        coords: VelocityCoords::Grid,
    };
    let fields = (0..4)
        .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X))
        .collect();
    let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
    serve(
        Arc::new(MemoryStore::from_dataset(ds)),
        grid,
        ServerOptions::default(),
        "127.0.0.1:0",
    )
    .unwrap()
}

#[test]
fn eight_clients_full_blast() {
    let handle = uniform_server();
    let addr = handle.addr();
    let mut joins = Vec::new();
    for t in 0..8u32 {
        joins.push(std::thread::spawn(move || {
            let mut c = WindtunnelClient::connect(addr).unwrap();
            for i in 0..15 {
                // Every client adds rakes, pokes time, moves its hand and
                // reads frames, concurrently.
                c.send(&Command::AddRake {
                    a: Vec3::new(2.0, 2.0 + (t % 4) as f32, 4.0),
                    b: Vec3::new(2.0, 3.0 + (t % 4) as f32, 4.0),
                    seed_count: 2,
                    tool: ToolKind::Streamline,
                })
                .unwrap();
                c.send(&Command::Hand {
                    position: Vec3::new(5.0, 4.0, 4.0),
                    gesture: if i % 2 == 0 {
                        Gesture::Fist
                    } else {
                        Gesture::Open
                    },
                })
                .unwrap();
                if t == 0 {
                    c.send(&Command::Time(TimeCommand::Step(1))).unwrap();
                }
                let frame = c.frame(false).unwrap();
                assert!(!frame.rakes.is_empty());
            }
            c.frame(false).unwrap().rakes.len()
        }));
    }
    let counts: Vec<usize> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    // All 8×15 rakes exist and were visible by the end to the last
    // finishers (monotone growth — nothing deletes).
    assert!(counts.iter().max().unwrap() >= &60);

    // A fresh observer sees exactly 120 rakes: nothing lost, nothing torn.
    let mut observer = WindtunnelClient::connect(addr).unwrap();
    let frame = observer.frame(false).unwrap();
    assert_eq!(frame.rakes.len(), 8 * 15);
    handle.shutdown();
}

#[test]
fn abrupt_disconnects_release_locks() {
    let handle = uniform_server();
    let addr = handle.addr();
    let mut a = WindtunnelClient::connect(addr).unwrap();
    a.send(&Command::AddRake {
        a: Vec3::new(4.0, 4.0, 4.0),
        b: Vec3::new(6.0, 4.0, 4.0),
        seed_count: 2,
        tool: ToolKind::Streamline,
    })
    .unwrap();
    a.send(&Command::Hand {
        position: Vec3::new(5.0, 4.0, 4.0),
        gesture: Gesture::Fist,
    })
    .unwrap();
    let owner = a.frame(false).unwrap().rakes[0].owner;
    assert_eq!(owner, a.user_id());
    drop(a); // Drop sends Goodbye → lock released server-side.

    let mut b = WindtunnelClient::connect(addr).unwrap();
    let frame = b.frame(false).unwrap();
    assert_eq!(frame.rakes[0].owner, 0);
    // And b can take it.
    b.send(&Command::Hand {
        position: Vec3::new(5.0, 4.0, 4.0),
        gesture: Gesture::Fist,
    })
    .unwrap();
    assert_eq!(b.frame(false).unwrap().rakes[0].owner, b.user_id());
    handle.shutdown();
}

#[test]
fn frame_reads_scale_with_shared_cache() {
    // Many concurrent readers of an unchanged environment must all get
    // identical bytes (served from the revision cache).
    let handle = uniform_server();
    let addr = handle.addr();
    let mut setup = WindtunnelClient::connect(addr).unwrap();
    setup
        .send(&Command::AddRake {
            a: Vec3::new(2.0, 4.0, 4.0),
            b: Vec3::new(2.0, 6.0, 4.0),
            seed_count: 8,
            tool: ToolKind::Streamline,
        })
        .unwrap();
    let reference = setup.frame(false).unwrap();

    let mut joins = Vec::new();
    for _ in 0..6 {
        let reference = reference.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = WindtunnelClient::connect(addr).unwrap();
            for _ in 0..20 {
                let f = c.frame(false).unwrap();
                // Joining clients bump the revision (their presence is
                // itself shared state), but the geometry must be
                // identical for every reader.
                assert_eq!(f.paths, reference.paths);
                assert_eq!(f.rakes, reference.rakes);
                assert_eq!(f.timestep, reference.timestep);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    handle.shutdown();
}
