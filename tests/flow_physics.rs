//! Cross-crate physics invariants: the textbook distinction between
//! streamlines, particle paths and streaklines (§2.1 of the paper defines
//! all three), validated on fields with known closed-form behaviour.

use distributed_virtual_windtunnel as dvw;
use dvw::cfd::analytic::{AnalyticField, RotatingUniform, SolidBodyVortex, Uniform};
use dvw::flowfield::{CurvilinearGrid, Dims, FieldSample, VectorField};
use dvw::tracer::{
    pathline, streamline, Domain, Integrator, PathlineConfig, Streakline, StreaklineConfig,
    TraceConfig,
};
use dvw::vecmath::{Aabb, Vec3};

/// Sample an analytic field onto a unit Cartesian grid at time `t`
/// (physical == grid coordinates, so grid velocities are the physical
/// velocities).
fn sample(field: &impl AnalyticField, n: u32, t: f32) -> VectorField {
    VectorField::from_fn(Dims::new(n, n, n), |i, j, k| {
        let c = (n - 1) as f32 / 2.0;
        field.velocity(Vec3::new(i as f32 - c, j as f32 - c, k as f32 - c), t)
    })
}

#[test]
fn steady_flow_collapses_the_three_tools() {
    // In a steady field, streamline == pathline == streakline locus.
    let analytic = Uniform {
        u: Vec3::new(0.5, 0.25, 0.0),
    };
    let n = 17;
    let fields: Vec<VectorField> = (0..10).map(|_| sample(&analytic, n, 0.0)).collect();
    let domain = Domain::boxed(Dims::new(n, n, n));
    let seed = Vec3::new(3.0, 3.0, 8.0);

    let sl = streamline(
        &fields[0],
        &domain,
        seed,
        &TraceConfig {
            dt: 1.0,
            max_points: 10,
            ..Default::default()
        },
    );
    let pl = pathline(&fields, &domain, seed, 0, &PathlineConfig::default());
    assert_eq!(sl.len(), 11); // seed + 10 steps
    assert_eq!(pl.len(), 11); // seed + one step per timestep
    for (a, b) in sl.iter().zip(&pl) {
        assert!(a.distance(*b) < 1e-4, "steady: tools must agree");
    }

    // Streakline: after k frames the particles lie on the same line.
    let mut streak = Streakline::new(
        vec![seed],
        StreaklineConfig {
            dt: 1.0,
            ..Default::default()
        },
    );
    for f in &fields {
        streak.advance(f, &domain);
    }
    for p in streak.positions() {
        // Each particle is seed + k·u for some integer k ≥ 0.
        let delta = p - seed;
        let k = delta.x / 0.5;
        assert!(k >= -1e-3, "streak particle upstream of seed");
        assert!((delta.y - 0.25 * k).abs() < 1e-3);
        assert!(delta.z.abs() < 1e-4);
    }
}

#[test]
fn unsteady_flow_separates_the_three_tools() {
    // The classic rotating-uniform example: streamlines are straight
    // lines (instantaneous field is uniform), pathlines are circles
    // (cycloid family), streaklines are yet another curve.
    let analytic = RotatingUniform {
        u0: 1.0,
        omega: 0.8,
    };
    let n = 33;
    let steps = 16;
    let dt = 0.5;
    let fields: Vec<VectorField> = (0..steps)
        .map(|s| sample(&analytic, n, s as f32 * dt))
        .collect();
    let domain = Domain::boxed(Dims::new(n, n, n));
    let seed = Vec3::splat(16.0);

    // Streamline of timestep 4: straight (all points collinear with the
    // instantaneous direction).
    let sl = streamline(
        &fields[4],
        &domain,
        seed,
        &TraceConfig {
            dt,
            max_points: 8,
            ..Default::default()
        },
    );
    let dir = (sl[1] - sl[0]).normalized_or_zero();
    for w in sl.windows(2) {
        let seg = (w[1] - w[0]).normalized_or_zero();
        assert!(seg.dot(dir) > 0.999, "streamline must be straight");
    }

    // Pathline: direction rotates along the path.
    let pl = pathline(
        &fields,
        &domain,
        seed,
        0,
        &PathlineConfig {
            dt_per_timestep: dt,
            integrator: Integrator::Rk2,
            ..Default::default()
        },
    );
    assert!(pl.len() > 8);
    let first_dir = (pl[1] - pl[0]).normalized_or_zero();
    let later_dir = (pl[8] - pl[7]).normalized_or_zero();
    assert!(
        first_dir.dot(later_dir) < 0.9,
        "pathline direction must rotate in unsteady flow"
    );

    // Streakline after the same interval differs from the pathline.
    let mut streak = Streakline::new(
        vec![seed],
        StreaklineConfig {
            dt,
            ..Default::default()
        },
    );
    for f in &fields {
        streak.advance(f, &domain);
    }
    let streak_pts = streak.positions();
    assert!(streak_pts.len() > 8);
    // The oldest streak particle and the pathline endpoint both started
    // at the seed at t=0 and should coincide; the *youngest* particles
    // must not lie on the pathline.
    let youngest = streak_pts.last().unwrap();
    let min_dist_to_path = pl
        .iter()
        .map(|p| p.distance(*youngest))
        .fold(f32::INFINITY, f32::min);
    // youngest is at the seed (just injected) — pick one a few frames old
    let mid = streak_pts[streak_pts.len() / 2];
    let mid_dist_to_path = pl
        .iter()
        .map(|p| p.distance(mid))
        .fold(f32::INFINITY, f32::min);
    assert!(
        mid_dist_to_path > 0.05 || min_dist_to_path > 0.05,
        "streakline must differ from pathline in unsteady flow"
    );
}

#[test]
fn vortex_streamlines_close_on_themselves() {
    let analytic = SolidBodyVortex { omega: 1.0 };
    let n = 33;
    let field = sample(&analytic, n, 0.0);
    let domain = Domain::boxed(Dims::new(n, n, n));
    let c = Vec3::splat(16.0);
    let seed = c + Vec3::new(5.0, 0.0, 0.0);
    // One full orbit: T = 2π/ω ⇒ with dt = T/n_steps.
    let steps = 400;
    let dt = std::f32::consts::TAU / steps as f32;
    let sl = streamline(
        &field,
        &domain,
        seed,
        &TraceConfig {
            dt,
            max_points: steps,
            integrator: Integrator::Rk4,
            ..Default::default()
        },
    );
    assert_eq!(sl.len(), steps + 1);
    // Returns to the seed after a full revolution.
    assert!(
        sl.last().unwrap().distance(seed) < 0.05,
        "closed orbit: end {:?} vs seed {:?}",
        sl.last().unwrap(),
        seed
    );
}

#[test]
fn curvilinear_and_cartesian_descriptions_agree() {
    // The same physical uniform flow expressed (a) on a unit Cartesian
    // grid and (b) on a stretched grid with converted velocities must
    // produce the same *physical* paths — the core §2.1 coordinate
    // transformation, validated across crates.
    let u_phys = Vec3::new(1.0, 0.3, 0.0);
    let n = 17;

    // (a) unit grid.
    let dims = Dims::new(n, n, n);
    let unit_field = VectorField::from_fn(dims, |_, _, _| u_phys);
    let unit_grid =
        CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::splat((n - 1) as f32)))
            .unwrap();

    // (b) stretched grid: x spans twice the distance.
    let stretched_grid = CurvilinearGrid::cartesian(
        dims,
        Aabb::new(
            Vec3::ZERO,
            Vec3::new(2.0 * (n - 1) as f32, (n - 1) as f32, (n - 1) as f32),
        ),
    )
    .unwrap();
    let phys_field = VectorField::from_fn(dims, |_, _, _| u_phys);
    let stretched_field = stretched_grid
        .convert_field_to_grid_coords(&phys_field)
        .unwrap();
    // Sanity: grid velocity halves in x.
    let gv = stretched_field.sample(Vec3::splat(3.0)).unwrap();
    assert!((gv.x - 0.5).abs() < 1e-3);

    let domain = Domain::boxed(dims);
    let cfg = TraceConfig {
        dt: 0.5,
        max_points: 10,
        ..Default::default()
    };
    let unit_path = streamline(&unit_field, &domain, Vec3::splat(2.0), &cfg);
    let stretched_path = streamline(&stretched_field, &domain, Vec3::new(1.0, 2.0, 2.0), &cfg);

    let phys_a = unit_grid.path_to_physical(&unit_path);
    let phys_b = stretched_grid.path_to_physical(&stretched_path);
    assert_eq!(phys_a.len(), phys_b.len());
    for (a, b) in phys_a.iter().zip(&phys_b) {
        assert!(a.distance(*b) < 1e-3, "{a:?} vs {b:?}");
    }
}
