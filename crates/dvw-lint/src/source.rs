//! Per-file source model: tokens, test-region classification, and the
//! `lint:allow` escape hatch.
//!
//! Test code is exempt from most passes (a test that `unwrap()`s is fine —
//! a server path that does is a dropped frame for every client), so each
//! file is classified once: lines inside `#[cfg(test)]` modules, `#[test]`
//! / `#[bench]` functions, or files under `tests/` / `benches/` /
//! `examples/` count as test lines.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::{HashMap, HashSet};

/// A `// lint:allow(<pass>): <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    pub pass: String,
    pub reason: String,
    pub line: u32,
}

/// One lexed and classified source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Code tokens (comments stripped).
    pub code: Vec<Tok>,
    /// Comment tokens in source order.
    pub comments: Vec<Tok>,
    /// 1-based lines that belong to test-only regions.
    pub test_lines: HashSet<u32>,
    /// Escape hatches keyed by the first *covered* line: an allow covers
    /// its own line and the line below it, so it can sit inline or on the
    /// line above the offending expression.
    pub allows: HashMap<u32, Vec<Allow>>,
}

impl SourceFile {
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let toks = lex(text);
        let mut code = Vec::new();
        let mut comments = Vec::new();
        for t in toks {
            if t.kind == TokKind::Comment {
                comments.push(t);
            } else {
                code.push(t);
            }
        }
        let whole_file_test = rel.contains("/tests/")
            || rel.starts_with("tests/")
            || rel.contains("/benches/")
            || rel.contains("/examples/");
        let test_lines = if whole_file_test {
            (1..=last_line(&code)).collect()
        } else {
            find_test_regions(&code)
        };
        let mut allows: HashMap<u32, Vec<Allow>> = HashMap::new();
        for c in &comments {
            if let Some(a) = parse_allow(&c.text, c.line) {
                allows.entry(a.line).or_default().push(a);
            }
        }
        SourceFile {
            rel: rel.to_string(),
            code,
            comments,
            test_lines,
            allows,
        }
    }

    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// Look up an escape hatch for `pass` covering `line` (same line or
    /// the line above). Returns the allow so the caller can verify the
    /// reason is non-empty.
    pub fn allow_for(&self, pass: &str, line: u32) -> Option<&Allow> {
        for covered in [line, line.saturating_sub(1)] {
            if let Some(list) = self.allows.get(&covered) {
                if let Some(a) = list.iter().find(|a| a.pass == pass) {
                    return Some(a);
                }
            }
        }
        None
    }

    /// True when a comment containing `needle` appears within `window`
    /// lines above `line` (or on `line` itself). Used for `SAFETY:`.
    pub fn comment_near_above(&self, needle: &str, line: u32, window: u32) -> bool {
        let lo = line.saturating_sub(window);
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line <= line && c.text.contains(needle))
    }

    /// True when any comment in the file contains `needle`.
    pub fn any_comment_contains(&self, needle: &str) -> bool {
        self.comments.iter().any(|c| c.text.contains(needle))
    }
}

fn last_line(code: &[Tok]) -> u32 {
    code.last().map(|t| t.line).unwrap_or(1)
}

/// Parse `lint:allow(<pass>): <reason>` out of a comment body. The reason
/// may be empty here — the pass reports that as its own finding, so the
/// hatch can't be used silently.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let idx = comment.find("lint:allow(")?;
    let rest = &comment[idx + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let pass = rest[..close].trim().to_string();
    let after = &rest[close + 1..];
    let reason = after
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some(Allow { pass, reason, line })
}

/// Collect the 1-based line ranges of test-only items: a `#[cfg(test)]` /
/// `#[test]` / `#[bench]` attribute followed by an item with a braced
/// body. Brace matching over the token stream keeps this robust to
/// whatever is inside.
fn find_test_regions(code: &[Tok]) -> HashSet<u32> {
    let mut out = HashSet::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start_line = code[i].line;
        // Span the attribute's brackets.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut idents: Vec<&str> = Vec::new();
        while j < code.len() {
            let t = &code[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident {
                idents.push(&t.text);
            }
            j += 1;
        }
        let is_test_attr = match idents.first().copied() {
            // `cfg(not(test))` gates *live* code — don't classify it.
            Some("cfg") => idents.contains(&"test") && !idents.contains(&"not"),
            Some("test") | Some("bench") => idents.len() == 1,
            _ => false,
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Find the item body: first `{` before a same-level `;`.
        let mut k = j + 1;
        let mut body_open = None;
        let mut angle = 0i32;
        while k < code.len() {
            let t = &code[k];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if t.is_punct(';') && angle == 0 {
                break; // `mod name;` — out-of-line module, nothing to span.
            } else if t.is_punct('{') {
                body_open = Some(k);
                break;
            }
            k += 1;
        }
        if let Some(open) = body_open {
            let mut braces = 0i32;
            let mut m = open;
            let mut end_line = code[open].line;
            while m < code.len() {
                if code[m].is_punct('{') {
                    braces += 1;
                } else if code[m].is_punct('}') {
                    braces -= 1;
                    if braces == 0 {
                        end_line = code[m].line;
                        break;
                    }
                }
                end_line = code[m].line;
                m += 1;
            }
            for line in attr_start_line..=end_line {
                out.insert(line);
            }
            i = m + 1;
        } else {
            i = k + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub fn live() {
    work();
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        x.unwrap();
    }
}
"#;

    #[test]
    fn cfg_test_module_lines_are_test() {
        let f = SourceFile::parse("crates/x/src/lib.rs", SRC);
        assert!(!f.is_test_line(3)); // work();
        assert!(f.is_test_line(10)); // x.unwrap();
        assert!(f.is_test_line(6)); // the attribute itself
    }

    #[test]
    fn test_attr_fn_outside_module() {
        let src = "fn a() {}\n#[test]\nfn t() {\n  boom();\n}\nfn b() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(1));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn tests_dir_is_all_test() {
        let f = SourceFile::parse("tests/e2e.rs", "fn x() { a.unwrap(); }");
        assert!(f.is_test_line(1));
    }

    #[test]
    fn allow_parsing_and_coverage() {
        let src = "// lint:allow(panic-path): bounded by caller\nfoo.unwrap();\nbar.unwrap(); // lint:allow(panic-path): checked above\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.allow_for("panic-path", 2).is_some());
        assert!(f.allow_for("panic-path", 3).is_some());
        assert!(f.allow_for("lock-order", 2).is_none());
    }

    #[test]
    fn allow_without_reason_is_flagged_by_caller() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "foo.unwrap(); // lint:allow(panic-path)\n",
        );
        let a = f.allow_for("panic-path", 1).unwrap();
        assert!(a.reason.is_empty());
    }

    #[test]
    fn cfg_not_test_is_live() {
        let src = "#[cfg(feature = \"extra\")]\nfn f() { x.unwrap(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(2));
    }
}
