//! A small hand-rolled Rust lexer.
//!
//! Just enough fidelity for line-level static analysis: identifiers,
//! numeric/string/char literals, lifetimes, single-character punctuation,
//! and comments (kept as tokens so the escape-hatch and `SAFETY:` passes
//! can see them). It is *not* a parser — passes pattern-match over the
//! token stream — but it is exact about what is code versus what is a
//! string or a comment, which is the part naive `grep`-style linting gets
//! wrong.

/// Token class. `Punct` carries exactly one character; multi-character
/// operators appear as adjacent `Punct` tokens on the same line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Number,
    Str,
    Char,
    Lifetime,
    Punct,
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token vector. Unterminated literals and comments are
/// tolerated (the remainder of the file becomes one token): the linter
/// must never panic on weird input, it only has to stay line-accurate.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => {
                        let mut text = String::from("/");
                        while let Some(n) = cur.peek() {
                            if n == '\n' {
                                break;
                            }
                            text.push(n);
                            cur.bump();
                        }
                        toks.push(Tok {
                            kind: TokKind::Comment,
                            text,
                            line,
                        });
                    }
                    Some('*') => {
                        cur.bump();
                        let mut text = String::from("/*");
                        let mut depth = 1u32;
                        while depth > 0 {
                            match cur.bump() {
                                None => break,
                                Some('*') if cur.peek() == Some('/') => {
                                    cur.bump();
                                    text.push_str("*/");
                                    depth -= 1;
                                }
                                Some('/') if cur.peek() == Some('*') => {
                                    cur.bump();
                                    text.push_str("/*");
                                    depth += 1;
                                }
                                Some(n) => text.push(n),
                            }
                        }
                        toks.push(Tok {
                            kind: TokKind::Comment,
                            text,
                            line,
                        });
                    }
                    _ => toks.push(Tok {
                        kind: TokKind::Punct,
                        text: "/".into(),
                        line,
                    }),
                }
            }
            '"' => {
                toks.push(lex_string(&mut cur, line));
            }
            'r' | 'b' => {
                // Possible raw/byte string prefixes: r", r#", b", br", b'.
                let mut prefix = String::new();
                prefix.push(c);
                cur.bump();
                if c == 'b' && cur.peek() == Some('r') {
                    prefix.push('r');
                    cur.bump();
                }
                match cur.peek() {
                    Some('"') => {
                        if prefix.ends_with('r') {
                            toks.push(lex_raw_string(&mut cur, line, 0));
                        } else {
                            toks.push(lex_string(&mut cur, line));
                        }
                    }
                    Some('#') if prefix.ends_with('r') => {
                        let mut hashes = 0usize;
                        while cur.peek() == Some('#') {
                            hashes += 1;
                            cur.bump();
                        }
                        if cur.peek() == Some('"') {
                            toks.push(lex_raw_string(&mut cur, line, hashes));
                        } else {
                            // `r#ident` raw identifier (hashes == 1).
                            let mut text = String::new();
                            while let Some(n) = cur.peek() {
                                if !is_ident_continue(n) {
                                    break;
                                }
                                text.push(n);
                                cur.bump();
                            }
                            toks.push(Tok {
                                kind: TokKind::Ident,
                                text,
                                line,
                            });
                        }
                    }
                    Some('\'') if prefix == "b" => {
                        cur.bump();
                        toks.push(lex_char_body(&mut cur, line));
                    }
                    _ => {
                        // Plain identifier starting with r/b.
                        let mut text = prefix;
                        while let Some(n) = cur.peek() {
                            if !is_ident_continue(n) {
                                break;
                            }
                            text.push(n);
                            cur.bump();
                        }
                        toks.push(Tok {
                            kind: TokKind::Ident,
                            text,
                            line,
                        });
                    }
                }
            }
            '\'' => {
                cur.bump();
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
                match cur.peek() {
                    Some(n) if is_ident_start(n) => {
                        let mut text = String::new();
                        text.push(n);
                        cur.bump();
                        while let Some(m) = cur.peek() {
                            if !is_ident_continue(m) {
                                break;
                            }
                            text.push(m);
                            cur.bump();
                        }
                        if cur.peek() == Some('\'') {
                            // Single-ident char like 'a'.
                            cur.bump();
                            toks.push(Tok {
                                kind: TokKind::Char,
                                text,
                                line,
                            });
                        } else {
                            toks.push(Tok {
                                kind: TokKind::Lifetime,
                                text,
                                line,
                            });
                        }
                    }
                    _ => toks.push(lex_char_body(&mut cur, line)),
                }
            }
            _ if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(n) = cur.peek() {
                    if !is_ident_continue(n) {
                        break;
                    }
                    text.push(n);
                    cur.bump();
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(n) = cur.peek() {
                    // Good enough for ints, hex with underscores, and
                    // simple floats; `1..2` is left as Number("1") + puncts
                    // because `.` is only consumed when followed by a digit.
                    if is_ident_continue(n) {
                        text.push(n);
                        cur.bump();
                    } else if n == '.' {
                        let mut probe = cur.chars.clone();
                        probe.next();
                        match probe.peek() {
                            Some(d) if d.is_ascii_digit() => {
                                text.push('.');
                                cur.bump();
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    text,
                    line,
                });
            }
            _ => {
                cur.bump();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
            }
        }
    }
    toks
}

fn lex_string(cur: &mut Cursor, line: u32) -> Tok {
    // Opening quote is the current char.
    cur.bump();
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            _ => text.push(c),
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
    }
}

fn lex_raw_string(cur: &mut Cursor, line: u32, hashes: usize) -> Tok {
    // Current char is the opening quote.
    cur.bump();
    let mut text = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            let mut probe = cur.chars.clone();
            for _ in 0..hashes {
                if probe.peek() != Some(&'#') {
                    text.push('"');
                    continue 'outer;
                }
                probe.next();
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        text.push(c);
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
    }
}

fn lex_char_body(cur: &mut Cursor, line: u32) -> Tok {
    // Called just past the opening `'` for non-ident char literals.
    let mut text = String::new();
    match cur.bump() {
        Some('\\') => {
            text.push('\\');
            if let Some(e) = cur.bump() {
                text.push(e);
            }
        }
        Some(c) => text.push(c),
        None => {}
    }
    if cur.peek() == Some('\'') {
        cur.bump();
    }
    Tok {
        kind: TokKind::Char,
        text,
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("self.queue.lock()");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "self".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "queue".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "lock".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let t = kinds(r#"let s = "x.unwrap() // not code";"#);
        assert!(t.iter().all(|(k, x)| *k != TokKind::Ident || x != "unwrap"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn comments_are_tokens_with_lines() {
        let toks = lex("a\n// lint:allow(panic-path): reason\nb");
        let c = toks.iter().find(|t| t.kind == TokKind::Comment).unwrap();
        assert_eq!(c.line, 2);
        assert!(c.text.contains("lint:allow"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let t = kinds(r##"r#"panic!("x")"# "esc\"aped" 'q' '\n' 'life"##);
        assert_eq!(t[0].0, TokKind::Str);
        assert_eq!(t[1].0, TokKind::Str);
        assert_eq!(t[2].0, TokKind::Char);
        assert_eq!(t[3].0, TokKind::Char);
        assert_eq!(t[4].0, TokKind::Lifetime);
    }

    #[test]
    fn hex_numbers_keep_underscores() {
        let t = kinds("0xFFFF_0001");
        assert_eq!(t, vec![(TokKind::Number, "0xFFFF_0001".into())]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn raw_strings_with_many_hashes() {
        // The delimiter is quote-plus-exactly-N-hashes; a shorter run
        // inside the literal must not terminate it.
        let t = kinds(r###"r##"has "# inside"## tail"###);
        assert_eq!(t[0], (TokKind::Str, "has \"# inside".into()));
        assert_eq!(t[1], (TokKind::Ident, "tail".into()));
    }

    #[test]
    fn byte_strings_are_strings_not_idents() {
        let t = kinds(r#"b"x.lock()" b'q' tail"#);
        assert_eq!(t[0], (TokKind::Str, "x.lock()".into()));
        assert_eq!(t[1], (TokKind::Char, "q".into()));
        assert_eq!(t[2], (TokKind::Ident, "tail".into()));
    }

    #[test]
    fn raw_byte_strings_swallow_their_body() {
        let t = kinds(r##"br#"self.rx.recv()"# tail"##);
        assert_eq!(t[0], (TokKind::Str, "self.rx.recv()".into()));
        assert_eq!(t[1], (TokKind::Ident, "tail".into()));
    }

    #[test]
    fn deeply_nested_block_comments_balance() {
        let toks = lex("/* 1 /* 2 /* 3 */ 2 */ /* 2b */ 1 */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn string_bodies_never_leak_code_tokens() {
        // grep-style linting would see a lock and a send in here; the
        // lexer must see exactly three string tokens and a semicolon.
        let src = r###"r#"g.lock()"# b".send(x)" "rx.recv()";"###;
        let t = kinds(src);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
        assert!(t
            .iter()
            .all(|(k, _)| *k == TokKind::Str || *k == TokKind::Punct));
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers_accurate() {
        let toks = lex("r#\"a\nb\nc\"#\nafter");
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text, "after");
        assert_eq!(toks[1].line, 4);
    }

    #[test]
    fn raw_identifiers_stay_identifiers() {
        let t = kinds("r#type loop");
        assert_eq!(t[0], (TokKind::Ident, "type".into()));
        assert_eq!(t[1], (TokKind::Ident, "loop".into()));
    }

    #[test]
    fn float_vs_range() {
        let t = kinds("1.5 1..2");
        assert_eq!(t[0], (TokKind::Number, "1.5".into()));
        assert_eq!(t[1], (TokKind::Number, "1".into()));
        assert_eq!(t[2], (TokKind::Punct, ".".into()));
        assert_eq!(t[3], (TokKind::Punct, ".".into()));
        assert_eq!(t[4], (TokKind::Number, "2".into()));
    }
}
