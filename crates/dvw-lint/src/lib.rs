#![deny(unsafe_op_in_unsafe_fn, unused_must_use)]
//! `dvw-lint` — the workspace invariant checker.
//!
//! The windtunnel's 1/8 s command→compute→transfer→render budget (§2 of
//! the paper) makes several properties *system-wide* correctness
//! conditions rather than local style choices: a panic on a server path
//! drops frames for every connected client, a reused RPC proc id breaks
//! the wire protocol for every peer, a lock-order inversion between the
//! dispatcher and session state deadlocks the whole simulation, a thread
//! that blocks while holding a guard stalls every other thread touching
//! that lock, and a stats counter dropped from a fold reports zero
//! forever. This crate turns those review-time rules into a
//! machine-checked gate: six passes over the workspace source, driven by
//! `lint.toml`, run by `scripts/check.sh` before clippy.
//!
//! See `DESIGN.md` §7 for the pass-by-pass specification and the
//! escape-hatch policy (`// lint:allow(<pass>): <reason>`).

pub mod callgraph;
pub mod config;
pub mod json;
pub mod lexer;
pub mod source;

mod passes {
    pub mod blocking;
    pub mod hygiene;
    pub mod locks;
    pub mod panic_path;
    pub mod stats;
    pub mod wire;
}

use config::Config;
use source::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// The six analysis passes. The name doubles as the `lint:allow` key
/// and the `[pass]` tag in output lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    PanicPath,
    WireProtocol,
    LockOrder,
    Hygiene,
    Blocking,
    Stats,
}

impl Pass {
    pub fn name(self) -> &'static str {
        match self {
            Pass::PanicPath => "panic-path",
            Pass::WireProtocol => "wire-protocol",
            Pass::LockOrder => "lock-order",
            Pass::Hygiene => "hygiene",
            Pass::Blocking => "blocking",
            Pass::Stats => "stats",
        }
    }
}

/// One diagnostic, formatted as `file:line: [pass] message` — stable,
/// diff-friendly, and editor-clickable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub pass: Pass,
    pub msg: String,
}

impl Finding {
    pub fn new(file: &str, line: u32, pass: Pass, msg: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            pass,
            msg,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.pass.name(),
            self.msg
        )
    }
}

/// A finding suppressed by a reasoned `lint:allow` — recorded rather
/// than discarded so `--format json` can archive every escape hatch
/// with its written justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowedFinding {
    pub finding: Finding,
    pub reason: String,
}

/// What the passes produce: findings that gate the build, plus the
/// suppressed ones with their reasons.
#[derive(Debug, Default)]
pub struct Outcome {
    pub findings: Vec<Finding>,
    pub allowed: Vec<AllowedFinding>,
}

/// Collector the passes write into. `push` is for findings no escape
/// hatch can cover (missing files, malformed config entries);
/// everything site-anchored goes through [`push_unless_allowed`].
#[derive(Debug, Default)]
pub struct Sink {
    findings: Vec<Finding>,
    allowed: Vec<AllowedFinding>,
}

impl Sink {
    pub fn push(&mut self, f: Finding) {
        self.findings.push(f);
    }
}

/// Push `msg` unless an escape hatch covers it. Using the hatch without
/// a reason is itself a finding: the whole point is a written record of
/// why the invariant doesn't apply. A reasoned allow is recorded in the
/// outcome's `allowed` list.
pub(crate) fn push_unless_allowed(
    file: &SourceFile,
    sink: &mut Sink,
    pass: Pass,
    line: u32,
    msg: String,
) {
    match file.allow_for(pass.name(), line) {
        Some(a) if !a.reason.is_empty() => sink.allowed.push(AllowedFinding {
            finding: Finding::new(&file.rel, line, pass, msg),
            reason: a.reason.clone(),
        }),
        Some(a) => sink.findings.push(Finding::new(
            &file.rel,
            a.line,
            pass,
            format!(
                "`lint:allow({})` requires a reason: `// lint:allow({}): <why>`",
                pass.name(),
                pass.name()
            ),
        )),
        None => sink.findings.push(Finding::new(&file.rel, line, pass, msg)),
    }
}

/// Run all passes on the workspace rooted at `root` (the directory
/// holding `lint.toml`). Findings come back sorted by file, line, pass.
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    run_outcome(root).map(|o| o.findings)
}

/// Like [`run`] but with an explicit configuration (fixture tests use
/// this to point at mini-trees).
pub fn run_with_config(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    run_outcome_with_config(root, cfg).map(|o| o.findings)
}

/// Run all passes and return both active and suppressed findings — the
/// full record `--format json` renders.
pub fn run_outcome(root: &Path) -> Result<Outcome, String> {
    let cfg_path = root.join("lint.toml");
    let text =
        std::fs::read_to_string(&cfg_path).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&text)?;
    run_outcome_with_config(root, &cfg)
}

/// [`run_outcome`] with an explicit configuration.
pub fn run_outcome_with_config(root: &Path, cfg: &Config) -> Result<Outcome, String> {
    let files = load_workspace(root)?;
    let mut sink = Sink::default();

    for f in &files {
        if in_panic_scope(f, cfg) {
            passes::panic_path::check(f, &mut sink);
        }
    }
    passes::wire::check(&files, cfg, &mut sink);
    passes::locks::check(&files, cfg, &mut sink);
    passes::hygiene::check(&files, cfg, &mut sink);
    passes::blocking::check(&files, cfg, &mut sink);
    passes::stats::check(&files, cfg, &mut sink);

    let sort_key = |f: &Finding| (f.file.clone(), f.line, f.pass, f.msg.clone());
    let mut findings = sink.findings;
    findings.sort_by_key(sort_key);
    findings.dedup();
    let mut allowed = sink.allowed;
    allowed.sort_by_key(|a| (sort_key(&a.finding), a.reason.clone()));
    allowed.dedup();
    Ok(Outcome { findings, allowed })
}

fn in_panic_scope(f: &SourceFile, cfg: &Config) -> bool {
    if cfg.panic_exclude.iter().any(|p| p == &f.rel) {
        return false;
    }
    cfg.panic_crates
        .iter()
        .any(|c| f.rel.starts_with(&format!("crates/{c}/src/")))
}

/// Load every `.rs` file under `src/` and `crates/*/src/`, skipping
/// `target/`, `shims/` (offline stand-ins for crates-io, not our code),
/// and this crate's own `fixtures/`. Files are lexed and classified on
/// scoped threads — the crate stays zero-dependency — and returned in
/// deterministic path order regardless of which worker parsed what.
fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let top_src = root.join("src");
    if top_src.is_dir() {
        collect_rs(&top_src, &mut paths)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries =
            std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut paths)?;
            }
        }
    }
    paths.sort();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8);
    let chunk = paths.len().div_ceil(workers).max(1);
    let parsed: Vec<Vec<Result<SourceFile, String>>> = std::thread::scope(|s| {
        let handles: Vec<_> = paths
            .chunks(chunk)
            .map(|chunk_paths| {
                s.spawn(move || {
                    chunk_paths
                        .iter()
                        .map(|p| load_one(root, p))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(_) => vec![Err("source parser worker panicked".to_string())],
            })
            .collect()
    });
    let mut files = Vec::with_capacity(paths.len());
    for r in parsed.into_iter().flatten() {
        files.push(r?);
    }
    Ok(files)
}

fn load_one(root: &Path, p: &Path) -> Result<SourceFile, String> {
    let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
    let rel = p
        .strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(SourceFile::parse(&rel, &text))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
