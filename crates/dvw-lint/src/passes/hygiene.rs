//! Pass 4 — hygiene.
//!
//! * every configured crate root carries the workspace `#![deny(...)]`
//!   table (at least the lints `lint.toml` lists);
//! * no `dbg!` / `eprintln!` / `println!` in non-test code of declared
//!   server hot-path files — stderr writes block the dispatcher and
//!   debug prints in the frame loop are latency spikes;
//! * every `unsafe` block is preceded (within five lines) by a
//!   `// SAFETY:` comment stating the invariant it relies on.

use crate::config::Config;
use crate::source::SourceFile;
use crate::{Finding, Pass, Sink};
use std::collections::HashSet;

pub fn check(files: &[SourceFile], cfg: &Config, sink: &mut Sink) {
    let by_rel: std::collections::HashMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel.as_str(), f)).collect();

    for root in &cfg.crate_roots {
        match by_rel.get(root.as_str()) {
            Some(f) => check_deny_table(f, cfg, sink),
            None => sink.push(Finding::new(
                root,
                1,
                Pass::Hygiene,
                "declared crate root missing from the tree".into(),
            )),
        }
    }

    for f in files {
        let hot = cfg.hot_paths.iter().any(|p| p == &f.rel);
        check_prints_and_unsafe(f, hot, sink);
    }
}

/// Collect idents inside every inner `#![deny(...)]` attribute and demand
/// the configured set is covered.
fn check_deny_table(f: &SourceFile, cfg: &Config, sink: &mut Sink) {
    let code = &f.code;
    let mut denied: HashSet<&str> = HashSet::new();
    for (i, t) in code.iter().enumerate() {
        if !(t.is_punct('#')
            && code.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false)
            && code.get(i + 2).map(|n| n.is_punct('[')).unwrap_or(false)
            && code.get(i + 3).map(|n| n.is_ident("deny")).unwrap_or(false))
        {
            continue;
        }
        let mut j = i + 4;
        let mut depth = 0i32;
        while let Some(n) = code.get(j) {
            if n.is_punct('(') || n.is_punct('[') {
                depth += 1;
            } else if n.is_punct(')') {
                depth -= 1;
            } else if n.is_punct(']') {
                if depth <= 0 {
                    break;
                }
                depth -= 1;
            } else if n.kind == crate::lexer::TokKind::Ident {
                denied.insert(&n.text);
            }
            j += 1;
        }
    }
    for lint in &cfg.deny {
        if !denied.contains(lint.as_str()) {
            sink.push(Finding::new(
                &f.rel,
                1,
                Pass::Hygiene,
                format!("crate root is missing `#![deny({lint})]` from the workspace table"),
            ));
        }
    }
}

fn check_prints_and_unsafe(f: &SourceFile, hot: bool, sink: &mut Sink) {
    let code = &f.code;
    for (i, t) in code.iter().enumerate() {
        if f.is_test_line(t.line) || t.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        let bang = code.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false);
        match t.text.as_str() {
            "dbg" | "eprintln" | "println" | "eprint" | "print" if hot && bang => {
                crate::push_unless_allowed(
                    f,
                    sink,
                    Pass::Hygiene,
                    t.line,
                    format!(
                        "`{}!` on a server hot path; route through stats or delete it",
                        t.text
                    ),
                );
            }
            "unsafe" => {
                // Only blocks need SAFETY comments here; `unsafe fn` /
                // `impl` / `trait` get their own docs.
                let is_block = code.get(i + 1).map(|n| n.is_punct('{')).unwrap_or(false);
                if is_block && !f.comment_near_above("SAFETY:", t.line, 5) {
                    crate::push_unless_allowed(
                        f,
                        sink,
                        Pass::Hygiene,
                        t.line,
                        "`unsafe` block without a `// SAFETY:` comment in the 5 lines above".into(),
                    );
                }
            }
            _ => {}
        }
    }
}
