//! Pass 3 — lock-order analysis.
//!
//! `lint.toml` declares global acquisition chains (e.g. dlib server
//! `sessions` → `queue`, windtunnel `env` → `scene`). This pass extracts
//! every acquisition site — zero-argument `.lock()` / `.read()` /
//! `.write()` whose receiver's final field name is one of the declared
//! lock names (the zero-argument requirement keeps `io::Read::read(buf)`
//! out) — and simulates guard lifetimes per function:
//!
//! * `let g = x.lock();` holds until `drop(g)` or the end of `g`'s block;
//! * a temporary `x.lock().f();` holds to the end of the statement;
//! * acquiring `b` while holding `a` records the edge `a → b`.
//!
//! Edges are then inlined one level through same-crate calls (`f` holds
//! `sessions` and calls `g`; `g` takes `queue` ⇒ edge `sessions → queue`)
//! and every edge is checked against the declared chains; any cycle in
//! the whole observed graph is rejected even if no single edge inverts a
//! chain.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Finding, Pass, Sink};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: String,
}

#[derive(Debug, Default)]
struct FnInfo {
    /// Lock names this function acquires anywhere in its body.
    acquires: BTreeSet<String>,
    /// (held-locks-at-call-site, callee, line) for one-level inlining.
    calls: Vec<(Vec<String>, String, u32, String)>,
    edges: Vec<Edge>,
}

pub fn check(files: &[SourceFile], cfg: &Config, sink: &mut Sink) {
    let universe: HashSet<&str> = cfg
        .lock_order
        .iter()
        .flatten()
        .map(|s| s.as_str())
        .collect();
    if universe.is_empty() {
        return;
    }

    // crate name -> fn name -> info. Functions are keyed by bare name;
    // same-crate name collisions just make the inlining conservative.
    let mut crates: BTreeMap<String, HashMap<String, FnInfo>> = BTreeMap::new();
    for f in files {
        let krate = crate_of(&f.rel);
        let fns = analyze_file(f, &universe);
        let map = crates.entry(krate).or_default();
        for (name, info) in fns {
            let slot = map.entry(name).or_default();
            slot.acquires.extend(info.acquires);
            slot.calls.extend(info.calls);
            slot.edges.extend(info.edges);
        }
    }

    // One level of intra-crate call inlining.
    let mut edges: Vec<Edge> = Vec::new();
    for fns in crates.values() {
        for info in fns.values() {
            edges.extend(info.edges.iter().cloned());
            for (held, callee, line, file) in &info.calls {
                if let Some(target) = fns.get(callee) {
                    for h in held {
                        for a in &target.acquires {
                            if a != h {
                                edges.push(Edge {
                                    from: h.clone(),
                                    to: a.clone(),
                                    file: file.clone(),
                                    line: *line,
                                    via: format!("via call to `{callee}`"),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Check each edge against the declared chains.
    let position: HashMap<&str, (usize, usize)> = cfg
        .lock_order
        .iter()
        .enumerate()
        .flat_map(|(ci, chain)| {
            chain
                .iter()
                .enumerate()
                .map(move |(li, name)| (name.as_str(), (ci, li)))
        })
        .collect();
    let mut reported: HashSet<(String, u32, String, String)> = HashSet::new();
    for e in &edges {
        let (Some(&(ca, ia)), Some(&(cb, ib))) =
            (position.get(e.from.as_str()), position.get(e.to.as_str()))
        else {
            continue;
        };
        if ca == cb && ia > ib {
            let key = (e.file.clone(), e.line, e.from.clone(), e.to.clone());
            if reported.insert(key) {
                let chain = cfg.lock_order[ca].join(" -> ");
                sink.push(Finding::new(
                    &e.file,
                    e.line,
                    Pass::LockOrder,
                    format!(
                        "acquires `{}` while holding `{}` {} — declared order is {}",
                        e.to, e.from, e.via, chain
                    ),
                ));
            }
        }
    }

    // Cycle detection over the whole observed graph (catches inversions
    // assembled across chains or across functions).
    if let Some(cycle) = find_cycle(&edges) {
        let e = &cycle[0];
        let path: Vec<&str> = cycle
            .iter()
            .map(|e| e.from.as_str())
            .chain(std::iter::once(cycle[0].from.as_str()))
            .collect();
        sink.push(Finding::new(
            &e.file,
            e.line,
            Pass::LockOrder,
            format!(
                "lock acquisition cycle {} — some thread interleaving deadlocks",
                path.join(" -> ")
            ),
        ));
    }
}

fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("workspace-root")
        .to_string()
}

/// Extract per-function lock behaviour from one file.
fn analyze_file(file: &SourceFile, universe: &HashSet<&str>) -> HashMap<String, FnInfo> {
    let mut out: HashMap<String, FnInfo> = HashMap::new();
    let code = &file.code;
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("fn") || file.is_test_line(code[i].line) {
            i += 1;
            continue;
        }
        let Some(name) = code.get(i + 1) else {
            break;
        };
        if name.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Find the body's opening brace (skipping a `;` means a trait
        // method signature without a body).
        let mut j = i + 2;
        let mut open = None;
        let mut angle = 0i32;
        while let Some(t) = code.get(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if t.is_punct(';') && angle == 0 {
                break;
            } else if t.is_punct('{') {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let (info, end) = analyze_body(file, open, universe);
        let slot = out.entry(name.text.clone()).or_default();
        slot.acquires.extend(info.acquires);
        slot.calls.extend(info.calls);
        slot.edges.extend(info.edges);
        i = end;
    }
    out
}

/// A lock the simulated function currently holds.
#[derive(Debug)]
struct Held {
    name: String,
    /// `let` binding, if any; temporaries die at `;`.
    guard: Option<String>,
    /// Brace depth the guard was bound at; popped when the block closes.
    depth: i32,
}

fn analyze_body(file: &SourceFile, open: usize, universe: &HashSet<&str>) -> (FnInfo, usize) {
    let code = &file.code;
    let mut info = FnInfo::default();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    // Pending `let` binding name awaiting an acquisition in this statement.
    let mut pending_let: Option<String> = None;
    let mut j = open;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            held.retain(|h| h.depth <= depth);
            if depth == 0 {
                j += 1;
                break;
            }
        } else if t.is_punct(';') {
            held.retain(|h| h.guard.is_some());
            pending_let = None;
        } else if t.is_ident("let") {
            if let Some(n) = code.get(j + 1) {
                let n = if n.is_ident("mut") {
                    code.get(j + 2)
                } else {
                    Some(n)
                };
                if let Some(n) = n {
                    if n.kind == TokKind::Ident {
                        pending_let = Some(n.text.clone());
                    }
                }
            }
        } else if t.is_ident("drop") && code.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
            if let Some(v) = code.get(j + 2) {
                held.retain(|h| h.guard.as_deref() != Some(v.text.as_str()));
            }
        } else if t.kind == TokKind::Ident
            && ACQUIRE_METHODS.contains(&t.text.as_str())
            && j > 0
            && code[j - 1].is_punct('.')
            && code.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && code.get(j + 2).map(|n| n.is_punct(')')).unwrap_or(false)
        {
            // Receiver's final field name is the ident before the dot.
            if j >= 2 && code[j - 2].kind == TokKind::Ident {
                let field = &code[j - 2].text;
                if universe.contains(field.as_str()) && !file.is_test_line(t.line) {
                    for h in &held {
                        if h.name != *field {
                            info.edges.push(Edge {
                                from: h.name.clone(),
                                to: field.clone(),
                                file: file.rel.clone(),
                                line: t.line,
                                via: String::new(),
                            });
                        }
                    }
                    info.acquires.insert(field.clone());
                    held.push(Held {
                        name: field.clone(),
                        guard: pending_let.take(),
                        depth,
                    });
                }
            }
        } else if t.kind == TokKind::Ident
            && code.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && !held.is_empty()
            && !file.is_test_line(t.line)
        {
            // A call made while locks are held; resolved during inlining.
            let names: Vec<String> = held.iter().map(|h| h.name.clone()).collect();
            info.calls
                .push((names, t.text.clone(), t.line, file.rel.clone()));
        }
        j += 1;
    }
    (info, j)
}

/// DFS cycle search returning the edges of one cycle, if any.
fn find_cycle(edges: &[Edge]) -> Option<Vec<&Edge>> {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut visited: HashSet<&str> = HashSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        if visited.contains(start) {
            continue;
        }
        let mut stack: Vec<&Edge> = Vec::new();
        let mut on_path: Vec<&str> = vec![start];
        if dfs(start, &adj, &mut visited, &mut on_path, &mut stack) {
            // Trim any acyclic lead-in so the report shows just the loop.
            let back_to = stack.last().map(|e| e.to.clone()).unwrap_or_default();
            if let Some(pos) = stack.iter().position(|e| e.from == back_to) {
                stack.drain(..pos);
            }
            return Some(stack);
        }
    }
    None
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    visited: &mut HashSet<&'a str>,
    on_path: &mut Vec<&'a str>,
    stack: &mut Vec<&'a Edge>,
) -> bool {
    visited.insert(node);
    for e in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
        if on_path.contains(&e.to.as_str()) {
            stack.push(e);
            return true;
        }
        on_path.push(e.to.as_str());
        stack.push(e);
        if dfs(e.to.as_str(), adj, visited, on_path, stack) {
            return true;
        }
        stack.pop();
        on_path.pop();
    }
    false
}
