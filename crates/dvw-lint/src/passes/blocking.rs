//! Pass 5 — interprocedural blocking-while-locked analysis.
//!
//! The paper's serial multi-user execution model means one stalled
//! server thread delays every connected client, so blocking while a
//! `MutexGuard`/`RwLockGuard` is live turns a local wait into a global
//! one (any thread touching that lock stalls too). This pass:
//!
//! * simulates guard lifetimes per function exactly like the lock pass
//!   (`let g = x.lock();` holds until `drop(g)` or block end;
//!   temporaries die at `;`) — but for *every* observed guard, not just
//!   the declared `[locks]` chains;
//! * classifies blocking primitives (bounded channel `send`/`recv`,
//!   thread `join`, condvar waits, socket/file reads, `sleep` backoff)
//!   and consults the fixed-point call graph
//!   ([`crate::callgraph::CallGraph`]) so a call that *transitively*
//!   reaches a primitive — across crates — is flagged too;
//! * flags any blocking site inside a rayon `par_iter`-family closure
//!   regardless of guards: on the paper's host a stalled pool worker is
//!   a stalled pool;
//! * resets held guards inside `spawn(..)` closures (the spawned thread
//!   does not inherit the spawner's guards) while still tracking guards
//!   the closure acquires itself — this is what catches a prefetch
//!   worker body that blocks under its own state lock.
//!
//! `// lint:allow(blocking): <reason>` suppresses a finding with a
//! written justification (e.g. a token-channel send that is provably
//! bounded).

use crate::callgraph::{crate_of, fn_items, spawn_arg_end, CallGraph, Primitives};
use crate::config::Config;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Pass, Sink};

const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

const PAR_METHODS: [&str; 6] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
];

pub fn check(files: &[SourceFile], cfg: &Config, sink: &mut Sink) {
    if cfg.blocking_crates.is_empty() {
        return;
    }
    let prims = Primitives::from_config(cfg);
    let graph = CallGraph::build(files, &prims);
    for f in files {
        if !in_scope(f, cfg) {
            continue;
        }
        let krate = crate_of(&f.rel);
        for item in fn_items(f) {
            check_body(f, &item, &krate, &prims, &graph, sink);
        }
    }
}

fn in_scope(f: &SourceFile, cfg: &Config) -> bool {
    if cfg.blocking_exclude.iter().any(|p| p == &f.rel) {
        return false;
    }
    cfg.blocking_crates
        .iter()
        .any(|c| f.rel.starts_with(&format!("crates/{c}/src/")))
}

/// A live guard: the lock's field name, its `let` binding (temporaries
/// die at `;`), and the brace depth it was bound at.
struct Held {
    name: String,
    guard: Option<String>,
    depth: i32,
}

fn check_body(
    file: &SourceFile,
    item: &crate::callgraph::FnItem,
    krate: &str,
    prims: &Primitives,
    graph: &CallGraph,
    sink: &mut Sink,
) {
    let code = &file.code;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut pending_let: Option<String> = None;
    // Guards stashed while scanning a `spawn(..)` argument (the closure
    // runs on another thread without them); restored at the region end.
    let mut spawn_stack: Vec<(usize, Vec<Held>)> = Vec::new();
    // Active `par_iter`-family statement: (last token index, method).
    let mut par_region: Option<(usize, String)> = None;

    let mut j = item.open;
    while j <= item.close && j < code.len() {
        while spawn_stack.last().map(|(end, _)| j > *end).unwrap_or(false) {
            let (_, saved) = spawn_stack.pop().expect("non-empty spawn stack");
            held = saved;
        }
        if par_region
            .as_ref()
            .map(|(end, _)| j > *end)
            .unwrap_or(false)
        {
            par_region = None;
        }
        let t = &code[j];
        let test = file.is_test_line(t.line);
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            held.retain(|h| h.depth <= depth);
            if depth == 0 {
                break;
            }
        } else if t.is_punct(';') {
            held.retain(|h| h.guard.is_some());
            pending_let = None;
        } else if t.is_ident("let") {
            if let Some(n) = code.get(j + 1) {
                let n = if n.is_ident("mut") {
                    code.get(j + 2)
                } else {
                    Some(n)
                };
                if let Some(n) = n {
                    // A lowercase ident is a binding; uppercase is an
                    // enum-variant pattern (`if let Some(x) = ..`),
                    // whose lock temporary dies at statement end.
                    if n.kind == TokKind::Ident
                        && n.text
                            .chars()
                            .next()
                            .map(|c| c.is_lowercase() || c == '_')
                            .unwrap_or(false)
                    {
                        pending_let = Some(n.text.clone());
                    }
                }
            }
        } else if t.is_ident("drop") && code.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
            if let Some(v) = code.get(j + 2) {
                held.retain(|h| h.guard.as_deref() != Some(v.text.as_str()));
            }
        } else if let Some(end) = (!test).then(|| spawn_arg_end(code, j)).flatten() {
            spawn_stack.push((end, std::mem::take(&mut held)));
        } else if t.kind == TokKind::Ident
            && PAR_METHODS.contains(&t.text.as_str())
            && j > 0
            && code[j - 1].is_punct('.')
            && code.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && !test
        {
            par_region = Some((statement_end(code, j, item.close), t.text.clone()));
        } else if t.kind == TokKind::Ident
            && ACQUIRE_METHODS.contains(&t.text.as_str())
            && j > 0
            && code[j - 1].is_punct('.')
            && code.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && code.get(j + 2).map(|n| n.is_punct(')')).unwrap_or(false)
        {
            // Zero-arg `.lock()`/`.read()`/`.write()` with an ident
            // receiver: a guard is born.
            if j >= 2 && code[j - 2].kind == TokKind::Ident && !test {
                held.push(Held {
                    name: code[j - 2].text.clone(),
                    guard: pending_let.take(),
                    depth,
                });
            }
        } else if let Some(what) = (!test).then(|| prims.classify(code, j)).flatten() {
            if let Some((_, par)) = &par_region {
                crate::push_unless_allowed(
                    file,
                    sink,
                    Pass::Blocking,
                    t.line,
                    format!(
                        "blocks on {what} inside a `.{par}()` closure — a stalled rayon worker \
                         stalls the whole pool"
                    ),
                );
            }
            if !held.is_empty() {
                crate::push_unless_allowed(
                    file,
                    sink,
                    Pass::Blocking,
                    t.line,
                    format!(
                        "blocks on {what} while holding {} — drop the guard before blocking",
                        guard_list(&held)
                    ),
                );
            }
        } else if !test && (!held.is_empty() || par_region.is_some()) {
            if let Some((display, b)) = graph.call_blocked(code, j, krate) {
                if let Some((_, par)) = &par_region {
                    crate::push_unless_allowed(
                        file,
                        sink,
                        Pass::Blocking,
                        t.line,
                        format!(
                            "calls `{display}`, which may block ({}), inside a `.{par}()` closure \
                             — a stalled rayon worker stalls the whole pool",
                            b.describe()
                        ),
                    );
                }
                if !held.is_empty() {
                    crate::push_unless_allowed(
                        file,
                        sink,
                        Pass::Blocking,
                        t.line,
                        format!(
                            "calls `{display}`, which may block ({}), while holding {} — drop \
                             the guard before the call",
                            b.describe(),
                            guard_list(&held)
                        ),
                    );
                }
            }
        }
        j += 1;
    }
}

fn guard_list(held: &[Held]) -> String {
    let names: Vec<String> = held.iter().map(|h| format!("`{}` guard", h.name)).collect();
    names.join(", ")
}

/// Index of the `;` that ends the statement containing `code[j]`, at
/// the same brace depth (the whole `v.par_iter().map(..).collect();`
/// chain). Falls back to the body end for expression-position tails.
fn statement_end(code: &[crate::lexer::Tok], j: usize, close: usize) -> usize {
    let mut depth = 0i32;
    let mut k = j;
    while k <= close && k < code.len() {
        let t = &code[k];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return k;
            }
        } else if t.is_punct(';') && depth == 0 {
            return k;
        }
        k += 1;
    }
    close
}
