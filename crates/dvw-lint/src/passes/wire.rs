//! Pass 2 — wire-protocol invariants.
//!
//! The workstation and the remote compute server only stay compatible by
//! convention, and the conventions live in `proto.rs` constants. This
//! pass asserts, over the configured proto files:
//!
//! * every `PROC_*` id is unique across the workspace;
//! * no application id collides with the reserved built-in range
//!   (`0xFFFF_0000..`, home of `PROC_PING`) unless the file is explicitly
//!   allowed to define built-ins;
//! * `PROTOCOL_VERSION` equals the baseline recorded in `lint.toml`
//!   unless a `wire:non-additive` marker comment declares a breaking
//!   change, in which case it must be *greater* (bump then update the
//!   baseline and drop the marker when the release ships);
//! * every `impl WireEncode for T` in the workspace has a matching
//!   `impl WireDecode for T`, and every inherent `fn encode*` in a proto
//!   file's `impl T` block has a sibling `fn decode*` — one-way types rot
//!   into undecodable frames.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Finding, Pass, Sink};
use std::collections::HashMap;

pub fn check(files: &[SourceFile], cfg: &Config, sink: &mut Sink) {
    check_proc_ids(files, cfg, sink);
    check_protocol_version(files, cfg, sink);
    check_dataset_format_version(files, cfg, sink);
    check_trait_pairs(files, sink);
    check_inherent_pairs(files, cfg, sink);
}

struct ProcConst {
    file: String,
    line: u32,
    name: String,
    value: u64,
}

/// `const PROC_X: u32 = <int>;` declarations in the proto files.
fn collect_proc_consts(files: &[SourceFile], cfg: &Config) -> Vec<ProcConst> {
    let mut out = Vec::new();
    for f in files {
        if !cfg.proto_files.iter().any(|p| p == &f.rel) {
            continue;
        }
        let code = &f.code;
        for (i, t) in code.iter().enumerate() {
            if !t.is_ident("const") {
                continue;
            }
            let (name, colon, ty) = (code.get(i + 1), code.get(i + 2), code.get(i + 3));
            let (Some(name), Some(colon), Some(ty)) = (name, colon, ty) else {
                continue;
            };
            if !(name.text.starts_with("PROC_") && colon.is_punct(':') && ty.is_ident("u32")) {
                continue;
            }
            // `= <number> ;`
            let (eq, val) = (code.get(i + 4), code.get(i + 5));
            let (Some(eq), Some(val)) = (eq, val) else {
                continue;
            };
            if !eq.is_punct('=') || val.kind != TokKind::Number {
                continue;
            }
            if let Some(v) = parse_int(&val.text) {
                out.push(ProcConst {
                    file: f.rel.clone(),
                    line: name.line,
                    name: name.text.clone(),
                    value: v,
                });
            }
        }
    }
    out
}

fn check_proc_ids(files: &[SourceFile], cfg: &Config, sink: &mut Sink) {
    let consts = collect_proc_consts(files, cfg);
    let mut by_value: HashMap<u64, &ProcConst> = HashMap::new();
    for c in &consts {
        if let Some(first) = by_value.get(&c.value) {
            sink.push(Finding::new(
                &c.file,
                c.line,
                Pass::WireProtocol,
                format!(
                    "proc id {:#010X} of `{}` collides with `{}` ({}:{})",
                    c.value, c.name, first.name, first.file, first.line
                ),
            ));
        } else {
            by_value.insert(c.value, c);
        }
        let reserved_ok = cfg.reserved_allowed.iter().any(|p| p == &c.file);
        if c.value >= cfg.reserved_min && !reserved_ok {
            sink.push(Finding::new(
                &c.file,
                c.line,
                Pass::WireProtocol,
                format!(
                    "proc id {:#010X} of `{}` lies in the reserved built-in range (>= {:#010X}, \
                     home of PROC_PING)",
                    c.value, c.name, cfg.reserved_min
                ),
            ));
        }
    }
}

fn check_protocol_version(files: &[SourceFile], cfg: &Config, sink: &mut Sink) {
    let mut declared: Option<(String, u32, u64)> = None;
    let mut marker: Option<(String, u32)> = None;
    for f in files {
        if !cfg.proto_files.iter().any(|p| p == &f.rel) {
            continue;
        }
        let code = &f.code;
        for (i, t) in code.iter().enumerate() {
            if t.is_ident("PROTOCOL_VERSION")
                && i > 0
                && code[i - 1].is_ident("const")
                && declared.is_none()
            {
                if let Some(val) = code.get(i + 4) {
                    if let Some(v) = parse_int(&val.text) {
                        declared = Some((f.rel.clone(), t.line, v));
                    }
                }
            }
        }
        if marker.is_none() {
            if let Some(c) = f
                .comments
                .iter()
                .find(|c| c.text.contains(&cfg.non_additive_marker))
            {
                marker = Some((f.rel.clone(), c.line));
            }
        }
    }
    let Some((file, line, version)) = declared else {
        if !cfg.proto_files.is_empty() {
            sink.push(Finding::new(
                &cfg.proto_files[0],
                1,
                Pass::WireProtocol,
                "no `const PROTOCOL_VERSION` found in proto files".into(),
            ));
        }
        return;
    };
    match marker {
        Some((mfile, mline)) if version <= cfg.protocol_version => {
            sink.push(Finding::new(
                &mfile,
                mline,
                Pass::WireProtocol,
                format!(
                    "`{}` marker present but PROTOCOL_VERSION is still {} (baseline {}); bump it",
                    cfg.non_additive_marker, version, cfg.protocol_version
                ),
            ));
        }
        None if version != cfg.protocol_version => {
            sink.push(Finding::new(
                &file,
                line,
                Pass::WireProtocol,
                format!(
                    "PROTOCOL_VERSION is {} but lint.toml baseline is {}; either add a `{}` \
                     marker for a breaking change or update the baseline",
                    version, cfg.protocol_version, cfg.non_additive_marker
                ),
            ));
        }
        _ => {}
    }
}

/// The on-disk container is versioned independently of the wire protocol:
/// `DATASET_FORMAT_VERSION` must bump iff the container layout changes
/// (declared with a `format:layout-change` marker comment), and a layout
/// change never touches `PROTOCOL_VERSION` — the protocol baseline above
/// keeps enforcing that separately. Disabled when `format_files` is empty
/// or the baseline is 0.
fn check_dataset_format_version(files: &[SourceFile], cfg: &Config, sink: &mut Sink) {
    if cfg.format_files.is_empty() || cfg.dataset_format_version == 0 {
        return;
    }
    let mut declared: Option<(String, u32, u64)> = None;
    let mut marker: Option<(String, u32)> = None;
    for f in files {
        if !cfg.format_files.iter().any(|p| p == &f.rel) {
            continue;
        }
        let code = &f.code;
        for (i, t) in code.iter().enumerate() {
            if t.is_ident("DATASET_FORMAT_VERSION")
                && i > 0
                && code[i - 1].is_ident("const")
                && declared.is_none()
            {
                if let Some(val) = code.get(i + 4) {
                    if let Some(v) = parse_int(&val.text) {
                        declared = Some((f.rel.clone(), t.line, v));
                    }
                }
            }
        }
        if marker.is_none() {
            if let Some(c) = f
                .comments
                .iter()
                .find(|c| c.text.contains(&cfg.format_marker))
            {
                marker = Some((f.rel.clone(), c.line));
            }
        }
    }
    let Some((file, line, version)) = declared else {
        sink.push(Finding::new(
            &cfg.format_files[0],
            1,
            Pass::WireProtocol,
            "no `const DATASET_FORMAT_VERSION` found in format files".into(),
        ));
        return;
    };
    match marker {
        Some((mfile, mline)) if version <= cfg.dataset_format_version => {
            sink.push(Finding::new(
                &mfile,
                mline,
                Pass::WireProtocol,
                format!(
                    "`{}` marker present but DATASET_FORMAT_VERSION is still {} (baseline {}); \
                     a container layout change must bump it (PROTOCOL_VERSION stays untouched)",
                    cfg.format_marker, version, cfg.dataset_format_version
                ),
            ));
        }
        None if version != cfg.dataset_format_version => {
            sink.push(Finding::new(
                &file,
                line,
                Pass::WireProtocol,
                format!(
                    "DATASET_FORMAT_VERSION is {} but lint.toml baseline is {}; a version bump \
                     requires a `{}` marker declaring the container layout change",
                    version, cfg.dataset_format_version, cfg.format_marker
                ),
            ));
        }
        _ => {}
    }
}

/// `impl [<..>] WireEncode for T` must pair with `impl WireDecode for T`.
fn check_trait_pairs(files: &[SourceFile], sink: &mut Sink) {
    let mut encodes: HashMap<String, (String, u32)> = HashMap::new();
    let mut decodes: HashMap<String, (String, u32)> = HashMap::new();
    for f in files {
        let code = &f.code;
        for (i, t) in code.iter().enumerate() {
            if !t.is_ident("impl") {
                continue;
            }
            // Skip optional generics `<..>`.
            let mut j = i + 1;
            if code.get(j).map(|n| n.is_punct('<')).unwrap_or(false) {
                let mut depth = 0i32;
                while j < code.len() {
                    if code[j].is_punct('<') {
                        depth += 1;
                    } else if code[j].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let Some(trait_tok) = code.get(j) else {
                continue;
            };
            let which = match trait_tok.text.as_str() {
                "WireEncode" => true,
                "WireDecode" => false,
                _ => continue,
            };
            // Types that only exist inside `#[cfg(test)]` don't ship.
            if f.is_test_line(trait_tok.line) {
                continue;
            }
            // Expect `for TYPE... {`; capture the type's token text.
            let mut k = j + 1;
            if !code.get(k).map(|n| n.is_ident("for")).unwrap_or(false) {
                continue; // a trait definition or unrelated impl
            }
            k += 1;
            let mut ty = String::new();
            while let Some(n) = code.get(k) {
                if n.is_punct('{') || n.is_ident("where") {
                    break;
                }
                ty.push_str(&n.text);
                k += 1;
            }
            let entry = (f.rel.clone(), trait_tok.line);
            if which {
                encodes.entry(ty).or_insert(entry);
            } else {
                decodes.entry(ty).or_insert(entry);
            }
        }
    }
    for (ty, (file, line)) in &encodes {
        if !decodes.contains_key(ty) {
            sink.push(Finding::new(
                file,
                *line,
                Pass::WireProtocol,
                format!("`impl WireEncode for {ty}` has no matching `impl WireDecode`"),
            ));
        }
    }
}

/// Inherent pairing inside proto files: an `impl T {` block defining
/// `fn encode` / `fn encode_into` requires some impl of `T` in the same
/// file to define `fn decode` / `fn decode_from`.
fn check_inherent_pairs(files: &[SourceFile], cfg: &Config, sink: &mut Sink) {
    for f in files {
        if !cfg.proto_files.iter().any(|p| p == &f.rel) {
            continue;
        }
        let code = &f.code;
        // type name -> (has_encode_line, has_decode)
        let mut types: HashMap<String, (Option<u32>, bool)> = HashMap::new();
        let mut i = 0usize;
        while i < code.len() {
            if !code[i].is_ident("impl") {
                i += 1;
                continue;
            }
            // Inherent impl: `impl TYPE {` (no `for`). TYPE is one ident.
            let (Some(ty), Some(open)) = (code.get(i + 1), code.get(i + 2)) else {
                i += 1;
                continue;
            };
            if ty.kind != TokKind::Ident || !open.is_punct('{') {
                i += 1;
                continue;
            }
            // Walk the block, tracking fn names at block depth 1.
            let mut depth = 0i32;
            let mut j = i + 2;
            let entry = types.entry(ty.text.clone()).or_insert((None, false));
            while j < code.len() {
                let t = &code[j];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("fn") && depth == 1 {
                    if let Some(name) = code.get(j + 1) {
                        match name.text.as_str() {
                            "encode" | "encode_into" if entry.0.is_none() => {
                                entry.0 = Some(name.line);
                            }
                            "decode" | "decode_from" => entry.1 = true,
                            _ => {}
                        }
                    }
                }
                j += 1;
            }
            i = j + 1;
        }
        for (ty, (encode_line, has_decode)) in types {
            if let (Some(line), false) = (encode_line, has_decode) {
                crate::push_unless_allowed(
                    f,
                    sink,
                    Pass::WireProtocol,
                    line,
                    format!(
                        "`{ty}` defines `encode` but no `decode`/`decode_from` in {}",
                        f.rel
                    ),
                );
            }
        }
    }
}

fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}
