//! Pass 6 — stats-plane exhaustiveness.
//!
//! The observability counters (`FrameStats`, `StoreIoStats`,
//! `StoreHealthStats`, `AdvanceStats`) are folded up through every
//! wrapper and, for the frame plane, carried over the wire. A field
//! added to the struct but forgotten in a fold silently reports zero
//! forever; one missing from encode/decode skews every counter after
//! it. For each `[stats.<Name>]` table in `lint.toml` this pass checks:
//!
//! * **baseline** — the struct's declared field order must match the
//!   `fields` list exactly; growth appends to both, never reorders or
//!   removes (the wire layout is append-only);
//! * **folds** — every `Type::fn` listed in `folds` must mention every
//!   field of the struct;
//! * **wire** — when `wire = true`, the struct's inherent `encode` must
//!   write `self.<field>` for every field in declaration order, and
//!   `decode` must read every field in the same order.

use crate::config::{Config, StatsSpec};
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::{Finding, Pass, Sink};
use std::collections::HashSet;

pub fn check(files: &[SourceFile], cfg: &Config, sink: &mut Sink) {
    for spec in &cfg.stats {
        match files.iter().find(|f| f.rel == spec.file) {
            Some(f) => check_spec(f, spec, sink),
            None => sink.push(Finding::new(
                &spec.file,
                1,
                Pass::Stats,
                format!(
                    "declared stats file for `{}` missing from the tree",
                    spec.name
                ),
            )),
        }
    }
}

fn check_spec(file: &SourceFile, spec: &StatsSpec, sink: &mut Sink) {
    let Some((struct_line, fields)) = struct_fields(file, &spec.name) else {
        sink.push(Finding::new(
            &file.rel,
            1,
            Pass::Stats,
            format!("struct `{}` not found in declared stats file", spec.name),
        ));
        return;
    };
    check_baseline(file, spec, struct_line, &fields, sink);
    for fold in &spec.folds {
        check_fold(file, spec, fold, &fields, struct_line, sink);
    }
    if spec.wire {
        check_wire(file, spec, &fields, struct_line, sink);
    }
}

/// Declaration order must equal the baseline; the only legal growth is
/// appending to both ends at once.
fn check_baseline(
    file: &SourceFile,
    spec: &StatsSpec,
    struct_line: u32,
    fields: &[(String, u32)],
    sink: &mut Sink,
) {
    let decl: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
    let base: Vec<&str> = spec.fields.iter().map(|s| s.as_str()).collect();
    let common = decl
        .iter()
        .zip(base.iter())
        .take_while(|(a, b)| a == b)
        .count();
    if common == base.len() && common == decl.len() {
        return;
    }
    if common == base.len() {
        // Struct grew past the baseline: legal shape, stale config.
        for (name, line) in &fields[common..] {
            crate::push_unless_allowed(
                file,
                sink,
                Pass::Stats,
                *line,
                format!(
                    "field `{name}` of `{}` is appended but missing from the lint.toml baseline \
                     — append it to `stats.{}.fields`",
                    spec.name, spec.name
                ),
            );
        }
        return;
    }
    if common == decl.len() {
        for name in &base[common..] {
            crate::push_unless_allowed(
                file,
                sink,
                Pass::Stats,
                struct_line,
                format!(
                    "baseline field `{name}` missing from struct `{}` — stats fields may be \
                     appended, never removed",
                    spec.name
                ),
            );
        }
        return;
    }
    let (got, _) = &fields[common];
    crate::push_unless_allowed(
        file,
        sink,
        Pass::Stats,
        fields[common].1,
        format!(
            "declaration order of `{}` diverges from the baseline at position {common} (`{got}` \
             vs baseline `{}`) — the wire layout is append-only, never reorder",
            spec.name, base[common]
        ),
    );
}

fn check_fold(
    file: &SourceFile,
    spec: &StatsSpec,
    fold: &str,
    fields: &[(String, u32)],
    struct_line: u32,
    sink: &mut Sink,
) {
    let Some((ty, fn_name)) = fold.split_once("::") else {
        sink.push(Finding::new(
            &file.rel,
            struct_line,
            Pass::Stats,
            format!(
                "fold `{fold}` in `stats.{}.folds` must be written `Type::fn`",
                spec.name
            ),
        ));
        return;
    };
    let Some((fold_line, span)) = impl_fn_body(file, ty, fn_name) else {
        crate::push_unless_allowed(
            file,
            sink,
            Pass::Stats,
            struct_line,
            format!("declared fold `{fold}` not found in `{}`", file.rel),
        );
        return;
    };
    let mentioned: HashSet<&str> = file.code[span.clone()]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    // `Struct { a: .., ..self }` style folds touch every field without
    // naming each one; a rest expression defeats the whole point of
    // this check, so it is flagged. A rest expr is `..` directly after
    // `{` or `,` — which excludes ranges like `0..n`.
    let code = &file.code;
    let has_rest = span.clone().any(|k| {
        code[k].is_punct('.')
            && code.get(k + 1).map(|n| n.is_punct('.')).unwrap_or(false)
            && k > 0
            && (code[k - 1].is_punct(',') || code[k - 1].is_punct('{'))
            && code
                .get(k + 2)
                .map(|n| n.kind == TokKind::Ident || n.is_punct('*'))
                .unwrap_or(false)
    });
    if has_rest {
        crate::push_unless_allowed(
            file,
            sink,
            Pass::Stats,
            fold_line,
            format!(
                "fold `{fold}` uses a `..` rest expression — spell out every field so a new \
                 counter cannot be silently dropped from the fold"
            ),
        );
        return;
    }
    for (name, _) in fields {
        if !mentioned.contains(name.as_str()) {
            crate::push_unless_allowed(
                file,
                sink,
                Pass::Stats,
                fold_line,
                format!(
                    "fold `{fold}` never mentions field `{name}` — every stats field must be \
                     folded"
                ),
            );
        }
    }
}

fn check_wire(
    file: &SourceFile,
    spec: &StatsSpec,
    fields: &[(String, u32)],
    struct_line: u32,
    sink: &mut Sink,
) {
    let field_names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
    match impl_fn_body(file, &spec.name, "encode") {
        None => crate::push_unless_allowed(
            file,
            sink,
            Pass::Stats,
            struct_line,
            format!(
                "`{}` is declared `wire = true` but has no inherent `encode`",
                spec.name
            ),
        ),
        Some((line, span)) => {
            // Write order = sequence of first `self.<field>` mentions.
            let mut order: Vec<&str> = Vec::new();
            for (k, t) in file.code[span.clone()].iter().enumerate() {
                if t.is_ident("self")
                    && file.code[span.clone()]
                        .get(k + 1)
                        .map(|n| n.is_punct('.'))
                        .unwrap_or(false)
                {
                    if let Some(f) = file.code[span.clone()].get(k + 2) {
                        if let Some(name) = field_names.iter().find(|n| f.is_ident(n)) {
                            if !order.contains(name) {
                                order.push(name);
                            }
                        }
                    }
                }
            }
            report_wire_order(
                file,
                spec,
                "encode",
                "writes",
                line,
                &field_names,
                &order,
                sink,
            );
        }
    }
    match impl_fn_body(file, &spec.name, "decode") {
        None => crate::push_unless_allowed(
            file,
            sink,
            Pass::Stats,
            struct_line,
            format!(
                "`{}` is declared `wire = true` but has no inherent `decode`",
                spec.name
            ),
        ),
        Some((line, span)) => {
            // Read order = sequence of first field-ident mentions (covers
            // struct-literal, `let field = ..`, and `s.field = ..` styles).
            let mut order: Vec<&str> = Vec::new();
            for t in &file.code[span] {
                if t.kind == TokKind::Ident {
                    if let Some(name) = field_names.iter().find(|n| t.text == **n) {
                        if !order.contains(name) {
                            order.push(name);
                        }
                    }
                }
            }
            report_wire_order(
                file,
                spec,
                "decode",
                "reads",
                line,
                &field_names,
                &order,
                sink,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn report_wire_order(
    file: &SourceFile,
    spec: &StatsSpec,
    fn_name: &str,
    verb: &str,
    line: u32,
    decl: &[&str],
    order: &[&str],
    sink: &mut Sink,
) {
    for name in decl {
        if !order.contains(name) {
            crate::push_unless_allowed(
                file,
                sink,
                Pass::Stats,
                line,
                format!(
                    "`{}::{fn_name}` never {verb} field `{name}` — the wire codec must cover \
                     every field",
                    spec.name
                ),
            );
        }
    }
    // Order check over the fields both sides know about.
    let present: Vec<&str> = decl.iter().copied().filter(|n| order.contains(n)).collect();
    let ordered: Vec<&str> = order.iter().copied().filter(|n| decl.contains(n)).collect();
    if let Some(pos) = present.iter().zip(ordered.iter()).position(|(a, b)| a != b) {
        crate::push_unless_allowed(
            file,
            sink,
            Pass::Stats,
            line,
            format!(
                "`{}::{fn_name}` {verb} `{}` where declaration order has `{}` — wire order must \
                 match declaration order",
                spec.name, ordered[pos], present[pos]
            ),
        );
    }
}

/// Find `struct <name> { .. }` and return its line plus the named
/// fields, each with the line it is declared on.
fn struct_fields(file: &SourceFile, name: &str) -> Option<(u32, Vec<(String, u32)>)> {
    let code = &file.code;
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_ident("struct")
            && code.get(i + 1).map(|n| n.is_ident(name)).unwrap_or(false))
        {
            i += 1;
            continue;
        }
        let struct_line = code[i].line;
        // Opening brace (skipping generics); `;` first means a unit or
        // tuple struct, which this pass does not model.
        let mut j = i + 2;
        let mut open = None;
        while let Some(t) = code.get(j) {
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('{') {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let open = open?;
        let mut fields = Vec::new();
        let mut depth = 0i32;
        let mut expecting = true;
        let mut k = open;
        while let Some(t) = code.get(k) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 {
                if t.is_punct(',') {
                    expecting = true;
                } else if t.is_punct('#') {
                    // Skip an attribute's brackets.
                    let mut b = 0i32;
                    k += 1;
                    while let Some(a) = code.get(k) {
                        if a.is_punct('[') {
                            b += 1;
                        } else if a.is_punct(']') {
                            b -= 1;
                            if b == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                } else if t.is_ident("pub") {
                    // `pub` or `pub(crate)` — skip the visibility.
                    if code.get(k + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
                        while let Some(a) = code.get(k) {
                            if a.is_punct(')') {
                                break;
                            }
                            k += 1;
                        }
                    }
                } else if expecting
                    && t.kind == TokKind::Ident
                    && code.get(k + 1).map(|n| n.is_punct(':')).unwrap_or(false)
                {
                    fields.push((t.text.clone(), t.line));
                    expecting = false;
                }
            }
            k += 1;
        }
        return Some((struct_line, fields));
    }
    None
}

/// Find `fn <fn_name>` inside any `impl .. <ty> { .. }` block (inherent
/// or trait impl — the target type is the ident after `for`, or the
/// first ident after `impl` otherwise) and return its line plus the
/// token index range of its body.
fn impl_fn_body(
    file: &SourceFile,
    ty: &str,
    fn_name: &str,
) -> Option<(u32, std::ops::Range<usize>)> {
    let code = &file.code;
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Header idents up to the body brace.
        let mut j = i + 1;
        let mut header: Vec<&Tok> = Vec::new();
        while let Some(t) = code.get(j) {
            if t.is_punct('{') {
                break;
            }
            header.push(t);
            j += 1;
        }
        let target = header
            .iter()
            .position(|t| t.is_ident("for"))
            .and_then(|p| header.get(p + 1))
            .or_else(|| header.iter().find(|t| t.kind == TokKind::Ident))
            .map(|t| t.text.as_str());
        if target != Some(ty) {
            i = j + 1;
            continue;
        }
        // Walk the impl body at depth 1 looking for the fn.
        let mut depth = 0i32;
        let mut k = j;
        while let Some(t) = code.get(k) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1
                && t.is_ident("fn")
                && code
                    .get(k + 1)
                    .map(|n| n.is_ident(fn_name))
                    .unwrap_or(false)
            {
                let line = t.line;
                // Body: first `{` after the signature.
                let mut m = k + 2;
                while let Some(b) = code.get(m) {
                    if b.is_punct('{') {
                        break;
                    }
                    if b.is_punct(';') {
                        break;
                    }
                    m += 1;
                }
                if !code.get(m).map(|b| b.is_punct('{')).unwrap_or(false) {
                    k = m + 1;
                    continue;
                }
                let open = m;
                let mut bd = 0i32;
                while let Some(b) = code.get(m) {
                    if b.is_punct('{') {
                        bd += 1;
                    } else if b.is_punct('}') {
                        bd -= 1;
                        if bd == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                return Some((line, open..m.min(code.len())));
            }
            k += 1;
        }
        i = k + 1;
    }
    None
}
