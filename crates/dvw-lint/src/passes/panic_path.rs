//! Pass 1 — panic paths.
//!
//! A panic on a server path is a whole-system fault under the paper's
//! serial multi-user execution model: the dispatcher dies and every
//! connected client drops frames. This pass flags, in non-test code of
//! the configured crates:
//!
//! * `.unwrap()` / `.expect(...)`
//! * `panic!` / `todo!` / `unimplemented!`
//! * range/index expressions on `Bytes`/`BytesMut`-typed bindings (slice
//!   indexing panics on short input — exactly what a malformed wire frame
//!   produces; use `get(..)` or `WireReader`)
//! * `as` casts to integer types narrower than 64 bits (silent
//!   truncation; use `try_from` or an explicit `min`/mask with an allow)
//!
//! `// lint:allow(panic-path): <reason>` on the offending line or the
//! line above suppresses a finding; the reason is mandatory.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Pass, Sink};
use std::collections::HashSet;

const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

pub fn check(file: &SourceFile, sink: &mut Sink) {
    let code = &file.code;
    for span in fn_spans(code) {
        let bytes_names = collect_bytes_bindings(code, span.clone());
        check_bytes_indexing(file, span, &bytes_names, sink);
    }
    for (i, t) in code.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        let next = code.get(i + 1);
        let prev = if i > 0 { code.get(i - 1) } else { None };
        if t.kind != TokKind::Ident {
            continue;
        }
        let followed_by = |c: char| next.map(|n| n.is_punct(c)).unwrap_or(false);
        let after_dot = prev.map(|p| p.is_punct('.')).unwrap_or(false);
        match t.text.as_str() {
            "unwrap" if after_dot && followed_by('(') => emit(
                file,
                sink,
                t.line,
                "`.unwrap()` on a non-test path; return a typed error instead".into(),
            ),
            "expect" if after_dot && followed_by('(') => emit(
                file,
                sink,
                t.line,
                "`.expect(..)` on a non-test path; return a typed error instead".into(),
            ),
            "panic" | "todo" | "unimplemented" if followed_by('!') => emit(
                file,
                sink,
                t.line,
                format!("`{}!` reachable from non-test code", t.text),
            ),
            "as" => {
                if let Some(n) = next {
                    if n.kind == TokKind::Ident && NARROW_INTS.contains(&n.text.as_str()) {
                        emit(
                            file,
                            sink,
                            t.line,
                            format!(
                                "`as {}` may truncate; use `{}::try_from(..)` or annotate why the \
                                 value fits",
                                n.text, n.text
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// Token ranges of function bodies (signature start .. body close), used
/// to scope `Bytes` bindings to the function that declares them.
fn fn_spans(code: &[crate::lexer::Tok]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 1;
        let mut open = None;
        let mut angle = 0i32;
        while let Some(t) = code.get(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if t.is_punct(';') && angle == 0 {
                break;
            } else if t.is_punct('{') {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let mut depth = 0i32;
        let mut k = open;
        while let Some(t) = code.get(k) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        // Nested fns get their own (overlapping) span; bindings from the
        // enclosing fn stay visible there, which is the safe direction.
        spans.push(start..k.min(code.len() - 1) + 1);
        i = open + 1;
    }
    spans
}

fn check_bytes_indexing(
    file: &SourceFile,
    span: std::ops::Range<usize>,
    bytes_names: &HashSet<String>,
    sink: &mut Sink,
) {
    if bytes_names.is_empty() {
        return;
    }
    let code = &file.code;
    for i in span {
        let t = &code[i];
        if t.kind != TokKind::Ident
            || file.is_test_line(t.line)
            || !bytes_names.contains(t.text.as_str())
        {
            continue;
        }
        let followed_by_open = code.get(i + 1).map(|n| n.is_punct('[')).unwrap_or(false);
        // `buf[..]` (the full range) cannot panic; anything with bounds
        // can.
        if followed_by_open && !is_full_range_index(code, i + 1) {
            emit(
                file,
                sink,
                t.line,
                format!(
                    "index/range on `Bytes` binding `{}` panics on short input; use `get(..)` or \
                     `WireReader`",
                    t.text
                ),
            );
        }
    }
}

fn emit(file: &SourceFile, sink: &mut Sink, line: u32, msg: String) {
    crate::push_unless_allowed(file, sink, Pass::PanicPath, line, msg);
}

/// Names bound with a `Bytes`/`BytesMut` type ascription (`x: Bytes`,
/// `x: &BytesMut`) or constructed from one (`let x = Bytes::...`) inside
/// one function's token span.
fn collect_bytes_bindings(
    code: &[crate::lexer::Tok],
    span: std::ops::Range<usize>,
) -> HashSet<String> {
    let mut names = HashSet::new();
    for i in span {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name : [&] [mut] Bytes|BytesMut`
        if code.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false) {
            let mut j = i + 2;
            while code
                .get(j)
                .map(|n| n.is_punct('&') || n.is_ident("mut") || n.kind == TokKind::Lifetime)
                .unwrap_or(false)
            {
                j += 1;
            }
            if let Some(ty) = code.get(j) {
                if ty.is_ident("Bytes") || ty.is_ident("BytesMut") {
                    names.insert(t.text.clone());
                }
            }
        }
        // `let [mut] name = Bytes::... | BytesMut::...`
        if t.is_ident("let") {
            let mut j = i + 1;
            if code.get(j).map(|n| n.is_ident("mut")).unwrap_or(false) {
                j += 1;
            }
            let (name_tok, eq, ty) = (code.get(j), code.get(j + 1), code.get(j + 2));
            if let (Some(name), Some(eq), Some(ty)) = (name_tok, eq, ty) {
                if name.kind == TokKind::Ident
                    && eq.is_punct('=')
                    && (ty.is_ident("Bytes") || ty.is_ident("BytesMut"))
                {
                    names.insert(name.text.clone());
                }
            }
        }
    }
    names
}

/// True when the index expression starting at the `[` token `open` is
/// exactly `[..]`.
fn is_full_range_index(code: &[crate::lexer::Tok], open: usize) -> bool {
    matches!(
        (code.get(open + 1), code.get(open + 2), code.get(open + 3)),
        (Some(a), Some(b), Some(c)) if a.is_punct('.') && b.is_punct('.') && c.is_punct(']')
    )
}
