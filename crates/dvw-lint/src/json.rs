//! Machine-readable findings: `--format json` rendering plus a minimal
//! parser so the schema test can round-trip the output without any
//! external dependency.
//!
//! Schema (stable; bump `schema` on any incompatible change):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "active": 2,
//!   "allowed": 1,
//!   "findings": [
//!     {"file": "crates/x/src/lib.rs", "line": 9, "pass": "blocking",
//!      "message": "..", "allowed": false, "reason": null},
//!     {"file": "crates/y/src/lib.rs", "line": 3, "pass": "stats",
//!      "message": "..", "allowed": true, "reason": "why it is fine"}
//!   ]
//! }
//! ```
//!
//! Active findings come first (the gate), then suppressed ones with
//! their written reasons — check.sh archives the whole document so a
//! reviewer can audit every escape hatch in one place.

use crate::Outcome;
use std::fmt::Write as _;

pub const SCHEMA_VERSION: u64 = 1;

/// Render an [`Outcome`] as the stable JSON document.
pub fn render(outcome: &Outcome) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"schema\": {SCHEMA_VERSION},\n  \"active\": {},\n  \"allowed\": {},\n  \"findings\": [",
        outcome.findings.len(),
        outcome.allowed.len()
    );
    let mut first = true;
    for f in &outcome.findings {
        push_entry(
            &mut s,
            &mut first,
            &f.file,
            f.line,
            f.pass.name(),
            &f.msg,
            None,
        );
    }
    for a in &outcome.allowed {
        let f = &a.finding;
        push_entry(
            &mut s,
            &mut first,
            &f.file,
            f.line,
            f.pass.name(),
            &f.msg,
            Some(&a.reason),
        );
    }
    if first {
        s.push_str("]\n}\n");
    } else {
        s.push_str("\n  ]\n}\n");
    }
    s
}

fn push_entry(
    s: &mut String,
    first: &mut bool,
    file: &str,
    line: u32,
    pass: &str,
    msg: &str,
    reason: Option<&str>,
) {
    if !*first {
        s.push(',');
    }
    *first = false;
    let reason_json = match reason {
        Some(r) => format!("\"{}\"", escape(r)),
        None => "null".to_string(),
    };
    let _ = write!(
        s,
        "\n    {{\"file\": \"{}\", \"line\": {line}, \"pass\": \"{}\", \"message\": \"{}\", \
         \"allowed\": {}, \"reason\": {reason_json}}}",
        escape(file),
        escape(pass),
        escape(msg),
        reason.is_some(),
    );
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value — just enough for the round-trip test and any
/// in-tree tooling that wants to read `bench_out/lint_findings.json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a JSON document. Integers only (that is all the schema emits);
/// errors name the byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if b[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<i64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected `{}` at byte {pos}", *c as char)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Re-sync to char boundaries for multi-byte UTF-8.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..end]).map_err(|_| "bad UTF-8".to_string())?,
                );
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}
