#![deny(unsafe_op_in_unsafe_fn, unused_must_use)]
//! CLI wrapper: `cargo run -p dvw-lint [-- --root <dir>] [--format text|json]`.
//!
//! Exit status 0 means the tree upholds every declared invariant; 1 means
//! findings were printed (one `file:line: [pass] message` per line, or
//! the JSON document with `--format json`); 2 means the linter itself
//! could not run (missing/ malformed `lint.toml`).

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("dvw-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "dvw-lint: --format requires `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "dvw-lint: workspace invariant checker\n\
                     usage: dvw-lint [--root <workspace dir containing lint.toml>] \
                     [--format text|json]\n\
                     passes: panic-path, wire-protocol, lock-order, hygiene, blocking, stats\n\
                     escape hatch: // lint:allow(<pass>): <reason>\n\
                     --format json emits the stable findings document (active + allowed)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dvw-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_root);
    match dvw_lint::run_outcome(&root) {
        Ok(outcome) => {
            match format {
                Format::Json => print!("{}", dvw_lint::json::render(&outcome)),
                Format::Text if outcome.findings.is_empty() => {
                    println!("dvw-lint: clean ({})", root.display());
                }
                Format::Text => {
                    for f in &outcome.findings {
                        println!("{f}");
                    }
                }
            }
            if outcome.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!("dvw-lint: {} finding(s)", outcome.findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dvw-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Locate the workspace root: the nearest ancestor of the current
/// directory containing `lint.toml`, falling back to the crate's own
/// grandparent (so `cargo run -p dvw-lint` works from anywhere in-tree).
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("lint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}
