//! `lint.toml` — the declared invariants.
//!
//! Parsed with a hand-rolled TOML subset reader (tables, string / integer /
//! boolean values, arrays of strings, arrays of string-arrays, `#`
//! comments, multi-line arrays) so the linter stays dependency-free. The
//! config *is* the specification the passes check the tree against: the
//! global lock order, the wire baseline version, the required crate-root
//! deny table, and the set of crates whose non-test code must be
//! panic-free.

use std::collections::BTreeMap;

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(u64),
    Bool(bool),
    /// Array of strings.
    StrArray(Vec<String>),
    /// Array of string-arrays (the lock-order chains).
    ChainArray(Vec<Vec<String>>),
}

/// The whole configuration, resolved with defaults for missing keys.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names under `crates/` whose non-test code the
    /// panic-path pass covers.
    pub panic_crates: Vec<String>,
    /// Workspace-relative paths exempted from the panic-path pass (bench
    /// harness modules and the like).
    pub panic_exclude: Vec<String>,
    /// Baseline protocol version `proto.rs` must declare unless a
    /// non-additive marker is present.
    pub protocol_version: u64,
    /// Start of the proc-id range reserved for dlib built-ins.
    pub reserved_min: u64,
    /// Files scanned for `PROC_*` constants.
    pub proto_files: Vec<String>,
    /// Files allowed to define ids inside the reserved range (the dlib
    /// server itself).
    pub reserved_allowed: Vec<String>,
    /// Comment marker that declares a non-additive wire change.
    pub non_additive_marker: String,
    /// Files scanned for `DATASET_FORMAT_VERSION` (the on-disk container,
    /// versioned independently of the wire protocol).
    pub format_files: Vec<String>,
    /// Baseline dataset format version; `0` disables the check.
    pub dataset_format_version: u64,
    /// Comment marker that declares a container layout change.
    pub format_marker: String,
    /// Declared lock-order chains; locks in one chain must be acquired
    /// left-to-right.
    pub lock_order: Vec<Vec<String>>,
    /// Lints every crate root must `#![deny(...)]`.
    pub deny: Vec<String>,
    /// Crate-root files the deny-table check covers.
    pub crate_roots: Vec<String>,
    /// Server hot-path files where debug printing is banned.
    pub hot_paths: Vec<String>,
    /// Crate directory names whose non-test code the blocking pass
    /// covers (empty disables the pass).
    pub blocking_crates: Vec<String>,
    /// Workspace-relative paths exempted from the blocking pass.
    pub blocking_exclude: Vec<String>,
    /// Method names classified as blocking primitives (channel ops,
    /// thread join, condvar waits, socket reads) on top of the built-in
    /// defaults in `passes::blocking`.
    pub blocking_methods: Vec<String>,
    /// Free-function names classified as blocking primitives (e.g.
    /// `std::thread::sleep`) on top of the built-in defaults.
    pub blocking_functions: Vec<String>,
    /// Stats-plane contracts checked by the stats pass, one per
    /// `[stats.<StructName>]` table.
    pub stats: Vec<StatsSpec>,
}

/// One `[stats.<Name>]` table: a stats struct whose fold functions must
/// touch every field and whose wire codec (when present) must follow the
/// declaration order, which itself must stay append-only against the
/// `fields` baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSpec {
    /// Struct name (the table suffix).
    pub name: String,
    /// Workspace-relative file holding the struct definition.
    pub file: String,
    /// Fold/merge/accumulate functions as `Type::fn` pairs; each must
    /// mention every field of the struct.
    pub folds: Vec<String>,
    /// When true, the struct's inherent `encode`/`decode` must exist and
    /// mention every field in declaration order.
    pub wire: bool,
    /// Baseline field list in declaration order. The struct must match
    /// exactly; growth happens by appending to both the struct and this
    /// list, never by reordering.
    pub fields: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            panic_crates: Vec::new(),
            panic_exclude: Vec::new(),
            protocol_version: 1,
            reserved_min: 0xFFFF_0000,
            proto_files: Vec::new(),
            reserved_allowed: Vec::new(),
            non_additive_marker: "wire:non-additive".into(),
            format_files: Vec::new(),
            dataset_format_version: 0,
            format_marker: "format:layout-change".into(),
            lock_order: Vec::new(),
            deny: Vec::new(),
            crate_roots: Vec::new(),
            hot_paths: Vec::new(),
            blocking_crates: Vec::new(),
            blocking_exclude: Vec::new(),
            blocking_methods: Vec::new(),
            blocking_functions: Vec::new(),
            stats: Vec::new(),
        }
    }
}

impl Config {
    /// Parse a `lint.toml` document. Unknown keys are ignored so the file
    /// can grow without breaking old binaries; malformed syntax is an
    /// error naming the line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let raw = parse_toml(text)?;
        let mut cfg = Config::default();
        let get = |section: &str, key: &str| raw.get(&format!("{section}.{key}")).cloned();

        if let Some(v) = get("panic", "crates") {
            cfg.panic_crates = expect_str_array(v, "panic.crates")?;
        }
        if let Some(v) = get("panic", "exclude") {
            cfg.panic_exclude = expect_str_array(v, "panic.exclude")?;
        }
        if let Some(v) = get("wire", "protocol_version") {
            cfg.protocol_version = expect_int(v, "wire.protocol_version")?;
        }
        if let Some(v) = get("wire", "reserved_min") {
            cfg.reserved_min = expect_int(v, "wire.reserved_min")?;
        }
        if let Some(v) = get("wire", "proto_files") {
            cfg.proto_files = expect_str_array(v, "wire.proto_files")?;
        }
        if let Some(v) = get("wire", "reserved_allowed") {
            cfg.reserved_allowed = expect_str_array(v, "wire.reserved_allowed")?;
        }
        if let Some(v) = get("wire", "non_additive_marker") {
            match v {
                Value::Str(s) => cfg.non_additive_marker = s,
                _ => return Err("wire.non_additive_marker: expected string".into()),
            }
        }
        if let Some(v) = get("wire", "format_files") {
            cfg.format_files = expect_str_array(v, "wire.format_files")?;
        }
        if let Some(v) = get("wire", "dataset_format_version") {
            cfg.dataset_format_version = expect_int(v, "wire.dataset_format_version")?;
        }
        if let Some(v) = get("wire", "format_marker") {
            match v {
                Value::Str(s) => cfg.format_marker = s,
                _ => return Err("wire.format_marker: expected string".into()),
            }
        }
        if let Some(v) = get("locks", "order") {
            cfg.lock_order = match v {
                Value::ChainArray(c) => c,
                Value::StrArray(one) => vec![one],
                _ => return Err("locks.order: expected array of string arrays".into()),
            };
        }
        if let Some(v) = get("hygiene", "deny") {
            cfg.deny = expect_str_array(v, "hygiene.deny")?;
        }
        if let Some(v) = get("hygiene", "crate_roots") {
            cfg.crate_roots = expect_str_array(v, "hygiene.crate_roots")?;
        }
        if let Some(v) = get("hygiene", "hot_paths") {
            cfg.hot_paths = expect_str_array(v, "hygiene.hot_paths")?;
        }
        if let Some(v) = get("blocking", "crates") {
            cfg.blocking_crates = expect_str_array(v, "blocking.crates")?;
        }
        if let Some(v) = get("blocking", "exclude") {
            cfg.blocking_exclude = expect_str_array(v, "blocking.exclude")?;
        }
        if let Some(v) = get("blocking", "methods") {
            cfg.blocking_methods = expect_str_array(v, "blocking.methods")?;
        }
        if let Some(v) = get("blocking", "functions") {
            cfg.blocking_functions = expect_str_array(v, "blocking.functions")?;
        }
        cfg.stats = parse_stats_specs(&raw)?;
        Ok(cfg)
    }
}

/// Collect every `[stats.<Name>]` table into a [`StatsSpec`]. The struct
/// name is the table suffix; `file` and `fields` are mandatory.
fn parse_stats_specs(raw: &BTreeMap<String, Value>) -> Result<Vec<StatsSpec>, String> {
    let mut names: Vec<String> = Vec::new();
    for key in raw.keys() {
        if let Some(rest) = key.strip_prefix("stats.") {
            if let Some((name, _)) = rest.split_once('.') {
                if !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
            }
        }
    }
    let mut specs = Vec::new();
    for name in names {
        let get = |key: &str| raw.get(&format!("stats.{name}.{key}")).cloned();
        let file = match get("file") {
            Some(Value::Str(s)) => s,
            Some(_) => return Err(format!("stats.{name}.file: expected string")),
            None => return Err(format!("stats.{name}: missing `file`")),
        };
        let folds = match get("folds") {
            Some(v) => expect_str_array(v, &format!("stats.{name}.folds"))?,
            None => Vec::new(),
        };
        let wire = match get("wire") {
            Some(Value::Bool(b)) => b,
            Some(_) => return Err(format!("stats.{name}.wire: expected boolean")),
            None => false,
        };
        let fields = match get("fields") {
            Some(v) => expect_str_array(v, &format!("stats.{name}.fields"))?,
            None => return Err(format!("stats.{name}: missing `fields` baseline")),
        };
        specs.push(StatsSpec {
            name,
            file,
            folds,
            wire,
            fields,
        });
    }
    Ok(specs)
}

fn expect_str_array(v: Value, key: &str) -> Result<Vec<String>, String> {
    match v {
        Value::StrArray(a) => Ok(a),
        _ => Err(format!("{key}: expected array of strings")),
    }
}

fn expect_int(v: Value, key: &str) -> Result<u64, String> {
    match v {
        Value::Int(i) => Ok(i),
        _ => Err(format!("{key}: expected integer")),
    }
}

/// Flat `section.key -> value` map. Multi-line arrays are joined before
/// value parsing, so `order = [\n ["a", "b"],\n]` works.
fn parse_toml(text: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut out = BTreeMap::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, line)) = lines.next() {
        let lineno = idx + 1;
        let trimmed = strip_comment(line).trim().to_string();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("lint.toml:{lineno}: unterminated table header"))?;
            section = name.trim().to_string();
            continue;
        }
        let eq = trimmed
            .find('=')
            .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = value`"))?;
        let key = trimmed[..eq].trim().to_string();
        let mut value_text = trimmed[eq + 1..].trim().to_string();
        // Join continuation lines until brackets balance.
        while bracket_depth(&value_text) > 0 {
            match lines.next() {
                Some((_, cont)) => {
                    value_text.push(' ');
                    value_text.push_str(strip_comment(cont).trim());
                }
                None => return Err(format!("lint.toml:{lineno}: unterminated array")),
            }
        }
        let full_key = if section.is_empty() {
            key
        } else {
            format!("{section}.{key}")
        };
        out.insert(
            full_key,
            parse_value(&value_text).map_err(|e| format!("lint.toml:{lineno}: {e}"))?,
        );
    }
    Ok(out)
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn bracket_depth(s: &str) -> i32 {
    let mut depth = 0;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let items = split_top_level(body)?;
        if items.is_empty() {
            return Ok(Value::StrArray(Vec::new()));
        }
        if items[0].trim_start().starts_with('[') {
            let mut chains = Vec::new();
            for item in items {
                match parse_value(&item)? {
                    Value::StrArray(a) => chains.push(a),
                    _ => return Err("expected inner array of strings".into()),
                }
            }
            return Ok(Value::ChainArray(chains));
        }
        let mut strs = Vec::new();
        for item in items {
            match parse_value(&item)? {
                Value::Str(v) => strs.push(v),
                _ => return Err("expected string array element".into()),
            }
        }
        return Ok(Value::StrArray(strs));
    }
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        return Ok(Value::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits = s.replace('_', "");
    let parsed = if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        digits.parse::<u64>()
    };
    parsed
        .map(Value::Int)
        .map_err(|_| format!("unrecognized value `{s}`"))
}

/// Split an array body on top-level commas (commas inside nested arrays
/// or strings don't count). A trailing comma is tolerated.
fn split_top_level(body: &str) -> Result<Vec<String>, String> {
    let mut items = Vec::new();
    let mut depth = 0;
    let mut in_str = false;
    let mut cur = String::new();
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '[' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ']' if !in_str => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced brackets".into());
                }
                cur.push(c);
            }
            ',' if !in_str && depth == 0 => {
                if !cur.trim().is_empty() {
                    items.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if in_str {
        return Err("unterminated string in array".into());
    }
    if !cur.trim().is_empty() {
        items.push(cur.trim().to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# comment
[panic]
crates = ["dlib", "windtunnel"]  # trailing comment

[wire]
protocol_version = 1
reserved_min = 0xFFFF_0000
proto_files = [
    "crates/windtunnel/src/proto.rs",
]

[locks]
order = [
    ["sessions", "queue"],
    ["env", "scene"],
]

[hygiene]
deny = ["unsafe_op_in_unsafe_fn"]
"##;

    #[test]
    fn parses_sample() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.panic_crates, vec!["dlib", "windtunnel"]);
        assert_eq!(cfg.protocol_version, 1);
        assert_eq!(cfg.reserved_min, 0xFFFF_0000);
        assert_eq!(cfg.proto_files, vec!["crates/windtunnel/src/proto.rs"]);
        assert_eq!(
            cfg.lock_order,
            vec![
                vec!["sessions".to_string(), "queue".to_string()],
                vec!["env".to_string(), "scene".to_string()]
            ]
        );
        assert_eq!(cfg.deny, vec!["unsafe_op_in_unsafe_fn"]);
    }

    #[test]
    fn errors_name_the_line() {
        let err = Config::parse("[wire]\nprotocol_version = banana").unwrap_err();
        assert!(err.contains("lint.toml:2"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let cfg = Config::parse("[wire]\nnon_additive_marker = \"wire#bump\"").unwrap();
        assert_eq!(cfg.non_additive_marker, "wire#bump");
    }

    #[test]
    fn parses_blocking_and_stats_tables() {
        let cfg = Config::parse(
            r#"
[blocking]
crates = ["dlib", "storage"]
exclude = ["crates/dlib/src/bench.rs"]
methods = ["poll_forever"]
functions = ["nap"]

[stats.StoreIoStats]
file = "crates/storage/src/lib.rs"
folds = ["StoreIoStats::plus"]
fields = ["io_wait_us", "decode_us"]

[stats.FrameStats]
file = "crates/windtunnel/src/proto.rs"
wire = true
fields = ["revision"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.blocking_crates, vec!["dlib", "storage"]);
        assert_eq!(cfg.blocking_exclude, vec!["crates/dlib/src/bench.rs"]);
        assert_eq!(cfg.blocking_methods, vec!["poll_forever"]);
        assert_eq!(cfg.blocking_functions, vec!["nap"]);
        assert_eq!(cfg.stats.len(), 2);
        let io = cfg.stats.iter().find(|s| s.name == "StoreIoStats").unwrap();
        assert_eq!(io.file, "crates/storage/src/lib.rs");
        assert_eq!(io.folds, vec!["StoreIoStats::plus"]);
        assert!(!io.wire);
        assert_eq!(io.fields, vec!["io_wait_us", "decode_us"]);
        let fs = cfg.stats.iter().find(|s| s.name == "FrameStats").unwrap();
        assert!(fs.wire);
        assert!(fs.folds.is_empty());
    }

    #[test]
    fn stats_table_without_fields_is_an_error() {
        let err = Config::parse("[stats.X]\nfile = \"crates/a/src/lib.rs\"").unwrap_err();
        assert!(err.contains("fields"), "{err}");
    }
}
