//! Workspace-wide call graph with fixed-point may-block propagation.
//!
//! The lock pass inlines calls one level; that is not enough for the
//! prefetch/resilient stacks, where a fetch can cross three wrappers
//! before it reaches a channel `recv` or a file read. This module
//! extracts every `fn` item with a crate-qualified key, classifies
//! *direct* blocking primitives (bounded channel `send`/`recv`, thread
//! `join`, condvar waits, socket/file reads, `sleep` backoff), records
//! call sites, and then propagates "may block" to callers until a fixed
//! point. The blocking pass walks guard lifetimes per function and asks
//! this graph whether each call can stall.
//!
//! Resolution is name-based and deliberately conservative in a narrow
//! way: bare and `.method` calls resolve within the caller's crate,
//! `krate::path::fn` calls resolve across crates by the first path
//! segment, `Type::fn` and unknown-crate paths are skipped (no type
//! inference), and `drop` is never a call — it is the guard-release
//! intrinsic.

use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Method names that block the calling thread when invoked with `.`:
/// channel operations, thread join, condvar waits, socket/file I/O.
/// `lint.toml [blocking] methods` extends this set.
pub const BLOCKING_METHODS: [&str; 10] = [
    "send",
    "recv",
    "recv_timeout",
    "join",
    "wait",
    "wait_timeout",
    "read_exact",
    "read_to_end",
    "write_all",
    "flush",
];

/// Of the above, names that only count with an empty argument list —
/// `Path::join("x")` and `Vec::join(", ")` are not thread joins, and
/// `recv` with arguments is somebody's own API, not a channel.
const ZERO_ARG_ONLY: [&str; 2] = ["recv", "join"];

/// Free functions that block: `sleep` catches `std::thread::sleep` and
/// any local backoff helper of the same name. `lint.toml [blocking]
/// functions` extends this set.
pub const BLOCKING_FUNCTIONS: [&str; 1] = ["sleep"];

/// Keywords and intrinsics that must never be treated as call sites.
const NON_CALLS: [&str; 26] = [
    "if", "while", "match", "for", "loop", "return", "break", "continue", "let", "fn", "move",
    "else", "unsafe", "in", "as", "where", "ref", "mut", "dyn", "await", "yield", "box", "impl",
    "use", "drop", "self",
];

/// The blocking-primitive classifier, seeded from built-ins plus the
/// `[blocking]` config section.
pub struct Primitives {
    methods: Vec<String>,
    functions: Vec<String>,
}

impl Primitives {
    pub fn from_config(cfg: &Config) -> Primitives {
        let mut methods: Vec<String> = BLOCKING_METHODS.iter().map(|s| s.to_string()).collect();
        methods.extend(cfg.blocking_methods.iter().cloned());
        let mut functions: Vec<String> = BLOCKING_FUNCTIONS.iter().map(|s| s.to_string()).collect();
        functions.extend(cfg.blocking_functions.iter().cloned());
        Primitives { methods, functions }
    }

    /// If `code[j]` heads a blocking primitive call, describe it
    /// (`` `.recv()` ``, `` `sleep(..)` ``). Lock acquisition
    /// (`.lock()`/`.read()`/`.write()`) is deliberately *not* here —
    /// that is the lock-order pass's territory.
    pub fn classify(&self, code: &[Tok], j: usize) -> Option<String> {
        let t = code.get(j)?;
        if t.kind != TokKind::Ident || !code.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
            return None;
        }
        let after_dot = j > 0 && code[j - 1].is_punct('.');
        if after_dot {
            if !self.methods.iter().any(|m| m == &t.text) {
                return None;
            }
            if ZERO_ARG_ONLY.contains(&t.text.as_str())
                && !code.get(j + 2).map(|n| n.is_punct(')')).unwrap_or(false)
            {
                return None;
            }
            return Some(format!("`.{}()`", t.text));
        }
        if self.functions.iter().any(|m| m == &t.text) {
            return Some(format!("`{}(..)`", t.text));
        }
        None
    }
}

/// `(crate directory, function name)` — the graph's node key. Same-name
/// functions within one crate merge, which makes propagation
/// conservative rather than unsound.
pub type FnKey = (String, String);

/// Why a function may block: the primitive reached, where it is, and
/// the call chain (callee display names, outermost first) that reaches
/// it from the function this record is attached to.
#[derive(Debug, Clone)]
pub struct Blocked {
    pub what: String,
    pub file: String,
    pub line: u32,
    pub chain: Vec<String>,
}

impl Blocked {
    /// `helper -> fetch_sync -> `.recv()` at crates/x/src/lib.rs:9`
    pub fn describe(&self) -> String {
        let mut parts: Vec<String> = self.chain.iter().map(|c| format!("`{c}`")).collect();
        parts.push(format!("{} at {}:{}", self.what, self.file, self.line));
        parts.join(" -> ")
    }
}

/// One extracted `fn` item: name, source line, and the token span of
/// its body (`open` = index of `{`, `close` = index of matching `}`).
pub struct FnItem {
    pub name: String,
    pub line: u32,
    pub open: usize,
    pub close: usize,
}

/// Extract every braced `fn` item from a file, skipping bodies declared
/// on test lines and bodiless trait-method signatures.
pub fn fn_items(file: &SourceFile) -> Vec<FnItem> {
    let code = &file.code;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("fn") || file.is_test_line(code[i].line) {
            i += 1;
            continue;
        }
        let Some(name) = code.get(i + 1) else { break };
        if name.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Find the body's opening brace; a `;` first (outside generics)
        // means a signature without a body.
        let mut j = i + 2;
        let mut open = None;
        let mut angle = 0i32;
        while let Some(t) = code.get(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if t.is_punct(';') && angle == 0 {
                break;
            } else if t.is_punct('{') {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let mut depth = 0i32;
        let mut k = open;
        while let Some(t) = code.get(k) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let close = k.min(code.len().saturating_sub(1));
        out.push(FnItem {
            name: name.text.clone(),
            line: name.line,
            open,
            close,
        });
        i = close + 1;
    }
    out
}

/// Crate directory a workspace-relative path belongs to.
pub fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("workspace-root")
        .to_string()
}

/// If `code[j]` heads a resolvable call site, return the candidate keys
/// to try (in order) and a display string for messages. `None` for
/// keywords, macros (the `(` check excludes them), uppercase-initial
/// names (`Type::method`, tuple constructors), and `drop`.
pub fn call_candidates(
    code: &[Tok],
    j: usize,
    this_crate: &str,
    crate_dirs: &BTreeSet<String>,
) -> Option<(Vec<FnKey>, String)> {
    let t = code.get(j)?;
    if t.kind != TokKind::Ident || !code.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
        return None;
    }
    if NON_CALLS.contains(&t.text.as_str()) {
        return None;
    }
    if t.text
        .chars()
        .next()
        .map(char::is_uppercase)
        .unwrap_or(true)
    {
        return None;
    }
    // `fn name(` is a definition, not a call.
    if j > 0 && code[j - 1].is_ident("fn") {
        return None;
    }
    let after_dot = j > 0 && code[j - 1].is_punct('.');
    if after_dot {
        // Method call: resolve by bare name within the caller's crate.
        return Some((
            vec![(this_crate.to_string(), t.text.clone())],
            t.text.clone(),
        ));
    }
    let segs = path_segments(code, j);
    if segs.len() == 1 {
        return Some((
            vec![(this_crate.to_string(), t.text.clone())],
            t.text.clone(),
        ));
    }
    let first = &segs[0];
    let name = segs.last().cloned()?;
    if first.chars().next().map(char::is_uppercase).unwrap_or(true) {
        return None; // `Type::method` — needs type resolution we don't do.
    }
    let display = segs.join("::");
    let mut candidates = Vec::new();
    if first == "crate" || first == "self" || first == "super" {
        candidates.push((this_crate.to_string(), name));
    } else {
        // A crate-dir match first (`-`/`_` normalized), then the same
        // crate as a fallback — `module::helper(..)` is a local path.
        let norm = first.replace('_', "-");
        if let Some(dir) = crate_dirs.iter().find(|d| d.replace('_', "-") == norm) {
            candidates.push((dir.clone(), name.clone()));
        }
        candidates.push((this_crate.to_string(), name));
        candidates.dedup();
    }
    Some((candidates, display))
}

/// Walk back over `seg::seg::` pairs preceding the final ident at `j`.
fn path_segments(code: &[Tok], j: usize) -> Vec<String> {
    let mut segs = vec![code[j].text.clone()];
    let mut k = j;
    while k >= 3
        && code[k - 1].is_punct(':')
        && code[k - 2].is_punct(':')
        && code[k - 3].kind == TokKind::Ident
    {
        segs.push(code[k - 3].text.clone());
        k -= 3;
    }
    segs.reverse();
    segs
}

/// Given `code[j]` == ident `spawn` followed by `(`, return the index
/// of the matching `)`. Used to carve deferred-execution closures
/// (`thread::spawn(move || ..)`, scoped `s.spawn(..)`) out of the
/// *spawning* function's summary: the spawner does not block, and the
/// spawned thread does not hold the spawner's guards.
pub fn spawn_arg_end(code: &[Tok], j: usize) -> Option<usize> {
    if !code.get(j)?.is_ident("spawn") || !code.get(j + 1)?.is_punct('(') {
        return None;
    }
    let mut depth = 0i32;
    let mut k = j + 1;
    while let Some(t) = code.get(k) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

#[derive(Default)]
struct Summary {
    /// Direct primitive sites: (file, line, what).
    blockers: Vec<(String, u32, String)>,
    /// Call sites: candidate keys plus display path.
    calls: Vec<(Vec<FnKey>, String)>,
}

/// The propagated graph: for each function key that may block, the
/// primitive it reaches and how.
pub struct CallGraph {
    blocked: BTreeMap<FnKey, Blocked>,
    crate_dirs: BTreeSet<String>,
}

impl CallGraph {
    pub fn build(files: &[SourceFile], prims: &Primitives) -> CallGraph {
        let crate_dirs: BTreeSet<String> = files.iter().map(|f| crate_of(&f.rel)).collect();
        let mut fns: BTreeMap<FnKey, Summary> = BTreeMap::new();
        for f in files {
            let krate = crate_of(&f.rel);
            for item in fn_items(f) {
                let slot = fns.entry((krate.clone(), item.name.clone())).or_default();
                summarize_body(f, &item, prims, &krate, &crate_dirs, slot);
            }
        }
        // Seed with direct blockers, then propagate to callers until no
        // function changes. Insert-only, so termination is immediate:
        // every round either marks a new function or stops.
        let mut blocked: BTreeMap<FnKey, Blocked> = BTreeMap::new();
        for (key, s) in &fns {
            if let Some((file, line, what)) = s.blockers.first() {
                blocked.insert(
                    key.clone(),
                    Blocked {
                        what: what.clone(),
                        file: file.clone(),
                        line: *line,
                        chain: Vec::new(),
                    },
                );
            }
        }
        loop {
            let mut added: Vec<(FnKey, Blocked)> = Vec::new();
            for (key, s) in &fns {
                if blocked.contains_key(key) {
                    continue;
                }
                'calls: for (candidates, display) in &s.calls {
                    for cand in candidates {
                        if cand == key {
                            continue; // self-recursion is not evidence
                        }
                        if let Some(b) = blocked.get(cand) {
                            let mut chain = vec![display.clone()];
                            chain.extend(b.chain.iter().cloned());
                            added.push((
                                key.clone(),
                                Blocked {
                                    what: b.what.clone(),
                                    file: b.file.clone(),
                                    line: b.line,
                                    chain,
                                },
                            ));
                            break 'calls;
                        }
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            for (k, b) in added {
                blocked.entry(k).or_insert(b);
            }
        }
        CallGraph {
            blocked,
            crate_dirs,
        }
    }

    /// If `code[j]` heads a call that may transitively block, return
    /// the display path and the propagation record.
    pub fn call_blocked(
        &self,
        code: &[Tok],
        j: usize,
        this_crate: &str,
    ) -> Option<(String, &Blocked)> {
        let (candidates, display) = call_candidates(code, j, this_crate, &self.crate_dirs)?;
        for cand in candidates {
            if let Some(b) = self.blocked.get(&cand) {
                return Some((display, b));
            }
        }
        None
    }

    /// Direct lookup, for tests.
    pub fn fn_blocked(&self, krate: &str, name: &str) -> Option<&Blocked> {
        self.blocked.get(&(krate.to_string(), name.to_string()))
    }
}

/// Record one function body's direct blockers and call sites, skipping
/// test lines and `spawn(..)` argument regions (deferred execution).
fn summarize_body(
    file: &SourceFile,
    item: &FnItem,
    prims: &Primitives,
    krate: &str,
    crate_dirs: &BTreeSet<String>,
    out: &mut Summary,
) {
    let code = &file.code;
    let mut j = item.open;
    while j <= item.close && j < code.len() {
        if let Some(end) = spawn_arg_end(code, j) {
            j = end + 1;
            continue;
        }
        if file.is_test_line(code[j].line) {
            j += 1;
            continue;
        }
        if let Some(what) = prims.classify(code, j) {
            out.blockers.push((file.rel.clone(), code[j].line, what));
        } else if let Some((candidates, display)) = call_candidates(code, j, krate, crate_dirs) {
            out.calls.push((candidates, display));
        }
        j += 1;
    }
    // Deterministic propagation: prefer the earliest-line direct
    // blocker as the representative site.
    out.blockers.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
}
