//! The `--format json` document is a stable interface: check.sh
//! archives it and out-of-tree tooling may read it. These tests pin the
//! schema shape and prove real findings round-trip through the emitter
//! and the bundled parser.

use dvw_lint::json::{self, Json};
use dvw_lint::{Finding, Outcome, Pass};
use std::path::PathBuf;

fn fixture_outcome(name: &str) -> Outcome {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    dvw_lint::run_outcome(&root).expect("fixture lint run")
}

#[test]
fn schema_version_is_pinned() {
    // Bumping this constant is an interface break: update the doc
    // comment in json.rs and every reader of lint_findings.json first.
    assert_eq!(json::SCHEMA_VERSION, 1);
}

/// Render a fixture with both active and allowed findings, parse the
/// document back, and verify every field survives.
#[test]
fn findings_round_trip_through_the_schema() {
    let o = fixture_outcome("blocking_allow");
    assert!(
        !o.findings.is_empty() && !o.allowed.is_empty(),
        "fixture must exercise both halves of the document: {o:#?}"
    );
    let text = json::render(&o);
    let v = json::parse(&text).expect("emitted JSON parses");

    assert_eq!(v.get("schema").and_then(Json::as_i64), Some(1));
    assert_eq!(
        v.get("active").and_then(Json::as_i64),
        Some(o.findings.len() as i64)
    );
    assert_eq!(
        v.get("allowed").and_then(Json::as_i64),
        Some(o.allowed.len() as i64)
    );
    let arr = v.get("findings").and_then(Json::as_arr).expect("findings");
    assert_eq!(arr.len(), o.findings.len() + o.allowed.len());

    // Active findings first, in order, with `reason: null`.
    for (e, f) in arr.iter().zip(o.findings.iter()) {
        assert_eq!(e.get("file").and_then(Json::as_str), Some(f.file.as_str()));
        assert_eq!(e.get("line").and_then(Json::as_i64), Some(f.line as i64));
        assert_eq!(e.get("pass").and_then(Json::as_str), Some(f.pass.name()));
        assert_eq!(
            e.get("message").and_then(Json::as_str),
            Some(f.msg.as_str())
        );
        assert_eq!(e.get("allowed").and_then(Json::as_bool), Some(false));
        assert_eq!(e.get("reason"), Some(&Json::Null));
    }
    // Then the suppressed ones, each carrying its written reason.
    for (e, a) in arr[o.findings.len()..].iter().zip(o.allowed.iter()) {
        let f = &a.finding;
        assert_eq!(e.get("file").and_then(Json::as_str), Some(f.file.as_str()));
        assert_eq!(e.get("line").and_then(Json::as_i64), Some(f.line as i64));
        assert_eq!(e.get("pass").and_then(Json::as_str), Some(f.pass.name()));
        assert_eq!(
            e.get("message").and_then(Json::as_str),
            Some(f.msg.as_str())
        );
        assert_eq!(e.get("allowed").and_then(Json::as_bool), Some(true));
        assert_eq!(
            e.get("reason").and_then(Json::as_str),
            Some(a.reason.as_str())
        );
    }
}

/// Finding messages quote source (backticks, quotes, paths); make sure
/// hostile content survives escaping in both directions.
#[test]
fn escaping_survives_hostile_messages() {
    let msg = "quote \" backslash \\ newline \n tab \t bell \u{7} done";
    let o = Outcome {
        findings: vec![Finding::new(
            "crates/x/src/a.rs",
            7,
            Pass::Blocking,
            msg.into(),
        )],
        allowed: Vec::new(),
    };
    let text = json::render(&o);
    let v = json::parse(&text).expect("hostile message still parses");
    let arr = v.get("findings").and_then(Json::as_arr).expect("findings");
    assert_eq!(arr[0].get("message").and_then(Json::as_str), Some(msg));
}

/// An empty outcome renders the degenerate-but-valid document.
#[test]
fn empty_outcome_renders_empty_array() {
    let text = json::render(&Outcome::default());
    let v = json::parse(&text).expect("empty document parses");
    assert_eq!(v.get("active").and_then(Json::as_i64), Some(0));
    assert_eq!(v.get("allowed").and_then(Json::as_i64), Some(0));
    assert_eq!(
        v.get("findings").and_then(Json::as_arr).map(<[Json]>::len),
        Some(0)
    );
}
