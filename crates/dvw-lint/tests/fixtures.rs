//! Fixture-driven self-tests: each known-bad mini-tree must trip exactly
//! its pass, good input must pass, the escape hatch must suppress only
//! with a written reason — and the real workspace must be clean.

use dvw_lint::{Finding, Pass};
use std::path::PathBuf;

fn fixture(name: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    dvw_lint::run(&root).expect("fixture lint run")
}

fn fixture_outcome(name: &str) -> dvw_lint::Outcome {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    dvw_lint::run_outcome(&root).expect("fixture lint run")
}

fn count(findings: &[Finding], pass: Pass) -> usize {
    findings.iter().filter(|f| f.pass == pass).count()
}

#[test]
fn panic_bad_trips_each_construct_once() {
    let f = fixture("panic_bad");
    assert_eq!(count(&f, Pass::PanicPath), 8, "{f:#?}");
    assert_eq!(f.len(), 8, "only the panic-path pass may fire: {f:#?}");
    for needle in [
        "`.unwrap()`",
        "`.expect(..)`",
        "`panic!`",
        "`todo!`",
        "`unimplemented!`",
        "`as u32`",
        "index/range on `Bytes`",
    ] {
        assert!(
            f.iter().any(|x| x.msg.contains(needle)),
            "missing {needle}: {f:#?}"
        );
    }
    // Both the index and the bounded range trip; the full range does not.
    assert_eq!(
        f.iter().filter(|x| x.msg.contains("index/range")).count(),
        2,
        "{f:#?}"
    );
}

#[test]
fn panic_allow_suppresses_with_reason_only() {
    let f = fixture("panic_allow");
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(
        f.iter().any(|x| x.msg.contains("requires a reason")),
        "{f:#?}"
    );
    // The wrong-pass allow does not suppress the unwrap underneath it.
    assert!(f.iter().any(|x| x.msg.contains("`.unwrap()`")), "{f:#?}");
}

#[test]
fn wire_bad_finds_all_five_violations() {
    let f = fixture("wire_bad");
    assert_eq!(count(&f, Pass::WireProtocol), 5, "{f:#?}");
    assert_eq!(f.len(), 5, "{f:#?}");
    assert!(
        f.iter()
            .any(|x| x.msg.contains("collides with `PROC_HELLO`")),
        "deliberate proc-id collision must be caught: {f:#?}"
    );
    assert!(
        f.iter().any(|x| x.msg.contains("reserved built-in range")),
        "{f:#?}"
    );
    assert!(
        f.iter().any(|x| x.msg.contains("PROTOCOL_VERSION is 2")),
        "{f:#?}"
    );
    assert!(
        f.iter()
            .any(|x| x.msg.contains("`OneWay` defines `encode`")),
        "{f:#?}"
    );
    assert!(
        f.iter().any(|x| x.msg.contains("WireEncode for Lopsided")),
        "{f:#?}"
    );
}

#[test]
fn wire_good_declared_break_passes() {
    let f = fixture("wire_good");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn wire_marker_without_bump_fails() {
    let f = fixture("wire_marker");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(f[0].msg.contains("bump"), "{f:#?}");
}

#[test]
fn format_bump_without_marker_fails() {
    let f = fixture("format_bad");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(
        f[0].msg.contains("DATASET_FORMAT_VERSION is 3")
            && f[0].msg.contains("format:layout-change"),
        "{f:#?}"
    );
}

#[test]
fn format_marker_without_bump_fails() {
    let f = fixture("format_marker");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(
        f[0].msg.contains("PROTOCOL_VERSION stays untouched"),
        "{f:#?}"
    );
}

#[test]
fn locks_bad_finds_direct_inlined_and_cycle() {
    let f = fixture("locks_bad");
    assert_eq!(count(&f, Pass::LockOrder), 3, "{f:#?}");
    assert_eq!(f.len(), 3, "{f:#?}");
    assert_eq!(
        f.iter()
            .filter(|x| x.msg.contains("while holding `queue`"))
            .count(),
        2,
        "direct + via-call inversions: {f:#?}"
    );
    assert!(
        f.iter()
            .any(|x| x.msg.contains("via call to `take_sessions`")),
        "{f:#?}"
    );
    assert!(f.iter().any(|x| x.msg.contains("cycle")), "{f:#?}");
}

#[test]
fn locks_good_release_patterns_pass() {
    let f = fixture("locks_good");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn hygiene_bad_finds_all_five() {
    let f = fixture("hygiene_bad");
    assert_eq!(count(&f, Pass::Hygiene), 5, "{f:#?}");
    assert_eq!(f.len(), 5, "{f:#?}");
    assert!(
        f.iter()
            .any(|x| x.msg.contains("missing `#![deny(unused_must_use)]`")),
        "{f:#?}"
    );
    assert!(
        f.iter().any(|x| x.msg.contains("crate root missing")),
        "{f:#?}"
    );
    assert!(f.iter().any(|x| x.msg.contains("`dbg!`")), "{f:#?}");
    assert!(f.iter().any(|x| x.msg.contains("`eprintln!`")), "{f:#?}");
    assert_eq!(
        f.iter().filter(|x| x.msg.contains("SAFETY")).count(),
        1,
        "only the undocumented block: {f:#?}"
    );
}

#[test]
fn blocking_bad_trips_each_construct_once() {
    let f = fixture("blocking_bad");
    assert_eq!(count(&f, Pass::Blocking), 4, "{f:#?}");
    assert_eq!(f.len(), 4, "only the blocking pass may fire: {f:#?}");
    assert!(
        f.iter().any(|x| x
            .msg
            .contains("blocks on `.send()` while holding `state` guard")),
        "direct send-under-guard: {f:#?}"
    );
    // Two hops below the guard holder: top -> mid -> leaf -> recv. A
    // single level of inlining would miss this.
    assert!(
        f.iter().any(|x| x
            .msg
            .contains("calls `mid`, which may block (`leaf` -> `.recv()` at")
            && x.msg.contains("while holding `state` guard")),
        "fixed-point call chain: {f:#?}"
    );
    assert!(
        f.iter()
            .any(|x| x.msg.contains("inside a `.par_iter()` closure")),
        "blocking in a rayon closure: {f:#?}"
    );
    assert!(
        f.iter().any(|x| x
            .msg
            .contains("blocks on `sleep(..)` while holding `m` guard")),
        "sleep-under-guard: {f:#?}"
    );
}

#[test]
fn blocking_good_release_patterns_pass() {
    let f = fixture("blocking_good");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn blocking_allow_reasoned_suppresses_bare_fails() {
    let o = fixture_outcome("blocking_allow");
    assert_eq!(o.findings.len(), 1, "{o:#?}");
    assert!(o.findings[0].msg.contains("requires a reason"), "{o:#?}");
    // The reasoned allow is archived, not discarded.
    assert_eq!(o.allowed.len(), 1, "{o:#?}");
    assert_eq!(o.allowed[0].finding.pass, Pass::Blocking, "{o:#?}");
    assert!(
        o.allowed[0].reason.contains("token-channel return"),
        "{o:#?}"
    );
}

#[test]
fn blocking_xcrate_chain_crosses_crates() {
    let f = fixture("blocking_xcrate");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(
        f[0].msg.contains("fetch_sync")
            && f[0].msg.contains("`.recv()` at crates/alpha/src/lib.rs:4")
            && f[0].msg.contains("while holding `state` guard"),
        "{f:#?}"
    );
    assert_eq!(f[0].file, "crates/beta/src/lib.rs", "{f:#?}");
}

#[test]
fn stats_bad_fold_names_the_dropped_field() {
    let f = fixture("stats_bad_fold");
    assert_eq!(count(&f, Pass::Stats), 1, "{f:#?}");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(
        f[0].msg
            .contains("fold `Agg::plus` never mentions field `b`"),
        "{f:#?}"
    );
}

#[test]
fn stats_bad_wire_finds_all_four_violations() {
    let f = fixture("stats_bad_wire");
    assert_eq!(count(&f, Pass::Stats), 4, "{f:#?}");
    assert_eq!(f.len(), 4, "{f:#?}");
    assert!(
        f.iter()
            .any(|x| x.msg.contains("`Wire::encode` never writes field `c`")),
        "dropped wire field: {f:#?}"
    );
    assert!(
        f.iter().any(|x| x
            .msg
            .contains("`Wire::encode` writes `b` where declaration order has `a`")),
        "swapped wire order: {f:#?}"
    );
    assert!(
        f.iter().any(|x| x
            .msg
            .contains("declaration order of `Reorder` diverges from the baseline at position 0")),
        "reorder against baseline: {f:#?}"
    );
    assert!(
        f.iter().any(|x| x
            .msg
            .contains("field `q` of `Grown` is appended but missing from the lint.toml baseline")),
        "stale baseline: {f:#?}"
    );
}

#[test]
fn stats_good_contract_kept_passes() {
    let f = fixture("stats_good");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn clean_tree_fixture_passes_every_pass() {
    let f = fixture("clean_tree");
    assert!(f.is_empty(), "{f:#?}");
}

/// The real workspace must uphold its own declared invariants — the same
/// gate `scripts/check.sh` runs, enforced from `cargo test` too.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let f = dvw_lint::run(&root).expect("workspace lint run");
    assert!(
        f.is_empty(),
        "workspace violates its own invariants:\n{}",
        f.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
