//! A fold that forgot a counter: `plus` folds `a` but silently drops
//! `b`, so the merged stats report zero `b` forever.

pub struct Agg {
    pub a: u64,
    pub b: u64,
}

impl Agg {
    pub fn plus(&mut self, o: &Agg) {
        self.a += o.a;
    }
}
