//! Escape-hatch behaviour: a reasoned `lint:allow` suppresses, a
//! reasonless one is itself a finding.

pub fn allowed_inline(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(panic-path): populated two lines above, provably Some
}

pub fn allowed_above(v: Option<u32>) -> u32 {
    // lint:allow(panic-path): checked by caller
    v.unwrap()
}

pub fn allowed_cast(n: usize) -> u32 {
    // lint:allow(panic-path): n is a bounded index
    n as u32
}

pub fn reasonless(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(panic-path)
}

pub fn wrong_pass(v: Option<u32>) -> u32 {
    // lint:allow(lock-order): wrong pass name, does not suppress
    v.unwrap()
}
