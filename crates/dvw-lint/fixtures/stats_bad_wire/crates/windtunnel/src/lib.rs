//! Wire-plane violations: an encode that swaps two fields and drops a
//! third, a struct reordered against its baseline, and a field appended
//! without updating the baseline.

pub struct Wire {
    pub a: u64,
    pub b: u64,
    pub c: u64,
}

impl Wire {
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.b.to_le_bytes());
        out.extend_from_slice(&self.a.to_le_bytes());
    }

    pub fn decode(buf: &[u8]) -> Wire {
        let a = rd(buf, 0);
        let b = rd(buf, 8);
        let c = rd(buf, 16);
        Wire { a, b, c }
    }
}

pub struct Reorder {
    pub y: u64,
    pub x: u64,
}

pub struct Grown {
    pub p: u64,
    pub q: u64,
}
