//! Lock usage that respects the declared order, including the release
//! patterns the analyzer must understand: `drop()`, statement-scoped
//! temporaries, and block scoping.

use parking_lot::Mutex;

pub struct Server {
    sessions: Mutex<u32>,
    queue: Mutex<u32>,
}

impl Server {
    pub fn ordered(&self) {
        let s = self.sessions.lock();
        let q = self.queue.lock();
        drop(q);
        drop(s);
    }

    /// `queue` is explicitly dropped before `sessions`: sequential, not
    /// nested.
    pub fn sequential(&self) {
        let q = self.queue.lock();
        drop(q);
        let s = self.sessions.lock();
        drop(s);
    }

    /// The temporary guard dies at the end of the statement.
    pub fn temporary(&self) {
        self.queue.lock().checked_add(1);
        let s = self.sessions.lock();
        drop(s);
    }

    /// The inner-block guard dies at the closing brace.
    pub fn scoped(&self) {
        {
            let q = self.queue.lock();
            drop(q);
        }
        let s = self.sessions.lock();
        drop(s);
    }

    /// Reads and writes with arguments are I/O, not lock acquisition.
    pub fn io_read(&self, stream: &mut impl std::io::Read) {
        let q = self.queue.lock();
        let mut buf = [0u8; 4];
        let _ = stream.read(&mut buf);
        drop(q);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_anything() {
        let s = super::Server {
            sessions: parking_lot::Mutex::new(0),
            queue: parking_lot::Mutex::new(0),
        };
        let q = s.queue.lock();
        let g = s.sessions.lock();
        drop(g);
        drop(q);
    }
}
