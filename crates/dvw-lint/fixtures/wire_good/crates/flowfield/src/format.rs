//! A declared container layout change: marker present, version bumped
//! past the baseline, protocol version untouched.

// format:layout-change — timestep payload split into compressed chunks.
pub const DATASET_FORMAT_VERSION: u32 = 3;
