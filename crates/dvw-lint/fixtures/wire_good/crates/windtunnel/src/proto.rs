//! A healthy proto file: a declared non-additive change (marker present,
//! version bumped past the baseline), unique unreserved ids, and fully
//! paired codecs.

// wire:non-additive — the frame header gained a mandatory field.
pub const PROTOCOL_VERSION: u32 = 2;

pub const PROC_HELLO: u32 = 0x0057_0001;
pub const PROC_COMMAND: u32 = 0x0057_0002;
pub const PROC_FRAME: u32 = 0x0057_0003;

pub struct Frame;

impl Frame {
    pub fn encode_into(&self, _b: &mut Vec<u8>) {}

    pub fn decode_from(_buf: &[u8]) -> Frame {
        Frame
    }
}
