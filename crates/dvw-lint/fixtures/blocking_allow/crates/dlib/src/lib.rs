//! The escape hatch: a reasoned allow suppresses, a bare allow is
//! itself a finding.

pub struct Pool {
    state: Mutex<State>,
    tokens: Sender<()>,
}

impl Pool {
    pub fn return_token(&self) {
        let st = self.state.lock();
        // lint:allow(blocking): token-channel return; capacity equals pool size so this never blocks
        self.tokens.send(());
        drop(st);
    }

    pub fn bare_allow(&self) {
        let st = self.state.lock();
        self.tokens.send(()); // lint:allow(blocking)
        drop(st);
    }
}
