//! No `#![deny(...)]` table at all — one finding per required lint,
//! plus whatever `hot.rs` contributes.

pub mod hot;

/// An unsafe block with no SAFETY comment.
pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

/// SAFETY within the window: must NOT trip.
// SAFETY: caller guarantees `p` points at a live, aligned u32.
pub fn documented(p: *const u32) -> u32 {
    unsafe { *p }
}
