//! A declared hot path with debug prints in live code.

pub fn serve_one(frame: u64) {
    dbg!(frame);
    eprintln!("serving {frame}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_fine() {
        println!("ok");
        eprintln!("ok");
    }
}
