//! Container layout moved (chunk table gained a field) but nobody wrote
//! the layout-change marker: the bump is undeclared.

pub const DATASET_FORMAT_VERSION: u32 = 3;
