//! The protocol side is healthy — the dataset container is what moved.

pub const PROTOCOL_VERSION: u32 = 1;
