//! The contract kept: baseline matches declaration order, the fold
//! touches every field, and the codec covers every field in order.

pub struct Agg {
    pub a: u64,
    pub b: u64,
}

impl Agg {
    pub fn plus(&mut self, o: &Agg) {
        self.a += o.a;
        self.b += o.b;
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
    }

    pub fn decode(buf: &[u8]) -> Agg {
        let a = rd(buf, 0);
        let b = rd(buf, 8);
        Agg { a, b }
    }
}
