//! Known-bad blocking patterns: every construct here must trip the
//! blocking pass exactly once.

pub struct Pool {
    state: Mutex<State>,
    m: Mutex<u32>,
    tx: Sender<u32>,
    rx: Receiver<u32>,
}

impl Pool {
    /// Direct: a channel send while a guard is live.
    pub fn send_under_guard(&self) {
        let st = self.state.lock();
        self.tx.send(st.next);
        drop(st);
    }

    /// Two-level interprocedural: top -> mid -> leaf -> recv. One-level
    /// inlining would miss this; fixed-point propagation must not.
    fn leaf(&self) -> u32 {
        self.rx.recv()
    }

    fn mid(&self) -> u32 {
        self.leaf()
    }

    pub fn top(&self) -> u32 {
        let g = self.state.lock();
        let v = self.mid();
        drop(g);
        v
    }

    /// Blocking inside a rayon closure stalls the pool even without a
    /// guard.
    pub fn par_block(&self, data: &[u32]) -> u32 {
        data.par_iter().map(|_| self.rx.recv()).sum();
    }

    /// Sleep-style backoff while holding a guard.
    pub fn backoff_under_guard(&self) {
        let g = self.m.lock();
        thread::sleep(Duration::from_millis(1));
        drop(g);
    }
}
