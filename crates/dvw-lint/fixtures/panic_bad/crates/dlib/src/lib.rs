//! Seeded panic-path violations: each construct below must trip the
//! panic-path pass exactly once, and nothing else.

use bytes::Bytes;

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("always there")
}

pub fn bad_panic() {
    panic!("boom");
}

pub fn bad_todo() {
    todo!()
}

pub fn bad_unimplemented() {
    unimplemented!()
}

pub fn bad_index(buf: &Bytes) -> u8 {
    buf[0]
}

pub fn bad_range(buf: Bytes) -> Bytes {
    buf.slice_ref(&buf[4..8])
}

pub fn bad_cast(n: usize) -> u32 {
    n as u32
}

// The full range cannot panic: must NOT trip.
pub fn ok_full_range(buf: &Bytes) -> &[u8] {
    &buf[..]
}

// A non-Bytes slice index: out of scope for this pass.
pub fn ok_vec_index(v: &[u8]) -> u8 {
    v[0]
}

// Widening never truncates: must NOT trip.
pub fn ok_widen(n: u32) -> u64 {
    n as u64
}

// Strings and comments must not leak tokens into the analysis.
pub fn ok_string() -> &'static str {
    // panic!("this is a comment, not code")
    "x.unwrap() and panic!(..) inside a string"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        let n = 5usize;
        let _ = n as u32;
    }
}
