//! The caller crate: holds a guard across a cross-crate call whose
//! body blocks. Only the call graph can see this.

pub struct Cache {
    state: Mutex<State>,
    rx: Receiver<u32>,
}

impl Cache {
    pub fn tick(&self) -> u32 {
        let st = self.state.lock();
        let v = alpha::fetch_sync(&self.rx);
        drop(st);
        v
    }
}
