//! The callee crate: a free function that blocks on a channel.

pub fn fetch_sync(rx: &Receiver<u32>) -> u32 {
    rx.recv()
}
