//! A non-additive change was declared but the version never moved: the
//! marker requires `PROTOCOL_VERSION` to exceed the lint.toml baseline.

// wire:non-additive — rake chunk layout changed incompatibly.
pub const PROTOCOL_VERSION: u32 = 1;

pub const PROC_HELLO: u32 = 0x0057_0001;
