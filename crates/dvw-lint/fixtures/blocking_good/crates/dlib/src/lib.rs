//! Release patterns the blocking pass must accept: dropped guards,
//! scoped guards, non-blocking variants, arity look-alikes, and spawn
//! closures (the spawned thread does not inherit the spawner's guards).

pub struct Pool {
    state: Mutex<State>,
    tx: Sender<u32>,
    rx: Receiver<u32>,
}

impl Pool {
    /// Guard explicitly dropped before the send.
    pub fn drop_then_send(&self) {
        let st = self.state.lock();
        let v = st.next;
        drop(st);
        self.tx.send(v);
    }

    /// Guard confined to an inner scope, blocking after it closes.
    pub fn scope_then_recv(&self) -> u32 {
        {
            let st = self.state.lock();
            st.touch();
        }
        self.rx.recv()
    }

    /// `Path::join` takes an argument — not a thread join.
    pub fn path_join(&self, dir: &Path) -> PathBuf {
        let g = self.state.lock();
        let p = dir.join("chunk.bin");
        drop(g);
        p
    }

    /// `try_send` never blocks; holding a guard across it is fine.
    pub fn try_send_under_guard(&self) {
        let st = self.state.lock();
        let _ = self.tx.try_send(st.next);
        drop(st);
    }

    /// Blocking with no guard held is this crate's bread and butter.
    pub fn plain_recv(&self) -> u32 {
        self.rx.recv()
    }

    /// The spawned closure blocks, but on its own thread without the
    /// spawner's guard; the worker takes and releases its own guard
    /// before its blocking call.
    pub fn spawn_worker(&self) {
        let g = self.state.lock();
        thread::spawn(move || loop {
            {
                let st = self.state.lock();
                st.touch();
            }
            let _ = self.rx.recv();
        });
        drop(g);
    }
}
