#![deny(unused_must_use)]
//! A file that is simultaneously panic-free, wire-consistent,
//! lock-ordered, and hygienic — every pass runs here and none fires.

use parking_lot::Mutex;

pub const PROTOCOL_VERSION: u32 = 1;

pub const PROC_HELLO: u32 = 0x0057_0001;
pub const PROC_FRAME: u32 = 0x0057_0002;

pub struct Msg;

impl Msg {
    pub fn encode(&self) -> Vec<u8> {
        Vec::new()
    }

    pub fn decode(_buf: &[u8]) -> Option<Msg> {
        Some(Msg)
    }
}

pub struct Server {
    sessions: Mutex<u32>,
    queue: Mutex<u32>,
}

impl Server {
    pub fn tick(&self) -> Option<u32> {
        let s = self.sessions.lock();
        let q = self.queue.lock();
        let sum = s.checked_add(*q)?;
        drop(q);
        drop(s);
        Some(sum)
    }
}

// SAFETY: the pointer comes from a live reference one line down.
pub fn read_first(v: &[u32; 4]) -> u32 {
    unsafe { *v.as_ptr() }
}
