//! A layout change was declared but the version never moved: the marker
//! requires `DATASET_FORMAT_VERSION` to exceed the lint.toml baseline.

// format:layout-change — per-chunk checksum widened to 64 bits.
pub const DATASET_FORMAT_VERSION: u32 = 2;
