//! Protocol untouched, as a container layout change requires.

pub const PROTOCOL_VERSION: u32 = 1;
