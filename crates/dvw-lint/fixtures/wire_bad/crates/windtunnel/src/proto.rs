//! Seeded wire-protocol violations: version drift without a marker, a
//! proc-id collision, a reserved-range id, and two one-way codecs.

pub const PROTOCOL_VERSION: u32 = 2;

pub const PROC_HELLO: u32 = 0x0057_0001;
pub const PROC_CLONE: u32 = 0x0057_0001;
pub const PROC_EVIL: u32 = 0xFFFF_0002;
pub const PROC_FRAME: u32 = 0x0057_0003;

pub struct OneWay;

impl OneWay {
    pub fn encode(&self) -> Vec<u8> {
        Vec::new()
    }
}

pub struct Paired;

impl Paired {
    pub fn encode(&self) -> Vec<u8> {
        Vec::new()
    }

    pub fn decode(_buf: &[u8]) -> Paired {
        Paired
    }
}

pub struct Lopsided;

impl WireEncode for Lopsided {
    fn encode_to(&self, _out: &mut Vec<u8>) {}
}

pub struct Balanced;

impl WireEncode for Balanced {
    fn encode_to(&self, _out: &mut Vec<u8>) {}
}

impl WireDecode for Balanced {
    fn decode_from(_buf: &[u8]) -> Balanced {
        Balanced
    }
}
