//! Seeded lock-order inversions: a direct one, one hidden behind a call
//! (caught by one-level inlining), and a correct-order function that
//! completes the cycle in the observed graph.

use parking_lot::Mutex;

pub struct Server {
    sessions: Mutex<u32>,
    queue: Mutex<u32>,
}

impl Server {
    /// Direct inversion: takes `queue`, then `sessions`.
    pub fn inverted(&self) {
        let q = self.queue.lock();
        let s = self.sessions.lock();
        drop(s);
        drop(q);
    }

    fn take_sessions(&self) {
        let s = self.sessions.lock();
        drop(s);
    }

    /// Inversion through a call: holds `queue` across `take_sessions`.
    pub fn inverted_via_call(&self) {
        let q = self.queue.lock();
        self.take_sessions();
        drop(q);
    }

    /// Declared order, no finding by itself — but together with the
    /// inversions it closes a `sessions -> queue -> sessions` cycle.
    pub fn ordered(&self) {
        let s = self.sessions.lock();
        let q = self.queue.lock();
        drop(q);
        drop(s);
    }
}
