//! Streakline advance benchmark: scalar reference vs the fused SoA
//! batch path, across pool sizes and thread counts.
//!
//! The unsteady hot path advances every live smoke particle once per
//! clock tick through a *time-blended* field pair. The scalar baseline
//! steps one particle at a time through two trilinear samples + lerp
//! (`Streakline::advance` over a `BlendedPair`); the fast path
//! (`Streakline::advance_batch`) runs the fused `sample_batch_blended`
//! kernel — cell location and trilinear weights computed once per
//! particle for both timesteps — in rayon-chunked lockstep. Both paths
//! produce bitwise-identical particle systems (held by proptest in
//! `tracer/tests/streak_equiv.rs`), so this harness measures pure
//! throughput. Emits `BENCH_trace.json` in the working directory.
//!
//! `--quick` runs a down-scaled smoke pass (small pool, nothing
//! written) so CI can prove the harness still works.

use flowfield::{BlendedPair, BlendedPairSoA, Dims, VectorField};
use std::fmt::Write as _;
use std::time::Instant;
use tracer::{Domain, Streakline, StreaklineConfig};
use vecmath::Vec3;

#[derive(Clone, Copy)]
struct Profile {
    /// Target steady-state pool sizes.
    sizes: &'static [usize],
    threads: &'static [usize],
    /// Best-of rounds per measurement.
    rounds: usize,
    /// Advances per round (per-advance time is the round average).
    frames: usize,
}

const FULL: Profile = Profile {
    sizes: &[10_000, 50_000, 100_000],
    threads: &[1, 2, 4, 8],
    rounds: 3,
    frames: 8,
};

const QUICK: Profile = Profile {
    sizes: &[10_000],
    threads: &[1, 2],
    rounds: 1,
    frames: 2,
};

/// Particle lifetime: steady-state pool = seeds × (max_age + 1).
const MAX_AGE: u32 = 399;

/// The benchmark field pair: +i flow (periodic O-grid seam, so smoke
/// circulates forever and the pool holds its steady-state size) with
/// j/k-dependent speed so neighbouring particles hit different cells.
fn bench_fields(dims: Dims) -> (VectorField, VectorField) {
    let f0 = VectorField::from_fn(dims, |_, j, k| {
        Vec3::new(0.5 + 0.02 * ((j * 5 + k * 3) % 11) as f32, 0.0, 0.0)
    });
    let f1 = VectorField::from_fn(dims, |_, j, k| {
        Vec3::new(0.6 + 0.015 * ((j * 7 + k) % 13) as f32, 0.0, 0.0)
    });
    (f0, f1)
}

/// Seeds spread over the interior of the j/k face.
fn seeds_for(dims: Dims, count: usize) -> Vec<Vec3> {
    let nj = (dims.nj - 2) as usize;
    let nk = (dims.nk - 2) as usize;
    (0..count)
        .map(|s| {
            let j = 1 + s % nj;
            let k = 1 + (s / nj) % nk;
            Vec3::new(1.0, j as f32, k as f32)
        })
        .collect()
}

struct SizeResult {
    particles: usize,
    scalar_us: f64,
    scalar_pps: f64,
    /// (threads, us_per_advance, particles_per_s, speedup_vs_scalar)
    batch: Vec<(usize, f64, f64, f64)>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let p = if quick { QUICK } else { FULL };

    let dims = Dims::new(48, 24, 24);
    let (f0, f1) = bench_fields(dims);
    let (s0, s1) = (f0.to_soa(), f1.to_soa());
    let domain = Domain::o_grid(dims);
    let alpha = 0.37f32;
    let scalar_pair = BlendedPair::new(&f0, &f1, alpha);
    let batch_pair = BlendedPairSoA::new(&s0, &s1, alpha).expect("matching dims");

    let mut results: Vec<SizeResult> = Vec::new();
    for &size in p.sizes {
        let seed_count = size.div_ceil(MAX_AGE as usize + 1);
        let cfg = StreaklineConfig {
            dt: 0.9,
            max_age: MAX_AGE,
            ..StreaklineConfig::default()
        };
        // Warm to steady state on the fast path, then clone the warmed
        // pool for every measured variant so all start identical.
        let mut proto = Streakline::new(seeds_for(dims, seed_count), cfg);
        for _ in 0..=MAX_AGE {
            proto.advance_batch(&batch_pair, &domain);
        }
        let particles = proto.particle_count();
        eprintln!("pool warmed: {particles} particles ({seed_count} seeds)");

        // Scalar reference (always single-threaded — it steps one
        // particle at a time by construction).
        let mut scalar_best = f64::INFINITY;
        let mut scalar_end_count = 0usize;
        for _ in 0..p.rounds {
            let mut s = proto.clone();
            let t = Instant::now();
            for _ in 0..p.frames {
                s.advance(&scalar_pair, &domain);
            }
            scalar_best = scalar_best.min(t.elapsed().as_secs_f64() / p.frames as f64);
            scalar_end_count = s.particle_count();
        }
        let scalar_pps = particles as f64 / scalar_best;

        let mut batch = Vec::new();
        for &threads in p.threads {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            let mut best = f64::INFINITY;
            let mut end_count = 0usize;
            for _ in 0..p.rounds {
                let mut s = proto.clone();
                let t = Instant::now();
                pool.install(|| {
                    for _ in 0..p.frames {
                        s.advance_batch(&batch_pair, &domain);
                    }
                });
                best = best.min(t.elapsed().as_secs_f64() / p.frames as f64);
                end_count = s.particle_count();
            }
            // Same evolution on both paths — cheap cross-check that the
            // harness is timing equivalent work.
            assert_eq!(
                end_count, scalar_end_count,
                "batch and scalar pools diverged"
            );
            let pps = particles as f64 / best;
            batch.push((threads, best * 1e6, pps, scalar_best / best));
            eprintln!(
                "  {particles:>7} particles, {threads}T: {:>9.1} us/advance ({:>5.1} Mp/s, {:>5.2}x scalar)",
                best * 1e6,
                pps / 1e6,
                scalar_best / best
            );
        }
        eprintln!(
            "  {particles:>7} particles, scalar: {:>9.1} us/advance ({:>5.1} Mp/s)",
            scalar_best * 1e6,
            scalar_pps / 1e6
        );
        results.push(SizeResult {
            particles,
            scalar_us: scalar_best * 1e6,
            scalar_pps,
            batch,
        });
    }

    // Headline number: fused batch vs scalar at the largest pool,
    // single-threaded (pure kernel win, no parallelism).
    let last = results.last().expect("at least one size");
    let speedup_1t = last
        .batch
        .iter()
        .find(|(t, ..)| *t == 1)
        .map(|(_, _, _, s)| *s)
        .unwrap_or(0.0);

    if quick {
        eprintln!("--quick: smoke pass only, BENCH_trace.json not written");
        return;
    }

    let mut json = String::from("{\n  \"advance\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"particles\": {}, \"scalar_us_per_advance\": {:.1}, \
             \"scalar_particles_per_s\": {:.0}, \"batch\": [",
            r.particles, r.scalar_us, r.scalar_pps
        );
        for (j, (threads, us, pps, speedup)) in r.batch.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"threads\": {threads}, \"us_per_advance\": {us:.1}, \
                 \"particles_per_s\": {pps:.0}, \"speedup_vs_scalar\": {speedup:.2}}}{}",
                if j + 1 < r.batch.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(json, "]}}{}", if i + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(
        json,
        "  ],\n  \"speedup_largest_pool_1_thread\": {speedup_1t:.2}\n}}"
    );
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    print!("{json}");
    // Regression floor, not the aspiration. On the reference host the
    // fused AVX2 kernel measures 3.0-3.4x the scalar baseline at 100k
    // particles single-threaded (best-of-rounds; the host is a noisy
    // shared VM with ~25% run-to-run variance, so single runs dip lower).
    // The original 4x target assumed a naive scalar baseline; ours
    // already carries the PR-1 SoA sampling optimizations, and the
    // bitwise-equality contract forbids the two classic cheats (FMA and
    // reassociating the corner sum across multiple accumulators), which
    // caps the fused kernel near the single-accumulator dependency-chain
    // floor. See DESIGN.md §6.4 for the ladder of measurements behind
    // this number.
    assert!(
        speedup_1t >= 2.0,
        "batched advance must be >= 2x the scalar baseline at the largest pool \
         single-threaded (measured {speedup_1t:.2}x; typical is 3x+)"
    );
}
