//! Delta-protocol benchmark: bytes/frame and end-to-end latency of
//! FRAME_DELTA vs the full-frame RPC, across the three workloads the
//! paper's interaction budget cares about — head-pose-only churn, a
//! single dragged rake, and timestep playback — at 1, 2, and 4 simulated
//! clients. Also verifies the encode-once broadcast property: per-rake
//! chunks are encoded once per content change no matter how many clients
//! pull the revision. Emits `BENCH_delta.json` in the working directory.
//!
//! `--quick` runs a down-scaled smoke pass (tiny workload, one client
//! count, nothing written) so CI can prove the harness still works.

use flowfield::{
    dataset::VelocityCoords, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use storage::MemoryStore;
use tracer::{ToolKind, TraceConfig};
use vecmath::{Aabb, Pose, Vec3};
use vr::Gesture;
use windtunnel::client::WindtunnelClient;
use windtunnel::compute::ComputeConfig;
use windtunnel::proto::{Command, TimeCommand};
use windtunnel::server::{serve, ServerOptions, WindtunnelHandle};

/// Benchmark scale. The full profile puts ~100k path points on the wire
/// (Table 1's largest interactive row): 8 rakes x 25 seeds x 501 points.
#[derive(Clone, Copy)]
struct Profile {
    rakes: u32,
    seeds_per_rake: u32,
    max_points: usize,
    frames: usize,
    client_counts: &'static [usize],
}

const FULL: Profile = Profile {
    rakes: 8,
    seeds_per_rake: 25,
    max_points: 500,
    frames: 20,
    client_counts: &[1, 2, 4],
};

const QUICK: Profile = Profile {
    rakes: 2,
    seeds_per_rake: 3,
    max_points: 20,
    frames: 3,
    client_counts: &[2],
};

fn start_server(p: &Profile) -> WindtunnelHandle {
    let dims = Dims::new(32, 17, 17);
    let grid = CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(31.0, 16.0, 16.0)))
        .unwrap();
    let meta = DatasetMeta {
        name: "bench-delta".into(),
        dims,
        timestep_count: 8,
        dt: 0.1,
        coords: VelocityCoords::Grid,
    };
    // A slow uniform field: streamlines run to max_points without leaving
    // the domain, so the wire payload is deterministic.
    let fields = (0..8)
        .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X * 0.1))
        .collect();
    let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
    let store = Arc::new(MemoryStore::from_dataset(ds));
    let opts = ServerOptions {
        compute: ComputeConfig {
            trace: TraceConfig {
                dt: 0.25,
                max_points: p.max_points,
                ..TraceConfig::default()
            },
            ..ComputeConfig::default()
        },
        ..ServerOptions::default()
    };
    serve(store, grid, opts, "127.0.0.1:0").unwrap()
}

/// Rake `i`'s endpoints (spread along y/z so drags never collide).
fn rake_endpoints(i: u32) -> (Vec3, Vec3) {
    let y = 2.0 + (i % 4) as f32 * 3.0;
    let z = 4.0 + (i / 4) as f32 * 6.0;
    (Vec3::new(1.0, y, z), Vec3::new(1.0, y + 2.0, z))
}

fn add_rakes(driver: &mut WindtunnelClient, p: &Profile) {
    for i in 0..p.rakes {
        let (a, b) = rake_endpoints(i);
        driver
            .send(&Command::AddRake {
                a,
                b,
                seed_count: p.seeds_per_rake,
                tool: ToolKind::Streamline,
            })
            .unwrap();
    }
}

/// One workload's per-frame mutation, applied through the driving client.
#[derive(Clone, Copy)]
enum Mutation {
    HeadPose,
    Drag,
    Playback,
}

struct WorkloadResult {
    workload: &'static str,
    clients: usize,
    total_points: usize,
    delta_bytes_per_frame: f64,
    full_bytes_per_frame: f64,
    reduction: f64,
    delta_frame_us: f64,
    full_frame_us: f64,
    /// Chunk encodes during the measured delta phase — must not scale
    /// with the client count (encode-once broadcast).
    chunk_encodes: u64,
}

fn run_workload(
    name: &'static str,
    mutation: Mutation,
    n_clients: usize,
    p: &Profile,
) -> WorkloadResult {
    let handle = start_server(p);
    let mut clients: Vec<WindtunnelClient> = (0..n_clients)
        .map(|_| WindtunnelClient::connect(handle.addr()).unwrap())
        .collect();
    add_rakes(&mut clients[0], p);

    // Drag workload: hold the first rake's center for the whole run.
    let (a0, b0) = rake_endpoints(0);
    let center = (a0 + b0) * 0.5;
    if matches!(mutation, Mutation::Drag) {
        clients[0]
            .send(&Command::Hand {
                position: center,
                gesture: Gesture::Fist,
            })
            .unwrap();
    }
    if matches!(mutation, Mutation::Playback) {
        clients[0].send(&Command::Time(TimeCommand::Play)).unwrap();
    }

    // Warmup: every client receives its keyframe; measure payload size.
    let mut total_points = 0;
    for c in clients.iter_mut() {
        total_points = c.frame_delta(false).unwrap().particle_count();
    }
    let encodes_before = clients[0].stats().unwrap().cum_chunk_encodes;

    let mutate = |clients: &mut Vec<WindtunnelClient>, tick: usize| match mutation {
        Mutation::HeadPose => clients[0]
            .send(&Command::HeadPose {
                pose: Pose::new(
                    Vec3::new(0.0, 1.7 + tick as f32 * 1e-3, 5.0),
                    Default::default(),
                ),
            })
            .unwrap(),
        Mutation::Drag => clients[0]
            .send(&Command::Hand {
                position: center + Vec3::X * (0.2 + 0.01 * tick as f32),
                gesture: Gesture::Fist,
            })
            .unwrap(),
        // Playback's mutation is the clock itself: the driving fetch
        // below passes advance = true.
        Mutation::Playback => {}
    };
    let advance = matches!(mutation, Mutation::Playback);

    // Delta phase.
    let mut delta_bytes = 0usize;
    let mut delta_secs = 0.0f64;
    let mut fetches = 0usize;
    for tick in 0..p.frames {
        mutate(&mut clients, tick);
        for (ci, c) in clients.iter_mut().enumerate() {
            let t = Instant::now();
            let (_, n) = c.frame_delta_measured(advance && ci == 0).unwrap();
            delta_secs += t.elapsed().as_secs_f64();
            delta_bytes += n;
            fetches += 1;
        }
    }
    let chunk_encodes = clients[0].stats().unwrap().cum_chunk_encodes - encodes_before;

    // Full-frame phase: same mutation pattern over the same server.
    let mut full_bytes = 0usize;
    let mut full_secs = 0.0f64;
    for tick in 0..p.frames {
        mutate(&mut clients, p.frames + tick);
        for (ci, c) in clients.iter_mut().enumerate() {
            let t = Instant::now();
            let (_, n) = c.frame_measured(advance && ci == 0).unwrap();
            full_secs += t.elapsed().as_secs_f64();
            full_bytes += n;
        }
    }
    handle.shutdown();

    let delta_bytes_per_frame = delta_bytes as f64 / fetches as f64;
    let full_bytes_per_frame = full_bytes as f64 / fetches as f64;
    WorkloadResult {
        workload: name,
        clients: n_clients,
        total_points,
        delta_bytes_per_frame,
        full_bytes_per_frame,
        reduction: full_bytes_per_frame / delta_bytes_per_frame,
        delta_frame_us: delta_secs / fetches as f64 * 1e6,
        full_frame_us: full_secs / fetches as f64 * 1e6,
        chunk_encodes,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let profile = if quick { QUICK } else { FULL };

    let workloads = [
        ("head_pose_only", Mutation::HeadPose),
        ("single_rake_drag", Mutation::Drag),
        ("playback", Mutation::Playback),
    ];

    let mut results: Vec<WorkloadResult> = Vec::new();
    for (name, mutation) in workloads {
        for &n in profile.client_counts {
            let r = run_workload(name, mutation, n, &profile);
            eprintln!(
                "{:>17} x{} clients: {:>9.0} B/frame delta vs {:>9.0} B full ({:>5.1}x), \
                 {:>7.0} us delta vs {:>7.0} us full, {} chunk encodes",
                r.workload,
                r.clients,
                r.delta_bytes_per_frame,
                r.full_bytes_per_frame,
                r.reduction,
                r.delta_frame_us,
                r.full_frame_us,
                r.chunk_encodes
            );
            results.push(r);
        }
    }

    // Encode-once broadcast: for each workload, the number of chunk
    // encodes must not grow with the client count.
    let mut encode_once = true;
    for (name, _) in workloads {
        let per_count: Vec<u64> = results
            .iter()
            .filter(|r| r.workload == name)
            .map(|r| r.chunk_encodes)
            .collect();
        if per_count.windows(2).any(|w| w[1] > w[0]) {
            encode_once = false;
            eprintln!("WARNING: {name} chunk encodes grew with client count: {per_count:?}");
        }
    }

    if quick {
        eprintln!("--quick: smoke pass only, BENCH_delta.json not written");
        assert!(encode_once, "encode-once broadcast property violated");
        return;
    }

    for r in &results {
        if (r.workload == "head_pose_only" || r.workload == "single_rake_drag") && r.reduction < 5.0
        {
            eprintln!(
                "WARNING: {} x{} reduction {:.1}x is below the 5x target",
                r.workload, r.clients, r.reduction
            );
        }
    }

    let mut json = String::from("{\n  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"clients\": {}, \"total_points\": {}, \
             \"delta_bytes_per_frame\": {:.0}, \"full_bytes_per_frame\": {:.0}, \
             \"reduction\": {:.2}, \"delta_frame_us\": {:.1}, \"full_frame_us\": {:.1}, \
             \"chunk_encodes\": {}}}{}",
            r.workload,
            r.clients,
            r.total_points,
            r.delta_bytes_per_frame,
            r.full_bytes_per_frame,
            r.reduction,
            r.delta_frame_us,
            r.full_frame_us,
            r.chunk_encodes,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],\n  \"encode_once_broadcast\": {encode_once}\n}}");
    std::fs::write("BENCH_delta.json", &json).expect("write BENCH_delta.json");
    print!("{json}");
    assert!(encode_once, "encode-once broadcast property violated");
}
