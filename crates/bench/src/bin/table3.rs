//! Table 3 + §5.3 — the computational-performance study.
//!
//! The paper's benchmark: "a benchmark computation of 100 streamlines
//! each containing 200 points … 20,000 points". Its §5.3 rows:
//!
//! * scalar C, parallelized across streamlines on 4 Convex CPUs: 0.24 s
//! * vectorized across streamlines (3 effective CPUs):            0.19 s
//! * the 8-CPU SGI workstation, scalar-parallel:                  0.13-0.14 s
//!
//! and Table 3 converts benchmark time → max particles at 10 fps
//! (linear scaling assumption). We run the same benchmark on the *full*
//! 64×64×32 tapered-cylinder field with every kernel at several thread
//! counts, print measured time and the derived Table 3 columns, and
//! reprint the paper's own rows for comparison. Absolute times are ~100×
//! faster on 2026 hardware; the shape to check is the *ordering*:
//! vectorized(SoA) beats scalar at equal threads, parallel scales with
//! cores, and the hybrid (the paper's proposed future optimization) wins
//! overall.

use bench_support::{paper_benchmark_seeds, paper_spec, tapered_field, TablePrinter};
use flowfield::{BlendedPair, BlendedPairSoA};
use std::time::{Duration, Instant};
use storage::constraints::TABLE3_BENCH_TIMES;
use tracer::benchmark::{
    max_particles, max_streamlines_200, run_kernel, BenchField, Kernel, FRAME_BUDGET,
    PAPER_PARTICLES, PAPER_STREAMLINES,
};
use tracer::streamline::TraceConfig;
use tracer::{Streakline, StreaklineConfig};

fn main() {
    println!("\nTable 3 (paper rows): computational performance constraints\n");
    let mut p = TablePrinter::new(&["benchmark s", "max particles", "streamlines@200"]);
    for &secs in &TABLE3_BENCH_TIMES {
        let t = Duration::from_secs_f64(secs);
        p.row(&[
            format!("{secs:.2}"),
            format!("{}", max_particles(t, PAPER_PARTICLES, FRAME_BUDGET)),
            format!("{}", max_streamlines_200(t, PAPER_PARTICLES, FRAME_BUDGET)),
        ]);
    }

    println!(
        "\nMeasured: 100 streamlines x 200 points on the full 64x64x32 tapered-cylinder field\n"
    );
    let spec = paper_spec();
    eprintln!("generating field ...");
    let (field, domain) = tapered_field(spec, 12.0);
    let field_aos = field.clone();
    let field_soa = field.to_soa();
    let bench = BenchField::new(field, domain);
    let seeds = paper_benchmark_seeds(spec.dims, PAPER_STREAMLINES);
    // dt chosen so a 200-step path stays inside the O-grid disc for
    // most seeds (the paper's benchmark assumes full-length streamlines).
    let cfg = TraceConfig {
        dt: 0.04,
        max_points: 200,
        ..TraceConfig::default()
    };

    let mut t = TablePrinter::new(&[
        "kernel",
        "threads",
        "seconds",
        "points",
        "max particles@10fps",
        "streamlines@200",
    ]);

    let thread_counts = [1usize, 3, 4, 8];
    for &kernel in &Kernel::ALL {
        let threads: &[usize] = match kernel {
            Kernel::Scalar | Kernel::Vector => &[1],
            _ => &thread_counts,
        };
        for &n in threads {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap();
            // Warm up once, then take the best of 5 (the paper reports a
            // single best-case figure).
            let mut best = Duration::MAX;
            let mut points = 0usize;
            pool.install(|| {
                let _ = run_kernel(kernel, &bench, &seeds, &cfg);
                for _ in 0..5 {
                    let (lines, dt) = run_kernel(kernel, &bench, &seeds, &cfg);
                    points = lines.iter().map(|l| l.len()).sum();
                    best = best.min(dt);
                }
            });
            t.row(&[
                kernel.label().to_string(),
                format!("{n}"),
                format!("{:.4}", best.as_secs_f64()),
                format!("{points}"),
                format!("{}", max_particles(best, points.max(1), FRAME_BUDGET)),
                format!("{}", max_streamlines_200(best, points.max(1), FRAME_BUDGET)),
            ]);
        }
    }

    // ------------------------------------------------------------------
    // Scaled workload: 2 000 streamlines. The 1992 benchmark took 0.19 s
    // on the Convex; 2026 hardware finishes 100 streamlines in well under
    // a millisecond, too little work for thread scaling to register. A
    // 20x workload restores the regime the paper's parallelism argument
    // lives in.
    println!("\nScaled workload: 2000 streamlines x 200 points (thread-scaling regime)\n");
    let big_seeds = paper_benchmark_seeds(spec.dims, 2000);
    let mut t2 = TablePrinter::new(&[
        "kernel",
        "threads",
        "seconds",
        "points",
        "max particles@10fps",
    ]);
    for &kernel in &[
        Kernel::Scalar,
        Kernel::Parallel,
        Kernel::Vector,
        Kernel::VectorParallel,
    ] {
        let threads: &[usize] = match kernel {
            Kernel::Scalar | Kernel::Vector => &[1],
            _ => &thread_counts,
        };
        for &n in threads {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap();
            let mut best = Duration::MAX;
            let mut points = 0usize;
            pool.install(|| {
                let _ = run_kernel(kernel, &bench, &big_seeds, &cfg);
                for _ in 0..3 {
                    let (lines, dt) = run_kernel(kernel, &bench, &big_seeds, &cfg);
                    points = lines.iter().map(|l| l.len()).sum();
                    best = best.min(dt);
                }
            });
            t2.row(&[
                kernel.label().to_string(),
                format!("{n}"),
                format!("{:.4}", best.as_secs_f64()),
                format!("{points}"),
                format!("{}", max_particles(best, points.max(1), FRAME_BUDGET)),
            ]);
        }
    }

    // ------------------------------------------------------------------
    // Streak-advance kernel: the *unsteady* smoke path. The paper's
    // benchmark above is streamlines through one frozen timestep; smoke
    // in an unsteady dataset must blend two timesteps every sample. The
    // scalar row steps one particle at a time through two trilinear
    // samples + a lerp; the batch rows run the fused kernel (cell +
    // weights located once per particle, both timesteps gathered from
    // SoA arrays) in rayon-chunked lockstep. Identical output bits —
    // see tracer/tests/streak_equiv.rs.
    println!("\nStreak advance: smoke pool on the tapered-cylinder field (alpha = 0.37)\n");
    let streak_pair_aos = BlendedPair::new(&field_aos, &field_aos, 0.37);
    let streak_pair_soa = BlendedPairSoA::new(&field_soa, &field_soa, 0.37).expect("matching dims");
    let streak_cfg = StreaklineConfig {
        dt: 0.04,
        max_age: 199,
        ..StreaklineConfig::default()
    };
    let mut proto = Streakline::new(paper_benchmark_seeds(spec.dims, 100), streak_cfg);
    for _ in 0..200 {
        proto.advance_batch(&streak_pair_soa, &domain);
    }
    let particles = proto.particle_count();
    let mut t3 = TablePrinter::new(&["kernel", "threads", "us/advance", "Mparticles/s"]);
    let streak_time = |f: &mut dyn FnMut(&mut Streakline)| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut s = proto.clone();
            let t = Instant::now();
            for _ in 0..4 {
                f(&mut s);
            }
            best = best.min(t.elapsed().as_secs_f64() / 4.0);
        }
        best
    };
    let scalar_t = streak_time(&mut |s| {
        s.advance(&streak_pair_aos, &domain);
    });
    t3.row(&[
        "streak-scalar".to_string(),
        "1".to_string(),
        format!("{:.1}", scalar_t * 1e6),
        format!("{:.1}", particles as f64 / scalar_t / 1e6),
    ]);
    for &n in &thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap();
        let batch_t = pool.install(|| {
            streak_time(&mut |s| {
                s.advance_batch(&streak_pair_soa, &domain);
            })
        });
        t3.row(&[
            "streak-batch".to_string(),
            format!("{n}"),
            format!("{:.1}", batch_t * 1e6),
            format!("{:.1}", particles as f64 / batch_t / 1e6),
        ]);
    }
    println!("({particles} live particles; full sweep in bench_trace / BENCH_trace.json)");

    println!();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");
    println!("paper comparison (absolute numbers differ by the 34-year hardware gap):");
    println!(
        "  scalar-parallel x4 = 0.24 s | vectorized x3 = 0.19 s | workstation x8 = 0.13-0.14 s"
    );
    println!("shape to verify: the vectorized (SoA lockstep) kernel beats the scalar kernel at");
    println!("equal thread counts — the paper's 0.19 s vs 0.24 s finding. On multi-core hosts the");
    println!("parallel kernels additionally scale with threads and the hybrid wins overall; on a");
    println!("single-core host (cores = 1) the thread rows collapse to the 1-thread time, which");
    println!("is itself faithful to the paper's observation that vectorization won even with");
    println!("fewer effective processors (3 vs 4).");
}
