//! Table 2 — disk-bandwidth constraints.
//!
//! Paper columns: grid points, bytes per timestep, timesteps per GB,
//! required disk bandwidth for 10 fps. We print the analytic rows, then
//! measure two things:
//!
//! 1. achieved timestep rate streaming a real tapered-cylinder-sized
//!    timestep file from tmpfs through the Convex disk model
//!    (30 MB/s + 2 ms seek) — the paper's §5.1 observation that this
//!    dataset streams comfortably inside the 1/8 s budget;
//! 2. the same stream with and without the figure-8 prefetcher, showing
//!    that double-buffering hides the disk behind a 40 ms compute.
//!
//! Expected shape: the tapered cylinder clears 10 fps on the Convex
//! model; the ≥3 M-point rows do not (the paper: "we are still a long way
//! from interactively visualizing very large unsteady data sets").

use bench_support::{small_spec, tapered_dataset, TablePrinter};
use flowfield::Dims;
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::constraints::{
    required_disk_mbytes_per_sec, timestep_bytes, timesteps_per_gibibyte, TABLE2_GRID_POINTS,
    TARGET_FPS,
};
use storage::{DiskModel, DiskStore, Prefetcher, SimulatedDisk, TimestepStore};

fn main() {
    println!("\nTable 2: Disk bandwidth constraints (analytic rows = the paper's table)\n");
    let convex = DiskModel::convex_c3240();
    let mut t = TablePrinter::new(&[
        "grid points",
        "bytes/timestep",
        "steps per GiB",
        "req MB/s @10fps",
        "fps @Convex 30MB/s",
        "fps @600MB/s",
    ]);
    for &points in &TABLE2_GRID_POINTS {
        let bytes = timestep_bytes(points);
        let modern = DiskModel {
            bandwidth_bytes_per_sec: 600.0e6,
            seek: Duration::from_micros(200),
        };
        t.row(&[
            format!("{points}"),
            format!("{bytes}"),
            format!("{}", timesteps_per_gibibyte(points)),
            format!("{:.1}", required_disk_mbytes_per_sec(points, TARGET_FPS)),
            format!("{:.1}", convex.timesteps_per_sec(bytes)),
            format!("{:.1}", modern.timesteps_per_sec(bytes)),
        ]);
    }

    // ------------------------------------------------------------------
    // Measured: real files + simulated Convex disk + prefetch pipeline.
    println!("\nMeasured streaming (reduced tapered-cylinder grid, real files on tmpfs):\n");
    let ds = tapered_dataset(small_spec(), 24);
    let dir = tempfile::tempdir().unwrap();
    flowfield::format::write_dataset(dir.path(), &ds).unwrap();
    let disk = DiskStore::open(dir.path()).unwrap();
    let step_bytes = ds.dims().timestep_bytes();

    // Scale the simulated bandwidth so the reduced grid exercises the
    // same *ratio* as the full 131k grid on the Convex: the full grid's
    // 1 572 864 B at 30 MB/s takes 52 ms → scale to our step size.
    let full_load = Duration::from_secs_f64(
        Dims::TAPERED_CYLINDER.timestep_bytes() as f64 / convex.bandwidth_bytes_per_sec,
    );
    let scaled_bw = step_bytes as f64 / full_load.as_secs_f64();
    let sim = Arc::new(SimulatedDisk::new(
        disk,
        DiskModel {
            bandwidth_bytes_per_sec: scaled_bw,
            seek: convex.seek,
        },
    ));

    let compute_budget = Duration::from_millis(40);
    let frames = 20usize;

    // Synchronous: load then compute, per frame.
    let start = Instant::now();
    for f in 0..frames {
        let _field = sim.fetch(f % sim.timestep_count()).unwrap();
        #[allow(clippy::disallowed_methods)]
        // stand-in for the solver's compute budget in the bench harness
        std::thread::sleep(compute_budget);
    }
    let sync_per_frame = start.elapsed() / frames as u32;

    // Prefetched (figure 8): next load overlaps the compute.
    let pf = Prefetcher::new(Arc::clone(&sim));
    pf.request(0);
    let start = Instant::now();
    for f in 0..frames {
        pf.request((f + 1) % sim.timestep_count());
        let _field = pf.wait(f % sim.timestep_count()).unwrap();
        #[allow(clippy::disallowed_methods)]
        // stand-in for the solver's compute budget in the bench harness
        std::thread::sleep(compute_budget);
    }
    let prefetch_per_frame = start.elapsed() / frames as u32;

    let mut m = TablePrinter::new(&["pipeline", "ms/frame", "fps"]);
    m.row(&[
        "synchronous load".to_string(),
        format!("{:.1}", sync_per_frame.as_secs_f64() * 1e3),
        format!("{:.1}", 1.0 / sync_per_frame.as_secs_f64()),
    ]);
    m.row(&[
        "prefetch (fig 8)".to_string(),
        format!("{:.1}", prefetch_per_frame.as_secs_f64() * 1e3),
        format!("{:.1}", 1.0 / prefetch_per_frame.as_secs_f64()),
    ]);

    // ------------------------------------------------------------------
    // Measured: the v2 compressed container over the same scaled disk
    // model. The disk charges actual on-disk bytes, so the lossless
    // codec's ratio converts directly into effective bandwidth — the
    // lever Table 2 says the paper lacked. bench_storage has the full
    // 131k-point version of this measurement.
    println!("\nMeasured compressed streaming (same grid and scaled disk model):\n");
    let v2_dir = tempfile::tempdir().unwrap();
    flowfield::format::write_dataset_v2(v2_dir.path(), &ds).unwrap();
    let v2_disk = DiskStore::open(v2_dir.path()).unwrap();
    let raw_total: u64 = (0..ds.timestep_count()).map(|t| sim.payload_bytes(t)).sum();
    let v2_total: u64 = (0..ds.timestep_count())
        .map(|t| v2_disk.payload_bytes(t))
        .sum();
    let v2_sim = SimulatedDisk::new(
        v2_disk,
        DiskModel {
            bandwidth_bytes_per_sec: scaled_bw,
            seek: convex.seek,
        },
    );
    let stream_rate = |store: &dyn TimestepStore| {
        let start = Instant::now();
        for t in 0..ds.timestep_count() {
            let f = store.fetch(t).unwrap();
            std::hint::black_box(f.as_slice().first());
        }
        ds.timestep_count() as f64 / start.elapsed().as_secs_f64()
    };
    let raw_tps = stream_rate(&*sim);
    let v2_tps = stream_rate(&v2_sim);

    let mut c = TablePrinter::new(&["container", "bytes on disk", "timesteps/s"]);
    c.row(&[
        "v1 raw".to_string(),
        format!("{raw_total}"),
        format!("{raw_tps:.1}"),
    ]);
    c.row(&[
        "v2 compressed".to_string(),
        format!("{v2_total}"),
        format!("{v2_tps:.1}"),
    ]);
    println!(
        "\ncompression ratio {:.2}x -> {:.2}x effective throughput (lossless, bitwise-identical)",
        raw_total as f64 / v2_total as f64,
        v2_tps / raw_tps
    );

    println!();
    println!("paper row check: 131072 pts -> 1572864 B, 682/GiB, 15 MB/s; 10M pts needs ~1.1 GB/s");
    println!("(the paper's last row prints 360 MB/timestep = 36 B/pt; we keep 12 B/pt — see EXPERIMENTS.md).");
    println!("Shape to verify: Convex streams the tapered cylinder >10 fps; 3M+ points cannot;");
    println!("prefetch hides the ~52 ms scaled load behind the 40 ms compute.");
}
