//! Table 2 — disk-bandwidth constraints.
//!
//! Paper columns: grid points, bytes per timestep, timesteps per GB,
//! required disk bandwidth for 10 fps. We print the analytic rows, then
//! measure two things:
//!
//! 1. achieved timestep rate streaming a real tapered-cylinder-sized
//!    timestep file from tmpfs through the Convex disk model
//!    (30 MB/s + 2 ms seek) — the paper's §5.1 observation that this
//!    dataset streams comfortably inside the 1/8 s budget;
//! 2. the same stream with and without the figure-8 prefetcher, showing
//!    that double-buffering hides the disk behind a 40 ms compute.
//!
//! Expected shape: the tapered cylinder clears 10 fps on the Convex
//! model; the ≥3 M-point rows do not (the paper: "we are still a long way
//! from interactively visualizing very large unsteady data sets").

use bench_support::{small_spec, tapered_dataset, TablePrinter};
use flowfield::Dims;
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::constraints::{
    required_disk_mbytes_per_sec, timestep_bytes, timesteps_per_gibibyte, TABLE2_GRID_POINTS,
    TARGET_FPS,
};
use storage::{DiskModel, DiskStore, Prefetcher, SimulatedDisk, TimestepStore};

fn main() {
    println!("\nTable 2: Disk bandwidth constraints (analytic rows = the paper's table)\n");
    let convex = DiskModel::convex_c3240();
    let mut t = TablePrinter::new(&[
        "grid points",
        "bytes/timestep",
        "steps per GiB",
        "req MB/s @10fps",
        "fps @Convex 30MB/s",
        "fps @600MB/s",
    ]);
    for &points in &TABLE2_GRID_POINTS {
        let bytes = timestep_bytes(points);
        let modern = DiskModel {
            bandwidth_bytes_per_sec: 600.0e6,
            seek: Duration::from_micros(200),
        };
        t.row(&[
            format!("{points}"),
            format!("{bytes}"),
            format!("{}", timesteps_per_gibibyte(points)),
            format!("{:.1}", required_disk_mbytes_per_sec(points, TARGET_FPS)),
            format!("{:.1}", convex.timesteps_per_sec(bytes)),
            format!("{:.1}", modern.timesteps_per_sec(bytes)),
        ]);
    }

    // ------------------------------------------------------------------
    // Measured: real files + simulated Convex disk + prefetch pipeline.
    println!("\nMeasured streaming (reduced tapered-cylinder grid, real files on tmpfs):\n");
    let ds = tapered_dataset(small_spec(), 24);
    let dir = tempfile::tempdir().unwrap();
    flowfield::format::write_dataset(dir.path(), &ds).unwrap();
    let disk = DiskStore::open(dir.path()).unwrap();
    let step_bytes = ds.dims().timestep_bytes();

    // Scale the simulated bandwidth so the reduced grid exercises the
    // same *ratio* as the full 131k grid on the Convex: the full grid's
    // 1 572 864 B at 30 MB/s takes 52 ms → scale to our step size.
    let full_load = Duration::from_secs_f64(
        Dims::TAPERED_CYLINDER.timestep_bytes() as f64 / convex.bandwidth_bytes_per_sec,
    );
    let scaled_bw = step_bytes as f64 / full_load.as_secs_f64();
    let sim = Arc::new(SimulatedDisk::new(
        disk,
        DiskModel {
            bandwidth_bytes_per_sec: scaled_bw,
            seek: convex.seek,
        },
    ));

    let compute_budget = Duration::from_millis(40);
    let frames = 20usize;

    // Synchronous: load then compute, per frame.
    let start = Instant::now();
    for f in 0..frames {
        let _field = sim.fetch(f % sim.timestep_count()).unwrap();
        #[allow(clippy::disallowed_methods)]
        // stand-in for the solver's compute budget in the bench harness
        std::thread::sleep(compute_budget);
    }
    let sync_per_frame = start.elapsed() / frames as u32;

    // Prefetched (figure 8): next load overlaps the compute.
    let pf = Prefetcher::new(Arc::clone(&sim));
    pf.request(0);
    let start = Instant::now();
    for f in 0..frames {
        pf.request((f + 1) % sim.timestep_count());
        let _field = pf.wait(f % sim.timestep_count()).unwrap();
        #[allow(clippy::disallowed_methods)]
        // stand-in for the solver's compute budget in the bench harness
        std::thread::sleep(compute_budget);
    }
    let prefetch_per_frame = start.elapsed() / frames as u32;

    let mut m = TablePrinter::new(&["pipeline", "ms/frame", "fps"]);
    m.row(&[
        "synchronous load".to_string(),
        format!("{:.1}", sync_per_frame.as_secs_f64() * 1e3),
        format!("{:.1}", 1.0 / sync_per_frame.as_secs_f64()),
    ]);
    m.row(&[
        "prefetch (fig 8)".to_string(),
        format!("{:.1}", prefetch_per_frame.as_secs_f64() * 1e3),
        format!("{:.1}", 1.0 / prefetch_per_frame.as_secs_f64()),
    ]);

    println!();
    println!("paper row check: 131072 pts -> 1572864 B, 682/GiB, 15 MB/s; 10M pts needs ~1.1 GB/s");
    println!("(the paper's last row prints 360 MB/timestep = 36 B/pt; we keep 12 B/pt — see EXPERIMENTS.md).");
    println!("Shape to verify: Convex streams the tapered cylinder >10 fps; 3M+ points cannot;");
    println!("prefetch hides the ~52 ms scaled load behind the 40 ms compute.");
}
