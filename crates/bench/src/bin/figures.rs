//! Figures 1–3 — the visualization imagery, regenerated.
//!
//! * Figure 1: "Streaklines of the flow around the tapered cylinder
//!   rendered as smoke."
//! * Figure 2: "Streamlines of the flow around the tapered cylinder."
//! * Figure 3: "Streamlines … from the same seedpoints as in figure 2,
//!   but at a later time."
//!
//! Output: `bench_out/fig{1,2,3}_{stereo,mono}.ppm`. The stereo images
//! use the paper's exact red/blue writemask pipeline; the mono images are
//! the "conventional screen" rendering of §6. Figure 2 vs figure 3 shows
//! the unsteadiness: same seeds, visibly different paths.

use bench_support::{paper_spec, tapered_field};
use cfd::tapered_cylinder::TaperedCylinderFlow;
use std::path::Path;
use tracer::{streamline, Domain, Rake, Streakline, StreaklineConfig, ToolKind, TraceConfig};
use vecmath::{Pose, Quat, Vec3};
use vr::ppm::write_ppm;
use vr::render::Rgb;
use vr::stereo::{render_anaglyph, StereoCamera};
use vr::Framebuffer;

const W: usize = 640;
const H: usize = 480;

/// Camera looking at the cylinder from upstream-above.
fn camera(spec: &cfd::OGridSpec) -> StereoCamera {
    let target = Vec3::new(2.0, 0.0, spec.span * 0.5);
    let eye = Vec3::new(-3.0, 7.0, spec.span * 0.5 + 9.0);
    // Orient the head to look at the target.
    let view = vecmath::Mat4::look_at(eye, target, Vec3::Y);
    let head_mat = view.inverse_rigid();
    let mut cam = StereoCamera::new(Pose::from_mat4(&head_mat));
    cam.fovy = 0.9;
    cam.aspect = W as f32 / H as f32;
    cam
}

/// The cylinder body itself, as a wire cage (rings + spanwise lines).
fn cylinder_wireframe(spec: &cfd::OGridSpec) -> Vec<(Vec<Vec3>, u8)> {
    let mut lines = Vec::new();
    let rings = 9;
    for rk in 0..rings {
        let z = spec.span * rk as f32 / (rings - 1) as f32;
        let a = spec.radius_at(z);
        let ring: Vec<Vec3> = (0..=48)
            .map(|s| {
                let th = std::f32::consts::TAU * s as f32 / 48.0;
                Vec3::new(a * th.cos(), a * th.sin(), z)
            })
            .collect();
        lines.push((ring, 90));
    }
    for s in 0..12 {
        let th = std::f32::consts::TAU * s as f32 / 12.0;
        let line: Vec<Vec3> = (0..rings)
            .map(|rk| {
                let z = spec.span * rk as f32 / (rings - 1) as f32;
                let a = spec.radius_at(z);
                Vec3::new(a * th.cos(), a * th.sin(), z)
            })
            .collect();
        lines.push((line, 90));
    }
    lines
}

/// The figure rake: a spanwise line of seeds upstream of the cylinder
/// (in grid coordinates: fixed angle facing upstream, mid radius).
fn figure_rake(spec: &cfd::OGridSpec) -> Rake {
    let dims = spec.dims;
    // Angle index at θ≈π (upstream side): i = (ni-1)/2.
    let i_up = (dims.ni - 1) as f32 * 0.5;
    let j = (dims.nj - 1) as f32 * 0.35;
    Rake::new(
        Vec3::new(i_up, j, (dims.nk - 1) as f32 * 0.1),
        Vec3::new(i_up, j, (dims.nk - 1) as f32 * 0.9),
        16,
        ToolKind::Streakline,
    )
}

fn render_to(out_dir: &Path, name: &str, spec: &cfd::OGridSpec, paths: &[(Vec<Vec3>, u8)]) {
    let cam = camera(spec);
    let mut all: Vec<(Vec<Vec3>, u8)> = cylinder_wireframe(spec);
    all.extend_from_slice(paths);

    // Stereo (the paper's display).
    let mut fb = Framebuffer::new(W, H);
    render_anaglyph(&mut fb, &cam, &all);
    write_ppm(&out_dir.join(format!("{name}_stereo.ppm")), &fb).unwrap();

    // Mono (the conventional-screen rendering of §6).
    let mut fb = Framebuffer::new(W, H);
    let mvp = cam.projection() * cam.head.view_matrix();
    for (line, shade) in &all {
        let c = Rgb::new(*shade, (*shade as f32 * 0.85) as u8, 60);
        fb.draw_polyline(&mvp, line, c);
    }
    write_ppm(&out_dir.join(format!("{name}_mono.ppm")), &fb).unwrap();
    println!(
        "wrote {name}_stereo.ppm and {name}_mono.ppm ({} polylines)",
        all.len()
    );
}

fn main() {
    let out_dir = Path::new("bench_out");
    std::fs::create_dir_all(out_dir).unwrap();
    let spec = paper_spec();
    let grid = spec.build().unwrap();
    let flow = TaperedCylinderFlow {
        spec,
        ..TaperedCylinderFlow::default()
    };
    let period = 1.0 / flow.shedding_frequency(0.0);
    let domain = Domain::o_grid(spec.dims);
    let rake = figure_rake(&spec);

    // ------------------------------------------------------------------
    // Figure 1: streaklines as smoke. Advance a streak system through the
    // unsteady flow for ~3 shedding periods, re-sampling the field as
    // time advances (the disk-streaming loop, inlined).
    eprintln!("figure 1: advecting smoke ...");
    let streak_cfg = StreaklineConfig {
        dt: period / 40.0,
        max_age: 400,
        ..StreaklineConfig::default()
    };
    let mut streak = Streakline::new(rake.seeds(), streak_cfg);
    let frames = 120usize;
    let mut field_cache = None;
    for f in 0..frames {
        let t = f as f32 * streak_cfg.dt;
        // Re-sample the analytic field every 4 frames (a timestep every
        // 4 display frames, like a 0.25-rate playback).
        if f % 4 == 0 || field_cache.is_none() {
            let (field, _) = tapered_field(spec, t);
            field_cache = Some(field);
        }
        streak.advance(field_cache.as_ref().unwrap(), &domain);
        if f % 30 == 0 {
            eprintln!(
                "  frame {f}/{frames}, {} particles",
                streak.particle_count()
            );
        }
    }
    let smoke: Vec<(Vec<Vec3>, u8)> = streak
        .filaments()
        .into_iter()
        .filter(|l| l.len() > 1)
        .map(|l| (grid.path_to_physical(&l), 200))
        .collect();
    println!(
        "figure 1: {} filaments, {} particles",
        smoke.len(),
        streak.particle_count()
    );
    render_to(out_dir, "fig1_streaklines", &spec, &smoke);

    // ------------------------------------------------------------------
    // Figures 2 and 3: streamlines from the same seeds at two times.
    let trace_cfg = TraceConfig {
        dt: 0.3,
        max_points: 200,
        ..TraceConfig::default()
    };
    for (fig, t) in [
        ("fig2_streamlines_t0", 6.0 * period),
        ("fig3_streamlines_t1", 6.5 * period),
    ] {
        eprintln!("{fig}: tracing ...");
        let (field, _) = tapered_field(spec, t);
        let lines: Vec<(Vec<Vec3>, u8)> = rake
            .seeds()
            .iter()
            .map(|&s| streamline(&field, &domain, s, &trace_cfg))
            .filter(|l| l.len() > 1)
            .map(|l| (grid.path_to_physical(&l), 235))
            .collect();
        println!("{fig}: {} streamlines", lines.len());
        render_to(out_dir, fig, &spec, &lines);
    }

    // Quantify the fig2-vs-fig3 difference (same seeds, later time).
    let (f2, _) = tapered_field(spec, 6.0 * period);
    let (f3, _) = tapered_field(spec, 6.5 * period);
    let mut max_div = 0.0f32;
    for &s in &rake.seeds() {
        let a = streamline(&f2, &domain, s, &trace_cfg);
        let b = streamline(&f3, &domain, s, &trace_cfg);
        for (pa, pb) in a.iter().zip(&b) {
            max_div = max_div.max(pa.distance(*pb));
        }
    }
    println!("\nmax streamline divergence between fig2 and fig3 (grid units): {max_div:.2}");
    println!("shape to verify: smoke rolls up into the staggered vortex street (fig1);");
    println!(
        "streamlines from identical seeds differ visibly between the two times (fig2 vs fig3)."
    );
    let _ = Quat::IDENTITY; // keep the import used in all cfgs
}
