//! Table 1 — network constraints.
//!
//! Paper columns: particle count, bytes transferred per frame, bandwidth
//! required for 10 frames/s. We print the analytic rows (the table's
//! formula: 12 B/particle × 10 fps) and then *measure* the achieved frame
//! rate shipping real `GeometryFrame` payloads over loopback TCP through
//! the three UltraNet regimes of §5.1: the rated-but-unreachable
//! 100 MB/s, the VME-limited 13 MB/s, and the buggy 1 MB/s the authors
//! actually had at submission time.
//!
//! Expected shape (the paper's conclusion): at 13 MB/s every row clears
//! 10 fps except 100 000 particles, which sits right at the limit; at
//! 1 MB/s only sub-10 000-particle scenes are interactive.

use bench_support::TablePrinter;
use dlib::ThrottledWriter;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::time::Instant;
use storage::constraints::{
    frame_bytes, required_network_mbytes_per_sec, TABLE1_PARTICLES, TARGET_FPS,
};
use vecmath::Vec3;
use windtunnel::proto::{GeometryFrame, PathKind, PathMsg};

/// Build a frame with exactly `particles` path points.
fn frame_with(particles: usize) -> GeometryFrame {
    GeometryFrame {
        timestep: 0,
        time: 0.0,
        revision: 0,
        rakes: vec![],
        paths: vec![PathMsg {
            rake_id: 1,
            kind: PathKind::Streamline,
            points: vec![Vec3::new(1.0, 2.0, 3.0); particles],
        }],
        users: vec![],
    }
}

/// Ship `frames` copies of the payload over loopback at `rate` B/s;
/// returns seconds per frame.
fn measure(payload: &[u8], rate: f64, frames: usize) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let expected = payload.len() * frames;
    let reader = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut buf = vec![0u8; 1 << 20];
        let mut total = 0usize;
        while total < expected {
            match sock.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => total += n,
                Err(_) => break,
            }
        }
    });
    let sock = std::net::TcpStream::connect(addr).unwrap();
    let mut w = ThrottledWriter::new(std::io::BufWriter::new(sock), rate);
    let start = Instant::now();
    for _ in 0..frames {
        w.write_all(payload).unwrap();
    }
    w.flush().unwrap();
    let elapsed = start.elapsed();
    reader.join().unwrap();
    elapsed.as_secs_f64() / frames as f64
}

fn main() {
    println!("\nTable 1: Network constraints (paper values are the analytic rows)\n");
    let mut t = TablePrinter::new(&[
        "# particles",
        "bytes/frame",
        "req MB/s @10fps",
        "fps @100MB/s",
        "fps @13MB/s",
        "fps @1MB/s",
    ]);

    for &particles in &TABLE1_PARTICLES {
        let frame = frame_with(particles as usize);
        let payload = frame.encode();
        // Fewer trips for the slow regimes so the bin stays fast.
        let fps_100 = 1.0 / measure(&payload, 100.0e6, 12);
        let fps_13 = 1.0 / measure(&payload, 13.0e6, 8);
        let fps_1 = 1.0 / measure(&payload, 1.0e6, if particles > 20_000 { 2 } else { 4 });
        t.row(&[
            format!("{particles}"),
            format!("{}", frame_bytes(particles)),
            format!(
                "{:.3}",
                required_network_mbytes_per_sec(particles, TARGET_FPS)
            ),
            format!("{fps_100:.1}"),
            format!("{fps_13:.1}"),
            format!("{fps_1:.1}"),
        ]);
    }

    println!();
    println!("paper row check: 10k -> 120000 B, 1.144 MB/s; 50k -> 600000 B, 5.722 MB/s;");
    println!("100k -> 1200000 B (paper prints 9.537 MB/s; the formula gives 11.444 — see EXPERIMENTS.md).");
    println!(
        "Shape to verify: 13 MB/s sustains 10 fps up to ~100k particles; 1 MB/s only below ~10k."
    );
}
