//! Frame-pipeline benchmark: bulk slab point serialization vs the
//! per-element baseline, plus end-to-end cache-hit frame latency against
//! a live server. Emits `BENCH_frame.json` in the working directory.
//!
//! The per-element codec below replicates the exact wire layout of
//! `GeometryFrame` (the protocol is unchanged — the slab path must
//! produce identical bytes, which is asserted before timing anything).

use bytes::{Bytes, BytesMut};
use dlib::wire::{WireReader, WireWrite};
use flowfield::{
    dataset::VelocityCoords, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use storage::MemoryStore;
use tracer::{ToolKind, TraceConfig};
use vecmath::{Aabb, Pose, Vec3};
use windtunnel::client::WindtunnelClient;
use windtunnel::compute::ComputeConfig;
use windtunnel::proto::{Command, GeometryFrame, PathKind, PathMsg};
use windtunnel::server::{serve, ServerOptions};

// ---------------------------------------------------------------------
// Per-element reference codec (the pre-slab wire path, byte-identical)

fn put_vec3(b: &mut BytesMut, v: Vec3) {
    b.put_f32_le_(v.x);
    b.put_f32_le_(v.y);
    b.put_f32_le_(v.z);
}

fn get_vec3(r: &mut WireReader) -> Vec3 {
    Vec3::new(
        r.f32_le().unwrap(),
        r.f32_le().unwrap(),
        r.f32_le().unwrap(),
    )
}

fn tool_tag(t: ToolKind) -> u32 {
    match t {
        ToolKind::Streamline => 0,
        ToolKind::ParticlePath => 1,
        ToolKind::Streakline => 2,
    }
}

fn kind_tag(k: PathKind) -> u32 {
    match k {
        PathKind::Streamline => 0,
        PathKind::ParticlePath => 1,
        PathKind::Streak => 2,
    }
}

fn encode_per_element(f: &GeometryFrame) -> Bytes {
    let mut b = BytesMut::with_capacity(64 + f.path_payload_bytes());
    b.put_u32_le_(f.timestep);
    b.put_f32_le_(f.time);
    b.put_u64_le_(f.revision);
    b.put_u32_le_(f.rakes.len() as u32);
    for rk in &f.rakes {
        b.put_u32_le_(rk.id);
        put_vec3(&mut b, rk.a);
        put_vec3(&mut b, rk.b);
        b.put_u32_le_(rk.seed_count);
        b.put_u32_le_(tool_tag(rk.tool));
        b.put_u64_le_(rk.owner);
    }
    b.put_u32_le_(f.paths.len() as u32);
    for p in &f.paths {
        b.put_u32_le_(p.rake_id);
        b.put_u32_le_(kind_tag(p.kind));
        b.put_u32_le_(p.points.len() as u32);
        for pt in &p.points {
            put_vec3(&mut b, *pt);
        }
    }
    b.put_u32_le_(f.users.len() as u32);
    for u in &f.users {
        b.put_u64_le_(u.id);
        put_vec3(&mut b, u.head.position);
        b.put_f32_le_(u.head.orientation.w);
        b.put_f32_le_(u.head.orientation.x);
        b.put_f32_le_(u.head.orientation.y);
        b.put_f32_le_(u.head.orientation.z);
    }
    b.freeze()
}

/// Per-element decode of the paths section (the hot part; envelope
/// decoding is identical in both codecs). Panics on malformed input —
/// this is a benchmark over known-good bytes, not a boundary.
fn decode_paths_per_element(buf: &[u8], skip_rakes: usize) -> Vec<PathMsg> {
    let mut r = WireReader::new(buf);
    r.u32_le().unwrap(); // timestep
    r.f32_le().unwrap(); // time
    r.u64_le().unwrap(); // revision
    let n_rakes = r.u32_le().unwrap();
    assert_eq!(n_rakes as usize, skip_rakes);
    for _ in 0..n_rakes {
        r.take(4 + 12 + 12 + 4 + 4 + 8).unwrap();
    }
    let n_paths = r.u32_le().unwrap() as usize;
    let mut paths = Vec::with_capacity(n_paths);
    for _ in 0..n_paths {
        let rake_id = r.u32_le().unwrap();
        let kind = match r.u32_le().unwrap() {
            0 => PathKind::Streamline,
            1 => PathKind::ParticlePath,
            _ => PathKind::Streak,
        };
        let n = r.u32_le().unwrap() as usize;
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            points.push(get_vec3(&mut r));
        }
        paths.push(PathMsg {
            rake_id,
            kind,
            points,
        });
    }
    paths
}

// ---------------------------------------------------------------------
// Timing

/// Best-of-three seconds-per-iteration, calibrated to ~80 ms per pass.
fn time_it<F: FnMut()>(mut f: F) -> f64 {
    f();
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let iters = ((0.08 / once) as usize).clamp(1, 100_000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn frame_with(particles: usize) -> GeometryFrame {
    // 50 paths, matching a 50-seed rake — realistic path granularity.
    let paths = 50usize;
    let per = particles / paths;
    GeometryFrame {
        timestep: 3,
        time: 0.15,
        revision: 42,
        rakes: vec![],
        paths: (0..paths as u32)
            .map(|pi| PathMsg {
                rake_id: 1,
                kind: PathKind::Streamline,
                points: (0..per)
                    .map(|i| Vec3::new(i as f32 * 0.1, pi as f32, 3.0))
                    .collect(),
            })
            .collect(),
        users: vec![],
    }
}

struct Row {
    particles: usize,
    bytes: usize,
    bulk_encode_s: f64,
    bulk_decode_s: f64,
    ref_encode_s: f64,
    ref_decode_s: f64,
}

impl Row {
    fn bulk_encdec_pts(&self) -> f64 {
        self.particles as f64 / (self.bulk_encode_s + self.bulk_decode_s)
    }
    fn ref_encdec_pts(&self) -> f64 {
        self.particles as f64 / (self.ref_encode_s + self.ref_decode_s)
    }
    fn speedup(&self) -> f64 {
        self.bulk_encdec_pts() / self.ref_encdec_pts()
    }
}

fn codec_rows(sizes: &[usize]) -> Vec<Row> {
    sizes
        .iter()
        .copied()
        .map(|particles| {
            let frame = frame_with(particles);
            let encoded = frame.encode();
            let reference = encode_per_element(&frame);
            assert_eq!(
                &encoded[..],
                &reference[..],
                "slab codec must be byte-identical to the per-element wire format"
            );
            let mut scratch = BytesMut::new();
            let bulk_encode_s = time_it(|| {
                scratch.clear();
                frame.encode_into(&mut scratch);
                std::hint::black_box(scratch.len());
            });
            let bulk_decode_s = time_it(|| {
                std::hint::black_box(GeometryFrame::decode(&encoded).unwrap());
            });
            let ref_encode_s = time_it(|| {
                std::hint::black_box(encode_per_element(&frame).len());
            });
            let ref_decode_s = time_it(|| {
                std::hint::black_box(decode_paths_per_element(&encoded, 0).len());
            });
            Row {
                particles,
                bytes: encoded.len(),
                bulk_encode_s,
                bulk_decode_s,
                ref_encode_s,
                ref_decode_s,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Live-server cache latency

struct CacheLatency {
    cold_us: f64,
    frame_hit_us: f64,
    geom_hit_us: f64,
    frame_bytes: usize,
}

fn cache_latency() -> CacheLatency {
    let dims = Dims::new(32, 17, 17);
    let grid = CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(31.0, 16.0, 16.0)))
        .unwrap();
    let meta = DatasetMeta {
        name: "bench".into(),
        dims,
        timestep_count: 4,
        dt: 0.1,
        coords: VelocityCoords::Grid,
    };
    let fields = (0..4)
        .map(|_| {
            VectorField::from_fn(dims, |_, j, k| {
                Vec3::new(1.0, (j as f32).sin() * 0.1, (k as f32).cos() * 0.1)
            })
        })
        .collect();
    let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
    let store = Arc::new(MemoryStore::from_dataset(ds));
    let opts = ServerOptions {
        compute: ComputeConfig {
            trace: TraceConfig {
                dt: 0.25,
                max_points: 200,
                ..TraceConfig::default()
            },
            ..ComputeConfig::default()
        },
        ..ServerOptions::default()
    };
    let handle = serve(store, grid, opts, "127.0.0.1:0").unwrap();
    let mut client = WindtunnelClient::connect(handle.addr()).unwrap();
    client
        .send(&Command::AddRake {
            a: Vec3::new(1.0, 2.0, 8.0),
            b: Vec3::new(1.0, 14.0, 8.0),
            seed_count: 50,
            tool: ToolKind::Streamline,
        })
        .unwrap();

    // Cold: first computation of this revision (geometry + encode).
    let t = Instant::now();
    let frame = client.frame(false).unwrap();
    let cold_us = t.elapsed().as_secs_f64() * 1e6;
    let frame_bytes = frame.encode().len();

    // Whole-frame cache hit: identical revision, served from bytes.
    let frame_hit_us = time_it(|| {
        std::hint::black_box(client.frame(false).unwrap());
    }) * 1e6;

    // Geometry-cache hit: every request mutates a head pose (revision
    // moves, frame cache misses) but no rake geometry changes.
    let mut tick = 0u32;
    let geom_hit_us = time_it(|| {
        tick += 1;
        client
            .send(&Command::HeadPose {
                pose: Pose::new(Vec3::new(0.0, tick as f32 * 1e-3, 5.0), Default::default()),
            })
            .unwrap();
        std::hint::black_box(client.frame(false).unwrap());
    }) * 1e6;

    let stats = client.stats().unwrap();
    assert_eq!(
        stats.geom_misses, 0,
        "head-pose churn must be served from the geometry cache"
    );
    handle.shutdown();
    CacheLatency {
        cold_us,
        frame_hit_us,
        geom_hit_us,
        frame_bytes,
    }
}

fn main() {
    // --quick: a scaled-down smoke pass for CI — one small codec row,
    // byte-identity still asserted, recorded BENCH_frame.json untouched.
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[5_000]
    } else {
        &[10_000, 50_000, 100_000]
    };
    let rows = codec_rows(sizes);
    let cache = cache_latency();

    if quick {
        eprintln!(
            "--quick: {} pts codec {:.2}x, cold frame {:.0} us, frame hit {:.0} us; \
             BENCH_frame.json not written",
            rows[0].particles,
            rows[0].speedup(),
            cache.cold_us,
            cache.frame_hit_us
        );
        return;
    }

    let mut json = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"particles\": {}, \"bytes\": {}, \
             \"bulk\": {{\"encode_us\": {:.2}, \"decode_us\": {:.2}, \"encdec_points_per_s\": {:.0}, \"encdec_bytes_per_s\": {:.0}}}, \
             \"per_element\": {{\"encode_us\": {:.2}, \"decode_us\": {:.2}, \"encdec_points_per_s\": {:.0}, \"encdec_bytes_per_s\": {:.0}}}, \
             \"speedup_encdec\": {:.2}}}{}",
            r.particles,
            r.bytes,
            r.bulk_encode_s * 1e6,
            r.bulk_decode_s * 1e6,
            r.bulk_encdec_pts(),
            r.bytes as f64 / (r.bulk_encode_s + r.bulk_decode_s),
            r.ref_encode_s * 1e6,
            r.ref_decode_s * 1e6,
            r.ref_encdec_pts(),
            r.bytes as f64 / (r.ref_encode_s + r.ref_decode_s),
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"cache\": {{\"cold_frame_us\": {:.1}, \"frame_hit_us\": {:.1}, \"geom_hit_frame_us\": {:.1}, \"frame_bytes\": {}}}\n}}",
        cache.cold_us, cache.frame_hit_us, cache.geom_hit_us, cache.frame_bytes
    );
    std::fs::write("BENCH_frame.json", &json).expect("write BENCH_frame.json");
    print!("{json}");

    for r in &rows {
        eprintln!(
            "{:>7} particles: bulk {:.1} Mpts/s vs per-element {:.1} Mpts/s ({:.2}x)",
            r.particles,
            r.bulk_encdec_pts() / 1e6,
            r.ref_encdec_pts() / 1e6,
            r.speedup()
        );
    }
    let last = rows.last().unwrap();
    if last.speedup() < 2.0 {
        eprintln!(
            "WARNING: 100k-row encode+decode speedup {:.2}x is below the 2x target",
            last.speedup()
        );
    }
}
