//! Storage streaming benchmark: raw v1 timesteps vs the v2 compressed
//! container, synchronous and pipelined, under the paper's disk model.
//!
//! §5.1 / Table 2: at 30 MB/s sustained + 2 ms seek (the Convex C3240's
//! measured low end), the tapered cylinder's 1.57 MB timestep costs
//! ~54 ms — 18 effective timesteps/s, the number that binds unsteady
//! playback. This harness measures three configurations over the same
//! on-disk dataset and disk model:
//!
//!   1. `raw_v1_sync` — v1 container, synchronous DiskStore fetch,
//!   2. `v2_sync` — compressed chunks, synchronous fetch (bandwidth
//!      charged at actual file bytes),
//!   3. `v2_pipelined` — compressed chunks behind the read-ahead
//!      scheduler's worker pool, the shipping configuration.
//!
//! Emits `BENCH_storage.json`. `--quick` runs a down-scaled smoke pass
//! (small grid, nothing written) so CI can prove the harness works.

use flowfield::format;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use storage::{DiskModel, DiskStore, ReadAhead, SimulatedDisk, TimestepStore};

struct Profile {
    spec: cfd::OGridSpec,
    timesteps: usize,
    /// Fetch passes over the whole dataset per measurement.
    laps: usize,
    /// Read-ahead worker pool for the pipelined row.
    workers: usize,
    depth: usize,
}

fn full() -> Profile {
    Profile {
        spec: bench_support::paper_spec(), // 64×64×32 = 131 072 points
        timesteps: 12,
        laps: 2,
        workers: 4,
        depth: 6,
    }
}

fn quick() -> Profile {
    Profile {
        spec: bench_support::small_spec(),
        timesteps: 4,
        laps: 1,
        workers: 2,
        depth: 2,
    }
}

/// Sequential forward playback over every timestep, `laps` times.
/// Returns effective timesteps/second.
fn measure<S: TimestepStore>(store: &S, timesteps: usize, laps: usize) -> f64 {
    let start = Instant::now();
    let mut fetched = 0u32;
    for _ in 0..laps {
        for t in 0..timesteps {
            let f = store.fetch(t).expect("fetch");
            // Touch the data so nothing is optimized away.
            std::hint::black_box(f.as_slice().first());
            fetched += 1;
        }
    }
    f64::from(fetched) / start.elapsed().as_secs_f64()
}

fn main() {
    let is_quick = std::env::args().any(|a| a == "--quick");
    let p = if is_quick { quick() } else { full() };
    let model = DiskModel::convex_c3240();

    eprintln!(
        "building tapered-cylinder dataset: {} points x {} timesteps",
        p.spec.dims.point_count(),
        p.timesteps
    );
    let ds = bench_support::tapered_dataset(p.spec, p.timesteps);
    let v1_dir = tempfile::tempdir().expect("tempdir");
    let v2_dir = tempfile::tempdir().expect("tempdir");
    format::write_dataset(v1_dir.path(), &ds).expect("write v1");
    format::write_dataset_v2(v2_dir.path(), &ds).expect("write v2");

    let v1 = DiskStore::open(v1_dir.path()).expect("open v1");
    let v2 = DiskStore::open(v2_dir.path()).expect("open v2");
    let raw_bytes: u64 = (0..p.timesteps).map(|t| v1.payload_bytes(t)).sum();
    let v2_bytes: u64 = (0..p.timesteps).map(|t| v2.payload_bytes(t)).sum();
    let ratio = raw_bytes as f64 / v2_bytes as f64;
    eprintln!("on-disk: v1 {raw_bytes} B, v2 {v2_bytes} B ({ratio:.2}x compression)");

    // Row 1: raw v1, synchronous.
    let raw_store = SimulatedDisk::new(v1, model);
    let raw_tps = measure(&raw_store, p.timesteps, p.laps);
    eprintln!("raw_v1_sync:   {raw_tps:6.1} timesteps/s");

    // Row 2: v2 compressed, synchronous. The disk model charges actual
    // file bytes, so the codec's ratio converts directly to bandwidth.
    let v2_sync_store = SimulatedDisk::new(DiskStore::open(v2_dir.path()).expect("open"), model);
    let v2_sync_tps = measure(&v2_sync_store, p.timesteps, p.laps);
    eprintln!("v2_sync:       {v2_sync_tps:6.1} timesteps/s");

    // Row 3: v2 behind the deadline-aware read-ahead pool — the
    // configuration the server actually runs. Prime the predictor with
    // one untimed lap so the measurement sees steady-state streaming.
    let pipelined =
        ReadAhead::with_workers(Arc::new(SimulatedDisk::new(v2, model)), p.depth, p.workers);
    measure(&pipelined, p.timesteps, 1);
    let v2_pipe_tps = measure(&pipelined, p.timesteps, p.laps);
    eprintln!("v2_pipelined:  {v2_pipe_tps:6.1} timesteps/s");

    let speedup_sync = v2_sync_tps / raw_tps;
    let speedup_pipe = v2_pipe_tps / raw_tps;
    let io = pipelined.io_stats();
    eprintln!(
        "effective speedup: {speedup_sync:.2}x sync, {speedup_pipe:.2}x pipelined \
         (prefetch {}/{} hits, decode {} us total)",
        io.prefetch_hits,
        io.prefetch_hits + io.prefetch_misses,
        io.decode_us
    );

    if is_quick {
        eprintln!("--quick: smoke pass only, BENCH_storage.json not written");
        return;
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"grid_points\": {},", p.spec.dims.point_count());
    let _ = writeln!(json, "  \"timesteps\": {},", p.timesteps);
    let _ = writeln!(
        json,
        "  \"disk_model\": {{\"bandwidth_mb_per_s\": 30.0, \"seek_ms\": 2.0}},"
    );
    let _ = writeln!(
        json,
        "  \"raw_bytes_per_timestep\": {},",
        raw_bytes / p.timesteps as u64
    );
    let _ = writeln!(
        json,
        "  \"v2_bytes_per_timestep\": {},",
        v2_bytes / p.timesteps as u64
    );
    let _ = writeln!(json, "  \"compression_ratio\": {ratio:.3},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, (mode, tps)) in [
        ("raw_v1_sync", raw_tps),
        ("v2_sync", v2_sync_tps),
        ("v2_pipelined", v2_pipe_tps),
    ]
    .iter()
    .enumerate()
    {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{mode}\", \"timesteps_per_s\": {tps:.2}, \
             \"ms_per_timestep\": {:.2}}}{}",
            1000.0 / tps,
            if i < 2 { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_v2_sync_vs_raw\": {speedup_sync:.3},");
    let _ = writeln!(json, "  \"speedup_v2_pipelined_vs_raw\": {speedup_pipe:.3}");
    json.push_str("}\n");
    std::fs::write("BENCH_storage.json", &json).expect("write BENCH_storage.json");
    print!("{json}");

    // Regression floor. The codec alone measures ~1.94x on the tapered
    // cylinder (the w-component is exactly zero in Grid coordinates and
    // collapses ~250x; u/v carry near-random low mantissa bytes and only
    // reach ~1.3x), which lands the synchronous compressed path near
    // 1.9x effective. The ≥3x gate is met by the shipping configuration:
    // compression × the read-ahead pool overlapping seek+transfer
    // budgets across workers (the striped-controller regime SimulatedDisk
    // models). See DESIGN.md §6.5 for the honest breakdown.
    assert!(
        speedup_pipe >= 3.0,
        "compressed pipelined streaming must be >= 3x raw sync DiskStore \
         (measured {speedup_pipe:.2}x; sync-only ratio {speedup_sync:.2}x)"
    );
}
