//! Ablation benchmarks for the design choices DESIGN.md §5 calls out.
//!
//! 1. **Grid-coordinate integration vs physical-space point location** —
//!    the paper's central tracer optimization (§2.1): integrating in grid
//!    coordinates replaces a per-step curvilinear point search with a
//!    direct trilinear lookup. The "physical" variant here does what the
//!    paper says is unacceptable: locate the particle in the grid at
//!    every step.
//! 2. **AoS vs SoA field layout** for a full streamline (not just one
//!    sample).
//! 3. **Time interpolation on/off** for pathlines (accuracy/cost knob the
//!    paper's one-field-per-timestep scheme avoids).

use bench_support::{small_spec, tapered_field};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tracer::pathline::{pathline, PathlineConfig};
use tracer::{streamline, Domain, Integrator, TraceConfig};
use vecmath::Vec3;

/// The §2.1 anti-pattern: trace a streamline keeping the particle in
/// *physical* space, re-locating it in the curvilinear grid every step.
fn streamline_physical_space(
    grid: &flowfield::CurvilinearGrid,
    field: &flowfield::VectorField,
    domain: &Domain,
    seed_grid: Vec3,
    cfg: &TraceConfig,
) -> Vec<Vec3> {
    use flowfield::FieldSample;
    let mut path = Vec::with_capacity(cfg.max_points);
    let Some(mut p_phys) = grid.to_physical(seed_grid) else {
        return path;
    };
    path.push(p_phys);
    for _ in 0..cfg.max_points {
        // The expensive search the windtunnel avoids:
        let Some(gc) = grid.locate(p_phys) else { break };
        let Some(gc) = domain.canonicalize(gc) else {
            break;
        };
        let Some(v_grid) = field.sample(gc) else {
            break;
        };
        // Step in grid space, convert back to physical for the next
        // search (velocity is stored in grid coordinates).
        let Some(next_gc) = domain.canonicalize(gc + v_grid * cfg.dt) else {
            break;
        };
        let Some(next_phys) = grid.to_physical(next_gc) else {
            break;
        };
        p_phys = next_phys;
        path.push(p_phys);
    }
    path
}

fn ablate_gridcoords(c: &mut Criterion) {
    let spec = small_spec();
    let grid = spec.build().unwrap();
    let (field, domain) = tapered_field(spec, 3.0);
    let seed = Vec3::new(
        (spec.dims.ni - 1) as f32 * 0.5,
        (spec.dims.nj - 1) as f32 * 0.4,
        (spec.dims.nk - 1) as f32 * 0.5,
    );
    let cfg = TraceConfig {
        dt: 0.3,
        max_points: 50,
        integrator: Integrator::Euler, // keep both variants comparable
        ..TraceConfig::default()
    };
    let mut g = c.benchmark_group("ablate_gridcoords_vs_search");
    g.sample_size(20);
    g.bench_function("grid_coordinates (paper)", |b| {
        b.iter(|| black_box(streamline(&field, &domain, black_box(seed), &cfg)))
    });
    g.bench_function("physical_space_search (naive)", |b| {
        b.iter(|| {
            black_box(streamline_physical_space(
                &grid,
                &field,
                &domain,
                black_box(seed),
                &cfg,
            ))
        })
    });
    g.finish();
}

fn ablate_layout(c: &mut Criterion) {
    let spec = small_spec();
    let (field, domain) = tapered_field(spec, 3.0);
    let soa = field.to_soa();
    let seed = Vec3::new(
        (spec.dims.ni - 1) as f32 * 0.5,
        (spec.dims.nj - 1) as f32 * 0.4,
        (spec.dims.nk - 1) as f32 * 0.5,
    );
    let cfg = TraceConfig {
        dt: 0.3,
        max_points: 200,
        ..TraceConfig::default()
    };
    let mut g = c.benchmark_group("ablate_field_layout");
    g.bench_function("aos_streamline", |b| {
        b.iter(|| black_box(streamline(&field, &domain, black_box(seed), &cfg)))
    });
    g.bench_function("soa_streamline", |b| {
        b.iter(|| black_box(streamline(&soa, &domain, black_box(seed), &cfg)))
    });
    g.finish();
}

fn ablate_time_interp(c: &mut Criterion) {
    let spec = small_spec();
    let fields: Vec<flowfield::VectorField> = (0..8)
        .map(|t| tapered_field(spec, t as f32 * 0.5).0)
        .collect();
    let domain = Domain::o_grid(spec.dims);
    let seed = Vec3::new(
        (spec.dims.ni - 1) as f32 * 0.5,
        (spec.dims.nj - 1) as f32 * 0.4,
        (spec.dims.nk - 1) as f32 * 0.5,
    );
    let mut g = c.benchmark_group("ablate_pathline_time_interp");
    for (name, interp) in [
        ("per_timestep_field (paper)", false),
        ("time_blended", true),
    ] {
        let cfg = PathlineConfig {
            time_interpolate: interp,
            substeps_per_timestep: 4,
            dt_per_timestep: 0.5,
            ..PathlineConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(pathline(&fields, &domain, black_box(seed), 0, &cfg)))
        });
    }
    g.finish();
}

/// §1.2's tool-selection argument, measured: "interactive streamlines …
/// can be used, but interactive isosurfaces … can not." Compare the cost
/// of the paper's whole 100×200 streamline frame against one isosurface
/// of the velocity-magnitude field on the same grid. Streamline work
/// scales with path points, isosurface work with grid cells.
fn ablate_isosurface_vs_streamlines(c: &mut Criterion) {
    use bench_support::paper_benchmark_seeds;
    use tracer::isosurface::isosurface;
    use tracer::trace_batch_scalar;

    let spec = small_spec();
    let (field, domain) = tapered_field(spec, 3.0);
    let mag = field.magnitude_field();
    let iso = {
        let (lo, hi) = mag.range().unwrap();
        lo + 0.6 * (hi - lo)
    };
    let seeds = paper_benchmark_seeds(spec.dims, 100);
    let cfg = TraceConfig {
        dt: 0.04,
        max_points: 200,
        ..TraceConfig::default()
    };

    let mut g = c.benchmark_group("ablate_isosurface_vs_streamlines");
    g.sample_size(20);
    g.bench_function("streamline_frame_100x200 (paper's tool)", |b| {
        b.iter(|| black_box(trace_batch_scalar(&field, &domain, &seeds, &cfg)))
    });
    g.bench_function("isosurface_frame (the excluded tool)", |b| {
        b.iter(|| black_box(isosurface(&mag, iso)))
    });
    g.finish();
}

criterion_group!(
    benches,
    ablate_gridcoords,
    ablate_layout,
    ablate_time_interp,
    ablate_isosurface_vs_streamlines
);
criterion_main!(benches);
