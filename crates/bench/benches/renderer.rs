//! Renderer benchmarks: can the software rasterizer hold the head-tracked
//! display rate of figure 9 (the client's fast loop), and what does the
//! writemask stereo pass cost over mono?

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vecmath::{Pose, Vec3};
use vr::stereo::{render_anaglyph, StereoCamera};
use vr::{Framebuffer, Rgb};

/// A synthetic scene shaped like a windtunnel frame: 100 polylines of 200
/// points swirling around the origin.
fn scene() -> Vec<(Vec<Vec3>, u8)> {
    (0..100)
        .map(|l| {
            let phase = l as f32 * 0.1;
            let line: Vec<Vec3> = (0..200)
                .map(|s| {
                    let t = s as f32 * 0.05;
                    Vec3::new(
                        (t + phase).cos() * (1.0 + 0.1 * t),
                        (t * 0.7).sin(),
                        (t + phase).sin() * (1.0 + 0.1 * t) - 6.0,
                    )
                })
                .collect();
            (line, 200u8)
        })
        .collect()
}

fn bench_mono(c: &mut Criterion) {
    let lines = scene();
    let cam = StereoCamera::new(Pose::new(Vec3::new(0.0, 0.0, 2.0), Default::default()));
    let mvp = cam.projection() * cam.head.view_matrix();
    c.bench_function("render_mono_100x200_640x480", |b| {
        let mut fb = Framebuffer::new(640, 480);
        b.iter(|| {
            fb.clear(Rgb::BLACK);
            for (line, shade) in &lines {
                fb.draw_polyline(&mvp, line, Rgb::red(*shade));
            }
            black_box(fb.count_pixels(|c| c.r > 0))
        })
    });
}

fn bench_stereo(c: &mut Criterion) {
    let lines = scene();
    let cam = StereoCamera::new(Pose::new(Vec3::new(0.0, 0.0, 2.0), Default::default()));
    c.bench_function("render_anaglyph_100x200_640x480", |b| {
        let mut fb = Framebuffer::new(640, 480);
        b.iter(|| {
            fb.clear(Rgb::BLACK);
            render_anaglyph(&mut fb, &cam, &lines);
            black_box(fb.count_pixels(|c| c.b > 0))
        })
    });
}

criterion_group!(benches, bench_mono, bench_stereo);
criterion_main!(benches);
