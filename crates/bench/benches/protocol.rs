//! Protocol benchmarks: geometry-frame encode/decode at Table 1's
//! particle counts, and full dlib round trips over loopback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vecmath::Vec3;
use windtunnel::proto::{GeometryFrame, PathKind, PathMsg};

fn frame_with(particles: usize) -> GeometryFrame {
    GeometryFrame {
        timestep: 3,
        time: 0.15,
        revision: 42,
        rakes: vec![],
        paths: vec![PathMsg {
            rake_id: 1,
            kind: PathKind::Streamline,
            points: (0..particles)
                .map(|i| Vec3::new(i as f32, 2.0, 3.0))
                .collect(),
        }],
        users: vec![],
    }
}

fn bench_frame_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry_frame_codec");
    for particles in [10_000usize, 50_000, 100_000] {
        let frame = frame_with(particles);
        let encoded = frame.encode();
        g.throughput(Throughput::Bytes(encoded.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", particles), &frame, |b, f| {
            b.iter(|| black_box(f.encode()))
        });
        g.bench_with_input(
            BenchmarkId::new("encode_into_reused", particles),
            &frame,
            |b, f| {
                let mut scratch = bytes::BytesMut::new();
                b.iter(|| {
                    scratch.clear();
                    f.encode_into(&mut scratch);
                    black_box(scratch.len())
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("decode", particles), &encoded, |b, e| {
            b.iter(|| black_box(GeometryFrame::decode(e).unwrap()))
        });
    }
    g.finish();
}

fn bench_dlib_roundtrip(c: &mut Criterion) {
    use dlib::server::DlibServer;
    use dlib::DlibClient;

    let mut server = DlibServer::new(());
    server.register(1, |_, _, args| Ok(bytes::Bytes::copy_from_slice(args)));
    let handle = server.serve("127.0.0.1:0").unwrap();
    let mut client = DlibClient::connect(handle.addr()).unwrap();

    let mut g = c.benchmark_group("dlib_roundtrip");
    g.sample_size(30);
    for size in [64usize, 120_000, 1_200_000] {
        let payload = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &payload, |b, p| {
            b.iter(|| black_box(client.call(1, p).unwrap()))
        });
    }
    g.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_frame_codec, bench_dlib_roundtrip);
criterion_main!(benches);
