//! Criterion micro-benchmarks of the hot kernels behind Table 3:
//! trilinear interpolation (AoS vs SoA), single RK2 steps, and the full
//! 100×200 benchmark per kernel.

use bench_support::{paper_benchmark_seeds, small_spec, tapered_field};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tracer::benchmark::{run_kernel, BenchField, Kernel};
use tracer::{Integrator, TraceConfig};
use vecmath::Vec3;

fn bench_interpolation(c: &mut Criterion) {
    use flowfield::FieldSample;
    let (field, _domain) = tapered_field(small_spec(), 3.0);
    let soa = field.to_soa();
    let dims = small_spec().dims;
    let probes: Vec<Vec3> = (0..256)
        .map(|i| {
            let f = i as f32 / 256.0;
            Vec3::new(
                (dims.ni - 2) as f32 * f,
                (dims.nj - 2) as f32 * (1.0 - f),
                (dims.nk - 2) as f32 * f,
            )
        })
        .collect();

    let mut g = c.benchmark_group("interpolation");
    g.bench_function("aos_256_samples", |b| {
        b.iter(|| {
            let mut acc = Vec3::ZERO;
            for &p in &probes {
                if let Some(v) = field.sample(black_box(p)) {
                    acc += v;
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("soa_256_samples", |b| {
        b.iter(|| {
            let mut acc = Vec3::ZERO;
            for &p in &probes {
                if let Some(v) = soa.sample(black_box(p)) {
                    acc += v;
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("soa_batch_256", |b| {
        let mut out = vec![Vec3::ZERO; probes.len()];
        let mut alive = vec![true; probes.len()];
        b.iter(|| {
            alive.fill(true);
            soa.sample_batch(black_box(&probes), &mut out, &mut alive);
            black_box(&out);
        })
    });
    g.finish();
}

fn bench_integrators(c: &mut Criterion) {
    let (field, domain) = tapered_field(small_spec(), 3.0);
    let start = Vec3::new(8.0, 6.0, 4.0);
    let mut g = c.benchmark_group("integrator_step");
    for (name, scheme) in [
        ("euler", Integrator::Euler),
        ("rk2", Integrator::Rk2),
        ("rk4", Integrator::Rk4),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(scheme.step(&field, &domain, black_box(start), 0.1)))
        });
    }
    g.finish();
}

fn bench_table3_kernels(c: &mut Criterion) {
    let spec = small_spec();
    let (field, domain) = tapered_field(spec, 3.0);
    let bench = BenchField::new(field, domain);
    let seeds = paper_benchmark_seeds(spec.dims, 100);
    let cfg = TraceConfig {
        dt: 0.35,
        max_points: 200,
        ..TraceConfig::default()
    };
    let mut g = c.benchmark_group("table3_100x200");
    g.sample_size(10);
    for kernel in Kernel::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(kernel.label()),
            &kernel,
            |b, &k| b.iter(|| black_box(run_kernel(k, &bench, &seeds, &cfg).0)),
        );
    }
    g.finish();
}

fn bench_adaptive_vs_fixed(c: &mut Criterion) {
    use tracer::adaptive::{adaptive_streamline, AdaptiveConfig};
    use tracer::streamline;
    let (field, domain) = tapered_field(small_spec(), 3.0);
    let dims = small_spec().dims;
    let seed = Vec3::new(
        (dims.ni - 1) as f32 * 0.5,
        (dims.nj - 1) as f32 * 0.4,
        (dims.nk - 1) as f32 * 0.5,
    );
    let mut g = c.benchmark_group("adaptive_vs_fixed_step");
    g.bench_function("fixed_rk2_200pts", |b| {
        let cfg = TraceConfig {
            dt: 0.05,
            max_points: 200,
            ..TraceConfig::default()
        };
        b.iter(|| black_box(streamline(&field, &domain, black_box(seed), &cfg)))
    });
    g.bench_function("adaptive_rk2_tol1e-3", |b| {
        let cfg = AdaptiveConfig {
            tolerance: 1.0e-3,
            dt0: 0.05,
            max_points: 200,
            ..AdaptiveConfig::default()
        };
        b.iter(|| black_box(adaptive_streamline(&field, &domain, black_box(seed), &cfg)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_interpolation,
    bench_integrators,
    bench_table3_kernels,
    bench_adaptive_vs_fixed
);
criterion_main!(benches);
