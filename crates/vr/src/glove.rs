//! The VPL DataGlove II model: hand pose, finger bends, gestures.
//!
//! §3: "the user's hand position, orientation, and finger joint angles are
//! sensed using a VPL dataglove model II, which incorporates a Polhemus
//! 3Space tracker… The degree of bend of knuckle and middle joints of the
//! fingers and thumb of the user's hand are measured… using specially
//! treated optical fibers. These finger joint angles are combined and
//! interpreted as gestures. The glove requires recalibration for each
//! user, and the Polhemus tracker has limited accuracy and is sensitive to
//! the ambient electromagnetic environment."
//!
//! Ten bend sensors (knuckle + middle joint, five digits), a per-user
//! min/max calibration, a Polhemus noise model, and a debounced gesture
//! recognizer (the windtunnel's grab interaction is "make a fist near a
//! rake handle").

use vecmath::{Pose, Quat, Vec3};

/// Raw sensor indices: `sensor = finger * 2 + joint`, fingers ordered
/// thumb, index, middle, ring, little; joint 0 = knuckle, 1 = middle.
pub const SENSOR_COUNT: usize = 10;

/// A raw glove sample: Polhemus pose + raw bend sensor values.
#[derive(Debug, Clone, Copy)]
pub struct GloveReading {
    pub pose: Pose,
    /// Raw optical-fiber readings, arbitrary units.
    pub bends: [f32; SENSOR_COUNT],
}

/// Per-user calibration: raw values observed with the hand fully open and
/// fully fisted, per sensor (§3: "requires recalibration for each user").
#[derive(Debug, Clone, Copy)]
pub struct GloveCalibration {
    pub open: [f32; SENSOR_COUNT],
    pub fist: [f32; SENSOR_COUNT],
}

impl Default for GloveCalibration {
    fn default() -> Self {
        GloveCalibration {
            open: [0.1; SENSOR_COUNT],
            fist: [0.9; SENSOR_COUNT],
        }
    }
}

impl GloveCalibration {
    /// Normalize a raw reading to [0, 1] (0 = straight, 1 = fully bent).
    pub fn normalize(&self, raw: &[f32; SENSOR_COUNT]) -> [f32; SENSOR_COUNT] {
        let mut out = [0.0; SENSOR_COUNT];
        for s in 0..SENSOR_COUNT {
            let span = self.fist[s] - self.open[s];
            out[s] = if span.abs() < 1e-6 {
                0.0
            } else {
                ((raw[s] - self.open[s]) / span).clamp(0.0, 1.0)
            };
        }
        out
    }

    /// Calibrate from samples: element-wise min of open samples and max
    /// of fist samples.
    pub fn from_samples(
        open_samples: &[[f32; SENSOR_COUNT]],
        fist_samples: &[[f32; SENSOR_COUNT]],
    ) -> GloveCalibration {
        let mut cal = GloveCalibration {
            open: [f32::INFINITY; SENSOR_COUNT],
            fist: [f32::NEG_INFINITY; SENSOR_COUNT],
        };
        for s in open_samples {
            for (o, v) in cal.open.iter_mut().zip(s) {
                *o = o.min(*v);
            }
        }
        for s in fist_samples {
            for (f, v) in cal.fist.iter_mut().zip(s) {
                *f = f.max(*v);
            }
        }
        cal
    }
}

/// Recognized hand gestures (the command vocabulary of the windtunnel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Gesture {
    /// Flat hand — no command.
    #[default]
    Open,
    /// All fingers bent — grab.
    Fist,
    /// Index extended, others bent — point (menu/selection).
    Point,
    /// Thumb + index bent, others straight — pinch (fine adjust).
    Pinch,
}

/// Classify one normalized bend frame (no hysteresis).
pub fn classify(bends: &[f32; SENSOR_COUNT]) -> Gesture {
    // Per-digit bend = mean of its two joints.
    let digit = |d: usize| (bends[d * 2] + bends[d * 2 + 1]) * 0.5;
    let thumb = digit(0);
    let index = digit(1);
    let rest_bent = (2..5).all(|d| digit(d) > 0.6);
    let rest_straight = (2..5).all(|d| digit(d) < 0.4);
    if index < 0.35 && thumb > 0.4 && rest_bent {
        Gesture::Point
    } else if index > 0.6 && thumb > 0.6 && rest_bent {
        Gesture::Fist
    } else if index > 0.5 && thumb > 0.5 && rest_straight {
        Gesture::Pinch
    } else {
        Gesture::Open
    }
}

/// The glove device: calibration + debounced gesture state + a Polhemus
/// noise/latency model for synthetic sessions.
#[derive(Debug, Clone)]
pub struct DataGlove {
    calibration: GloveCalibration,
    /// Frames a candidate gesture must persist before being reported —
    /// raw classification flickers at gesture boundaries exactly like the
    /// real fiber sensors did.
    debounce_frames: u32,
    current: Gesture,
    candidate: Gesture,
    candidate_frames: u32,
    last_pose: Pose,
}

impl DataGlove {
    pub fn new(calibration: GloveCalibration) -> DataGlove {
        DataGlove {
            calibration,
            debounce_frames: 3,
            current: Gesture::Open,
            candidate: Gesture::Open,
            candidate_frames: 0,
            last_pose: Pose::IDENTITY,
        }
    }

    pub fn with_debounce(mut self, frames: u32) -> DataGlove {
        self.debounce_frames = frames;
        self
    }

    /// Feed one raw sample; returns the debounced gesture.
    pub fn update(&mut self, reading: &GloveReading) -> Gesture {
        self.last_pose = reading.pose;
        let normalized = self.calibration.normalize(&reading.bends);
        let raw_gesture = classify(&normalized);
        if raw_gesture == self.current {
            self.candidate = raw_gesture;
            self.candidate_frames = 0;
        } else if raw_gesture == self.candidate {
            self.candidate_frames += 1;
            if self.candidate_frames >= self.debounce_frames {
                self.current = raw_gesture;
                self.candidate_frames = 0;
            }
        } else {
            self.candidate = raw_gesture;
            self.candidate_frames = 1;
            if self.debounce_frames <= 1 {
                self.current = raw_gesture;
            }
        }
        self.current
    }

    /// Latest debounced gesture.
    pub fn gesture(&self) -> Gesture {
        self.current
    }

    /// Latest hand pose.
    pub fn pose(&self) -> Pose {
        self.last_pose
    }
}

/// Polhemus noise model: positional jitter plus orientation wobble that
/// grows with distance from the source (§3: "limited accuracy and is
/// sensitive to the ambient electromagnetic environment"). Deterministic
/// given the phase argument — synthetic sessions stay reproducible.
pub fn polhemus_noise(pose: Pose, source: Vec3, phase: f32) -> Pose {
    let dist = pose.position.distance(source);
    let amp = 0.002 + 0.004 * dist; // metres of jitter
    let jitter = Vec3::new(
        (phase * 37.7).sin(),
        (phase * 23.3 + 1.0).sin(),
        (phase * 41.1 + 2.0).sin(),
    ) * amp;
    let wobble = Quat::from_axis_angle(
        Vec3::new(1.0, 0.3, 0.2),
        0.002 * dist * (phase * 19.0).sin(),
    );
    Pose {
        position: pose.position + jitter,
        orientation: wobble * pose.orientation,
    }
}

/// Convenience constructors for synthetic bend frames.
pub fn bends_open() -> [f32; SENSOR_COUNT] {
    [0.1; SENSOR_COUNT]
}

pub fn bends_fist() -> [f32; SENSOR_COUNT] {
    [0.9; SENSOR_COUNT]
}

pub fn bends_point() -> [f32; SENSOR_COUNT] {
    let mut b = [0.9; SENSOR_COUNT];
    b[2] = 0.1; // index knuckle straight
    b[3] = 0.1; // index middle straight
    b
}

pub fn bends_pinch() -> [f32; SENSOR_COUNT] {
    let mut b = [0.1; SENSOR_COUNT];
    b[0] = 0.8;
    b[1] = 0.8; // thumb bent
    b[2] = 0.8;
    b[3] = 0.8; // index bent
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(raw: [f32; SENSOR_COUNT]) -> [f32; SENSOR_COUNT] {
        GloveCalibration::default().normalize(&raw)
    }

    #[test]
    fn classify_canonical_gestures() {
        assert_eq!(classify(&norm(bends_open())), Gesture::Open);
        assert_eq!(classify(&norm(bends_fist())), Gesture::Fist);
        assert_eq!(classify(&norm(bends_point())), Gesture::Point);
        assert_eq!(classify(&norm(bends_pinch())), Gesture::Pinch);
    }

    #[test]
    fn calibration_normalizes_user_range() {
        // A user whose sensors read 0.3 open and 0.5 fisted.
        let cal = GloveCalibration {
            open: [0.3; SENSOR_COUNT],
            fist: [0.5; SENSOR_COUNT],
        };
        let half = cal.normalize(&[0.4; SENSOR_COUNT]);
        assert!((half[0] - 0.5).abs() < 1e-5);
        // Out-of-range raw values clamp.
        assert_eq!(cal.normalize(&[0.9; SENSOR_COUNT])[0], 1.0);
        assert_eq!(cal.normalize(&[0.0; SENSOR_COUNT])[0], 0.0);
    }

    #[test]
    fn degenerate_calibration_is_safe() {
        let cal = GloveCalibration {
            open: [0.5; SENSOR_COUNT],
            fist: [0.5; SENSOR_COUNT],
        };
        assert_eq!(cal.normalize(&[0.7; SENSOR_COUNT])[0], 0.0);
    }

    #[test]
    fn calibration_from_samples() {
        let cal = GloveCalibration::from_samples(
            &[[0.2; SENSOR_COUNT], [0.15; SENSOR_COUNT]],
            &[[0.8; SENSOR_COUNT], [0.85; SENSOR_COUNT]],
        );
        assert_eq!(cal.open[0], 0.15);
        assert_eq!(cal.fist[0], 0.85);
    }

    #[test]
    fn debounce_filters_flicker() {
        let mut glove = DataGlove::new(GloveCalibration::default()).with_debounce(3);
        let read = |bends| GloveReading {
            pose: Pose::IDENTITY,
            bends,
        };
        assert_eq!(glove.update(&read(bends_open())), Gesture::Open);
        // One flicker frame of fist: still open.
        assert_eq!(glove.update(&read(bends_fist())), Gesture::Open);
        assert_eq!(glove.update(&read(bends_open())), Gesture::Open);
        // Sustained fist: switches after 3 frames.
        assert_eq!(glove.update(&read(bends_fist())), Gesture::Open);
        assert_eq!(glove.update(&read(bends_fist())), Gesture::Open);
        assert_eq!(glove.update(&read(bends_fist())), Gesture::Fist);
    }

    #[test]
    fn pose_is_tracked() {
        let mut glove = DataGlove::new(GloveCalibration::default());
        let pose = Pose::new(Vec3::new(1.0, 2.0, 3.0), Quat::IDENTITY);
        glove.update(&GloveReading {
            pose,
            bends: bends_open(),
        });
        assert_eq!(glove.pose().position, pose.position);
    }

    #[test]
    fn polhemus_noise_grows_with_distance() {
        let near = Pose::new(Vec3::new(0.1, 0.0, 0.0), Quat::IDENTITY);
        let far = Pose::new(Vec3::new(3.0, 0.0, 0.0), Quat::IDENTITY);
        let src = Vec3::ZERO;
        let mut near_err = 0.0f32;
        let mut far_err = 0.0f32;
        for i in 0..50 {
            let phase = i as f32 * 0.113;
            near_err = near_err.max(
                polhemus_noise(near, src, phase)
                    .position
                    .distance(near.position),
            );
            far_err = far_err.max(
                polhemus_noise(far, src, phase)
                    .position
                    .distance(far.position),
            );
        }
        assert!(far_err > near_err);
        assert!(near_err < 0.02);
    }

    #[test]
    fn polhemus_noise_is_deterministic() {
        let p = Pose::new(Vec3::new(1.0, 1.0, 0.0), Quat::IDENTITY);
        let a = polhemus_noise(p, Vec3::ZERO, 0.7);
        let b = polhemus_noise(p, Vec3::ZERO, 0.7);
        assert_eq!(a.position, b.position);
    }

    #[test]
    fn gesture_sequence_grab_and_release() {
        // The windtunnel interaction: open → fist (grab) → open (release).
        let mut glove = DataGlove::new(GloveCalibration::default()).with_debounce(2);
        let read = |bends| GloveReading {
            pose: Pose::IDENTITY,
            bends,
        };
        for _ in 0..3 {
            glove.update(&read(bends_open()));
        }
        assert_eq!(glove.gesture(), Gesture::Open);
        for _ in 0..3 {
            glove.update(&read(bends_fist()));
        }
        assert_eq!(glove.gesture(), Gesture::Fist);
        for _ in 0..3 {
            glove.update(&read(bends_open()));
        }
        assert_eq!(glove.gesture(), Gesture::Open);
    }
}
