//! Stereo camera: per-eye view and projection from a head pose.
//!
//! §1.2: "The computer generated scene is displayed in stereo to create
//! the illusion of depth, and is rendered from a point of view that tracks
//! the user's head." The BOOM provides the head pose; the two eyes sit
//! ±ipd/2 along the head's local X axis, each rendering through the same
//! symmetric frustum (the BOOM's LEEP optics were identical per eye).

use crate::render::{ColorMask, Framebuffer, Rgb};
use vecmath::{Mat4, Pose, Vec3};

/// Which eye a pass renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eye {
    Left,
    Right,
}

/// Head-tracked stereo camera.
#[derive(Debug, Clone, Copy)]
pub struct StereoCamera {
    /// Head pose (from the BOOM).
    pub head: Pose,
    /// Interpupillary distance.
    pub ipd: f32,
    /// Vertical field of view (radians) — the BOOM's wide-field LEEP
    /// optics were ~90°+.
    pub fovy: f32,
    pub aspect: f32,
    pub near: f32,
    pub far: f32,
}

impl StereoCamera {
    pub fn new(head: Pose) -> StereoCamera {
        StereoCamera {
            head,
            ipd: 0.064,
            fovy: 1.6,
            aspect: 1.0,
            near: 0.05,
            far: 200.0,
        }
    }

    /// World-space position of one eye.
    pub fn eye_position(&self, eye: Eye) -> Vec3 {
        let offset = match eye {
            Eye::Left => -self.ipd * 0.5,
            Eye::Right => self.ipd * 0.5,
        };
        self.head.transform_point(Vec3::new(offset, 0.0, 0.0))
    }

    /// View matrix for one eye: the head pose shifted to the eye, then
    /// inverted (§3's matrix inversion, per eye).
    pub fn view(&self, eye: Eye) -> Mat4 {
        let eye_pose = Pose {
            position: self.eye_position(eye),
            orientation: self.head.orientation,
        };
        eye_pose.view_matrix()
    }

    /// Shared projection matrix.
    pub fn projection(&self) -> Mat4 {
        Mat4::perspective(self.fovy, self.aspect, self.near, self.far)
    }

    /// Full MVP for one eye (model = identity; concatenate yours).
    pub fn mvp(&self, eye: Eye) -> Mat4 {
        self.projection() * self.view(eye)
    }
}

/// Render a scene of polylines in the paper's red/blue two-channel
/// stereo: left eye in red shades, Z cleared, right eye in blue behind a
/// writemask protecting the red planes. `shade` is applied to both eyes.
pub fn render_anaglyph(fb: &mut Framebuffer, camera: &StereoCamera, polylines: &[(Vec<Vec3>, u8)]) {
    // Left eye: red only.
    fb.set_mask(ColorMask::RED_ONLY);
    let mvp_l = camera.mvp(Eye::Left);
    for (line, shade) in polylines {
        fb.draw_polyline(&mvp_l, line, Rgb::red(*shade));
    }
    // "The Z-buffer bit planes are cleared between the drawing of the
    // left- and right-eye images, but the color (red) bit planes are
    // not."
    fb.clear_depth();
    // Right eye: blue behind the red-protecting writemask.
    fb.set_mask(ColorMask::PROTECT_RED);
    let mvp_r = camera.mvp(Eye::Right);
    for (line, shade) in polylines {
        fb.draw_polyline(&mvp_r, line, Rgb::blue(*shade));
    }
    fb.set_mask(ColorMask::ALL);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmath::Quat;

    fn head_at_origin() -> Pose {
        Pose::new(Vec3::new(0.0, 0.0, 2.0), Quat::IDENTITY)
    }

    #[test]
    fn eyes_are_ipd_apart() {
        let cam = StereoCamera::new(head_at_origin());
        let l = cam.eye_position(Eye::Left);
        let r = cam.eye_position(Eye::Right);
        assert!((l.distance(r) - cam.ipd).abs() < 1e-6);
        // Eyes straddle the head position symmetrically.
        assert!(((l + r) * 0.5).distance(cam.head.position) < 1e-6);
    }

    #[test]
    fn eye_offset_rotates_with_head() {
        let mut cam = StereoCamera::new(head_at_origin());
        cam.head.orientation = Quat::from_axis_angle(Vec3::Y, std::f32::consts::FRAC_PI_2);
        let l = cam.eye_position(Eye::Left);
        let r = cam.eye_position(Eye::Right);
        // After a quarter turn about Y, the eye axis lies along Z.
        let axis = (r - l).normalized_or_zero();
        assert!(axis.dot(Vec3::Z).abs() > 0.99, "{axis:?}");
    }

    #[test]
    fn parallax_shifts_opposite_directions() {
        // A point in front of the head projects right-of-center for the
        // left eye and left-of-center for the right eye.
        let fb = Framebuffer::new(200, 200);
        let cam = StereoCamera::new(head_at_origin());
        let p = Vec3::new(0.0, 0.0, 1.0); // 1 m in front (head looks -Z from z=2)
        let (xl, _, _) = fb.project(&cam.mvp(Eye::Left), p).unwrap();
        let (xr, _, _) = fb.project(&cam.mvp(Eye::Right), p).unwrap();
        assert!(xl > 100.0, "left-eye x {xl}");
        assert!(xr < 100.0, "right-eye x {xr}");
        // Disparity shrinks with distance.
        let q = Vec3::new(0.0, 0.0, -30.0);
        let (xlq, _, _) = fb.project(&cam.mvp(Eye::Left), q).unwrap();
        let (xrq, _, _) = fb.project(&cam.mvp(Eye::Right), q).unwrap();
        assert!((xlq - xrq).abs() < (xl - xr).abs());
    }

    #[test]
    fn anaglyph_produces_both_channels() {
        let mut fb = Framebuffer::new(128, 128);
        let cam = StereoCamera::new(head_at_origin());
        let line = vec![Vec3::new(-0.5, 0.0, 0.0), Vec3::new(0.5, 0.0, 0.0)];
        render_anaglyph(&mut fb, &cam, &[(line, 220)]);
        let reds = fb.count_pixels(|c| c.r > 0);
        let blues = fb.count_pixels(|c| c.b > 0);
        assert!(reds > 10, "red pixels {reds}");
        assert!(blues > 10, "blue pixels {blues}");
        // No green anywhere: the two channels are pure.
        assert_eq!(fb.count_pixels(|c| c.g > 0), 0);
        // And the mask was restored.
        assert_eq!(fb.mask(), ColorMask::ALL);
    }

    #[test]
    fn anaglyph_overlap_holds_both_eyes() {
        // A line far away has near-zero disparity: most of its pixels are
        // drawn by both eyes and must hold red AND blue.
        let mut fb = Framebuffer::new(128, 128);
        let cam = StereoCamera::new(head_at_origin());
        let line = vec![Vec3::new(-2.0, 0.0, -60.0), Vec3::new(2.0, 0.0, -60.0)];
        render_anaglyph(&mut fb, &cam, &[(line, 200)]);
        let purple = fb.count_pixels(|c| c.r > 0 && c.b > 0);
        assert!(purple > 3, "overlap pixels {purple}");
    }
}
