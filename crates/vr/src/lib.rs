#![deny(unsafe_op_in_unsafe_fn, unused_must_use)]
//! Virtual-environment substrate: the hardware of §3, simulated.
//!
//! The 1992 interface was a boom-mounted stereo CRT display (BOOM), a VPL
//! DataGlove II with a Polhemus tracker, and an SGI VGX rendering red/blue
//! two-channel stereo. None of that hardware exists here, so this crate
//! implements each device's *math and behaviour* behind a synthetic input
//! stream (see DESIGN.md §2):
//!
//! * [`boom`] — the six-joint counterweighted yoke: optical encoder
//!   angles → 4×4 head pose "by six successive translations and
//!   rotations", exactly as §3 describes, including encoder quantization
//!   and joint limits;
//! * [`glove`] — hand pose + ten finger-bend sensors, per-user
//!   calibration, and the gesture recognizer (fist = grab, point, open);
//! * [`stereo`] — per-eye view/projection from a head pose;
//! * [`render`] — a software line/point rasterizer with Z-buffer and
//!   per-channel **writemask**, reproducing the paper's stereo trick:
//!   left eye drawn in red shades, Z cleared, right eye drawn in blue
//!   behind a writemask that protects the red bit planes;
//! * [`ppm`] — image output for the figure-regeneration harness.

pub mod boom;
pub mod glove;
pub mod ik;
pub mod ppm;
pub mod render;
pub mod stereo;

pub use boom::{Boom, BoomGeometry, BoomJoint};
pub use glove::{DataGlove, Gesture, GloveCalibration, GloveReading};
pub use ik::{solve_position, IkSolution};
pub use render::{ColorMask, Framebuffer, Rgb};
pub use stereo::StereoCamera;
