//! PPM/PGM image output for the figure-regeneration harness.
//!
//! Figures 1–3 of the paper are rendered views of streaklines and
//! streamlines around the tapered cylinder; the bench harness regenerates
//! them as portable pixmaps that any viewer opens.

use crate::render::Framebuffer;
use std::io::Write;
use std::path::Path;

/// Write a binary PPM (P6).
pub fn write_ppm(path: &Path, fb: &Framebuffer) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "P6\n{} {}\n255\n", fb.width(), fb.height())?;
    f.write_all(&fb.rgb_bytes())?;
    f.flush()
}

/// Write a binary PGM (P5) of one channel: `0` = red, `1` = green,
/// `2` = blue — handy for inspecting a single stereo eye.
pub fn write_pgm_channel(path: &Path, fb: &Framebuffer, channel: usize) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "P5\n{} {}\n255\n", fb.width(), fb.height())?;
    let rgb = fb.rgb_bytes();
    let plane: Vec<u8> = rgb.chunks_exact(3).map(|px| px[channel.min(2)]).collect();
    f.write_all(&plane)?;
    f.flush()
}

/// Parse a P6 PPM back (test helper / tooling).
pub fn read_ppm(path: &Path) -> std::io::Result<(usize, usize, Vec<u8>)> {
    let data = std::fs::read(path)?;
    let header_err = || std::io::Error::new(std::io::ErrorKind::InvalidData, "bad PPM header");
    // Parse "P6\n<w> <h>\n255\n".
    let mut parts = data.splitn(2, |&b| b == b'\n');
    let magic = parts.next().ok_or_else(header_err)?;
    if magic != b"P6" {
        return Err(header_err());
    }
    let rest = parts.next().ok_or_else(header_err)?;
    let mut lines = rest.splitn(3, |&b| b == b'\n');
    let dims = lines.next().ok_or_else(header_err)?;
    let maxval = lines.next().ok_or_else(header_err)?;
    if maxval != b"255" {
        return Err(header_err());
    }
    let pixels = lines.next().ok_or_else(header_err)?;
    let dims_str = std::str::from_utf8(dims).map_err(|_| header_err())?;
    let mut it = dims_str.split_whitespace();
    let w: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(header_err)?;
    let h: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(header_err)?;
    if pixels.len() < w * h * 3 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "truncated PPM pixel data",
        ));
    }
    Ok((w, h, pixels[..w * h * 3].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::Rgb;
    use tempfile::tempdir;

    #[test]
    fn ppm_roundtrip() {
        let mut fb = Framebuffer::new(5, 3);
        fb.set_pixel(2, 1, 0.0, Rgb::new(10, 20, 30));
        let dir = tempdir().unwrap();
        let path = dir.path().join("out.ppm");
        write_ppm(&path, &fb).unwrap();
        let (w, h, px) = read_ppm(&path).unwrap();
        assert_eq!((w, h), (5, 3));
        let idx = (5 + 2) * 3;
        assert_eq!(&px[idx..idx + 3], &[10, 20, 30]);
    }

    #[test]
    fn pgm_extracts_channel() {
        let mut fb = Framebuffer::new(2, 2);
        fb.set_pixel(0, 0, 0.0, Rgb::new(100, 0, 200));
        let dir = tempdir().unwrap();
        let path = dir.path().join("red.pgm");
        write_pgm_channel(&path, &fb, 0).unwrap();
        let data = std::fs::read(&path).unwrap();
        // Header "P5\n2 2\n255\n" is 11 bytes; first pixel is red=100.
        assert_eq!(data[11], 100);
        let path_b = dir.path().join("blue.pgm");
        write_pgm_channel(&path_b, &fb, 2).unwrap();
        let data_b = std::fs::read(&path_b).unwrap();
        assert_eq!(data_b[11], 200);
    }

    #[test]
    fn bad_ppm_rejected() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("junk.ppm");
        std::fs::write(&path, b"NOTAPPM").unwrap();
        assert!(read_ppm(&path).is_err());
        std::fs::write(&path, b"P6\n4 4\n255\nxx").unwrap();
        assert!(read_ppm(&path).is_err());
    }
}
