//! Software line/point rasterizer with Z-buffer and channel writemask.
//!
//! §3 describes the stereo trick precisely: "rendering the left eye image
//! using only shades of pure red (of which 256 are available) and the
//! right eye image using only shades of pure blue. When the blue (second,
//! right-eye) image is drawn, it is drawn using a 'writemask' that
//! protects the bits of the red image. The Z-buffer bit planes are cleared
//! between the drawing of the left- and right-eye images, but the color
//! (red) bit planes are not cleared. Thus, the end result is separately
//! Z-buffered left- and right-eye images, in red and blue respectively, on
//! the screen at the same time."
//!
//! [`Framebuffer`] implements exactly that: per-channel writemask, Z
//! clear independent of color clear, DDA lines with depth interpolation.

use vecmath::{Mat4, Vec3};

/// 8-bit RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rgb {
    pub r: u8,
    pub g: u8,
    pub b: u8,
}

impl Rgb {
    pub const BLACK: Rgb = Rgb { r: 0, g: 0, b: 0 };
    pub const WHITE: Rgb = Rgb {
        r: 255,
        g: 255,
        b: 255,
    };

    pub const fn new(r: u8, g: u8, b: u8) -> Rgb {
        Rgb { r, g, b }
    }

    /// A pure-red shade (left eye).
    pub const fn red(shade: u8) -> Rgb {
        Rgb {
            r: shade,
            g: 0,
            b: 0,
        }
    }

    /// A pure-blue shade (right eye).
    pub const fn blue(shade: u8) -> Rgb {
        Rgb {
            r: 0,
            g: 0,
            b: shade,
        }
    }
}

/// Which color channels the rasterizer may write — the IRIS GL writemask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColorMask {
    pub r: bool,
    pub g: bool,
    pub b: bool,
}

impl ColorMask {
    pub const ALL: ColorMask = ColorMask {
        r: true,
        g: true,
        b: true,
    };
    /// Left-eye pass: may write red only.
    pub const RED_ONLY: ColorMask = ColorMask {
        r: true,
        g: false,
        b: false,
    };
    /// Right-eye pass: may write green+blue only — "protects the bits of
    /// the red image".
    pub const PROTECT_RED: ColorMask = ColorMask {
        r: false,
        g: true,
        b: true,
    };
}

/// RGB framebuffer with f32 Z-buffer (smaller z = nearer; z is the NDC
/// depth in [-1, 1] after projection).
pub struct Framebuffer {
    width: usize,
    height: usize,
    color: Vec<Rgb>,
    depth: Vec<f32>,
    mask: ColorMask,
}

impl Framebuffer {
    pub fn new(width: usize, height: usize) -> Framebuffer {
        Framebuffer {
            width,
            height,
            color: vec![Rgb::BLACK; width * height],
            depth: vec![f32::INFINITY; width * height],
            mask: ColorMask::ALL,
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    pub fn set_mask(&mut self, mask: ColorMask) {
        self.mask = mask;
    }

    pub fn mask(&self) -> ColorMask {
        self.mask
    }

    /// Clear color planes (honours the writemask, like the hardware) and
    /// the Z-buffer.
    pub fn clear(&mut self, color: Rgb) {
        for i in 0..self.color.len() {
            self.write_pixel_unchecked(i, color);
        }
        self.clear_depth();
    }

    /// Clear only the Z planes — the between-eyes step of §3.
    pub fn clear_depth(&mut self) {
        self.depth.fill(f32::INFINITY);
    }

    #[inline]
    fn write_pixel_unchecked(&mut self, idx: usize, c: Rgb) {
        let px = &mut self.color[idx];
        if self.mask.r {
            px.r = c.r;
        }
        if self.mask.g {
            px.g = c.g;
        }
        if self.mask.b {
            px.b = c.b;
        }
    }

    /// Depth-tested, masked pixel write.
    pub fn set_pixel(&mut self, x: i32, y: i32, z: f32, c: Rgb) {
        if x < 0 || y < 0 || x >= self.width as i32 || y >= self.height as i32 {
            return;
        }
        let idx = y as usize * self.width + x as usize;
        if z <= self.depth[idx] {
            self.depth[idx] = z;
            self.write_pixel_unchecked(idx, c);
        }
    }

    pub fn pixel(&self, x: usize, y: usize) -> Rgb {
        self.color[y * self.width + x]
    }

    pub fn depth_at(&self, x: usize, y: usize) -> f32 {
        self.depth[y * self.width + x]
    }

    /// Raw RGB bytes, row-major top-to-bottom (PPM order).
    pub fn rgb_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.color.len() * 3);
        for px in &self.color {
            out.push(px.r);
            out.push(px.g);
            out.push(px.b);
        }
        out
    }

    /// Count pixels for which `pred` holds — test/diagnostic helper.
    pub fn count_pixels(&self, pred: impl Fn(Rgb) -> bool) -> usize {
        self.color.iter().filter(|&&c| pred(c)).count()
    }

    /// Draw a depth-tested line between two screen-space points
    /// (x, y in pixels, z in NDC depth) with DDA interpolation.
    pub fn draw_line_screen(&mut self, a: (f32, f32, f32), b: (f32, f32, f32), c: Rgb) {
        let dx = b.0 - a.0;
        let dy = b.1 - a.1;
        let steps = dx.abs().max(dy.abs()).ceil() as i32;
        if steps == 0 {
            self.set_pixel(a.0.round() as i32, a.1.round() as i32, a.2, c);
            return;
        }
        for s in 0..=steps {
            let t = s as f32 / steps as f32;
            let x = a.0 + dx * t;
            let y = a.1 + dy * t;
            let z = a.2 + (b.2 - a.2) * t;
            self.set_pixel(x.round() as i32, y.round() as i32, z, c);
        }
    }

    /// Project a world-space point through `mvp` into (pixel x, pixel y,
    /// ndc z); `None` when behind the near plane (w ≤ ε).
    pub fn project(&self, mvp: &Mat4, p: Vec3) -> Option<(f32, f32, f32)> {
        let h = mvp.transform_point_h(p);
        if h[3] <= 1.0e-6 {
            return None;
        }
        let ndc_x = h[0] / h[3];
        let ndc_y = h[1] / h[3];
        let ndc_z = h[2] / h[3];
        Some((
            (ndc_x * 0.5 + 0.5) * (self.width as f32 - 1.0),
            (0.5 - ndc_y * 0.5) * (self.height as f32 - 1.0), // y down
            ndc_z,
        ))
    }

    /// Draw a world-space polyline through an MVP matrix. Segments with an
    /// endpoint behind the eye are dropped (simple near-plane policy —
    /// adequate for path geometry that lives inside the scene).
    pub fn draw_polyline(&mut self, mvp: &Mat4, points: &[Vec3], color: Rgb) {
        for w in points.windows(2) {
            if let (Some(a), Some(b)) = (self.project(mvp, w[0]), self.project(mvp, w[1])) {
                self.draw_line_screen(a, b, color);
            }
        }
    }

    /// Draw world-space points.
    pub fn draw_points(&mut self, mvp: &Mat4, points: &[Vec3], color: Rgb) {
        for &p in points {
            if let Some((x, y, z)) = self.project(mvp, p) {
                self.set_pixel(x.round() as i32, y.round() as i32, z, color);
            }
        }
    }

    /// Fill a screen-space triangle with Z interpolation (barycentric
    /// scanline). Inputs are (pixel x, pixel y, ndc z).
    pub fn fill_triangle_screen(
        &mut self,
        a: (f32, f32, f32),
        b: (f32, f32, f32),
        c: (f32, f32, f32),
        color: Rgb,
    ) {
        let min_x = a.0.min(b.0).min(c.0).floor().max(0.0) as i32;
        let max_x = a.0.max(b.0).max(c.0).ceil().min(self.width as f32 - 1.0) as i32;
        let min_y = a.1.min(b.1).min(c.1).floor().max(0.0) as i32;
        let max_y = a.1.max(b.1).max(c.1).ceil().min(self.height as f32 - 1.0) as i32;
        if min_x > max_x || min_y > max_y {
            return;
        }
        let area = (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0);
        if area.abs() < 1.0e-6 {
            // Degenerate: fall back to its edges.
            self.draw_line_screen(a, b, color);
            self.draw_line_screen(b, c, color);
            return;
        }
        let inv_area = 1.0 / area;
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let px = x as f32 + 0.5;
                let py = y as f32 + 0.5;
                // Barycentric coordinates (signed, normalized by the
                // triangle area so either winding works).
                let w0 = ((b.0 - px) * (c.1 - py) - (b.1 - py) * (c.0 - px)) * inv_area;
                let w1 = ((c.0 - px) * (a.1 - py) - (c.1 - py) * (a.0 - px)) * inv_area;
                let w2 = 1.0 - w0 - w1;
                if w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0 {
                    let z = w0 * a.2 + w1 * b.2 + w2 * c.2;
                    self.set_pixel(x, y, z, color);
                }
            }
        }
    }

    /// Draw world-space triangles with flat depth shading (nearer =
    /// brighter). Triangles with any vertex behind the eye are dropped —
    /// adequate for iso-geometry inside the scene.
    pub fn draw_triangles(&mut self, mvp: &Mat4, tris: &[[Vec3; 3]], base: Rgb) {
        for t in tris {
            let p: Vec<_> = t.iter().filter_map(|&v| self.project(mvp, v)).collect();
            if p.len() < 3 {
                continue;
            }
            // ndc z in [-1, 1] → shade factor [1, 0.35].
            let zavg = (p[0].2 + p[1].2 + p[2].2) / 3.0;
            let f = (1.0 - 0.325 * (zavg + 1.0)).clamp(0.2, 1.0);
            let c = Rgb::new(
                (base.r as f32 * f) as u8,
                (base.g as f32 * f) as u8,
                (base.b as f32 * f) as u8,
            );
            self.fill_triangle_screen(p[0], p[1], p[2], c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmath::Mat4;

    #[test]
    fn clear_fills_and_resets_depth() {
        let mut fb = Framebuffer::new(8, 8);
        fb.set_pixel(3, 3, 0.5, Rgb::WHITE);
        fb.clear(Rgb::new(1, 2, 3));
        assert_eq!(fb.pixel(3, 3), Rgb::new(1, 2, 3));
        assert_eq!(fb.depth_at(3, 3), f32::INFINITY);
    }

    #[test]
    fn depth_test_keeps_nearer_pixel() {
        let mut fb = Framebuffer::new(4, 4);
        fb.set_pixel(1, 1, 0.5, Rgb::red(100));
        fb.set_pixel(1, 1, 0.8, Rgb::red(200)); // farther: rejected
        assert_eq!(fb.pixel(1, 1), Rgb::red(100));
        fb.set_pixel(1, 1, 0.2, Rgb::red(50)); // nearer: wins
        assert_eq!(fb.pixel(1, 1), Rgb::red(50));
    }

    #[test]
    fn writemask_protects_channels() {
        let mut fb = Framebuffer::new(4, 4);
        fb.set_mask(ColorMask::RED_ONLY);
        fb.set_pixel(0, 0, 0.5, Rgb::new(10, 20, 30));
        assert_eq!(fb.pixel(0, 0), Rgb::new(10, 0, 0));
        fb.clear_depth();
        fb.set_mask(ColorMask::PROTECT_RED);
        fb.set_pixel(0, 0, 0.5, Rgb::new(99, 88, 77));
        // Red survives; green/blue written.
        assert_eq!(fb.pixel(0, 0), Rgb::new(10, 88, 77));
    }

    #[test]
    fn paper_stereo_sequence() {
        // Left eye in red, clear Z (not color), right eye in blue behind a
        // red-protecting writemask → overlapping pixels hold both.
        let mut fb = Framebuffer::new(8, 8);
        fb.set_mask(ColorMask::RED_ONLY);
        fb.draw_line_screen((1.0, 4.0, 0.1), (6.0, 4.0, 0.1), Rgb::red(200));
        fb.clear_depth();
        fb.set_mask(ColorMask::PROTECT_RED);
        fb.draw_line_screen((2.0, 4.0, 0.9), (7.0, 4.0, 0.9), Rgb::blue(150));
        // Overlap pixel (4, 4): red from the left eye, blue from the
        // right — even though the blue pass is *farther* in z, because Z
        // was cleared between eyes.
        assert_eq!(fb.pixel(4, 4), Rgb::new(200, 0, 150));
        // Left-only pixel.
        assert_eq!(fb.pixel(1, 4), Rgb::new(200, 0, 0));
        // Right-only pixel.
        assert_eq!(fb.pixel(7, 4), Rgb::new(0, 0, 150));
    }

    #[test]
    fn line_endpoints_are_drawn() {
        let mut fb = Framebuffer::new(16, 16);
        fb.draw_line_screen((2.0, 3.0, 0.0), (12.0, 9.0, 0.0), Rgb::WHITE);
        assert_eq!(fb.pixel(2, 3), Rgb::WHITE);
        assert_eq!(fb.pixel(12, 9), Rgb::WHITE);
    }

    #[test]
    fn degenerate_line_is_a_point() {
        let mut fb = Framebuffer::new(4, 4);
        fb.draw_line_screen((1.0, 1.0, 0.0), (1.0, 1.0, 0.0), Rgb::WHITE);
        assert_eq!(fb.pixel(1, 1), Rgb::WHITE);
        assert_eq!(fb.count_pixels(|c| c == Rgb::WHITE), 1);
    }

    #[test]
    fn out_of_bounds_writes_are_clipped() {
        let mut fb = Framebuffer::new(4, 4);
        fb.set_pixel(-1, 0, 0.0, Rgb::WHITE);
        fb.set_pixel(0, 99, 0.0, Rgb::WHITE);
        fb.draw_line_screen((-10.0, 2.0, 0.0), (10.0, 2.0, 0.0), Rgb::WHITE);
        // Line crosses the buffer: in-bounds pixels drawn, no panic.
        assert!(fb.count_pixels(|c| c == Rgb::WHITE) >= 4);
    }

    #[test]
    fn project_center_of_view() {
        let fb = Framebuffer::new(100, 100);
        let mvp = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        let (x, y, _z) = fb.project(&mvp, Vec3::new(0.0, 0.0, -5.0)).unwrap();
        assert!((x - 49.5).abs() < 1.0);
        assert!((y - 49.5).abs() < 1.0);
    }

    #[test]
    fn project_behind_eye_is_none() {
        let fb = Framebuffer::new(100, 100);
        let mvp = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        assert!(fb.project(&mvp, Vec3::new(0.0, 0.0, 5.0)).is_none());
    }

    #[test]
    fn polyline_draws_visible_segments() {
        let mut fb = Framebuffer::new(64, 64);
        let mvp = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        let pts = vec![
            Vec3::new(-1.0, 0.0, -5.0),
            Vec3::new(1.0, 0.0, -5.0),
            Vec3::new(1.0, 0.0, 5.0), // behind the eye: segment dropped
        ];
        fb.draw_polyline(&mvp, &pts, Rgb::WHITE);
        assert!(fb.count_pixels(|c| c == Rgb::WHITE) > 5);
    }

    #[test]
    fn triangle_fill_covers_interior() {
        let mut fb = Framebuffer::new(32, 32);
        fb.fill_triangle_screen(
            (4.0, 4.0, 0.0),
            (28.0, 4.0, 0.0),
            (4.0, 28.0, 0.0),
            Rgb::WHITE,
        );
        // Interior point filled; outside the hypotenuse empty.
        assert_eq!(fb.pixel(8, 8), Rgb::WHITE);
        assert_eq!(fb.pixel(27, 27), Rgb::BLACK);
        // Roughly half the bounding square.
        let filled = fb.count_pixels(|c| c == Rgb::WHITE);
        assert!((200..500).contains(&filled), "filled {filled}");
    }

    #[test]
    fn triangle_winding_does_not_matter() {
        let mut a = Framebuffer::new(16, 16);
        let mut b = Framebuffer::new(16, 16);
        a.fill_triangle_screen(
            (2.0, 2.0, 0.0),
            (14.0, 2.0, 0.0),
            (2.0, 14.0, 0.0),
            Rgb::WHITE,
        );
        b.fill_triangle_screen(
            (2.0, 14.0, 0.0),
            (14.0, 2.0, 0.0),
            (2.0, 2.0, 0.0),
            Rgb::WHITE,
        );
        // Edge-pixel ties may resolve differently per winding; the
        // interiors must match to within the perimeter.
        let ca = a.count_pixels(|c| c == Rgb::WHITE) as i64;
        let cb = b.count_pixels(|c| c == Rgb::WHITE) as i64;
        assert!((ca - cb).abs() <= 16, "{ca} vs {cb}");
        // Interior pixel covered in both.
        assert_eq!(a.pixel(4, 4), Rgb::WHITE);
        assert_eq!(b.pixel(4, 4), Rgb::WHITE);
    }

    #[test]
    fn degenerate_triangle_draws_edges() {
        let mut fb = Framebuffer::new(16, 16);
        fb.fill_triangle_screen(
            (2.0, 8.0, 0.0),
            (12.0, 8.0, 0.0),
            (7.0, 8.0, 0.0),
            Rgb::WHITE,
        );
        assert!(fb.count_pixels(|c| c == Rgb::WHITE) >= 10);
    }

    #[test]
    fn triangles_z_buffer_against_lines() {
        let mut fb = Framebuffer::new(32, 32);
        let mvp = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        // A big triangle at z=-10, a nearer line at z=-2 crossing it.
        fb.draw_triangles(
            &mvp,
            &[[
                Vec3::new(-2.0, -2.0, -10.0),
                Vec3::new(2.0, -2.0, -10.0),
                Vec3::new(0.0, 2.0, -10.0),
            ]],
            Rgb::new(0, 255, 0),
        );
        fb.draw_polyline(
            &mvp,
            &[Vec3::new(-0.3, 0.0, -2.0), Vec3::new(0.3, 0.0, -2.0)],
            Rgb::red(255),
        );
        // Some red survived on top of the green triangle.
        assert!(fb.count_pixels(|c| c.r > 0) > 0);
        assert!(fb.count_pixels(|c| c.g > 0) > 20);
    }

    #[test]
    fn nearer_geometry_occludes() {
        let mut fb = Framebuffer::new(32, 32);
        let mvp = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        // Far line first, near line second; both cross the center.
        fb.draw_polyline(
            &mvp,
            &[Vec3::new(-1.0, 0.0, -10.0), Vec3::new(1.0, 0.0, -10.0)],
            Rgb::red(255),
        );
        fb.draw_polyline(
            &mvp,
            &[Vec3::new(-0.1, 0.0, -2.0), Vec3::new(0.1, 0.0, -2.0)],
            Rgb::blue(255),
        );
        // Wherever both lines landed, the nearer (blue) line won the
        // depth test; the far red line survives only outside the overlap.
        let mut blue_center = false;
        for y in 14..=17 {
            for x in 14..=17 {
                let c = fb.pixel(x, y);
                if c.b > 0 {
                    blue_center = true;
                    assert_eq!(c.r, 0, "red leaked through at ({x},{y})");
                }
            }
        }
        assert!(blue_center, "near blue line missing from center region");
        assert!(fb.count_pixels(|c| c.r > 0) > 0, "far line fully occluded");
    }
}
