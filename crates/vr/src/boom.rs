//! BOOM head tracker kinematics.
//!
//! §3: "The weight of the CRTs are borne by a counterweighted yoke
//! assembly with six joints… Optical encoders on the joints of the yoke
//! assembly are continuously read by the host computer providing six
//! angles of the joints of the yoke. These angles are converted into a
//! standard 4x4 position and orientation matrix for the position and
//! orientation of the BOOM head by six successive translations and
//! rotations."
//!
//! [`BoomGeometry`] describes the chain (per joint: a fixed link
//! translation followed by a rotation about a fixed axis), [`Boom`] adds
//! the realities of the device: encoder quantization and joint limits.

use vecmath::{Mat3, Mat4, Pose, Vec3};

/// One joint of the yoke: translate along the link, then rotate.
#[derive(Debug, Clone, Copy)]
pub struct BoomJoint {
    /// Fixed translation from the previous joint's frame to this joint.
    pub link: Vec3,
    /// Rotation axis (unit) in this joint's local frame.
    pub axis: Vec3,
    /// Joint limits in radians (min, max).
    pub limits: (f32, f32),
}

/// The six-joint chain plus the final head offset.
#[derive(Debug, Clone)]
pub struct BoomGeometry {
    pub joints: [BoomJoint; 6],
    /// Offset from the last joint to the midpoint between the user's
    /// eyes (the CRT viewing position).
    pub head_offset: Vec3,
    /// Encoder resolution: counts per full revolution.
    pub encoder_counts: u32,
}

impl Default for BoomGeometry {
    /// A plausible counterweighted boom: vertical post, two long
    /// counterweighted arms, three-axis head gimbal.
    fn default() -> Self {
        use std::f32::consts::PI;
        BoomGeometry {
            joints: [
                // Base azimuth about the vertical post.
                BoomJoint {
                    link: Vec3::new(0.0, 1.0, 0.0),
                    axis: Vec3::Y,
                    limits: (-PI, PI),
                },
                // Shoulder elevation.
                BoomJoint {
                    link: Vec3::ZERO,
                    axis: Vec3::X,
                    limits: (-1.2, 1.2),
                },
                // Elbow at the end of the first arm.
                BoomJoint {
                    link: Vec3::new(0.0, 0.0, -0.9),
                    axis: Vec3::X,
                    limits: (-2.0, 2.0),
                },
                // Head gimbal yaw at the end of the second arm.
                BoomJoint {
                    link: Vec3::new(0.0, 0.0, -0.9),
                    axis: Vec3::Y,
                    limits: (-PI, PI),
                },
                // Head gimbal pitch.
                BoomJoint {
                    link: Vec3::ZERO,
                    axis: Vec3::X,
                    limits: (-1.4, 1.4),
                },
                // Head gimbal roll.
                BoomJoint {
                    link: Vec3::ZERO,
                    axis: Vec3::Z,
                    limits: (-0.8, 0.8),
                },
            ],
            head_offset: Vec3::new(0.0, 0.0, -0.15),
            encoder_counts: 4096,
        }
    }
}

impl BoomGeometry {
    /// The §3 conversion: six successive translations and rotations,
    /// then the head offset. Returns the head pose matrix (head-local →
    /// world).
    pub fn forward(&self, angles: &[f32; 6]) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        for (joint, &angle) in self.joints.iter().zip(angles) {
            m = m
                * Mat4::translation(joint.link)
                * Mat4::from_mat3(Mat3::rotation_axis(joint.axis, angle));
        }
        m * Mat4::translation(self.head_offset)
    }

    /// Head pose as position + orientation.
    pub fn head_pose(&self, angles: &[f32; 6]) -> Pose {
        Pose::from_mat4(&self.forward(angles))
    }

    /// Clamp angles into the joint limits.
    pub fn clamp(&self, angles: &[f32; 6]) -> [f32; 6] {
        let mut out = *angles;
        for (a, j) in out.iter_mut().zip(&self.joints) {
            *a = a.clamp(j.limits.0, j.limits.1);
        }
        out
    }

    /// Quantize an angle to the optical encoder's resolution.
    pub fn quantize(&self, angle: f32) -> f32 {
        let step = std::f32::consts::TAU / self.encoder_counts as f32;
        (angle / step).round() * step
    }
}

/// The tracked device: continuous "true" joint state read through
/// quantizing encoders, like the real hardware.
#[derive(Debug, Clone)]
pub struct Boom {
    geometry: BoomGeometry,
    angles: [f32; 6],
}

impl Boom {
    pub fn new(geometry: BoomGeometry) -> Boom {
        Boom {
            geometry,
            angles: [0.0; 6],
        }
    }

    pub fn geometry(&self) -> &BoomGeometry {
        &self.geometry
    }

    /// Move the joints (clamped to limits) — the user pushing the display
    /// around.
    pub fn set_angles(&mut self, angles: [f32; 6]) {
        self.angles = self.geometry.clamp(&angles);
    }

    /// Incremental joint motion.
    pub fn move_joints(&mut self, delta: [f32; 6]) {
        let mut next = self.angles;
        for (a, d) in next.iter_mut().zip(&delta) {
            *a += d;
        }
        self.set_angles(next);
    }

    /// Read the encoders: quantized angles, as the host computer sees
    /// them (§3: encoders are "continuously read by the host computer").
    pub fn read_encoders(&self) -> [f32; 6] {
        let mut out = [0.0; 6];
        for (o, a) in out.iter_mut().zip(&self.angles) {
            *o = self.geometry.quantize(*a);
        }
        out
    }

    /// Head pose from the quantized encoder readings.
    pub fn head_pose(&self) -> Pose {
        self.geometry.head_pose(&self.read_encoders())
    }

    /// The view matrix to concatenate onto the graphics stack — §3's
    /// "by inverting this position and orientation matrix".
    pub fn view_matrix(&self) -> Mat4 {
        self.head_pose().view_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_angles_give_repeatable_home_pose() {
        let g = BoomGeometry::default();
        let p = g.head_pose(&[0.0; 6]);
        // Home: on top of the post, arms straight out along -Z twice,
        // head offset back.
        let expect = Vec3::new(0.0, 1.0, -1.95);
        assert!(p.position.distance(expect) < 1e-4, "{:?}", p.position);
    }

    #[test]
    fn azimuth_swings_the_whole_arm() {
        let g = BoomGeometry::default();
        let p = g.head_pose(&[std::f32::consts::FRAC_PI_2, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // Quarter turn about +Y maps -Z to -X.
        assert!(
            p.position.distance(Vec3::new(-1.95, 1.0, 0.0)) < 1e-3,
            "{:?}",
            p.position
        );
    }

    #[test]
    fn head_gimbal_rotates_in_place() {
        let g = BoomGeometry::default();
        let p0 = g.head_pose(&[0.0; 6]);
        // Joint 5 (pitch) has zero link and only the head offset hangs
        // off it; position moves slightly, orientation changes.
        let p1 = g.head_pose(&[0.0, 0.0, 0.0, 0.0, 0.5, 0.0]);
        assert!(p1.orientation.angle_to(p0.orientation) > 0.4);
        assert!(p0.position.distance(p1.position) < 0.2);
    }

    #[test]
    fn joint_limits_enforced() {
        let g = BoomGeometry::default();
        let clamped = g.clamp(&[10.0, 10.0, -10.0, 0.0, 0.0, 0.0]);
        assert!(clamped[0] <= g.joints[0].limits.1 + 1e-6);
        assert!(clamped[1] <= g.joints[1].limits.1 + 1e-6);
        assert!(clamped[2] >= g.joints[2].limits.0 - 1e-6);
    }

    #[test]
    fn encoder_quantization() {
        let g = BoomGeometry::default();
        let step = std::f32::consts::TAU / g.encoder_counts as f32;
        let q = g.quantize(0.37 * step);
        assert_eq!(q, 0.0);
        let q = g.quantize(0.63 * step);
        assert!((q - step).abs() < 1e-7);
    }

    #[test]
    fn boom_reads_quantized() {
        let mut b = Boom::new(BoomGeometry::default());
        let step = std::f32::consts::TAU / b.geometry().encoder_counts as f32;
        b.set_angles([0.4 * step, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(b.read_encoders()[0], 0.0);
    }

    #[test]
    fn incremental_motion_accumulates() {
        let mut b = Boom::new(BoomGeometry::default());
        b.move_joints([0.1, 0.0, 0.0, 0.0, 0.0, 0.0]);
        b.move_joints([0.1, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((b.read_encoders()[0] - 0.2).abs() < 1e-2);
    }

    #[test]
    fn view_matrix_inverts_head_pose() {
        let mut b = Boom::new(BoomGeometry::default());
        b.set_angles([0.3, 0.2, -0.4, 0.5, 0.1, -0.1]);
        let head = b.head_pose();
        let v = b.view_matrix();
        // The head position maps to the origin under the view matrix.
        assert!(v.transform_point(head.position).length() < 1e-3);
    }

    proptest! {
        #[test]
        fn prop_forward_is_rigid(a0 in -1.0f32..1.0, a1 in -1.0f32..1.0, a2 in -1.0f32..1.0,
                                 a3 in -1.0f32..1.0, a4 in -1.0f32..1.0, a5 in -0.7f32..0.7) {
            let g = BoomGeometry::default();
            let m = g.forward(&[a0, a1, a2, a3, a4, a5]);
            // Rotation part orthonormal: R·Rᵀ = I.
            let r = m.rotation_part();
            let rrt = r * r.transpose();
            prop_assert!((rrt.m[0][0] - 1.0).abs() < 1e-3);
            prop_assert!((rrt.m[1][1] - 1.0).abs() < 1e-3);
            prop_assert!(rrt.m[0][1].abs() < 1e-3);
            // Reach is bounded by total link length + head offset.
            let reach = m.translation_part().length();
            prop_assert!(reach <= 1.0 + 0.9 + 0.9 + 0.15 + 1e-3);
        }

        #[test]
        fn prop_quantization_error_bounded(angle in -3.0f32..3.0) {
            let g = BoomGeometry::default();
            let step = std::f32::consts::TAU / g.encoder_counts as f32;
            prop_assert!((g.quantize(angle) - angle).abs() <= step * 0.5 + 1e-6);
        }
    }
}
