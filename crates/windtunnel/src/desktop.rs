//! Desktop (keyboard + mouse) input mapping.
//!
//! §3: "The keyboard and mouse are also used as input devices to the
//! virtual environment. The user can easily swing the boom away and
//! interact with the computer in the usual way." And §6: the distributed
//! architecture is "useful in contexts other than virtual environments,
//! such as the visualization of unsteady flows in the conventional screen
//! and mouse environment."
//!
//! [`DesktopInput`] converts desktop events into the same [`Command`]
//! stream the glove produces: keys drive the clock, mouse-down picks the
//! nearest rake handle on screen and drags it in a camera-parallel plane
//! (emitting `Hand { gesture: Fist }` commands, so the server-side grab
//! logic — including the multi-user lockout — is identical for both
//! input paths).

use crate::proto::{Command, GeometryFrame, TimeCommand};
use vecmath::{Mat4, Vec3};
use vr::Gesture;

/// Keyboard keys the windtunnel binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Key {
    /// Toggle play/pause.
    Space,
    /// Reverse playback.
    R,
    /// Double the playback rate.
    Faster,
    /// Halve the playback rate.
    Slower,
    /// Step one timestep back (while examining, §2's "stopped completely
    /// for detailed examination").
    StepBack,
    /// Step one timestep forward.
    StepForward,
    /// Rewind to timestep 0.
    Home,
}

/// Screen-space pick radius for rake handles, in pixels.
const PICK_RADIUS_PX: f32 = 12.0;

/// Desktop input state machine.
#[derive(Debug, Clone)]
pub struct DesktopInput {
    playing: bool,
    rate: f32,
    /// Active mouse drag: NDC depth of the grabbed point, so dragging
    /// moves in the camera-parallel plane through the handle.
    drag_depth: Option<f32>,
    last_world: Option<Vec3>,
}

impl Default for DesktopInput {
    fn default() -> Self {
        DesktopInput {
            playing: false,
            rate: 1.0,
            drag_depth: None,
            last_world: None,
        }
    }
}

impl DesktopInput {
    pub fn new() -> DesktopInput {
        DesktopInput::default()
    }

    /// Translate a key press into a command.
    pub fn key(&mut self, key: Key) -> Command {
        match key {
            Key::Space => {
                self.playing = !self.playing;
                Command::Time(if self.playing {
                    TimeCommand::Play
                } else {
                    TimeCommand::Pause
                })
            }
            Key::R => Command::Time(TimeCommand::Reverse),
            Key::Faster => {
                self.rate *= 2.0;
                Command::Time(TimeCommand::SetRate(self.rate))
            }
            Key::Slower => {
                self.rate *= 0.5;
                Command::Time(TimeCommand::SetRate(self.rate))
            }
            Key::StepBack => Command::Time(TimeCommand::Step(-1)),
            Key::StepForward => Command::Time(TimeCommand::Step(1)),
            Key::Home => Command::Time(TimeCommand::Jump(0)),
        }
    }

    /// Project a world point to (pixel x, pixel y, ndc z).
    fn project(mvp: &Mat4, p: Vec3, width: f32, height: f32) -> Option<(f32, f32, f32)> {
        let h = mvp.transform_point_h(p);
        if h[3] <= 1.0e-6 {
            return None;
        }
        Some((
            (h[0] / h[3] * 0.5 + 0.5) * (width - 1.0),
            (0.5 - h[1] / h[3] * 0.5) * (height - 1.0),
            h[2] / h[3],
        ))
    }

    /// Unproject a pixel at a given NDC depth back to world space.
    fn unproject(
        mvp: &Mat4,
        px: f32,
        py: f32,
        ndc_z: f32,
        width: f32,
        height: f32,
    ) -> Option<Vec3> {
        let inv = mvp.inverse()?;
        let ndc = Vec3::new(
            px / (width - 1.0) * 2.0 - 1.0,
            (0.5 - py / (height - 1.0)) * 2.0,
            ndc_z,
        );
        Some(inv.transform_point(ndc))
    }

    /// Mouse press at pixel `(px, py)`: pick the nearest rake handle
    /// (ends and centers, like the glove's hit test) within the pick
    /// radius (12 px) and start a drag. Returns the grab command, or
    /// `None` if nothing was hit.
    pub fn mouse_down(
        &mut self,
        px: f32,
        py: f32,
        frame: &GeometryFrame,
        mvp: &Mat4,
        width: f32,
        height: f32,
    ) -> Option<Command> {
        let mut best: Option<(f32, Vec3, f32)> = None; // (px dist, world, depth)
        for rake in &frame.rakes {
            for handle in [rake.a, rake.b, (rake.a + rake.b) * 0.5] {
                if let Some((hx, hy, hz)) = Self::project(mvp, handle, width, height) {
                    let d = ((hx - px).powi(2) + (hy - py).powi(2)).sqrt();
                    if d <= PICK_RADIUS_PX && best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, handle, hz));
                    }
                }
            }
        }
        let (_, world, depth) = best?;
        self.drag_depth = Some(depth);
        self.last_world = Some(world);
        Some(Command::Hand {
            position: world,
            gesture: Gesture::Fist,
        })
    }

    /// Mouse motion during a drag: keep the hand fisted at the new world
    /// position in the grab plane.
    pub fn mouse_drag(
        &mut self,
        px: f32,
        py: f32,
        mvp: &Mat4,
        width: f32,
        height: f32,
    ) -> Option<Command> {
        let depth = self.drag_depth?;
        let world = Self::unproject(mvp, px, py, depth, width, height)?;
        self.last_world = Some(world);
        Some(Command::Hand {
            position: world,
            gesture: Gesture::Fist,
        })
    }

    /// Mouse release: open the hand, ending the drag.
    pub fn mouse_up(&mut self) -> Option<Command> {
        self.drag_depth = None;
        let pos = self.last_world.take()?;
        Some(Command::Hand {
            position: pos,
            gesture: Gesture::Open,
        })
    }

    /// Is a drag in progress?
    pub fn dragging(&self) -> bool {
        self.drag_depth.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::RakeMsg;
    use tracer::ToolKind;
    use vecmath::Pose;
    use vr::stereo::StereoCamera;

    fn test_frame() -> GeometryFrame {
        GeometryFrame {
            timestep: 0,
            time: 0.0,
            revision: 1,
            rakes: vec![RakeMsg {
                id: 1,
                a: Vec3::new(-1.0, 0.0, 0.0),
                b: Vec3::new(1.0, 0.0, 0.0),
                seed_count: 4,
                tool: ToolKind::Streamline,
                owner: 0,
            }],
            paths: vec![],
            users: vec![],
        }
    }

    fn test_mvp() -> Mat4 {
        let cam = StereoCamera::new(Pose::new(Vec3::new(0.0, 0.0, 5.0), Default::default()));
        cam.projection() * cam.head.view_matrix()
    }

    #[test]
    fn keyboard_time_controls() {
        let mut d = DesktopInput::new();
        assert_eq!(d.key(Key::Space), Command::Time(TimeCommand::Play));
        assert_eq!(d.key(Key::Space), Command::Time(TimeCommand::Pause));
        assert_eq!(d.key(Key::R), Command::Time(TimeCommand::Reverse));
        assert_eq!(d.key(Key::Faster), Command::Time(TimeCommand::SetRate(2.0)));
        assert_eq!(d.key(Key::Slower), Command::Time(TimeCommand::SetRate(1.0)));
        assert_eq!(d.key(Key::StepForward), Command::Time(TimeCommand::Step(1)));
        assert_eq!(d.key(Key::StepBack), Command::Time(TimeCommand::Step(-1)));
        assert_eq!(d.key(Key::Home), Command::Time(TimeCommand::Jump(0)));
    }

    #[test]
    fn click_on_handle_grabs() {
        let mut d = DesktopInput::new();
        let frame = test_frame();
        let mvp = test_mvp();
        let (w, h) = (640.0, 480.0);
        // Project the rake center and click exactly there.
        let (cx, cy, _) = DesktopInput::project(&mvp, Vec3::ZERO, w, h).expect("center visible");
        let cmd = d.mouse_down(cx, cy, &frame, &mvp, w, h).expect("grab");
        match cmd {
            Command::Hand { position, gesture } => {
                assert_eq!(gesture, Gesture::Fist);
                assert!(position.distance(Vec3::ZERO) < 1e-4);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(d.dragging());
    }

    #[test]
    fn click_on_empty_space_does_nothing() {
        let mut d = DesktopInput::new();
        let frame = test_frame();
        let mvp = test_mvp();
        assert!(d.mouse_down(5.0, 5.0, &frame, &mvp, 640.0, 480.0).is_none());
        assert!(!d.dragging());
        assert!(d.mouse_drag(6.0, 6.0, &mvp, 640.0, 480.0).is_none());
        assert!(d.mouse_up().is_none());
    }

    #[test]
    fn drag_moves_in_grab_plane() {
        let mut d = DesktopInput::new();
        let frame = test_frame();
        let mvp = test_mvp();
        let (w, h) = (640.0, 480.0);
        let (cx, cy, _) = DesktopInput::project(&mvp, Vec3::ZERO, w, h).unwrap();
        d.mouse_down(cx, cy, &frame, &mvp, w, h).unwrap();
        // Drag 50 px up: the world position moves +y, stays ~z = 0.
        let cmd = d.mouse_drag(cx, cy - 50.0, &mvp, w, h).expect("drag");
        match cmd {
            Command::Hand { position, gesture } => {
                assert_eq!(gesture, Gesture::Fist);
                assert!(position.y > 0.05, "{position:?}");
                assert!(position.z.abs() < 0.05, "stays in grab plane: {position:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn release_opens_hand_at_last_position() {
        let mut d = DesktopInput::new();
        let frame = test_frame();
        let mvp = test_mvp();
        let (w, h) = (640.0, 480.0);
        let (cx, cy, _) = DesktopInput::project(&mvp, Vec3::ZERO, w, h).unwrap();
        d.mouse_down(cx, cy, &frame, &mvp, w, h).unwrap();
        d.mouse_drag(cx + 30.0, cy, &mvp, w, h).unwrap();
        let cmd = d.mouse_up().expect("release");
        match cmd {
            Command::Hand { gesture, position } => {
                assert_eq!(gesture, Gesture::Open);
                assert!(position.x > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!d.dragging());
    }

    #[test]
    fn prefers_nearest_handle() {
        let mut d = DesktopInput::new();
        let frame = test_frame();
        let mvp = test_mvp();
        let (w, h) = (640.0, 480.0);
        // Click next to end A: must grab A's world position, not center.
        let (ax, ay, _) = DesktopInput::project(&mvp, Vec3::new(-1.0, 0.0, 0.0), w, h).unwrap();
        let cmd = d
            .mouse_down(ax + 2.0, ay, &frame, &mvp, w, h)
            .expect("grab");
        match cmd {
            Command::Hand { position, .. } => {
                assert!(position.distance(Vec3::new(-1.0, 0.0, 0.0)) < 0.05);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn end_to_end_desktop_drag_against_server() {
        // The desktop path drives the same server logic as the glove.
        use crate::server::{serve, ServerOptions};
        use flowfield::{
            dataset::VelocityCoords, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField,
        };
        use std::sync::Arc;
        use storage::MemoryStore;
        use vecmath::Aabb;

        let dims = Dims::new(16, 9, 9);
        let grid =
            CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(15.0, 8.0, 8.0)))
                .unwrap();
        let meta = DatasetMeta {
            name: "desktop".into(),
            dims,
            timestep_count: 2,
            dt: 0.1,
            coords: VelocityCoords::Grid,
        };
        let fields = (0..2)
            .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X))
            .collect();
        let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
        let handle = serve(
            Arc::new(MemoryStore::from_dataset(ds)),
            grid,
            ServerOptions::default(),
            "127.0.0.1:0",
        )
        .unwrap();
        let mut client = crate::client::WindtunnelClient::connect(handle.addr()).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(4.0, 4.0, 4.0),
                b: Vec3::new(6.0, 4.0, 4.0),
                seed_count: 2,
                tool: ToolKind::Streamline,
            })
            .unwrap();
        let frame = client.frame(false).unwrap();

        let cam = StereoCamera::new(Pose::new(Vec3::new(5.0, 4.0, 20.0), Default::default()));
        let mvp = cam.projection() * cam.head.view_matrix();
        let (w, h) = (640.0, 480.0);
        let mut desk = DesktopInput::new();
        let center = (frame.rakes[0].a + frame.rakes[0].b) * 0.5;
        let (cx, cy, _) = DesktopInput::project(&mvp, center, w, h).unwrap();

        // Click, drag up, release — through the wire.
        client
            .send(&desk.mouse_down(cx, cy, &frame, &mvp, w, h).unwrap())
            .unwrap();
        client
            .send(&desk.mouse_drag(cx, cy - 40.0, &mvp, w, h).unwrap())
            .unwrap();
        client.send(&desk.mouse_up().unwrap()).unwrap();

        let after = client.frame(false).unwrap();
        let new_center = (after.rakes[0].a + after.rakes[0].b) * 0.5;
        assert!(
            new_center.y > center.y + 0.1,
            "rake moved up: {new_center:?}"
        );
        assert_eq!(after.rakes[0].owner, 0, "released after mouse-up");
        handle.shutdown();
    }
}
