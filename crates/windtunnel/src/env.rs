//! The shared virtual environment: rakes, locks, users.
//!
//! §5.1: "Because the computation of the environment state is performed
//! by a single machine, possible conflicting commands from different
//! workstations are easily handled… conflicts \[are\] resolved by a 'first
//! come first served' rule. For example, if two users grab the same rake,
//! the user who grabbed it first gets control of that rake and the second
//! user is locked out of interaction with that rake until the first user
//! lets the rake go. Other rakes are unaffected by this locking, so the
//! second user can interact with them."
//!
//! All rake geometry here is in **grid coordinates** (the tracer's native
//! frame); the server converts to physical space at the protocol edge.

use crate::time::TimeController;
use std::collections::BTreeMap;
use tracer::{Handle, Rake, ToolKind};
use vecmath::{Pose, Vec3};

/// Identifies a rake inside one environment.
pub type RakeId = u32;

/// Identifies a connected user (the dlib client id).
pub type UserId = u64;

/// Environment-level errors, all user-visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    NoSuchRake(RakeId),
    /// Somebody else holds the rake — the lockout of §5.1.
    LockedByOther {
        rake: RakeId,
        owner: UserId,
    },
    /// The caller does not hold the rake it tried to manipulate.
    NotHeld(RakeId),
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::NoSuchRake(id) => write!(f, "no rake {id}"),
            EnvError::LockedByOther { rake, owner } => {
                write!(f, "rake {rake} is held by user {owner}")
            }
            EnvError::NotHeld(id) => write!(f, "rake {id} is not held by the caller"),
        }
    }
}

impl std::error::Error for EnvError {}

/// One rake plus its lock state.
#[derive(Debug, Clone)]
pub struct RakeEntry {
    pub rake: Rake,
    /// Holder and grabbed handle, if grabbed.
    pub grab: Option<(UserId, Handle)>,
    /// Revision of this rake's geometry-affecting state (endpoints, seed
    /// count, tool). Stamped from the environment's global counter, so
    /// values are unique across rakes and monotone over time. Lock state
    /// is excluded: grabbing a rake does not move it.
    geom_rev: u64,
}

impl RakeEntry {
    /// Geometry revision — cache key for anything derived from this
    /// rake's seeds (traced paths, most importantly).
    pub fn geom_rev(&self) -> u64 {
        self.geom_rev
    }
}

/// The complete server-side environment state.
#[derive(Debug, Clone)]
pub struct EnvironmentState {
    rakes: BTreeMap<RakeId, RakeEntry>,
    next_rake_id: RakeId,
    pub time: TimeController,
    /// Head poses of connected users, for the shared-environment display
    /// ("indicating to participants in the environment where everyone
    /// is", §5.1).
    users: BTreeMap<UserId, Pose>,
    /// Bumped on every mutation; lets the server cache encoded frames.
    revision: u64,
    /// Bumped only when some rake's geometry changes (add/remove/drag/
    /// seed-count/tool) — head-pose traffic leaves this untouched, which
    /// is what lets the geometry cache survive user motion.
    geom_rev: u64,
    /// Bumped when a head pose is recorded or a user disconnects.
    users_rev: u64,
    /// Bumped when the server moves the clock.
    time_rev: u64,
}

impl EnvironmentState {
    pub fn new(timestep_count: usize) -> EnvironmentState {
        EnvironmentState {
            rakes: BTreeMap::new(),
            next_rake_id: 1,
            time: TimeController::new(timestep_count),
            users: BTreeMap::new(),
            revision: 0,
            geom_rev: 0,
            users_rev: 0,
            time_rev: 0,
        }
    }

    fn touch(&mut self) {
        self.revision += 1;
    }

    fn touch_geom(&mut self) {
        self.touch();
        self.geom_rev = self.revision;
    }

    fn touch_users(&mut self) {
        self.touch();
        self.users_rev = self.revision;
    }

    /// Monotone state revision (cache invalidation token for anything
    /// derived from the *whole* environment, e.g. encoded frames).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Revision of the union of all rake geometry. Unchanged by head-pose
    /// updates, grabs/releases, and clock motion.
    pub fn geometry_revision(&self) -> u64 {
        self.geom_rev
    }

    /// Revision of the head-pose table.
    pub fn users_revision(&self) -> u64 {
        self.users_rev
    }

    /// Revision of the clock (bumped via [`Self::bump_revision`]).
    pub fn time_revision(&self) -> u64 {
        self.time_rev
    }

    /// Explicitly bump the revision (used by the server when it mutates
    /// adjacent state, i.e. the clock).
    pub fn bump_revision(&mut self) {
        self.touch();
        self.time_rev = self.revision;
    }

    // ------------------------------------------------------------------
    // Rakes

    /// Add a rake (grid coordinates); returns its id.
    pub fn add_rake(&mut self, rake: Rake) -> RakeId {
        let id = self.next_rake_id;
        self.next_rake_id += 1;
        self.touch_geom();
        let geom_rev = self.revision;
        self.rakes.insert(
            id,
            RakeEntry {
                rake,
                grab: None,
                geom_rev,
            },
        );
        id
    }

    /// Remove a rake; held rakes can only be removed by their holder.
    pub fn remove_rake(&mut self, user: UserId, id: RakeId) -> Result<(), EnvError> {
        let entry = self.rakes.get(&id).ok_or(EnvError::NoSuchRake(id))?;
        if let Some((owner, _)) = entry.grab {
            if owner != user {
                return Err(EnvError::LockedByOther { rake: id, owner });
            }
        }
        self.rakes.remove(&id);
        self.touch_geom();
        Ok(())
    }

    pub fn rake(&self, id: RakeId) -> Option<&RakeEntry> {
        self.rakes.get(&id)
    }

    pub fn rakes(&self) -> impl Iterator<Item = (RakeId, &RakeEntry)> {
        self.rakes.iter().map(|(&id, e)| (id, e))
    }

    pub fn rake_count(&self) -> usize {
        self.rakes.len()
    }

    /// First-come-first-served grab. Re-grabbing a rake you already hold
    /// just updates the handle.
    pub fn grab(&mut self, user: UserId, id: RakeId, handle: Handle) -> Result<(), EnvError> {
        let entry = self.rakes.get_mut(&id).ok_or(EnvError::NoSuchRake(id))?;
        match entry.grab {
            Some((owner, _)) if owner != user => Err(EnvError::LockedByOther { rake: id, owner }),
            _ => {
                entry.grab = Some((user, handle));
                self.touch();
                Ok(())
            }
        }
    }

    /// Release a held rake.
    pub fn release(&mut self, user: UserId, id: RakeId) -> Result<(), EnvError> {
        let entry = self.rakes.get_mut(&id).ok_or(EnvError::NoSuchRake(id))?;
        match entry.grab {
            Some((owner, _)) if owner == user => {
                entry.grab = None;
                self.touch();
                Ok(())
            }
            Some((owner, _)) => Err(EnvError::LockedByOther { rake: id, owner }),
            None => Err(EnvError::NotHeld(id)),
        }
    }

    /// Drag the held handle by a grid-coordinate delta.
    pub fn drag(&mut self, user: UserId, id: RakeId, delta: Vec3) -> Result<(), EnvError> {
        let entry = self.rakes.get_mut(&id).ok_or(EnvError::NoSuchRake(id))?;
        match entry.grab {
            Some((owner, handle)) if owner == user => {
                entry.rake.drag(handle, delta);
                self.revision += 1;
                self.geom_rev = self.revision;
                entry.geom_rev = self.revision;
                Ok(())
            }
            Some((owner, _)) => Err(EnvError::LockedByOther { rake: id, owner }),
            None => Err(EnvError::NotHeld(id)),
        }
    }

    /// Change a rake's seed count (any user, ungated — the paper gates
    /// only grabbing).
    pub fn set_seed_count(&mut self, id: RakeId, n: u32) -> Result<(), EnvError> {
        let entry = self.rakes.get_mut(&id).ok_or(EnvError::NoSuchRake(id))?;
        entry.rake.seed_count = n.max(1);
        self.revision += 1;
        self.geom_rev = self.revision;
        entry.geom_rev = self.revision;
        Ok(())
    }

    /// Change a rake's tool.
    pub fn set_tool(&mut self, id: RakeId, tool: ToolKind) -> Result<(), EnvError> {
        let entry = self.rakes.get_mut(&id).ok_or(EnvError::NoSuchRake(id))?;
        entry.rake.tool = tool;
        self.revision += 1;
        self.geom_rev = self.revision;
        entry.geom_rev = self.revision;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Users

    /// Record a user's head pose (shared display of participants).
    pub fn update_user(&mut self, user: UserId, head: Pose) {
        self.users.insert(user, head);
        self.touch_users();
    }

    pub fn users(&self) -> impl Iterator<Item = (UserId, &Pose)> {
        self.users.iter().map(|(&id, p)| (id, p))
    }

    /// A user disconnected: drop their head pose and release every rake
    /// they held (otherwise a crashed workstation would wedge the shared
    /// session forever).
    pub fn disconnect_user(&mut self, user: UserId) {
        self.users.remove(&user);
        for entry in self.rakes.values_mut() {
            if matches!(entry.grab, Some((owner, _)) if owner == user) {
                entry.grab = None;
            }
        }
        self.touch_users();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rake() -> Rake {
        Rake::new(
            Vec3::ZERO,
            Vec3::new(4.0, 0.0, 0.0),
            5,
            ToolKind::Streamline,
        )
    }

    #[test]
    fn add_and_list_rakes() {
        let mut env = EnvironmentState::new(10);
        let a = env.add_rake(rake());
        let b = env.add_rake(rake());
        assert_ne!(a, b);
        assert_eq!(env.rake_count(), 2);
        assert!(env.rake(a).is_some());
    }

    #[test]
    fn first_come_first_served_grab() {
        // The exact scenario of §5.1: two users grab the same rake.
        let mut env = EnvironmentState::new(10);
        let id = env.add_rake(rake());
        env.grab(1, id, Handle::Center).unwrap();
        let err = env.grab(2, id, Handle::Center).unwrap_err();
        assert_eq!(err, EnvError::LockedByOther { rake: id, owner: 1 });
        // "until the first user lets the rake go."
        env.release(1, id).unwrap();
        env.grab(2, id, Handle::EndA).unwrap();
    }

    #[test]
    fn other_rakes_unaffected_by_locking() {
        // "Other rakes are unaffected by this locking, so the second user
        // can interact with them."
        let mut env = EnvironmentState::new(10);
        let a = env.add_rake(rake());
        let b = env.add_rake(rake());
        env.grab(1, a, Handle::Center).unwrap();
        env.grab(2, b, Handle::Center).unwrap();
        env.drag(2, b, Vec3::X).unwrap();
        assert_eq!(env.rake(b).unwrap().rake.a, Vec3::X);
    }

    #[test]
    fn drag_requires_ownership() {
        let mut env = EnvironmentState::new(10);
        let id = env.add_rake(rake());
        assert_eq!(env.drag(1, id, Vec3::X), Err(EnvError::NotHeld(id)));
        env.grab(1, id, Handle::Center).unwrap();
        assert!(matches!(
            env.drag(2, id, Vec3::X),
            Err(EnvError::LockedByOther { .. })
        ));
        env.drag(1, id, Vec3::new(0.0, 1.0, 0.0)).unwrap();
        assert_eq!(
            env.rake(id).unwrap().rake.center(),
            Vec3::new(2.0, 1.0, 0.0)
        );
    }

    #[test]
    fn drag_respects_grabbed_handle() {
        let mut env = EnvironmentState::new(10);
        let id = env.add_rake(rake());
        env.grab(1, id, Handle::EndB).unwrap();
        env.drag(1, id, Vec3::new(0.0, 2.0, 0.0)).unwrap();
        let r = env.rake(id).unwrap().rake;
        assert_eq!(r.a, Vec3::ZERO); // end A untouched
        assert_eq!(r.b, Vec3::new(4.0, 2.0, 0.0));
    }

    #[test]
    fn regrab_updates_handle() {
        let mut env = EnvironmentState::new(10);
        let id = env.add_rake(rake());
        env.grab(1, id, Handle::Center).unwrap();
        env.grab(1, id, Handle::EndA).unwrap(); // same user: allowed
        assert_eq!(env.rake(id).unwrap().grab, Some((1, Handle::EndA)));
    }

    #[test]
    fn release_validates() {
        let mut env = EnvironmentState::new(10);
        let id = env.add_rake(rake());
        assert_eq!(env.release(1, id), Err(EnvError::NotHeld(id)));
        env.grab(1, id, Handle::Center).unwrap();
        assert!(matches!(
            env.release(2, id),
            Err(EnvError::LockedByOther { .. })
        ));
        env.release(1, id).unwrap();
    }

    #[test]
    fn remove_held_rake_only_by_holder() {
        let mut env = EnvironmentState::new(10);
        let id = env.add_rake(rake());
        env.grab(1, id, Handle::Center).unwrap();
        assert!(env.remove_rake(2, id).is_err());
        env.remove_rake(1, id).unwrap();
        assert_eq!(env.rake_count(), 0);
    }

    #[test]
    fn disconnect_releases_locks() {
        let mut env = EnvironmentState::new(10);
        let a = env.add_rake(rake());
        let b = env.add_rake(rake());
        env.grab(1, a, Handle::Center).unwrap();
        env.grab(1, b, Handle::EndA).unwrap();
        env.update_user(1, Pose::IDENTITY);
        env.disconnect_user(1);
        assert!(env.rake(a).unwrap().grab.is_none());
        assert!(env.rake(b).unwrap().grab.is_none());
        assert_eq!(env.users().count(), 0);
        // Another user can now grab.
        env.grab(2, a, Handle::Center).unwrap();
    }

    #[test]
    fn revision_bumps_on_mutation_only() {
        let mut env = EnvironmentState::new(10);
        let r0 = env.revision();
        let id = env.add_rake(rake());
        assert!(env.revision() > r0);
        let r1 = env.revision();
        let _ = env.rake(id);
        let _ = env.rakes().count();
        assert_eq!(env.revision(), r1);
        env.set_tool(id, ToolKind::Streakline).unwrap();
        assert!(env.revision() > r1);
    }

    #[test]
    fn head_pose_does_not_touch_geometry_revision() {
        let mut env = EnvironmentState::new(10);
        let id = env.add_rake(rake());
        let geom = env.geometry_revision();
        let per_rake = env.rake(id).unwrap().geom_rev();
        let users = env.users_revision();
        env.update_user(1, Pose::IDENTITY);
        env.update_user(2, Pose::new(Vec3::ONE, Default::default()));
        assert_eq!(env.geometry_revision(), geom);
        assert_eq!(env.rake(id).unwrap().geom_rev(), per_rake);
        assert!(env.users_revision() > users);
        // The global revision still moves: the encoded frame changes.
        assert!(env.revision() > geom);
    }

    #[test]
    fn drag_bumps_only_the_dragged_rakes_geom_rev() {
        let mut env = EnvironmentState::new(10);
        let a = env.add_rake(rake());
        let b = env.add_rake(rake());
        let rev_a = env.rake(a).unwrap().geom_rev();
        let rev_b = env.rake(b).unwrap().geom_rev();
        env.grab(1, a, Handle::Center).unwrap();
        // Grabbing is lock state, not geometry.
        assert_eq!(env.rake(a).unwrap().geom_rev(), rev_a);
        env.drag(1, a, Vec3::X).unwrap();
        assert!(env.rake(a).unwrap().geom_rev() > rev_a);
        assert_eq!(env.rake(b).unwrap().geom_rev(), rev_b);
        assert!(env.geometry_revision() >= env.rake(a).unwrap().geom_rev());
    }

    #[test]
    fn tool_and_seed_count_are_geometry_changes() {
        let mut env = EnvironmentState::new(10);
        let id = env.add_rake(rake());
        let r0 = env.rake(id).unwrap().geom_rev();
        env.set_seed_count(id, 9).unwrap();
        let r1 = env.rake(id).unwrap().geom_rev();
        assert!(r1 > r0);
        env.set_tool(id, ToolKind::Streakline).unwrap();
        assert!(env.rake(id).unwrap().geom_rev() > r1);
    }

    #[test]
    fn clock_bump_is_time_only() {
        let mut env = EnvironmentState::new(10);
        env.add_rake(rake());
        let geom = env.geometry_revision();
        let users = env.users_revision();
        let time = env.time_revision();
        env.bump_revision();
        assert!(env.time_revision() > time);
        assert_eq!(env.geometry_revision(), geom);
        assert_eq!(env.users_revision(), users);
    }

    #[test]
    fn seed_count_clamped() {
        let mut env = EnvironmentState::new(10);
        let id = env.add_rake(rake());
        env.set_seed_count(id, 0).unwrap();
        assert_eq!(env.rake(id).unwrap().rake.seed_count, 1);
        assert!(env.set_seed_count(99, 5).is_err());
    }

    #[test]
    fn user_poses_tracked() {
        let mut env = EnvironmentState::new(10);
        env.update_user(7, Pose::new(Vec3::ONE, Default::default()));
        env.update_user(9, Pose::IDENTITY);
        let ids: Vec<UserId> = env.users().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![7, 9]);
    }
}
