#![deny(unsafe_op_in_unsafe_fn, unused_must_use)]
//! The distributed virtual windtunnel — §5 of the paper.
//!
//! "Each workstation reads its input devices and sends their commands to
//! the remote system. The remote system updates the virtual environment
//! including if necessary loading the data for the current timestep,
//! computes the current visualizations, and transfers the environment
//! state back to the workstations. Each workstation renders this state to
//! its virtual environment display device."
//!
//! * [`time`] — playback control: the flow "can be sped up, slowed down,
//!   run backwards, or stopped completely" (§2);
//! * [`mod@env`] — the shared environment: rakes, first-come-first-served
//!   grab locking (§5.1), user head poses;
//! * [`proto`] — the command/geometry wire protocol: commands upstream
//!   (hand pose, gestures, time control), 12-byte path points downstream;
//! * [`interaction`] — server-side hand-gesture interpretation: fist
//!   near a handle grabs, movement drags, open releases;
//! * [`compute`] — per-frame tool computation over the timestep store;
//! * [`server`] — the remote system: a dlib server wiring it together;
//! * [`client`] — the workstation side: commands out, geometry in,
//!   frames rendered through the `vr` substrate;
//! * [`session`] — figure 9's workstation split: the network conversation
//!   on a background thread, rendering free-running on the latest state;
//! * [`governor`] — automatic rich-environment/frame-rate tradeoff
//!   (§1.2) by scaling streamline detail to the compute budget;
//! * [`desktop`] — keyboard/mouse input producing the same command
//!   stream as the glove (§3, §6);
//! * [`record`] — session recording and replay (the serialized command
//!   stream *is* the session).

pub mod client;
pub mod compute;
pub mod desktop;
pub mod env;
pub mod governor;
pub mod interaction;
pub mod proto;
pub mod record;
pub mod server;
pub mod session;
pub mod time;

pub use client::{ResilientClient, RetainedScene, WindtunnelClient};
pub use env::{EnvError, EnvironmentState, RakeId};
pub use governor::FrameGovernor;
pub use proto::{Command, DeltaFrame, DeltaRequest, GeometryFrame, PathKind, TimeCommand};
pub use server::{serve, ServerOptions, WindtunnelHandle};
pub use session::BackgroundSession;
pub use time::{PlaybackMode, TimeController};
