//! The windtunnel wire protocol on top of dlib.
//!
//! §5.1 defines both directions precisely. Upstream (workstation →
//! remote): "the information that is sent to the remote system are those
//! user commands which effect the virtual environment. These include hand
//! position, hand gestures, keyboard and mouse commands… In the shared
//! scenario, the position of the users' heads would also be sent."
//! Downstream (remote → workstation): "the resulting paths … as arrays of
//! floating point vectors in three dimensions… the transfer of 12 bytes
//! per point in each array", plus "the information about the virtual
//! control devices such as rakes … so that the current state of these
//! devices may be correctly rendered."
//!
//! All protocol geometry is in **physical** coordinates; grid coordinates
//! never cross the wire.

use bytes::{BufMut, Bytes, BytesMut};
use dlib::wire::{put_f32x3_slab, WireReader, WireWrite};
use dlib::{DlibError, Result};
use flowfield::Dims;
use tracer::ToolKind;
use vecmath::{Aabb, Pose, Quat, Vec3};
use vr::Gesture;

/// Wire-protocol version, checked during the hello handshake: a client
/// and server that disagree fail fast with a clear error instead of
/// mis-decoding geometry.
pub const PROTOCOL_VERSION: u32 = 1;

/// Procedure ids registered on the windtunnel's dlib server.
pub const PROC_HELLO: u32 = 0x0057_0001;
pub const PROC_COMMAND: u32 = 0x0057_0002;
pub const PROC_FRAME: u32 = 0x0057_0003;
/// Pipeline instrumentation (additive — a v1 peer that never calls it is
/// unaffected, so `PROTOCOL_VERSION` stays 1).
pub const PROC_STATS: u32 = 0x0057_0004;
/// Incremental frame transfer (additive, like [`PROC_STATS`]): the client
/// sends the revision it last applied, the server replies with only the
/// per-rake chunks that changed since — or a full keyframe when the
/// client has no baseline / is too far behind. [`PROC_FRAME`] remains the
/// always-works resync path, so `PROTOCOL_VERSION` stays 1.
pub const PROC_FRAME_DELTA: u32 = 0x0057_0005;

/// Identifies a rake (mirrors `env::RakeId`).
pub type RakeId = u32;

// ---------------------------------------------------------------------
// Primitive helpers

fn put_vec3(b: &mut BytesMut, v: Vec3) {
    b.put_f32_le_(v.x);
    b.put_f32_le_(v.y);
    b.put_f32_le_(v.z);
}

fn get_vec3(r: &mut WireReader) -> Result<Vec3> {
    Ok(Vec3::new(r.f32_le()?, r.f32_le()?, r.f32_le()?))
}

fn put_pose(b: &mut BytesMut, p: &Pose) {
    put_vec3(b, p.position);
    b.put_f32_le_(p.orientation.w);
    b.put_f32_le_(p.orientation.x);
    b.put_f32_le_(p.orientation.y);
    b.put_f32_le_(p.orientation.z);
}

fn get_pose(r: &mut WireReader) -> Result<Pose> {
    let position = get_vec3(r)?;
    let orientation = Quat::new(r.f32_le()?, r.f32_le()?, r.f32_le()?, r.f32_le()?);
    Ok(Pose {
        position,
        orientation,
    })
}

fn put_tool(b: &mut BytesMut, t: ToolKind) {
    b.put_u32_le_(match t {
        ToolKind::Streamline => 0,
        ToolKind::ParticlePath => 1,
        ToolKind::Streakline => 2,
    });
}

fn get_tool(r: &mut WireReader) -> Result<ToolKind> {
    match r.u32_le()? {
        0 => Ok(ToolKind::Streamline),
        1 => Ok(ToolKind::ParticlePath),
        2 => Ok(ToolKind::Streakline),
        n => Err(DlibError::Protocol(format!("bad tool {n}"))),
    }
}

fn put_gesture(b: &mut BytesMut, g: Gesture) {
    b.put_u32_le_(match g {
        Gesture::Open => 0,
        Gesture::Fist => 1,
        Gesture::Point => 2,
        Gesture::Pinch => 3,
    });
}

fn get_gesture(r: &mut WireReader) -> Result<Gesture> {
    match r.u32_le()? {
        0 => Ok(Gesture::Open),
        1 => Ok(Gesture::Fist),
        2 => Ok(Gesture::Point),
        3 => Ok(Gesture::Pinch),
        n => Err(DlibError::Protocol(format!("bad gesture {n}"))),
    }
}

/// Cap on a single path's point count (well above Table 1's largest
/// frame) — bounds the allocation a hostile length prefix can demand.
const MAX_POINTS_PER_PATH: usize = 16_000_000;

fn put_points(b: &mut BytesMut, pts: &[Vec3]) {
    b.put_len_(pts.len());
    // Bulk slab encode: one reserve + block copies instead of three
    // bounds-checked appends per point. Byte-identical to the
    // per-element path (see `reference` tests).
    put_f32x3_slab(b, pts.iter().map(|p| [p.x, p.y, p.z]));
}

fn get_points(r: &mut WireReader) -> Result<Vec<Vec3>> {
    let n = r.u32_le()? as usize;
    if n > MAX_POINTS_PER_PATH {
        return Err(DlibError::Protocol(format!("absurd point count {n}")));
    }
    // Bulk slab decode: one bounds check for the whole 12n-byte run.
    Ok(r.f32x3_slab(n)?
        .map(|[x, y, z]| Vec3::new(x, y, z))
        .collect())
}

/// The original per-element codec, kept as the reference the slab path
/// must match byte-for-byte (asserted by proptest below).
#[cfg(test)]
mod reference_points {
    use super::*;

    pub fn put_points(b: &mut BytesMut, pts: &[Vec3]) {
        b.put_len_(pts.len());
        for p in pts {
            put_vec3(b, *p);
        }
    }

    pub fn get_points(r: &mut WireReader) -> Result<Vec<Vec3>> {
        let n = r.u32_le()? as usize;
        if n > MAX_POINTS_PER_PATH {
            return Err(DlibError::Protocol(format!("absurd point count {n}")));
        }
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            pts.push(get_vec3(r)?);
        }
        Ok(pts)
    }
}

// ---------------------------------------------------------------------
// Commands (workstation → remote)

/// Time-control commands (§2's "sped up, slowed down, run backwards, or
/// stopped completely").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeCommand {
    Play,
    Pause,
    Reverse,
    SetRate(f32),
    Jump(u32),
    Step(i32),
}

/// Commands that affect the shared environment.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Create a rake between two physical-space endpoints.
    AddRake {
        a: Vec3,
        b: Vec3,
        seed_count: u32,
        tool: ToolKind,
    },
    RemoveRake {
        id: RakeId,
    },
    SetTool {
        id: RakeId,
        tool: ToolKind,
    },
    SetSeedCount {
        id: RakeId,
        n: u32,
    },
    /// The glove sample: hand position (physical) + current gesture.
    Hand {
        position: Vec3,
        gesture: Gesture,
    },
    /// The BOOM sample, for the shared-participants display.
    HeadPose {
        pose: Pose,
    },
    Time(TimeCommand),
    /// Clean sign-off: releases the user's locks and presence.
    Goodbye,
}

impl Command {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            Command::AddRake {
                a,
                b: bb,
                seed_count,
                tool,
            } => {
                b.put_u32_le_(0);
                put_vec3(&mut b, *a);
                put_vec3(&mut b, *bb);
                b.put_u32_le_(*seed_count);
                put_tool(&mut b, *tool);
            }
            Command::RemoveRake { id } => {
                b.put_u32_le_(1);
                b.put_u32_le_(*id);
            }
            Command::SetTool { id, tool } => {
                b.put_u32_le_(2);
                b.put_u32_le_(*id);
                put_tool(&mut b, *tool);
            }
            Command::SetSeedCount { id, n } => {
                b.put_u32_le_(3);
                b.put_u32_le_(*id);
                b.put_u32_le_(*n);
            }
            Command::Hand { position, gesture } => {
                b.put_u32_le_(4);
                put_vec3(&mut b, *position);
                put_gesture(&mut b, *gesture);
            }
            Command::HeadPose { pose } => {
                b.put_u32_le_(5);
                put_pose(&mut b, pose);
            }
            Command::Goodbye => {
                b.put_u32_le_(7);
            }
            Command::Time(tc) => {
                b.put_u32_le_(6);
                match tc {
                    TimeCommand::Play => b.put_u32_le_(0),
                    TimeCommand::Pause => b.put_u32_le_(1),
                    TimeCommand::Reverse => b.put_u32_le_(2),
                    TimeCommand::SetRate(r) => {
                        b.put_u32_le_(3);
                        b.put_f32_le_(*r);
                    }
                    TimeCommand::Jump(t) => {
                        b.put_u32_le_(4);
                        b.put_u32_le_(*t);
                    }
                    TimeCommand::Step(d) => {
                        b.put_u32_le_(5);
                        b.put_u32_le_(d.cast_unsigned());
                    }
                }
            }
        }
        b.freeze()
    }

    pub fn decode(buf: &[u8]) -> Result<Command> {
        let mut r = WireReader::new(buf);
        let tag = r.u32_le()?;
        let cmd = match tag {
            0 => Command::AddRake {
                a: get_vec3(&mut r)?,
                b: get_vec3(&mut r)?,
                seed_count: r.u32_le()?,
                tool: get_tool(&mut r)?,
            },
            1 => Command::RemoveRake { id: r.u32_le()? },
            2 => Command::SetTool {
                id: r.u32_le()?,
                tool: get_tool(&mut r)?,
            },
            3 => Command::SetSeedCount {
                id: r.u32_le()?,
                n: r.u32_le()?,
            },
            4 => Command::Hand {
                position: get_vec3(&mut r)?,
                gesture: get_gesture(&mut r)?,
            },
            5 => Command::HeadPose {
                pose: get_pose(&mut r)?,
            },
            6 => {
                let sub = r.u32_le()?;
                Command::Time(match sub {
                    0 => TimeCommand::Play,
                    1 => TimeCommand::Pause,
                    2 => TimeCommand::Reverse,
                    3 => TimeCommand::SetRate(r.f32_le()?),
                    4 => TimeCommand::Jump(r.u32_le()?),
                    5 => TimeCommand::Step(r.u32_le()?.cast_signed()),
                    n => return Err(DlibError::Protocol(format!("bad time cmd {n}"))),
                })
            }
            7 => Command::Goodbye,
            n => return Err(DlibError::Protocol(format!("bad command tag {n}"))),
        };
        if r.remaining() != 0 {
            return Err(DlibError::Protocol("trailing bytes after command".into()));
        }
        Ok(cmd)
    }
}

// ---------------------------------------------------------------------
// Hello (session setup)

/// What a client learns when it joins a session.
#[derive(Debug, Clone, PartialEq)]
pub struct HelloReply {
    pub dataset_name: String,
    pub dims: Dims,
    pub timestep_count: u32,
    pub dt: f32,
    /// Physical bounds of the grid, for scene framing.
    pub bounds_min: Vec3,
    pub bounds_max: Vec3,
    /// The caller's user id (dlib client id) — lets the client recognize
    /// its own locks in the rake state.
    pub user_id: u64,
}

impl HelloReply {
    pub fn bounds(&self) -> Aabb {
        Aabb::new(self.bounds_min, self.bounds_max)
    }

    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u32_le_(PROTOCOL_VERSION);
        b.put_str_(&self.dataset_name);
        b.put_u32_le_(self.dims.ni);
        b.put_u32_le_(self.dims.nj);
        b.put_u32_le_(self.dims.nk);
        b.put_u32_le_(self.timestep_count);
        b.put_f32_le_(self.dt);
        put_vec3(&mut b, self.bounds_min);
        put_vec3(&mut b, self.bounds_max);
        b.put_u64_le_(self.user_id);
        b.freeze()
    }

    pub fn decode(buf: &[u8]) -> Result<HelloReply> {
        let mut r = WireReader::new(buf);
        let version = r.u32_le()?;
        if version != PROTOCOL_VERSION {
            return Err(DlibError::Protocol(format!(
                "protocol version mismatch: server speaks v{version}, this client v{PROTOCOL_VERSION}"
            )));
        }
        Ok(HelloReply {
            dataset_name: r.string()?,
            dims: Dims::new(r.u32_le()?, r.u32_le()?, r.u32_le()?),
            timestep_count: r.u32_le()?,
            dt: r.f32_le()?,
            bounds_min: get_vec3(&mut r)?,
            bounds_max: get_vec3(&mut r)?,
            user_id: r.u64_le()?,
        })
    }
}

// ---------------------------------------------------------------------
// Geometry frame (remote → workstation)

/// What kind of geometry a path carries (drives color/style on the
/// client).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    Streamline,
    ParticlePath,
    /// A connected streak filament ("smoke").
    Streak,
}

impl PathKind {
    fn to_u32(self) -> u32 {
        match self {
            PathKind::Streamline => 0,
            PathKind::ParticlePath => 1,
            PathKind::Streak => 2,
        }
    }

    fn from_u32(v: u32) -> Result<PathKind> {
        match v {
            0 => Ok(PathKind::Streamline),
            1 => Ok(PathKind::ParticlePath),
            2 => Ok(PathKind::Streak),
            n => Err(DlibError::Protocol(format!("bad path kind {n}"))),
        }
    }
}

/// One computed path: 12 bytes per point, as §5.1 specifies.
#[derive(Debug, Clone, PartialEq)]
pub struct PathMsg {
    pub rake_id: RakeId,
    pub kind: PathKind,
    pub points: Vec<Vec3>,
}

/// Rake state for client-side rendering (physical endpoints).
#[derive(Debug, Clone, PartialEq)]
pub struct RakeMsg {
    pub id: RakeId,
    pub a: Vec3,
    pub b: Vec3,
    pub seed_count: u32,
    pub tool: ToolKind,
    /// Holder, if grabbed (0 = free).
    pub owner: u64,
}

/// Another participant's head pose.
#[derive(Debug, Clone, PartialEq)]
pub struct UserMsg {
    pub id: u64,
    pub head: Pose,
}

/// One full environment frame.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryFrame {
    pub timestep: u32,
    pub time: f32,
    /// Environment revision this frame was computed at.
    pub revision: u64,
    pub rakes: Vec<RakeMsg>,
    pub paths: Vec<PathMsg>,
    pub users: Vec<UserMsg>,
}

// Shared section codecs: the full frame and the delta frame are built
// from the same per-element encoders, so a frame reassembled from delta
// chunks is byte-identical to the directly encoded one by construction.

fn put_rake(b: &mut BytesMut, rk: &RakeMsg) {
    b.put_u32_le_(rk.id);
    put_vec3(b, rk.a);
    put_vec3(b, rk.b);
    b.put_u32_le_(rk.seed_count);
    put_tool(b, rk.tool);
    b.put_u64_le_(rk.owner);
}

fn get_rake(r: &mut WireReader) -> Result<RakeMsg> {
    Ok(RakeMsg {
        id: r.u32_le()?,
        a: get_vec3(r)?,
        b: get_vec3(r)?,
        seed_count: r.u32_le()?,
        tool: get_tool(r)?,
        owner: r.u64_le()?,
    })
}

fn put_rakes_section(b: &mut BytesMut, rakes: &[RakeMsg]) {
    b.put_len_(rakes.len());
    for rk in rakes {
        put_rake(b, rk);
    }
}

fn get_rakes_section(r: &mut WireReader) -> Result<Vec<RakeMsg>> {
    let n_rakes = r.u32_le()? as usize;
    if n_rakes > 100_000 {
        return Err(DlibError::Protocol("absurd rake count".into()));
    }
    let mut rakes = Vec::with_capacity(n_rakes);
    for _ in 0..n_rakes {
        rakes.push(get_rake(r)?);
    }
    Ok(rakes)
}

fn put_path(b: &mut BytesMut, p: &PathMsg) {
    b.put_u32_le_(p.rake_id);
    b.put_u32_le_(p.kind.to_u32());
    put_points(b, &p.points);
}

fn get_path(r: &mut WireReader) -> Result<PathMsg> {
    Ok(PathMsg {
        rake_id: r.u32_le()?,
        kind: PathKind::from_u32(r.u32_le()?)?,
        points: get_points(r)?,
    })
}

fn put_users_section(b: &mut BytesMut, users: &[UserMsg]) {
    b.put_len_(users.len());
    for u in users {
        b.put_u64_le_(u.id);
        put_pose(b, &u.head);
    }
}

fn get_users_section(r: &mut WireReader) -> Result<Vec<UserMsg>> {
    let n_users = r.u32_le()? as usize;
    if n_users > 100_000 {
        return Err(DlibError::Protocol("absurd user count".into()));
    }
    let mut users = Vec::with_capacity(n_users);
    for _ in 0..n_users {
        users.push(UserMsg {
            id: r.u64_le()?,
            head: get_pose(r)?,
        });
    }
    Ok(users)
}

impl GeometryFrame {
    /// Total path points — the "particles" of Table 1.
    pub fn particle_count(&self) -> usize {
        self.paths.iter().map(|p| p.points.len()).sum()
    }

    /// Wire bytes of the path payload alone (12 B/point, the table's
    /// accounting).
    pub fn path_payload_bytes(&self) -> usize {
        self.particle_count() * 12
    }

    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64 + self.path_payload_bytes());
        self.encode_into(&mut b);
        b.freeze()
    }

    /// Encode into a caller-owned buffer, so a server pumping frames can
    /// reuse one scratch `BytesMut` instead of allocating per frame.
    pub fn encode_into(&self, b: &mut BytesMut) {
        b.reserve(64 + self.path_payload_bytes());
        b.put_u32_le_(self.timestep);
        b.put_f32_le_(self.time);
        b.put_u64_le_(self.revision);
        put_rakes_section(b, &self.rakes);
        b.put_len_(self.paths.len());
        for p in &self.paths {
            put_path(b, p);
        }
        put_users_section(b, &self.users);
    }

    pub fn decode(buf: &[u8]) -> Result<GeometryFrame> {
        let mut r = WireReader::new(buf);
        let timestep = r.u32_le()?;
        let time = r.f32_le()?;
        let revision = r.u64_le()?;
        let rakes = get_rakes_section(&mut r)?;
        let n_paths = r.u32_le()? as usize;
        if n_paths > 1_000_000 {
            return Err(DlibError::Protocol("absurd path count".into()));
        }
        let mut paths = Vec::with_capacity(n_paths);
        for _ in 0..n_paths {
            paths.push(get_path(&mut r)?);
        }
        let users = get_users_section(&mut r)?;
        if r.remaining() != 0 {
            return Err(DlibError::Protocol("trailing bytes after frame".into()));
        }
        Ok(GeometryFrame {
            timestep,
            time,
            revision,
            rakes,
            paths,
            users,
        })
    }
}

/// The FRAME request: whether this call should advance the clock (one
/// designated client drives time; the rest just read).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRequest {
    pub advance: bool,
}

impl FrameRequest {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u32_le_(u32::from(self.advance));
        b.freeze()
    }

    pub fn decode(buf: &[u8]) -> Result<FrameRequest> {
        let mut r = WireReader::new(buf);
        Ok(FrameRequest {
            advance: r.u32_le()? != 0,
        })
    }
}

// ---------------------------------------------------------------------
// Delta frames (remote → workstation, PROC_FRAME_DELTA)

/// The FRAME_DELTA request: like [`FrameRequest`], plus the revision the
/// client last applied to its retained scene (its acknowledged
/// baseline). `baseline == 0` means "no scene yet — send a keyframe".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRequest {
    pub advance: bool,
    pub baseline: u64,
}

impl DeltaRequest {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u32_le_(u32::from(self.advance));
        b.put_u64_le_(self.baseline);
        b.freeze()
    }

    pub fn decode(buf: &[u8]) -> Result<DeltaRequest> {
        let mut r = WireReader::new(buf);
        let req = DeltaRequest {
            advance: r.u32_le()? != 0,
            baseline: r.u64_le()?,
        };
        if r.remaining() != 0 {
            return Err(DlibError::Protocol(
                "trailing bytes after delta request".into(),
            ));
        }
        Ok(req)
    }
}

/// One rake's worth of computed paths, stamped with the environment
/// revision its content last changed at. The path encoding inside a
/// chunk is exactly the full-frame path encoding, so the server can
/// cache chunks as encoded bytes and splice them into replies, and the
/// client can reassemble a byte-identical [`GeometryFrame`].
#[derive(Debug, Clone, PartialEq)]
pub struct RakeChunkMsg {
    pub rake_id: RakeId,
    /// Revision at which this chunk's content last changed — the server
    /// resends a chunk only to clients whose baseline is older.
    pub content_rev: u64,
    pub paths: Vec<PathMsg>,
}

impl RakeChunkMsg {
    pub fn encode_into(&self, b: &mut BytesMut) {
        Self::encode_parts(b, self.rake_id, self.content_rev, &self.paths);
    }

    /// Encode straight from borrowed parts — the server's broadcast cache
    /// encodes each rake once per revision from its cached paths without
    /// building an owned message first.
    pub fn encode_parts(b: &mut BytesMut, rake_id: RakeId, content_rev: u64, paths: &[PathMsg]) {
        b.put_u32_le_(rake_id);
        b.put_u64_le_(content_rev);
        b.put_len_(paths.len());
        for p in paths {
            put_path(b, p);
        }
    }

    fn decode_from(r: &mut WireReader) -> Result<RakeChunkMsg> {
        let rake_id = r.u32_le()?;
        let content_rev = r.u64_le()?;
        let n_paths = r.u32_le()? as usize;
        if n_paths > 1_000_000 {
            return Err(DlibError::Protocol("absurd chunk path count".into()));
        }
        let mut paths = Vec::with_capacity(n_paths);
        for _ in 0..n_paths {
            let p = get_path(r)?;
            if p.rake_id != rake_id {
                return Err(DlibError::Protocol(format!(
                    "chunk for rake {rake_id} carries a path of rake {}",
                    p.rake_id
                )));
            }
            paths.push(p);
        }
        Ok(RakeChunkMsg {
            rake_id,
            content_rev,
            paths,
        })
    }
}

/// One incremental frame: header + full (cheap) rake/user state + path
/// chunks only for rakes whose content advanced past the client's
/// baseline + tombstones for rakes deleted since. A keyframe carries
/// every chunk and resets the client's scene wholesale.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaFrame {
    /// True when this is a full keyframe (fresh client, client too far
    /// behind, or a forced periodic resync).
    pub keyframe: bool,
    pub timestep: u32,
    pub time: f32,
    /// Environment revision this frame describes; becomes the client's
    /// next baseline.
    pub revision: u64,
    /// The baseline this delta patches (0 on keyframes). A client whose
    /// scene revision differs must resync with a keyframe.
    pub baseline: u64,
    /// The complete rake list (44 B each — owner/lock state does not
    /// bump geometry revisions, so it rides along in full every frame).
    pub rakes: Vec<RakeMsg>,
    /// Path chunks for rakes with `content_rev > baseline` (all rakes on
    /// a keyframe), in ascending rake-id order.
    pub chunks: Vec<RakeChunkMsg>,
    /// Rakes deleted since the baseline (empty on keyframes).
    pub tombstones: Vec<RakeId>,
    /// The complete user/head-pose list.
    pub users: Vec<UserMsg>,
}

const DELTA_FLAG_KEYFRAME: u32 = 1;

impl DeltaFrame {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        self.encode_into(&mut b);
        b.freeze()
    }

    pub fn encode_into(&self, b: &mut BytesMut) {
        b.put_u32_le_(if self.keyframe {
            DELTA_FLAG_KEYFRAME
        } else {
            0
        });
        b.put_u32_le_(self.timestep);
        b.put_f32_le_(self.time);
        b.put_u64_le_(self.revision);
        b.put_u64_le_(self.baseline);
        put_rakes_section(b, &self.rakes);
        b.put_len_(self.chunks.len());
        for c in &self.chunks {
            c.encode_into(b);
        }
        b.put_len_(self.tombstones.len());
        for id in &self.tombstones {
            b.put_u32_le_(*id);
        }
        put_users_section(b, &self.users);
    }

    pub fn decode(buf: &[u8]) -> Result<DeltaFrame> {
        let mut r = WireReader::new(buf);
        let flags = r.u32_le()?;
        if flags & !DELTA_FLAG_KEYFRAME != 0 {
            return Err(DlibError::Protocol(format!(
                "unknown delta flags {flags:#x}"
            )));
        }
        let timestep = r.u32_le()?;
        let time = r.f32_le()?;
        let revision = r.u64_le()?;
        let baseline = r.u64_le()?;
        let rakes = get_rakes_section(&mut r)?;
        let n_chunks = r.u32_le()? as usize;
        if n_chunks > 100_000 {
            return Err(DlibError::Protocol("absurd chunk count".into()));
        }
        let mut chunks = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            chunks.push(RakeChunkMsg::decode_from(&mut r)?);
        }
        let n_tombstones = r.u32_le()? as usize;
        if n_tombstones > 100_000 {
            return Err(DlibError::Protocol("absurd tombstone count".into()));
        }
        let mut tombstones = Vec::with_capacity(n_tombstones);
        for _ in 0..n_tombstones {
            tombstones.push(r.u32_le()?);
        }
        let users = get_users_section(&mut r)?;
        if r.remaining() != 0 {
            return Err(DlibError::Protocol(
                "trailing bytes after delta frame".into(),
            ));
        }
        Ok(DeltaFrame {
            keyframe: flags & DELTA_FLAG_KEYFRAME != 0,
            timestep,
            time,
            revision,
            baseline,
            rakes,
            chunks,
            tombstones,
            users,
        })
    }
}

/// Assemble a [`DeltaFrame`] reply by splicing *pre-encoded* chunk blobs
/// (each produced by [`RakeChunkMsg::encode_parts`]) between a freshly
/// encoded header and tail. This is how the server reuses its broadcast
/// cache across clients: chunks are encoded once per revision, and every
/// reply is a cheap copy of the cached bytes. The output is byte-identical
/// to `DeltaFrame::encode` on the equivalent typed value.
#[allow(clippy::too_many_arguments)]
pub fn splice_delta(
    b: &mut BytesMut,
    keyframe: bool,
    timestep: u32,
    time: f32,
    revision: u64,
    baseline: u64,
    rakes: &[RakeMsg],
    chunk_blobs: &[Bytes],
    tombstones: &[RakeId],
    users: &[UserMsg],
) {
    let blob_bytes: usize = chunk_blobs.iter().map(|c| c.len()).sum();
    b.reserve(64 + rakes.len() * 44 + blob_bytes);
    b.put_u32_le_(if keyframe { DELTA_FLAG_KEYFRAME } else { 0 });
    b.put_u32_le_(timestep);
    b.put_f32_le_(time);
    b.put_u64_le_(revision);
    b.put_u64_le_(baseline);
    put_rakes_section(b, rakes);
    b.put_len_(chunk_blobs.len());
    for blob in chunk_blobs {
        b.put_slice(blob);
    }
    b.put_len_(tombstones.len());
    for id in tombstones {
        b.put_u32_le_(*id);
    }
    put_users_section(b, users);
}

// ---------------------------------------------------------------------
// Pipeline stats (remote → workstation, PROC_STATS)

/// Stage timings and cache counters for the frame pipeline. Returned by
/// [`PROC_STATS`]; the per-frame fields describe the most recently
/// *computed* frame, the `cum_*` fields accumulate over the server's
/// lifetime (so a client can observe, e.g., that a head-pose-only update
/// produced geometry-cache hits rather than fresh integrations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameStats {
    /// Environment revision the per-frame numbers below were measured at.
    pub revision: u64,
    /// Timestep fetch / interpolation setup, microseconds.
    pub fetch_us: u64,
    /// Streamline / particle-path integration, microseconds.
    pub integrate_us: u64,
    /// Grid→physical mapping of computed paths, microseconds.
    pub map_us: u64,
    /// Wire encoding of the frame, microseconds.
    pub encode_us: u64,
    /// Per-rake geometry cache hits while assembling the last frame.
    pub geom_hits: u32,
    /// Per-rake geometry cache misses (rakes whose paths were re-traced).
    pub geom_misses: u32,
    /// Lifetime per-rake geometry cache hits.
    pub cum_geom_hits: u64,
    /// Lifetime per-rake geometry cache misses.
    pub cum_geom_misses: u64,
    /// Lifetime whole-frame encoded-bytes cache hits.
    pub cum_frame_hits: u64,
    /// Lifetime frames served.
    pub cum_frames: u64,
    /// Per-rake chunk encoding for the last frame, microseconds (zero
    /// when every chunk came from the broadcast cache).
    pub chunk_encode_us: u64,
    /// Delta reply assembly (header + cached-chunk splicing), µs.
    pub delta_encode_us: u64,
    /// Lifetime per-rake chunks encoded — stays flat across extra
    /// clients at the same revision, proving encode-once broadcast.
    pub cum_chunk_encodes: u64,
    /// Lifetime keyframes served over FRAME_DELTA.
    pub cum_keyframes: u64,
    /// Lifetime true deltas served over FRAME_DELTA.
    pub cum_delta_frames: u64,
    /// Lifetime payload bytes sent over FRAME / FRAME_DELTA replies.
    pub cum_bytes_sent: u64,
    /// Sessions currently connected (as seen by the session-event hook).
    pub live_sessions: u32,
    /// Lifetime sessions reaped by disconnect or heartbeat expiry; their
    /// rake grabs and delta baselines were released.
    pub cum_reaped_sessions: u64,
    /// Lifetime calls shed with `Busy` by the bounded dispatch queue.
    pub cum_shed_calls: u64,
    /// Streak advance, fused field-sampling stage (k1+k2 gathers) for
    /// the last clock tick, microseconds (summed CPU work across rakes).
    pub streak_sample_us: u64,
    /// Streak advance, integration arithmetic stage, microseconds.
    pub streak_integrate_us: u64,
    /// Streak advance, pool compaction (swap-remove sweep), µs.
    pub streak_compact_us: u64,
    /// Streak advance, seed injection, microseconds.
    pub streak_inject_us: u64,
    /// Streak advance throughput: particles stepped per second over the
    /// sample+integrate stages of the last tick (0 when no particles).
    pub streak_particles_per_s: u64,
    /// Lifetime microseconds the storage stack spent blocked on I/O
    /// (real reads plus simulated-disk budgets).
    pub cum_io_wait_us: u64,
    /// Lifetime microseconds spent decoding timestep payloads.
    pub cum_decode_us: u64,
    /// Lifetime fetches served without blocking on the backend
    /// (prefetched-and-ready or cache-resident timesteps).
    pub cum_prefetch_hits: u64,
    /// Lifetime fetches that had to go to the backend and wait.
    pub cum_prefetch_misses: u64,
    /// Lifetime storage reads retried after a transient I/O error or a
    /// corrupt payload. Zero on a healthy disk.
    pub cum_store_retries: u64,
    /// Lifetime v2 chunks recovered bit-exact from a salvage re-read
    /// after failing their checksum.
    pub cum_salvaged_chunks: u64,
    /// Lifetime v2 chunks served zero-filled under a health mask after
    /// salvage was exhausted.
    pub cum_zero_filled_chunks: u64,
    /// Timesteps currently quarantined (unreadable after retries); the
    /// server substitutes neighbours for them during playback.
    pub cum_quarantined_steps: u64,
    /// Lifetime frame/streak fetches served by a substituted neighbouring
    /// timestep instead of the requested (unreadable) one.
    pub cum_substituted_fetches: u64,
}

impl FrameStats {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(120);
        b.put_u64_le_(self.revision);
        b.put_u64_le_(self.fetch_us);
        b.put_u64_le_(self.integrate_us);
        b.put_u64_le_(self.map_us);
        b.put_u64_le_(self.encode_us);
        b.put_u32_le_(self.geom_hits);
        b.put_u32_le_(self.geom_misses);
        b.put_u64_le_(self.cum_geom_hits);
        b.put_u64_le_(self.cum_geom_misses);
        b.put_u64_le_(self.cum_frame_hits);
        b.put_u64_le_(self.cum_frames);
        b.put_u64_le_(self.chunk_encode_us);
        b.put_u64_le_(self.delta_encode_us);
        b.put_u64_le_(self.cum_chunk_encodes);
        b.put_u64_le_(self.cum_keyframes);
        b.put_u64_le_(self.cum_delta_frames);
        b.put_u64_le_(self.cum_bytes_sent);
        b.put_u32_le_(self.live_sessions);
        b.put_u64_le_(self.cum_reaped_sessions);
        b.put_u64_le_(self.cum_shed_calls);
        b.put_u64_le_(self.streak_sample_us);
        b.put_u64_le_(self.streak_integrate_us);
        b.put_u64_le_(self.streak_compact_us);
        b.put_u64_le_(self.streak_inject_us);
        b.put_u64_le_(self.streak_particles_per_s);
        b.put_u64_le_(self.cum_io_wait_us);
        b.put_u64_le_(self.cum_decode_us);
        b.put_u64_le_(self.cum_prefetch_hits);
        b.put_u64_le_(self.cum_prefetch_misses);
        b.put_u64_le_(self.cum_store_retries);
        b.put_u64_le_(self.cum_salvaged_chunks);
        b.put_u64_le_(self.cum_zero_filled_chunks);
        b.put_u64_le_(self.cum_quarantined_steps);
        b.put_u64_le_(self.cum_substituted_fetches);
        b.freeze()
    }

    pub fn decode(buf: &[u8]) -> Result<FrameStats> {
        let mut r = WireReader::new(buf);
        let stats = FrameStats {
            revision: r.u64_le()?,
            fetch_us: r.u64_le()?,
            integrate_us: r.u64_le()?,
            map_us: r.u64_le()?,
            encode_us: r.u64_le()?,
            geom_hits: r.u32_le()?,
            geom_misses: r.u32_le()?,
            cum_geom_hits: r.u64_le()?,
            cum_geom_misses: r.u64_le()?,
            cum_frame_hits: r.u64_le()?,
            cum_frames: r.u64_le()?,
            chunk_encode_us: r.u64_le()?,
            delta_encode_us: r.u64_le()?,
            cum_chunk_encodes: r.u64_le()?,
            cum_keyframes: r.u64_le()?,
            cum_delta_frames: r.u64_le()?,
            cum_bytes_sent: r.u64_le()?,
            live_sessions: r.u32_le()?,
            cum_reaped_sessions: r.u64_le()?,
            cum_shed_calls: r.u64_le()?,
            streak_sample_us: r.u64_le()?,
            streak_integrate_us: r.u64_le()?,
            streak_compact_us: r.u64_le()?,
            streak_inject_us: r.u64_le()?,
            streak_particles_per_s: r.u64_le()?,
            cum_io_wait_us: r.u64_le()?,
            cum_decode_us: r.u64_le()?,
            cum_prefetch_hits: r.u64_le()?,
            cum_prefetch_misses: r.u64_le()?,
            cum_store_retries: r.u64_le()?,
            cum_salvaged_chunks: r.u64_le()?,
            cum_zero_filled_chunks: r.u64_le()?,
            cum_quarantined_steps: r.u64_le()?,
            cum_substituted_fetches: r.u64_le()?,
        };
        if r.remaining() != 0 {
            return Err(DlibError::Protocol("trailing bytes after stats".into()));
        }
        Ok(stats)
    }

    /// Total pipeline time for the last computed frame, microseconds.
    pub fn total_us(&self) -> u64 {
        self.fetch_us + self.integrate_us + self.map_us + self.encode_us
    }

    /// True when the storage stack has reported any fault-tolerance
    /// activity — retries, salvage, zero-fill, quarantine or neighbour
    /// substitution. A client should surface a data-health indicator:
    /// playback is live but no longer backed entirely by clean reads.
    pub fn store_degraded(&self) -> bool {
        self.cum_store_retries != 0
            || self.cum_salvaged_chunks != 0
            || self.cum_zero_filled_chunks != 0
            || self.cum_quarantined_steps != 0
            || self.cum_substituted_fetches != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    /// Runtime twin of dvw-lint's wire-protocol pass: every application
    /// proc id is unique and stays out of the `0xFFFF_0000..` range that
    /// dlib reserves for built-ins such as `PROC_PING`.
    #[test]
    fn proc_ids_unique_and_unreserved() {
        let procs = [
            ("PROC_HELLO", PROC_HELLO),
            ("PROC_COMMAND", PROC_COMMAND),
            ("PROC_FRAME", PROC_FRAME),
            ("PROC_STATS", PROC_STATS),
            ("PROC_FRAME_DELTA", PROC_FRAME_DELTA),
        ];
        for (i, (name_a, id_a)) in procs.iter().enumerate() {
            assert!(
                *id_a < 0xFFFF_0000,
                "{name_a} ({id_a:#010x}) lands in the reserved built-in range"
            );
            assert_ne!(
                *id_a,
                dlib::server::PROC_PING,
                "{name_a} collides with the built-in ping proc"
            );
            for (name_b, id_b) in &procs[i + 1..] {
                assert_ne!(id_a, id_b, "{name_a} and {name_b} share id {id_a:#010x}");
            }
        }
    }

    #[test]
    fn command_roundtrips() {
        let cmds = vec![
            Command::AddRake {
                a: Vec3::new(1.0, 2.0, 3.0),
                b: Vec3::new(4.0, 5.0, 6.0),
                seed_count: 16,
                tool: ToolKind::Streakline,
            },
            Command::RemoveRake { id: 7 },
            Command::SetTool {
                id: 3,
                tool: ToolKind::ParticlePath,
            },
            Command::SetSeedCount { id: 3, n: 25 },
            Command::Hand {
                position: Vec3::new(-1.0, 0.5, 2.0),
                gesture: Gesture::Fist,
            },
            Command::HeadPose {
                pose: Pose::new(Vec3::ONE, Quat::from_axis_angle(Vec3::Y, 0.3)),
            },
            Command::Time(TimeCommand::Play),
            Command::Time(TimeCommand::SetRate(-2.5)),
            Command::Time(TimeCommand::Jump(120)),
            Command::Time(TimeCommand::Step(-1)),
            Command::Goodbye,
        ];
        for c in cmds {
            let back = Command::decode(&c.encode()).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn bad_command_rejected() {
        let mut b = BytesMut::new();
        b.put_u32_le_(99);
        assert!(Command::decode(&b.freeze()).is_err());
        // Trailing garbage.
        let mut bytes = Command::RemoveRake { id: 1 }.encode().to_vec();
        bytes.push(0);
        assert!(Command::decode(&bytes).is_err());
    }

    #[test]
    fn hello_roundtrip() {
        let h = HelloReply {
            dataset_name: "tapered-cylinder".into(),
            dims: Dims::TAPERED_CYLINDER,
            timestep_count: 800,
            dt: 0.05,
            bounds_min: Vec3::splat(-12.0),
            bounds_max: Vec3::new(12.0, 12.0, 8.0),
            user_id: 42,
        };
        let back = HelloReply::decode(&h.encode()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.bounds().max.z, 8.0);
    }

    #[test]
    fn hello_version_mismatch_rejected() {
        let h = HelloReply {
            dataset_name: "x".into(),
            dims: Dims::new(2, 2, 2),
            timestep_count: 1,
            dt: 0.1,
            bounds_min: Vec3::ZERO,
            bounds_max: Vec3::ONE,
            user_id: 1,
        };
        let mut bytes = h.encode().to_vec();
        bytes[0] = 99; // stamp a wrong version
        let err = HelloReply::decode(&bytes);
        assert!(matches!(err, Err(DlibError::Protocol(m)) if m.contains("version")));
    }

    #[test]
    fn frame_roundtrip() {
        let frame = GeometryFrame {
            timestep: 17,
            time: 0.85,
            revision: 99,
            rakes: vec![RakeMsg {
                id: 1,
                a: Vec3::ZERO,
                b: Vec3::ONE,
                seed_count: 8,
                tool: ToolKind::Streamline,
                owner: 2,
            }],
            paths: vec![
                PathMsg {
                    rake_id: 1,
                    kind: PathKind::Streamline,
                    points: vec![Vec3::X, Vec3::Y, Vec3::Z],
                },
                PathMsg {
                    rake_id: 1,
                    kind: PathKind::Streak,
                    points: vec![],
                },
            ],
            users: vec![UserMsg {
                id: 5,
                head: Pose::new(Vec3::new(0.0, 1.7, 2.0), Quat::IDENTITY),
            }],
        };
        let back = GeometryFrame::decode(&frame.encode()).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.particle_count(), 3);
        assert_eq!(back.path_payload_bytes(), 36);
    }

    #[test]
    fn table1_payload_accounting() {
        // A 10 000-particle frame carries 120 000 bytes of path payload
        // (Table 1 row 1); envelope overhead stays small (< 1 %).
        let frame = GeometryFrame {
            timestep: 0,
            time: 0.0,
            revision: 0,
            rakes: vec![],
            paths: vec![PathMsg {
                rake_id: 1,
                kind: PathKind::Streamline,
                points: vec![Vec3::ZERO; 10_000],
            }],
            users: vec![],
        };
        assert_eq!(frame.path_payload_bytes(), 120_000);
        let encoded = frame.encode();
        assert!(encoded.len() >= 120_000);
        assert!(
            encoded.len() < 121_000,
            "envelope too heavy: {}",
            encoded.len()
        );
    }

    #[test]
    fn frame_request_roundtrip() {
        for advance in [true, false] {
            let fr = FrameRequest { advance };
            assert_eq!(FrameRequest::decode(&fr.encode()).unwrap(), fr);
        }
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Decoders are a network boundary: arbitrary bytes must
            /// produce `Err`, never a panic.
            #[test]
            fn prop_command_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = Command::decode(&bytes);
            }

            #[test]
            fn prop_frame_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let _ = GeometryFrame::decode(&bytes);
            }

            #[test]
            fn prop_hello_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = HelloReply::decode(&bytes);
            }

            #[test]
            fn prop_stats_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
                let _ = FrameStats::decode(&bytes);
            }

            #[test]
            fn prop_delta_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let _ = DeltaFrame::decode(&bytes);
            }

            /// The slab codec must be byte-identical to the retired
            /// per-element path — encode and decode both directions.
            #[test]
            fn prop_points_slab_matches_per_element(raw in proptest::collection::vec((-1e6f32..1e6, -1e6f32..1e6, -1e6f32..1e6), 0..300)) {
                let pts: Vec<Vec3> = raw.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
                let mut slab = BytesMut::new();
                put_points(&mut slab, &pts);
                let mut per_element = BytesMut::new();
                reference_points::put_points(&mut per_element, &pts);
                prop_assert_eq!(&slab[..], &per_element[..]);
                // Bulk decoder reads the reference encoding…
                let mut r = WireReader::new(&per_element);
                let bulk = get_points(&mut r).unwrap();
                prop_assert_eq!(&bulk, &pts);
                prop_assert_eq!(r.remaining(), 0);
                // …and the reference decoder reads the slab encoding.
                let mut r = WireReader::new(&slab);
                let back = reference_points::get_points(&mut r).unwrap();
                prop_assert_eq!(&back, &pts);
                prop_assert_eq!(r.remaining(), 0);
            }

            /// Bit-flipping a valid frame must decode to Err or to a
            /// *valid* different frame — never panic.
            #[test]
            fn prop_frame_bitflip_safe(flip_at in 0usize..200, flip_bit in 0u8..8) {
                let frame = GeometryFrame {
                    timestep: 3,
                    time: 1.5,
                    revision: 9,
                    rakes: vec![RakeMsg {
                        id: 1,
                        a: Vec3::ZERO,
                        b: Vec3::ONE,
                        seed_count: 4,
                        tool: ToolKind::Streamline,
                        owner: 7,
                    }],
                    paths: vec![PathMsg {
                        rake_id: 1,
                        kind: PathKind::Streak,
                        points: vec![Vec3::X; 8],
                    }],
                    users: vec![],
                };
                let mut bytes = frame.encode().to_vec();
                let idx = flip_at % bytes.len();
                bytes[idx] ^= 1 << flip_bit;
                let _ = GeometryFrame::decode(&bytes);
            }
        }
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = GeometryFrame {
            timestep: 1,
            time: 0.0,
            revision: 1,
            rakes: vec![],
            paths: vec![PathMsg {
                rake_id: 1,
                kind: PathKind::Streamline,
                points: vec![Vec3::X; 10],
            }],
            users: vec![],
        };
        let bytes = frame.encode();
        assert!(GeometryFrame::decode(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn truncated_point_slab_rejected() {
        // A path whose length prefix claims more points than the slab
        // that follows must fail cleanly, not read out of bounds.
        let mut b = BytesMut::new();
        b.put_u32_le_(10); // claims 10 points = 120 bytes
        b.put_slice(&[0u8; 60]); // only 5 points present
        let mut r = WireReader::new(&b);
        assert!(matches!(get_points(&mut r), Err(DlibError::Protocol(_))));
    }

    #[test]
    fn oversized_point_slab_rejected() {
        // A count beyond the cap is rejected before any allocation.
        let mut b = BytesMut::new();
        b.put_u32_le_((MAX_POINTS_PER_PATH + 1) as u32);
        let mut r = WireReader::new(&b);
        let err = get_points(&mut r);
        assert!(matches!(err, Err(DlibError::Protocol(m)) if m.contains("absurd")));
    }

    #[test]
    fn encode_into_matches_encode_and_appends() {
        let frame = GeometryFrame {
            timestep: 4,
            time: 0.2,
            revision: 11,
            rakes: vec![],
            paths: vec![PathMsg {
                rake_id: 2,
                kind: PathKind::ParticlePath,
                points: vec![Vec3::X, Vec3::Y],
            }],
            users: vec![],
        };
        // Reusing a scratch buffer with prior garbage: encode_into must
        // append exactly the canonical encoding after it.
        let mut scratch = BytesMut::new();
        scratch.put_slice(b"junk");
        frame.encode_into(&mut scratch);
        assert_eq!(&scratch[4..], &frame.encode()[..]);
    }

    fn sample_delta() -> DeltaFrame {
        DeltaFrame {
            keyframe: false,
            timestep: 12,
            time: 0.6,
            revision: 40,
            baseline: 37,
            rakes: vec![
                RakeMsg {
                    id: 1,
                    a: Vec3::ZERO,
                    b: Vec3::ONE,
                    seed_count: 8,
                    tool: ToolKind::Streamline,
                    owner: 2,
                },
                RakeMsg {
                    id: 3,
                    a: Vec3::X,
                    b: Vec3::Y,
                    seed_count: 4,
                    tool: ToolKind::Streakline,
                    owner: 0,
                },
            ],
            chunks: vec![RakeChunkMsg {
                rake_id: 3,
                content_rev: 39,
                paths: vec![
                    PathMsg {
                        rake_id: 3,
                        kind: PathKind::Streak,
                        points: vec![Vec3::X, Vec3::Z],
                    },
                    PathMsg {
                        rake_id: 3,
                        kind: PathKind::Streak,
                        points: vec![],
                    },
                ],
            }],
            tombstones: vec![2],
            users: vec![UserMsg {
                id: 5,
                head: Pose::new(Vec3::new(0.0, 1.7, 2.0), Quat::IDENTITY),
            }],
        }
    }

    #[test]
    fn delta_request_roundtrip() {
        for (advance, baseline) in [(true, 0u64), (false, 41), (true, u64::MAX)] {
            let req = DeltaRequest { advance, baseline };
            assert_eq!(DeltaRequest::decode(&req.encode()).unwrap(), req);
        }
        // Trailing garbage rejected.
        let mut bytes = DeltaRequest {
            advance: true,
            baseline: 3,
        }
        .encode()
        .to_vec();
        bytes.push(0);
        assert!(DeltaRequest::decode(&bytes).is_err());
    }

    #[test]
    fn delta_frame_roundtrip() {
        let delta = sample_delta();
        assert_eq!(DeltaFrame::decode(&delta.encode()).unwrap(), delta);
        let key = DeltaFrame {
            keyframe: true,
            baseline: 0,
            tombstones: vec![],
            ..delta
        };
        assert_eq!(DeltaFrame::decode(&key.encode()).unwrap(), key);
    }

    #[test]
    fn delta_frame_rejects_garbage() {
        let delta = sample_delta();
        // Trailing bytes.
        let mut bytes = delta.encode().to_vec();
        bytes.push(0);
        assert!(DeltaFrame::decode(&bytes).is_err());
        // Truncation.
        let bytes = delta.encode();
        assert!(DeltaFrame::decode(&bytes[..bytes.len() - 3]).is_err());
        // Unknown flag bits.
        let mut bytes = delta.encode().to_vec();
        bytes[0] |= 0x80;
        assert!(DeltaFrame::decode(&bytes).is_err());
    }

    #[test]
    fn chunk_path_rake_mismatch_rejected() {
        let mut delta = sample_delta();
        delta.chunks[0].paths[0].rake_id = 99;
        assert!(DeltaFrame::decode(&delta.encode()).is_err());
    }

    /// The server's broadcast cache stores *encoded* chunks and splices
    /// them into replies — the splice must be indistinguishable from
    /// encoding the typed [`DeltaFrame`] directly.
    #[test]
    fn spliced_chunks_match_typed_encode() {
        let delta = sample_delta();
        // Pre-encode each chunk separately, as the broadcast cache does.
        let blobs: Vec<Bytes> = delta
            .chunks
            .iter()
            .map(|c| {
                let mut b = BytesMut::new();
                c.encode_into(&mut b);
                b.freeze()
            })
            .collect();
        // Assemble the reply by splicing the cached blobs.
        let mut spliced = BytesMut::new();
        splice_delta(
            &mut spliced,
            delta.keyframe,
            delta.timestep,
            delta.time,
            delta.revision,
            delta.baseline,
            &delta.rakes,
            &blobs,
            &delta.tombstones,
            &delta.users,
        );
        assert_eq!(&spliced[..], &delta.encode()[..]);
    }

    #[test]
    fn frame_stats_roundtrip() {
        let s = FrameStats {
            revision: 9,
            fetch_us: 120,
            integrate_us: 4_500,
            map_us: 310,
            encode_us: 95,
            geom_hits: 3,
            geom_misses: 1,
            cum_geom_hits: 40,
            cum_geom_misses: 12,
            cum_frame_hits: 7,
            cum_frames: 52,
            chunk_encode_us: 61,
            delta_encode_us: 8,
            cum_chunk_encodes: 19,
            cum_keyframes: 4,
            cum_delta_frames: 44,
            cum_bytes_sent: 1_234_567,
            live_sessions: 3,
            cum_reaped_sessions: 6,
            cum_shed_calls: 17,
            streak_sample_us: 210,
            streak_integrate_us: 340,
            streak_compact_us: 12,
            streak_inject_us: 5,
            streak_particles_per_s: 2_500_000,
            cum_io_wait_us: 54_400,
            cum_decode_us: 1_030,
            cum_prefetch_hits: 31,
            cum_prefetch_misses: 21,
            cum_store_retries: 5,
            cum_salvaged_chunks: 2,
            cum_zero_filled_chunks: 1,
            cum_quarantined_steps: 1,
            cum_substituted_fetches: 9,
        };
        assert_eq!(FrameStats::decode(&s.encode()).unwrap(), s);
        assert_eq!(s.total_us(), 5_025);
        assert!(s.store_degraded());
        assert!(!FrameStats::default().store_degraded());
        // Trailing garbage rejected.
        let mut bytes = s.encode().to_vec();
        bytes.push(0);
        assert!(FrameStats::decode(&bytes).is_err());
    }
}
