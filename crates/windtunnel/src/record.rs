//! Session recording and replay.
//!
//! §7 lists "development of greater user control over the virtual
//! environment" as further work; the most-requested control in
//! collaborative visualization is *repeatability* — record the command
//! stream of an exploration session and replay it later (against the same
//! dataset, a bigger one, or for a colleague). Because the entire
//! environment is driven by the serialized command stream (§4/§5.1),
//! recording commands-with-timestamps is a complete record of the
//! session.
//!
//! File format: magic `DVWR`, version, then one length-prefixed entry per
//! event: `[u32 micros-since-start] [u8 kind] [u32 len] [payload]` where
//! kind 0 = command (payload is `Command::encode`) and kind 1 = a clock
//! tick (a frame request with `advance = true`; payload empty).

use crate::proto::Command;
use dlib::wire::len_u32;
use dlib::{DlibError, Result};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::time::{Duration, Instant};

const MAGIC: &[u8; 4] = b"DVWR";
const VERSION: u32 = 1;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A command sent to the server.
    Command(Command),
    /// The driving client advanced the shared clock.
    Tick,
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Offset from session start.
    pub at: Duration,
    pub event: Event,
}

/// Records a session's command stream.
pub struct SessionRecorder {
    started: Instant,
    events: Vec<TimedEvent>,
}

impl Default for SessionRecorder {
    fn default() -> Self {
        SessionRecorder::new()
    }
}

impl SessionRecorder {
    pub fn new() -> SessionRecorder {
        SessionRecorder {
            started: Instant::now(),
            events: Vec::new(),
        }
    }

    /// Record a command at the current wall time.
    pub fn command(&mut self, cmd: &Command) {
        self.events.push(TimedEvent {
            at: self.started.elapsed(),
            event: Event::Command(cmd.clone()),
        });
    }

    /// Record a clock tick.
    pub fn tick(&mut self) {
        self.events.push(TimedEvent {
            at: self.started.elapsed(),
            event: Event::Tick,
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Write the recording to a file.
    pub fn save(&self, path: &Path) -> Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path).map_err(DlibError::Io)?);
        w.write_all(MAGIC).map_err(DlibError::Io)?;
        w.write_all(&VERSION.to_le_bytes()).map_err(DlibError::Io)?;
        w.write_all(&len_u32(self.events.len()).to_le_bytes())
            .map_err(DlibError::Io)?;
        for ev in &self.events {
            let micros = u32::try_from(ev.at.as_micros()).unwrap_or(u32::MAX);
            w.write_all(&micros.to_le_bytes()).map_err(DlibError::Io)?;
            match &ev.event {
                Event::Command(cmd) => {
                    let payload = cmd.encode();
                    w.write_all(&[0u8]).map_err(DlibError::Io)?;
                    w.write_all(&len_u32(payload.len()).to_le_bytes())
                        .map_err(DlibError::Io)?;
                    w.write_all(&payload).map_err(DlibError::Io)?;
                }
                Event::Tick => {
                    w.write_all(&[1u8]).map_err(DlibError::Io)?;
                    w.write_all(&0u32.to_le_bytes()).map_err(DlibError::Io)?;
                }
            }
        }
        w.flush().map_err(DlibError::Io)?;
        Ok(())
    }
}

/// Load a recording.
pub fn load(path: &Path) -> Result<Vec<TimedEvent>> {
    let mut r = BufReader::new(std::fs::File::open(path).map_err(DlibError::Io)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(DlibError::Io)?;
    if &magic != MAGIC {
        return Err(DlibError::Protocol("not a DVWR recording".into()));
    }
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u32buf).map_err(DlibError::Io)?;
    if u32::from_le_bytes(u32buf) != VERSION {
        return Err(DlibError::Protocol("unsupported recording version".into()));
    }
    r.read_exact(&mut u32buf).map_err(DlibError::Io)?;
    let count = u32::from_le_bytes(u32buf) as usize;
    if count > 10_000_000 {
        return Err(DlibError::Protocol("absurd event count".into()));
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        r.read_exact(&mut u32buf).map_err(DlibError::Io)?;
        let at = Duration::from_micros(u32::from_le_bytes(u32buf) as u64);
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind).map_err(DlibError::Io)?;
        r.read_exact(&mut u32buf).map_err(DlibError::Io)?;
        let len = u32::from_le_bytes(u32buf) as usize;
        if len > 1 << 20 {
            return Err(DlibError::Protocol("absurd event size".into()));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload).map_err(DlibError::Io)?;
        let event = match kind[0] {
            0 => Event::Command(Command::decode(&payload)?),
            1 => Event::Tick,
            k => return Err(DlibError::Protocol(format!("bad event kind {k}"))),
        };
        events.push(TimedEvent { at, event });
    }
    Ok(events)
}

/// Replay a recording into a connected client. `speed` scales the
/// original timing (0 = as fast as possible). Returns the number of
/// events replayed.
pub fn replay(
    client: &mut crate::client::WindtunnelClient,
    events: &[TimedEvent],
    speed: f32,
) -> Result<usize> {
    let start = Instant::now();
    let mut replayed = 0usize;
    for ev in events {
        if speed > 0.0 {
            let target = ev.at.div_f32(speed);
            let elapsed = start.elapsed();
            if target > elapsed {
                #[allow(clippy::disallowed_methods)]
                // playback pacing: sleeping to honor the recorded frame cadence is the feature
                std::thread::sleep(target - elapsed);
            }
        }
        match &ev.event {
            Event::Command(cmd) => client.send(cmd)?,
            Event::Tick => {
                client.frame(true)?;
            }
        }
        replayed += 1;
    }
    Ok(replayed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::TimeCommand;
    use tracer::ToolKind;
    use vecmath::Vec3;
    use vr::Gesture;

    fn sample_events() -> SessionRecorder {
        let mut rec = SessionRecorder::new();
        rec.command(&Command::AddRake {
            a: Vec3::new(1.0, 2.0, 3.0),
            b: Vec3::new(4.0, 5.0, 6.0),
            seed_count: 8,
            tool: ToolKind::Streakline,
        });
        rec.tick();
        rec.command(&Command::Hand {
            position: Vec3::ONE,
            gesture: Gesture::Fist,
        });
        rec.command(&Command::Time(TimeCommand::Play));
        rec.tick();
        rec
    }

    #[test]
    fn roundtrip_through_file() {
        let rec = sample_events();
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("session.dvwr");
        rec.save(&path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), rec.len());
        for (a, b) in loaded.iter().zip(rec.events()) {
            assert_eq!(a.event, b.event);
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let rec = sample_events();
        for w in rec.events().windows(2) {
            assert!(w[1].at >= w[0].at);
        }
    }

    #[test]
    fn bad_file_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("junk");
        std::fs::write(&path, b"NOTADVWRFILE").unwrap();
        assert!(load(&path).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let rec = sample_events();
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("trunc.dvwr");
        rec.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(load(&path).is_err());
    }

    #[test]
    fn replay_reproduces_environment() {
        use crate::server::{serve, ServerOptions};
        use flowfield::{
            dataset::VelocityCoords, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField,
        };
        use std::sync::Arc;
        use storage::MemoryStore;
        use vecmath::Aabb;

        let dims = Dims::new(16, 9, 9);
        let grid =
            CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(15.0, 8.0, 8.0)))
                .unwrap();
        let meta = DatasetMeta {
            name: "rec".into(),
            dims,
            timestep_count: 4,
            dt: 0.1,
            coords: VelocityCoords::Grid,
        };
        let fields = (0..4)
            .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X))
            .collect();
        let ds = Dataset::new(meta, grid.clone(), fields).unwrap();

        // Record a live session.
        let serve_once = || {
            serve(
                Arc::new(MemoryStore::from_dataset(ds.clone())),
                grid.clone(),
                ServerOptions::default(),
                "127.0.0.1:0",
            )
            .unwrap()
        };
        let h1 = serve_once();
        let mut live = crate::client::WindtunnelClient::connect(h1.addr()).unwrap();
        let mut rec = SessionRecorder::new();
        let cmds = vec![
            Command::AddRake {
                a: Vec3::new(2.0, 4.0, 4.0),
                b: Vec3::new(2.0, 6.0, 4.0),
                seed_count: 3,
                tool: ToolKind::Streamline,
            },
            Command::Time(TimeCommand::Play),
        ];
        for c in &cmds {
            live.send(c).unwrap();
            rec.command(c);
        }
        for _ in 0..3 {
            live.frame(true).unwrap();
            rec.tick();
        }
        let live_frame = live.frame(false).unwrap();
        drop(live);
        h1.shutdown();

        // Replay against a fresh server: same geometry.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("s.dvwr");
        rec.save(&path).unwrap();
        let events = load(&path).unwrap();

        let h2 = serve_once();
        let mut replayed = crate::client::WindtunnelClient::connect(h2.addr()).unwrap();
        let n = replay(&mut replayed, &events, 0.0).unwrap();
        assert_eq!(n, 5);
        let replay_frame = replayed.frame(false).unwrap();
        assert_eq!(replay_frame.timestep, live_frame.timestep);
        assert_eq!(replay_frame.paths, live_frame.paths);
        assert_eq!(replay_frame.rakes.len(), live_frame.rakes.len());
        h2.shutdown();
    }
}
