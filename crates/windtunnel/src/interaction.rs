//! Server-side hand interaction: gesture + position → rake manipulation.
//!
//! §2.1: "Rakes may be manipulated with the glove through finger gestures
//! and hand motion. These rakes are grabbed at one of three points:
//! center for rigid translation of the rake, or at either end for
//! movement of that end of the rake."
//!
//! The state machine per user: a **fist** near a handle grabs it (subject
//! to the first-come-first-served lock in [`EnvironmentState`]); while
//! the fist is held, hand motion drags the handle; opening the hand
//! releases. Hand positions arrive in *physical* space and are converted
//! to grid-coordinate deltas through the local Jacobian, since rakes live
//! in grid coordinates.

use crate::env::{EnvironmentState, RakeId, UserId};
use flowfield::CurvilinearGrid;
use std::collections::HashMap;
use tracer::Handle;
use vecmath::Vec3;
use vr::Gesture;

/// Tunables of the grab interaction.
#[derive(Debug, Clone, Copy)]
pub struct InteractionConfig {
    /// Grab radius around a handle, in physical units.
    pub grab_radius: f32,
}

impl Default for InteractionConfig {
    fn default() -> Self {
        InteractionConfig { grab_radius: 0.5 }
    }
}

/// Per-user hand-tracking state.
#[derive(Debug, Clone, Copy, Default)]
pub struct HandState {
    /// Last physical hand position (for drag deltas).
    last_position: Option<Vec3>,
    /// Rake currently held by this hand.
    holding: Option<RakeId>,
}

impl HandState {
    pub fn holding(&self) -> Option<RakeId> {
        self.holding
    }
}

/// All users' hand states.
pub type HandStates = HashMap<UserId, HandState>;

/// Physical position of a rake handle (grid→physical lookup).
fn handle_physical(grid: &CurvilinearGrid, rake: &tracer::Rake, handle: Handle) -> Option<Vec3> {
    grid.to_physical(rake.handle_position(handle))
}

/// Find the nearest grabbable handle within radius across all rakes.
fn hit_test(
    env: &EnvironmentState,
    grid: &CurvilinearGrid,
    position: Vec3,
    radius: f32,
) -> Option<(RakeId, Handle)> {
    let mut best: Option<(f32, RakeId, Handle)> = None;
    for (id, entry) in env.rakes() {
        for handle in [Handle::EndA, Handle::EndB, Handle::Center] {
            if let Some(hp) = handle_physical(grid, &entry.rake, handle) {
                let d = hp.distance(position);
                if d <= radius && best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, id, handle));
                }
            }
        }
    }
    best.map(|(_, id, h)| (id, h))
}

/// Process one hand sample for `user`. Returns the rake the user holds
/// after the update (if any). Grab attempts on locked rakes fail silently
/// — the second user simply doesn't get the rake, exactly the lockout
/// behaviour §5.1 describes.
pub fn process_hand(
    env: &mut EnvironmentState,
    grid: &CurvilinearGrid,
    hands: &mut HandStates,
    user: UserId,
    position: Vec3,
    gesture: Gesture,
    cfg: &InteractionConfig,
) -> Option<RakeId> {
    let state = hands.entry(user).or_default();
    match (gesture, state.holding) {
        (Gesture::Fist, None) => {
            if let Some((id, handle)) = hit_test(env, grid, position, cfg.grab_radius) {
                if env.grab(user, id, handle).is_ok() {
                    state.holding = Some(id);
                }
            }
        }
        (Gesture::Fist, Some(id)) => {
            if let Some(last) = state.last_position {
                let delta_phys = position - last;
                if delta_phys.length_squared() > 0.0 {
                    // Convert the physical delta to a grid delta at the
                    // held handle.
                    if let Some(entry) = env.rake(id) {
                        let handle = entry.grab.map(|(_, h)| h).unwrap_or(Handle::Center);
                        let gc = entry.rake.handle_position(handle);
                        if let Some(delta_grid) = grid.physical_velocity_to_grid(gc, delta_phys) {
                            let _ = env.drag(user, id, delta_grid);
                        }
                    }
                }
            }
        }
        (_, Some(id)) => {
            // Any non-fist gesture releases.
            let _ = env.release(user, id);
            state.holding = None;
        }
        _ => {}
    }
    state.last_position = Some(position);
    state.holding
}

/// Forget a disconnected user's hand state (their env locks are released
/// by [`EnvironmentState::disconnect_user`]).
pub fn forget_user(hands: &mut HandStates, user: UserId) {
    hands.remove(&user);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::Dims;
    use tracer::{Rake, ToolKind};
    use vecmath::Aabb;

    /// Unit-spacing Cartesian grid: physical == grid coordinates, which
    /// makes the assertions transparent.
    fn unit_grid() -> CurvilinearGrid {
        CurvilinearGrid::cartesian(Dims::new(9, 9, 9), Aabb::new(Vec3::ZERO, Vec3::splat(8.0)))
            .unwrap()
    }

    fn env_with_rake() -> (EnvironmentState, RakeId) {
        let mut env = EnvironmentState::new(10);
        let id = env.add_rake(Rake::new(
            Vec3::new(2.0, 4.0, 4.0),
            Vec3::new(6.0, 4.0, 4.0),
            5,
            ToolKind::Streamline,
        ));
        (env, id)
    }

    #[test]
    fn fist_near_end_grabs_it() {
        let grid = unit_grid();
        let (mut env, id) = env_with_rake();
        let mut hands = HandStates::new();
        let cfg = InteractionConfig::default();
        let held = process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::new(2.1, 4.0, 4.0),
            Gesture::Fist,
            &cfg,
        );
        assert_eq!(held, Some(id));
        assert_eq!(env.rake(id).unwrap().grab, Some((1, Handle::EndA)));
    }

    #[test]
    fn fist_far_away_grabs_nothing() {
        let grid = unit_grid();
        let (mut env, _) = env_with_rake();
        let mut hands = HandStates::new();
        let held = process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::new(0.0, 0.0, 0.0),
            Gesture::Fist,
            &InteractionConfig::default(),
        );
        assert_eq!(held, None);
    }

    #[test]
    fn drag_moves_the_rake() {
        let grid = unit_grid();
        let (mut env, id) = env_with_rake();
        let mut hands = HandStates::new();
        let cfg = InteractionConfig::default();
        // Grab the center.
        process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::new(4.0, 4.0, 4.0),
            Gesture::Fist,
            &cfg,
        );
        assert_eq!(env.rake(id).unwrap().grab, Some((1, Handle::Center)));
        // Move the fist up by 1 (physical) — unit grid means grid delta 1.
        process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::new(4.0, 5.0, 4.0),
            Gesture::Fist,
            &cfg,
        );
        let r = env.rake(id).unwrap().rake;
        assert!(r.center().distance(Vec3::new(4.0, 5.0, 4.0)) < 1e-4);
        // Rigid: both ends moved.
        assert!(r.a.distance(Vec3::new(2.0, 5.0, 4.0)) < 1e-4);
    }

    #[test]
    fn open_hand_releases() {
        let grid = unit_grid();
        let (mut env, id) = env_with_rake();
        let mut hands = HandStates::new();
        let cfg = InteractionConfig::default();
        process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::new(4.0, 4.0, 4.0),
            Gesture::Fist,
            &cfg,
        );
        let held = process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::new(4.0, 4.0, 4.0),
            Gesture::Open,
            &cfg,
        );
        assert_eq!(held, None);
        assert!(env.rake(id).unwrap().grab.is_none());
    }

    #[test]
    fn second_user_locked_out_silently() {
        let grid = unit_grid();
        let (mut env, id) = env_with_rake();
        let mut hands = HandStates::new();
        let cfg = InteractionConfig::default();
        process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::new(4.0, 4.0, 4.0),
            Gesture::Fist,
            &cfg,
        );
        // User 2 fists the same handle: no grab, no panic.
        let held = process_hand(
            &mut env,
            &grid,
            &mut hands,
            2,
            Vec3::new(4.0, 4.0, 4.0),
            Gesture::Fist,
            &cfg,
        );
        assert_eq!(held, None);
        assert_eq!(env.rake(id).unwrap().grab, Some((1, Handle::Center)));
        // User 2's drags do nothing.
        process_hand(
            &mut env,
            &grid,
            &mut hands,
            2,
            Vec3::new(4.0, 6.0, 4.0),
            Gesture::Fist,
            &cfg,
        );
        assert!(
            env.rake(id)
                .unwrap()
                .rake
                .center()
                .distance(Vec3::new(4.0, 4.0, 4.0))
                < 1e-4
        );
    }

    #[test]
    fn end_drag_reorients_only_that_end() {
        let grid = unit_grid();
        let (mut env, id) = env_with_rake();
        let mut hands = HandStates::new();
        let cfg = InteractionConfig::default();
        process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::new(6.0, 4.0, 4.0),
            Gesture::Fist,
            &cfg,
        );
        assert_eq!(env.rake(id).unwrap().grab, Some((1, Handle::EndB)));
        process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::new(6.0, 6.0, 4.0),
            Gesture::Fist,
            &cfg,
        );
        let r = env.rake(id).unwrap().rake;
        assert!(r.a.distance(Vec3::new(2.0, 4.0, 4.0)) < 1e-4);
        assert!(r.b.distance(Vec3::new(6.0, 6.0, 4.0)) < 1e-4);
    }

    #[test]
    fn drag_without_prior_position_is_safe() {
        // First-ever sample is already a fist on a handle: grab happens,
        // no drag (no last position on the *grab* frame — dragging starts
        // from the next sample).
        let grid = unit_grid();
        let (mut env, id) = env_with_rake();
        let mut hands = HandStates::new();
        let cfg = InteractionConfig::default();
        process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::new(4.0, 4.0, 4.0),
            Gesture::Fist,
            &cfg,
        );
        let before = env.rake(id).unwrap().rake;
        assert!(before.center().distance(Vec3::new(4.0, 4.0, 4.0)) < 1e-4);
    }

    #[test]
    fn forget_user_clears_state() {
        let grid = unit_grid();
        let (mut env, _) = env_with_rake();
        let mut hands = HandStates::new();
        let cfg = InteractionConfig::default();
        process_hand(
            &mut env,
            &grid,
            &mut hands,
            1,
            Vec3::splat(4.0),
            Gesture::Open,
            &cfg,
        );
        assert!(hands.contains_key(&1));
        forget_user(&mut hands, 1);
        assert!(!hands.contains_key(&1));
    }
}
