//! Playback control over the timestep sequence.
//!
//! §2: "The time evolution of the flow can be sped up, slowed down, run
//! backwards, or stopped completely for detailed examination." Time is a
//! fractional timestep index advanced by a signed rate each display
//! frame, with a choice of end-of-sequence behaviour.

/// What happens when playback reaches either end of the sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaybackMode {
    /// Wrap around (the tapered-cylinder dataset is periodic shedding, so
    /// looping is the natural default).
    #[default]
    Loop,
    /// Stop at the end.
    Clamp,
    /// Reverse direction at the ends.
    Bounce,
}

/// Fractional-timestep playback state.
#[derive(Debug, Clone, Copy)]
pub struct TimeController {
    /// Number of timesteps in the dataset (≥ 1).
    len: usize,
    /// Current fractional timestep in [0, len-1].
    current: f32,
    /// Timesteps advanced per frame (signed; 1.0 = dataset rate).
    rate: f32,
    playing: bool,
    mode: PlaybackMode,
}

impl TimeController {
    pub fn new(len: usize) -> TimeController {
        TimeController {
            len: len.max(1),
            current: 0.0,
            rate: 1.0,
            playing: false,
            mode: PlaybackMode::Loop,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        false // len is clamped ≥ 1
    }

    /// Current fractional time.
    pub fn time(&self) -> f32 {
        self.current
    }

    /// Current integer timestep (nearest stored field).
    pub fn timestep(&self) -> usize {
        (self.current.round() as usize).min(self.len - 1)
    }

    pub fn rate(&self) -> f32 {
        self.rate
    }

    pub fn is_playing(&self) -> bool {
        self.playing
    }

    pub fn mode(&self) -> PlaybackMode {
        self.mode
    }

    pub fn set_mode(&mut self, mode: PlaybackMode) {
        self.mode = mode;
    }

    pub fn play(&mut self) {
        self.playing = true;
    }

    pub fn pause(&mut self) {
        self.playing = false;
    }

    /// Flip the sign of the rate — "run backwards".
    pub fn reverse(&mut self) {
        self.rate = -self.rate;
    }

    /// Set the playback rate (timesteps per frame); sign sets direction.
    pub fn set_rate(&mut self, rate: f32) {
        if rate.is_finite() {
            self.rate = rate;
        }
    }

    /// Jump to a specific timestep.
    pub fn jump(&mut self, timestep: usize) {
        self.current = timestep.min(self.len - 1) as f32;
    }

    /// Single-step while paused (signed).
    pub fn step(&mut self, delta: i32) {
        self.current = self.wrap(self.current + delta as f32);
    }

    fn wrap(&self, t: f32) -> f32 {
        let max = (self.len - 1) as f32;
        if max == 0.0 {
            return 0.0;
        }
        match self.mode {
            PlaybackMode::Clamp => t.clamp(0.0, max),
            PlaybackMode::Loop => t.rem_euclid(max),
            PlaybackMode::Bounce => {
                // Reflect into [0, max] (direction handled in advance()).
                let period = 2.0 * max;
                let m = t.rem_euclid(period);
                if m <= max {
                    m
                } else {
                    period - m
                }
            }
        }
    }

    /// Advance one display frame; returns the new integer timestep.
    pub fn advance(&mut self) -> usize {
        if self.playing {
            let max = (self.len - 1) as f32;
            let next = self.current + self.rate;
            match self.mode {
                PlaybackMode::Clamp => {
                    self.current = next.clamp(0.0, max);
                    if next <= 0.0 || next >= max {
                        self.playing = false;
                    }
                }
                PlaybackMode::Loop => {
                    self.current = self.wrap(next);
                }
                PlaybackMode::Bounce => {
                    if next > max || next < 0.0 {
                        self.rate = -self.rate;
                        self.current = self.wrap(next);
                    } else {
                        self.current = next;
                    }
                }
            }
        }
        self.timestep()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paused_time_is_frozen() {
        let mut t = TimeController::new(100);
        assert_eq!(t.advance(), 0);
        assert_eq!(t.advance(), 0);
        assert!(!t.is_playing());
    }

    #[test]
    fn playing_advances_at_rate() {
        let mut t = TimeController::new(100);
        t.play();
        t.set_rate(2.0);
        assert_eq!(t.advance(), 2);
        assert_eq!(t.advance(), 4);
    }

    #[test]
    fn fractional_rates_slow_playback() {
        let mut t = TimeController::new(100);
        t.play();
        t.set_rate(0.25);
        t.advance();
        t.advance();
        assert!((t.time() - 0.5).abs() < 1e-6);
        assert_eq!(t.timestep(), 1); // rounds to nearest
    }

    #[test]
    fn reverse_runs_backwards() {
        let mut t = TimeController::new(100);
        t.jump(10);
        t.play();
        t.reverse();
        assert_eq!(t.advance(), 9);
        assert_eq!(t.advance(), 8);
    }

    #[test]
    fn loop_wraps_both_ends() {
        let mut t = TimeController::new(10);
        t.play();
        t.set_rate(4.0);
        t.jump(8);
        // 8 → 12 wraps to 3 (period 9).
        assert_eq!(t.advance(), 3);
        t.set_rate(-5.0);
        // 3 → -2 wraps to 7.
        assert_eq!(t.advance(), 7);
    }

    #[test]
    fn clamp_stops_at_end() {
        let mut t = TimeController::new(5);
        t.set_mode(PlaybackMode::Clamp);
        t.play();
        t.set_rate(3.0);
        assert_eq!(t.advance(), 3);
        assert_eq!(t.advance(), 4);
        assert!(!t.is_playing());
        assert_eq!(t.advance(), 4);
    }

    #[test]
    fn bounce_reflects() {
        let mut t = TimeController::new(5); // indices 0..4
        t.set_mode(PlaybackMode::Bounce);
        t.play();
        t.set_rate(3.0);
        t.jump(3);
        // 3 → 6 reflects to 2, rate flips.
        assert_eq!(t.advance(), 2);
        assert!(t.rate() < 0.0);
        // 2 → -1 reflects to 1, rate flips again.
        assert_eq!(t.advance(), 1);
        assert!(t.rate() > 0.0);
    }

    #[test]
    fn clamp_stops_at_start_when_reversed() {
        let mut t = TimeController::new(8);
        t.set_mode(PlaybackMode::Clamp);
        t.jump(2);
        t.play();
        t.set_rate(-3.0);
        assert_eq!(t.advance(), 0);
        assert!(!t.is_playing(), "hitting t=0 backwards must pause");
        assert_eq!(t.advance(), 0);
        // Playback can resume forward from the clamped end.
        t.set_rate(1.0);
        t.play();
        assert_eq!(t.advance(), 1);
    }

    #[test]
    fn clamp_pauses_on_exact_landing() {
        let mut t = TimeController::new(5);
        t.set_mode(PlaybackMode::Clamp);
        t.jump(2);
        t.play();
        t.set_rate(2.0);
        // 2 → 4 lands exactly on the last index: end reached, pause.
        assert_eq!(t.advance(), 4);
        assert!(!t.is_playing());
    }

    #[test]
    fn bounce_reflects_off_start_with_negative_rate() {
        let mut t = TimeController::new(6);
        t.set_mode(PlaybackMode::Bounce);
        t.jump(1);
        t.play();
        t.set_rate(-2.0);
        // 1 → -1 reflects to 1, rate flips forward.
        assert_eq!(t.advance(), 1);
        assert!(t.rate() > 0.0);
        assert_eq!(t.advance(), 3);
    }

    #[test]
    fn bounce_reflection_preserves_fraction() {
        let mut t = TimeController::new(5); // max index 4
        t.set_mode(PlaybackMode::Bounce);
        t.jump(3);
        t.play();
        t.set_rate(1.5);
        // 3 → 4.5 reflects to 3.5: the overshoot past the end comes back
        // as distance from the end, fraction intact.
        t.advance();
        assert!((t.time() - 3.5).abs() < 1e-6, "time {}", t.time());
        assert!(t.rate() < 0.0);
    }

    #[test]
    fn negative_fractional_rate_accumulates() {
        let mut t = TimeController::new(10);
        t.jump(2);
        t.play();
        t.set_rate(-0.25);
        for _ in 0..4 {
            t.advance();
        }
        assert!((t.time() - 1.0).abs() < 1e-6);
        assert_eq!(t.timestep(), 1);
    }

    #[test]
    fn fractional_accumulation_survives_loop_wrap() {
        let mut t = TimeController::new(10); // period max = 9
        t.jump(8);
        t.play();
        t.set_rate(0.4);
        t.advance(); // 8.4
        t.advance(); // 8.8
        t.advance(); // 9.2 wraps to 0.2
        assert!((t.time() - 0.2).abs() < 1e-5, "time {}", t.time());
        t.advance();
        assert!((t.time() - 0.6).abs() < 1e-5);
    }

    #[test]
    fn fractional_accumulation_survives_backward_wrap() {
        let mut t = TimeController::new(10);
        t.jump(1);
        t.play();
        t.set_rate(-0.75);
        t.advance(); // 0.25
        t.advance(); // -0.5 wraps to 8.5
        assert!((t.time() - 8.5).abs() < 1e-5, "time {}", t.time());
        assert_eq!(t.timestep(), 9); // half-way rounds up to the nearer end
    }

    #[test]
    fn jump_clamps_to_range() {
        let mut t = TimeController::new(10);
        t.jump(999);
        assert_eq!(t.timestep(), 9);
    }

    #[test]
    fn step_while_paused() {
        let mut t = TimeController::new(10);
        t.step(1);
        t.step(1);
        assert_eq!(t.timestep(), 2);
        t.step(-3);
        // Loop mode wraps negative to 8 (period 9).
        assert_eq!(t.timestep(), 8);
    }

    #[test]
    fn single_timestep_dataset() {
        let mut t = TimeController::new(1);
        t.play();
        assert_eq!(t.advance(), 0);
        t.reverse();
        assert_eq!(t.advance(), 0);
    }

    #[test]
    fn non_finite_rate_ignored() {
        let mut t = TimeController::new(10);
        t.set_rate(f32::NAN);
        assert_eq!(t.rate(), 1.0);
    }
}
