//! A workstation client as a standalone process.
//!
//! ```text
//! dvw-client <host:port> [--frames N] [--drive] [--rake X1,Y1,Z1 X2,Y2,Z2 SEEDS TOOL]
//!            [--play] [--rate R] [--out PREFIX] [--size WxH] [--stereo|--mono]
//! ```
//!
//! Connects to a `dvw-server`, optionally creates a rake and starts
//! playback, fetches `--frames` geometry frames (driving the shared clock
//! when `--drive` is set), and writes rendered images to
//! `PREFIX-NNNN.ppm` — §6's "conventional screen" client, scriptable.

use std::net::ToSocketAddrs;
use std::process::exit;
use tracer::ToolKind;
use vecmath::{Mat4, Pose, Vec3};
use vr::ppm::write_ppm;
use vr::stereo::StereoCamera;
use vr::Framebuffer;
use windtunnel::client::Palette;
use windtunnel::{Command, TimeCommand, WindtunnelClient};

fn usage() -> ! {
    eprintln!(
        "usage: dvw-client <host:port> [--frames N] [--drive] \
         [--rake X1,Y1,Z1 X2,Y2,Z2 SEEDS streamline|pathline|streakline] \
         [--play] [--rate R] [--out PREFIX] [--size WxH] [--stereo|--mono]"
    );
    exit(2)
}

fn parse_vec3(s: &str) -> Option<Vec3> {
    let mut it = s.split(',').map(|p| p.trim().parse::<f32>().ok());
    Some(Vec3::new(it.next()??, it.next()??, it.next()??))
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(addr_str) = argv.next() else { usage() };
    let mut frames = 10usize;
    let mut drive = false;
    let mut rake: Option<(Vec3, Vec3, u32, ToolKind)> = None;
    let mut play = false;
    let mut rate = 1.0f32;
    let mut out: Option<String> = None;
    let mut size = (640usize, 480usize);
    let mut stereo = true;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--frames" => {
                frames = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--drive" => drive = true,
            "--play" => play = true,
            "--rate" => {
                rate = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = Some(argv.next().unwrap_or_else(|| usage())),
            "--stereo" => stereo = true,
            "--mono" => stereo = false,
            "--size" => {
                let s = argv.next().unwrap_or_else(|| usage());
                let mut it = s.split('x');
                size = (
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--rake" => {
                let a = argv
                    .next()
                    .and_then(|s| parse_vec3(&s))
                    .unwrap_or_else(|| usage());
                let b = argv
                    .next()
                    .and_then(|s| parse_vec3(&s))
                    .unwrap_or_else(|| usage());
                let seeds: u32 = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                let tool = match argv.next().unwrap_or_else(|| usage()).as_str() {
                    "streamline" => ToolKind::Streamline,
                    "pathline" => ToolKind::ParticlePath,
                    "streakline" => ToolKind::Streakline,
                    _ => usage(),
                };
                rake = Some((a, b, seeds, tool));
            }
            _ => usage(),
        }
    }

    let addr = match addr_str.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => {
            eprintln!("cannot resolve {addr_str}");
            exit(1);
        }
    };
    let mut client = match WindtunnelClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            exit(1);
        }
    };
    let hello = client.hello().clone();
    println!(
        "connected to '{}' ({} x {} timesteps, dt {}) as user {}",
        hello.dataset_name, hello.dims, hello.timestep_count, hello.dt, hello.user_id
    );

    if let Some((a, b, seeds, tool)) = rake {
        if let Err(e) = client.send(&Command::AddRake {
            a,
            b,
            seed_count: seeds,
            tool,
        }) {
            eprintln!("rake rejected: {e}");
            exit(1);
        }
    }
    if play {
        client.send(&Command::Time(TimeCommand::SetRate(rate))).ok();
        client.send(&Command::Time(TimeCommand::Play)).ok();
    }

    // Frame the scene from the dataset bounds.
    let bounds = hello.bounds();
    let center = bounds.center();
    let dist = bounds.diagonal().max(1.0);
    let eye = center + Vec3::new(-0.3 * dist, 0.5 * dist, 0.9 * dist);
    let mut cam = StereoCamera::new(Pose::from_mat4(
        &Mat4::look_at(eye, center, Vec3::Y).inverse_rigid(),
    ));
    cam.aspect = size.0 as f32 / size.1 as f32;
    cam.fovy = 0.9;

    for n in 0..frames {
        match client.frame(drive) {
            Ok(frame) => {
                println!(
                    "frame {n}: timestep {} ({} paths, {} particles, {} users)",
                    frame.timestep,
                    frame.paths.len(),
                    frame.particle_count(),
                    frame.users.len()
                );
                if let Some(prefix) = &out {
                    let mut fb = Framebuffer::new(size.0, size.1);
                    if stereo {
                        WindtunnelClient::render_stereo(&frame, &mut fb, &cam, &Palette::default());
                    } else {
                        let mvp = cam.projection() * cam.head.view_matrix();
                        WindtunnelClient::render_mono(&frame, &mut fb, &mvp, &Palette::default());
                    }
                    let path = format!("{prefix}-{n:04}.ppm");
                    if let Err(e) = write_ppm(std::path::Path::new(&path), &fb) {
                        eprintln!("cannot write {path}: {e}");
                    }
                }
            }
            Err(e) => {
                eprintln!("frame {n} failed: {e}");
                exit(1);
            }
        }
    }
    println!("done ({frames} frames)");
}
