//! The remote system as a standalone process.
//!
//! ```text
//! dvw-server <dataset-dir> [--addr HOST:PORT] [--ogrid] [--cache N]
//!            [--budget-ms N] [--readahead N] [--keyframe-interval N]
//!            [--heartbeat-ms N] [--queue-cap N]
//! ```
//!
//! Serves a dataset directory (written by `dvw-gen` or
//! `flowfield::format::write_dataset`) to any number of `dvw-client`s —
//! the Convex side of figure 8.

use std::process::exit;
use std::sync::Arc;
use storage::{CachedStore, DiskStore, ReadAhead};
use windtunnel::{serve, ServerOptions};

const USAGE: &str = "usage: dvw-server <dataset-dir> [--addr HOST:PORT] [--ogrid] [--cache N] \
     [--budget-ms N] [--readahead N] [--keyframe-interval N] [--heartbeat-ms N] [--queue-cap N]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(2)
}

/// Take `flag`'s value argument, saying exactly what went wrong (missing
/// vs unparsable) before the usage line.
fn flag_value<T: std::str::FromStr>(
    argv: &mut impl Iterator<Item = String>,
    flag: &str,
    expects: &str,
) -> T {
    let Some(raw) = argv.next() else {
        eprintln!("dvw-server: {flag} expects {expects}, but no value was given");
        usage();
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("dvw-server: {flag} expects {expects}, got '{raw}'");
            usage();
        }
    }
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(dir) = argv.next() else {
        eprintln!("dvw-server: missing <dataset-dir>");
        usage();
    };
    if dir.starts_with("--") {
        eprintln!("dvw-server: the first argument must be <dataset-dir>, got flag '{dir}'");
        usage();
    }
    let mut addr = "127.0.0.1:5917".to_string();
    let mut opts = ServerOptions::default();
    let mut cache = 16usize;
    let mut readahead = 0usize;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--addr" => addr = flag_value(&mut argv, "--addr", "HOST:PORT"),
            "--ogrid" => opts.periodic_i = true,
            "--cache" => cache = flag_value(&mut argv, "--cache", "a timestep count"),
            "--readahead" => readahead = flag_value(&mut argv, "--readahead", "a prefetch depth"),
            "--keyframe-interval" => {
                opts.keyframe_interval = flag_value(
                    &mut argv,
                    "--keyframe-interval",
                    "a frame count (0 = never)",
                );
            }
            "--budget-ms" => {
                let ms: u64 = flag_value(&mut argv, "--budget-ms", "milliseconds");
                opts.frame_budget = Some(std::time::Duration::from_millis(ms));
            }
            "--heartbeat-ms" => {
                let ms: u64 =
                    flag_value(&mut argv, "--heartbeat-ms", "milliseconds (0 = no reaping)");
                opts.heartbeat_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--queue-cap" => {
                opts.queue_capacity =
                    flag_value(&mut argv, "--queue-cap", "a call queue depth (0 = default)");
            }
            _ => {
                eprintln!("dvw-server: unknown flag '{flag}'");
                usage();
            }
        }
    }

    let disk = match DiskStore::open(std::path::Path::new(&dir)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot open dataset {dir}: {e}");
            exit(1);
        }
    };
    let grid = disk.grid().clone();
    let meta = storage::TimestepStore::meta(&disk).clone();
    // Layering: LRU window over the disk, optional direction-predicting
    // read-ahead over that (figure 8's prefetch, always on the playback
    // path).
    let cached = Arc::new(CachedStore::new(disk, cache));
    let store: Arc<dyn storage::TimestepStore> = if readahead > 0 {
        Arc::new(ReadAhead::new(cached, readahead))
    } else {
        cached
    };
    match serve(store, grid, opts, &addr) {
        Ok(handle) => {
            println!(
                "dvw-server: serving '{}' ({} x {} timesteps) on {}",
                meta.name,
                meta.dims,
                meta.timestep_count,
                handle.addr()
            );
            println!("press Ctrl-C to stop");
            // Park forever; the dlib threads do the work.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("cannot serve on {addr}: {e}");
            exit(1);
        }
    }
}
