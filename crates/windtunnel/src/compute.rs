//! Per-frame visualization computation on the remote system.
//!
//! §5.2: "The remote system updates the virtual environment including if
//! necessary loading the data for the current timestep, computes the
//! current visualizations, and transfers the environment state back to
//! the workstations." This module is the "computes the current
//! visualizations" box of figure 8: for every rake, run its tool over the
//! current timestep (streamlines), the timestep window (particle paths),
//! or the persistent particle system (streaklines), then convert all
//! geometry to physical space for the wire.

use crate::env::{EnvironmentState, RakeId};
use crate::proto::{GeometryFrame, PathKind, PathMsg, RakeMsg, UserMsg};
use flowfield::{BlendedPairSoA, CurvilinearGrid, FieldError, VectorField, VectorFieldSoA};
use rayon::IntoParallelIterator;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use storage::TimestepStore;
use tracer::{
    trace_batch_parallel, AdvanceStats, Domain, Integrator, Polyline, Streakline, StreaklineConfig,
    ToolKind, TraceConfig,
};
use vecmath::Vec3;

/// Compute-side configuration.
#[derive(Debug, Clone, Copy)]
pub struct ComputeConfig {
    /// Streamline tracing parameters.
    pub trace: TraceConfig,
    /// Streakline particle-system parameters.
    pub streak: StreaklineConfig,
    /// Maximum timesteps a particle path may span — bounded by the
    /// resident window (§5.1's particle-path length limit).
    pub pathline_window: usize,
}

impl Default for ComputeConfig {
    fn default() -> Self {
        ComputeConfig {
            trace: TraceConfig::default(),
            streak: StreaklineConfig::default(),
            pathline_window: 50,
        }
    }
}

/// Stateful per-rake engines (streaklines persist across frames).
#[derive(Default)]
pub struct ToolEngines {
    streaks: HashMap<RakeId, Streakline>,
    /// Cumulative count of streak-advance fetches served by a healthy
    /// *neighbouring* timestep because the requested one could not be
    /// read (quarantined or erroring store). Folded into the server's
    /// degraded-playback stats.
    substituted: u64,
    /// Bumped whenever the persistent particle systems mutate (advance
    /// or clear), so cached streak geometry invalidates precisely — a
    /// streak rake's smoke changes per clock tick even when the rake
    /// itself hasn't moved.
    epoch: u64,
    /// SoA conversions of store timesteps, keyed by timestep index. Only
    /// the pair bracketing the current playback time is retained, so at
    /// most two timesteps are resident in SoA form; during steady
    /// playback each conversion is paid once and reused every tick.
    soa_cache: HashMap<usize, Arc<VectorFieldSoA>>,
    /// The node-interleaved blend pair for the bracketing timesteps.
    /// Interleaving copies the whole grid, so it is rebuilt only when
    /// the bracket moves; between timestep crossings a tick just resets
    /// the blend factor, keeping the per-tick path allocation-free.
    pair_cache: Option<((usize, usize), BlendedPairSoA)>,
}

impl ToolEngines {
    pub fn new() -> ToolEngines {
        ToolEngines::default()
    }

    /// Drop engines whose rakes no longer exist or changed tool.
    fn prune(&mut self, env: &EnvironmentState) {
        self.streaks.retain(|id, _| {
            env.rake(*id)
                .map(|e| e.rake.tool == ToolKind::Streakline)
                .unwrap_or(false)
        });
    }

    /// The SoA view of one stored timestep, fetched on first use. The
    /// store's `fetch_soa` fast path lets v2 disk backends decode
    /// straight into SoA planes instead of converting an AoS copy.
    fn soa_for(
        &mut self,
        store: &dyn TimestepStore,
        ts: usize,
    ) -> Result<Arc<VectorFieldSoA>, FieldError> {
        if let Some(soa) = self.soa_cache.get(&ts) {
            return Ok(soa.clone());
        }
        let soa = store.fetch_soa(ts)?;
        self.soa_cache.insert(ts, soa.clone());
        Ok(soa)
    }

    /// [`ToolEngines::soa_for`] with nearest-healthy substitution: when
    /// `ts` cannot be served, spiral outward through the dataset and use
    /// the closest timestep that loads. Returns the field and the index
    /// actually served; `None` when nothing in the dataset loads.
    fn soa_near(
        &mut self,
        store: &dyn TimestepStore,
        ts: usize,
        count: usize,
    ) -> Option<(Arc<VectorFieldSoA>, usize)> {
        for cand in substitution_candidates(ts, count) {
            if let Ok(soa) = self.soa_for(store, cand) {
                if cand != ts {
                    self.substituted += 1;
                }
                return Some((soa, cand));
            }
        }
        None
    }

    /// Advance all streak systems one step — called exactly once per
    /// time advance, not per client frame request.
    ///
    /// The smoke is advected through the field at the *fractional*
    /// playback time: the two bracketing timesteps are blended at the
    /// interpolation factor, so mid-interpolation ticks no longer sample
    /// a single rounded timestep (the fidelity gap the scalar path had).
    /// Advancing runs the batched SoA path; returns the per-stage
    /// timings summed across all streak rakes.
    pub fn advance_streaks(
        &mut self,
        env: &EnvironmentState,
        store: &dyn TimestepStore,
        domain: &Domain,
        cfg: &StreaklineConfig,
    ) -> Result<AdvanceStats, FieldError> {
        self.prune(env);
        self.epoch += 1;
        let mut total = AdvanceStats::default();
        let count = store.timestep_count();
        if count == 0 {
            return Ok(total);
        }
        // No streak rakes means nothing to advect: skip the bracket
        // fetches entirely (a tick must not touch — or trip over — the
        // store on behalf of tools nobody is using).
        if !env
            .rakes()
            .any(|(_, e)| e.rake.tool == ToolKind::Streakline)
        {
            return Ok(total);
        }
        // Bracketing pair and blend factor for the fractional time.
        let t = env.time.time().max(0.0);
        let t0 = (t.floor() as usize).min(count - 1);
        let t1 = (t0 + 1).min(count - 1);
        let alpha = if t1 == t0 { 0.0 } else { t - t0 as f32 };
        if !matches!(&self.pair_cache, Some((key, _)) if *key == (t0, t1)) {
            // Degraded playback: if the bracket cannot be read, advect
            // through the nearest healthy field instead of wedging the
            // tick loop. A substituted endpoint degenerates the pair to
            // (h, h) — blending across the gap would interpolate between
            // non-adjacent timesteps, so the blend collapses to a single
            // field (any alpha then samples exactly that field).
            let Some((f0, s0)) = self.soa_near(store, t0, count) else {
                // Nothing in the dataset loads: skip this advance and
                // leave the smoke where it is; the frame path reports
                // the underlying error.
                return Ok(total);
            };
            let (f1, s1) = if t1 == t0 || s0 != t0 {
                (f0.clone(), s0)
            } else {
                match self.soa_for(store, t1) {
                    Ok(f1) => (f1, t1),
                    Err(_) => {
                        self.substituted += 1;
                        (f0.clone(), s0)
                    }
                }
            };
            self.soa_cache.retain(|ts, _| *ts == s0 || *ts == s1);
            self.pair_cache = Some(((t0, t1), BlendedPairSoA::new(&f0, &f1, alpha)?));
        }
        let Some((_, pair)) = &mut self.pair_cache else {
            return Ok(total); // just populated above
        };
        pair.set_alpha(alpha);
        let pair = &*pair;
        for (id, entry) in env.rakes() {
            if entry.rake.tool != ToolKind::Streakline {
                continue;
            }
            let seeds = entry.rake.seeds();
            let streak = self
                .streaks
                .entry(id)
                .or_insert_with(|| Streakline::new(seeds.clone(), *cfg));
            streak.set_seeds(seeds);
            total.accumulate(streak.advance_batch(pair, domain));
        }
        Ok(total)
    }

    /// Reset all particle systems (time jumped discontinuously).
    pub fn clear(&mut self) {
        for s in self.streaks.values_mut() {
            s.clear();
        }
        self.epoch += 1;
    }

    /// Mutation counter for the particle systems (cache-key component).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total live streak particles (diagnostics).
    pub fn streak_particles(&self) -> usize {
        self.streaks.values().map(|s| s.particle_count()).sum()
    }

    /// Cumulative streak-advance fetches served by a substituted
    /// neighbouring timestep (degraded playback).
    pub fn substituted_fetches(&self) -> u64 {
        self.substituted
    }
}

/// Candidate order for nearest-healthy substitution: the requested
/// timestep first, then spiralling outward (`ts−1, ts+1, ts−2, …`) so a
/// substitute is as visually close to the request as the dataset allows.
fn substitution_candidates(ts: usize, count: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(count);
    if ts < count {
        order.push(ts);
    }
    for d in 1..count.max(1) {
        if let Some(lo) = ts.checked_sub(d) {
            order.push(lo);
        }
        if ts + d < count {
            order.push(ts + d);
        }
    }
    order
}

/// Fetch the frame's field with nearest-healthy substitution: a
/// quarantined or unreadable timestep must degrade the picture, not kill
/// the frame. Returns the field and the timestep actually served; `Err`
/// only when *no* timestep in the dataset loads.
fn fetch_with_substitution(
    store: &dyn TimestepStore,
    ts: usize,
) -> Result<(Arc<VectorField>, usize), FieldError> {
    let mut last_err = FieldError::Format("dataset has no readable timesteps".into());
    for cand in substitution_candidates(ts, store.timestep_count()) {
        match store.fetch(cand) {
            Ok(field) => return Ok((field, cand)),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Integrate a particle path starting at `seed` (grid coords) from
/// timestep `start`, fetching fields from the store as it goes — the
/// windowed variant of §5.1's particle paths. One RK2 step per timestep.
fn pathline_over_store(
    store: &dyn TimestepStore,
    domain: &Domain,
    seed: Vec3,
    start: usize,
    window: usize,
    integrator: Integrator,
    dt: f32,
) -> Result<Vec<Vec3>, FieldError> {
    let Some(mut p) = domain.canonicalize(seed) else {
        return Ok(Vec::new());
    };
    let mut path = vec![p];
    let end = (start + window).min(store.timestep_count());
    for ts in start..end {
        // A path that reaches an unreadable timestep simply ends there —
        // the gap truncates the path rather than erroring the frame.
        let Ok(field) = store.fetch(ts) else {
            break;
        };
        let field: Arc<VectorField> = field;
        match integrator.step(field.as_ref(), domain, p, dt) {
            Some(next) => {
                p = next;
                path.push(p);
            }
            None => break,
        }
    }
    Ok(path)
}

/// Cache key for one rake's computed geometry: any field differing from
/// the cached entry means the rake's paths must be re-traced.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GeomKey {
    /// The rake's own geometry revision (endpoints, seed count, tool).
    geom_rev: u64,
    /// Timestep whose field the paths were traced in.
    timestep: usize,
    tool: ToolKind,
    integrator: Integrator,
    dt_bits: u32,
    max_points: usize,
    min_speed_bits: u32,
    both_directions: bool,
    pathline_window: usize,
    /// Engines epoch for streak rakes (0 for stateless tools) — smoke
    /// geometry changes when the particle system advances, not when the
    /// rake moves.
    streak_epoch: u64,
}

fn geom_key(
    geom_rev: u64,
    timestep: usize,
    tool: ToolKind,
    cfg: &ComputeConfig,
    streak_epoch: u64,
) -> GeomKey {
    GeomKey {
        geom_rev,
        timestep,
        tool,
        integrator: cfg.trace.integrator,
        dt_bits: cfg.trace.dt.to_bits(),
        max_points: cfg.trace.max_points,
        min_speed_bits: cfg.trace.min_speed.to_bits(),
        both_directions: cfg.trace.both_directions,
        pathline_window: cfg.pathline_window,
        streak_epoch: if tool == ToolKind::Streakline {
            streak_epoch
        } else {
            0
        },
    }
}

struct CacheEntry {
    key: GeomKey,
    paths: Vec<PathMsg>,
    /// Monotone token bumped every time this rake's paths are replaced.
    /// The server's broadcast chunk cache compares stamps to decide
    /// whether its *encoded* copy of the rake is still current — a cheap
    /// content-change test that needs no knowledge of [`GeomKey`].
    stamp: u64,
}

/// Per-rake cache of computed wire geometry, layered beneath the
/// server's whole-frame encoded-bytes cache. A mutation that touches one
/// rake — or none, like a head-pose update — re-traces only what
/// actually changed; everything else is served from here.
#[derive(Default)]
pub struct GeometryCache {
    entries: HashMap<RakeId, CacheEntry>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
}

impl GeometryCache {
    pub fn new() -> GeometryCache {
        GeometryCache::default()
    }

    /// Lifetime (hits, misses) across every frame built with this cache.
    pub fn cumulative(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The cached paths and change stamp for one rake. The stamp changes
    /// exactly when the paths do, so callers can cache derived artifacts
    /// (e.g. encoded wire chunks) keyed on it.
    pub fn rake_geometry(&self, id: RakeId) -> Option<(&[PathMsg], u64)> {
        self.entries.get(&id).map(|e| (e.paths.as_slice(), e.stamp))
    }

    /// Drop all cached geometry (e.g. on dataset swap).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Timings and cache counters from one [`compute_frame_cached`] call.
/// Stage times are summed across rakes, so under the parallel fan-out
/// they measure CPU work, not wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameComputeStats {
    /// Current-timestep field fetch, microseconds.
    pub fetch_us: u64,
    /// Path integration (streamlines, pathlines, streak snapshot), µs.
    pub integrate_us: u64,
    /// Grid→physical mapping of computed paths, microseconds.
    pub map_us: u64,
    /// Rakes served from the geometry cache.
    pub geom_hits: u32,
    /// Rakes re-traced this frame.
    pub geom_misses: u32,
    /// 1 when the frame's field was served by a substituted neighbouring
    /// timestep because the requested one could not be read.
    pub substituted_fetches: u32,
}

/// One cache miss queued for re-tracing: rake id, the new cache key,
/// the seed points, the tool, and (for streaklines) the pre-extracted
/// filament snapshot.
type GeomMiss = (RakeId, GeomKey, Vec<Vec3>, ToolKind, Vec<Polyline>);

/// Compute a full [`GeometryFrame`], re-tracing only rakes whose cache
/// key changed and fanning the misses out across threads.
///
/// `timestep` is the integer timestep to visualize (from the time
/// controller). Streak systems are *read*, not advanced — advancing
/// happens once per clock tick via [`ToolEngines::advance_streaks`].
pub fn compute_frame_cached(
    env: &EnvironmentState,
    engines: &mut ToolEngines,
    cache: &mut GeometryCache,
    store: &dyn TimestepStore,
    grid: &CurvilinearGrid,
    domain: &Domain,
    cfg: &ComputeConfig,
) -> Result<(GeometryFrame, FrameComputeStats), FieldError> {
    let mut stats = FrameComputeStats::default();
    let timestep = env.time.timestep();
    let fetch_started = Instant::now();
    let (field, served) = fetch_with_substitution(store, timestep)?;
    stats.fetch_us = fetch_started.elapsed().as_micros() as u64;
    if served != timestep {
        stats.substituted_fetches = 1;
    }

    // Forget geometry for rakes that no longer exist.
    cache.entries.retain(|id, _| env.rake(*id).is_some());

    let streak_epoch = engines.epoch;
    let mut rakes = Vec::new();
    let mut misses: Vec<GeomMiss> = Vec::new();
    for (id, entry) in env.rakes() {
        let rake = &entry.rake;
        // Rake state for client rendering (physical endpoints; endpoints
        // may sit outside the grid mid-drag — clamp to the grid domain
        // for display).
        let dims = grid.dims();
        let a_phys = grid
            .to_physical(dims.clamp_grid_coord(rake.a))
            .unwrap_or(Vec3::ZERO);
        let b_phys = grid
            .to_physical(dims.clamp_grid_coord(rake.b))
            .unwrap_or(Vec3::ZERO);
        rakes.push(RakeMsg {
            id,
            a: a_phys,
            b: b_phys,
            seed_count: rake.seed_count,
            tool: rake.tool,
            owner: entry.grab.map(|(u, _)| u).unwrap_or(0),
        });

        // Geometry is keyed on the timestep actually *served*: a frame
        // drawn from a substitute must not be mistaken for (or poison the
        // cache of) the real one.
        let key = geom_key(entry.geom_rev(), served, rake.tool, cfg, streak_epoch);
        match cache.entries.get(&id) {
            Some(cached) if cached.key == key => stats.geom_hits += 1,
            _ => {
                stats.geom_misses += 1;
                // Streak filaments are extracted here, before the
                // parallel fan-out: the pull is a cheap sorted copy out
                // of the particle pool (into reusable scratch), and the
                // buffers then move through physical mapping straight
                // into the wire messages — no intermediate point vector.
                let filaments = if rake.tool == ToolKind::Streakline {
                    let t0 = Instant::now();
                    let mut fils = Vec::new();
                    if let Some(streak) = engines.streaks.get_mut(&id) {
                        streak.filaments_into(&mut fils);
                    }
                    stats.integrate_us += t0.elapsed().as_micros() as u64;
                    fils
                } else {
                    Vec::new()
                };
                misses.push((id, key, rake.seeds(), rake.tool, filaments));
            }
        }
    }
    cache.hits += u64::from(stats.geom_hits);
    cache.misses += u64::from(stats.geom_misses);

    // Re-trace stale rakes in parallel; each job reports its own
    // integrate/map split.
    type Traced = (RakeId, GeomKey, Vec<PathMsg>, u64, u64);
    let traced: Vec<Result<Traced, FieldError>> = misses
        .into_par_iter()
        .map(|(id, key, seeds, tool, filaments)| {
            let mut integrate_us = 0u64;
            let mut map_us = 0u64;
            let mut paths = Vec::new();
            match tool {
                ToolKind::Streamline => {
                    let t0 = Instant::now();
                    let lines = trace_batch_parallel(field.as_ref(), domain, &seeds, &cfg.trace);
                    integrate_us += t0.elapsed().as_micros() as u64;
                    let t1 = Instant::now();
                    for line in lines {
                        if line.is_empty() {
                            continue;
                        }
                        paths.push(PathMsg {
                            rake_id: id,
                            kind: PathKind::Streamline,
                            points: grid.path_to_physical(&line),
                        });
                    }
                    map_us += t1.elapsed().as_micros() as u64;
                }
                ToolKind::ParticlePath => {
                    for seed in seeds {
                        let t0 = Instant::now();
                        let line = pathline_over_store(
                            store,
                            domain,
                            seed,
                            timestep,
                            cfg.pathline_window,
                            cfg.trace.integrator,
                            cfg.trace.dt,
                        )?;
                        integrate_us += t0.elapsed().as_micros() as u64;
                        if line.is_empty() {
                            continue;
                        }
                        let t1 = Instant::now();
                        paths.push(PathMsg {
                            rake_id: id,
                            kind: PathKind::ParticlePath,
                            points: grid.path_to_physical(&line),
                        });
                        map_us += t1.elapsed().as_micros() as u64;
                    }
                }
                ToolKind::Streakline => {
                    // Filaments were pulled from the particle system
                    // before the fan-out; map each buffer to physical
                    // space in place and hand it to the wire message.
                    let t1 = Instant::now();
                    for mut filament in filaments {
                        grid.path_to_physical_in_place(&mut filament);
                        if filament.is_empty() {
                            continue;
                        }
                        paths.push(PathMsg {
                            rake_id: id,
                            kind: PathKind::Streak,
                            points: filament,
                        });
                    }
                    map_us += t1.elapsed().as_micros() as u64;
                }
            }
            Ok((id, key, paths, integrate_us, map_us))
        })
        .collect();
    for result in traced {
        let (id, key, paths, integrate_us, map_us) = result?;
        stats.integrate_us += integrate_us;
        stats.map_us += map_us;
        cache.next_stamp += 1;
        let stamp = cache.next_stamp;
        cache.entries.insert(id, CacheEntry { key, paths, stamp });
    }

    // Assemble in rake order from the (now fully warm) cache, so hit and
    // miss frames are byte-identical.
    let mut paths = Vec::new();
    for (id, _) in env.rakes() {
        if let Some(cached) = cache.entries.get(&id) {
            paths.extend(cached.paths.iter().cloned());
        }
    }

    let users = env
        .users()
        .map(|(id, pose)| UserMsg { id, head: *pose })
        .collect();

    let frame = GeometryFrame {
        // lint:allow(panic-path): timestep indexes the store; HELLO advertises the count as u32
        timestep: timestep as u32,
        time: env.time.time(),
        revision: env.revision(),
        rakes,
        paths,
        users,
    };
    Ok((frame, stats))
}

/// Compute a full [`GeometryFrame`] without cross-frame caching — every
/// rake is traced fresh. Wrapper over [`compute_frame_cached`] with a
/// throwaway cache.
pub fn compute_frame(
    env: &EnvironmentState,
    engines: &mut ToolEngines,
    store: &dyn TimestepStore,
    grid: &CurvilinearGrid,
    domain: &Domain,
    cfg: &ComputeConfig,
) -> Result<GeometryFrame, FieldError> {
    let mut cache = GeometryCache::new();
    compute_frame_cached(env, engines, &mut cache, store, grid, domain, cfg).map(|(frame, _)| frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::{dataset::VelocityCoords, Dataset, DatasetMeta, Dims};
    use storage::MemoryStore;
    use tracer::Rake;
    use vecmath::Aabb;

    /// Unit Cartesian grid with uniform +i grid velocity.
    fn test_store() -> (MemoryStore, CurvilinearGrid, Domain) {
        let dims = Dims::new(16, 9, 9);
        let grid =
            CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(15.0, 8.0, 8.0)))
                .unwrap();
        let meta = DatasetMeta {
            name: "test".into(),
            dims,
            timestep_count: 6,
            dt: 0.1,
            coords: VelocityCoords::Grid,
        };
        let fields = (0..6)
            .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X))
            .collect();
        let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
        (MemoryStore::from_dataset(ds), grid, Domain::boxed(dims))
    }

    fn rake(tool: ToolKind) -> Rake {
        Rake::new(Vec3::new(2.0, 2.0, 4.0), Vec3::new(2.0, 6.0, 4.0), 3, tool)
    }

    #[test]
    fn streamline_frame_has_paths_in_physical_space() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::Streamline));
        let mut engines = ToolEngines::new();
        let cfg = ComputeConfig {
            trace: TraceConfig {
                dt: 1.0,
                max_points: 5,
                ..TraceConfig::default()
            },
            ..ComputeConfig::default()
        };
        let frame = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        assert_eq!(frame.rakes.len(), 1);
        assert_eq!(frame.paths.len(), 3); // one per seed
        for p in &frame.paths {
            assert_eq!(p.kind, PathKind::Streamline);
            assert_eq!(p.points.len(), 6); // seed + 5 steps
                                           // Unit grid: physical x advances 1 per step from x=2.
            assert!((p.points[1].x - 3.0).abs() < 1e-4);
        }
    }

    #[test]
    fn pathline_respects_window() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::ParticlePath));
        let mut engines = ToolEngines::new();
        let cfg = ComputeConfig {
            pathline_window: 3,
            trace: TraceConfig {
                dt: 1.0,
                ..TraceConfig::default()
            },
            ..ComputeConfig::default()
        };
        let frame = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        for p in &frame.paths {
            assert_eq!(p.kind, PathKind::ParticlePath);
            assert_eq!(p.points.len(), 4); // seed + window of 3
        }
    }

    #[test]
    fn pathline_window_clipped_by_dataset_end() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::ParticlePath));
        env.time.jump(4); // two timesteps left (4, 5)
        let mut engines = ToolEngines::new();
        let cfg = ComputeConfig {
            pathline_window: 50,
            trace: TraceConfig {
                dt: 1.0,
                ..TraceConfig::default()
            },
            ..ComputeConfig::default()
        };
        let frame = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        for p in &frame.paths {
            assert_eq!(p.points.len(), 3); // seed + 2
        }
    }

    #[test]
    fn streaklines_accumulate_only_on_advance() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::Streakline));
        let mut engines = ToolEngines::new();
        let cfg = ComputeConfig::default();

        // No advance yet: no smoke.
        let f0 = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        assert_eq!(f0.paths.len(), 0);

        // Three clock ticks.
        for _ in 0..3 {
            engines
                .advance_streaks(&env, &store, &domain, &cfg.streak)
                .unwrap();
        }
        let f1 = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        assert_eq!(f1.paths.len(), 3); // one filament per seed
        for p in &f1.paths {
            assert_eq!(p.kind, PathKind::Streak);
            assert_eq!(p.points.len(), 3); // one particle per tick
        }
        // Reading a frame twice does not advance anything.
        let f2 = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        assert_eq!(f2.particle_count(), f1.particle_count());
    }

    #[test]
    fn engines_prune_deleted_rakes() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        let id = env.add_rake(rake(ToolKind::Streakline));
        let mut engines = ToolEngines::new();
        engines
            .advance_streaks(&env, &store, &domain, &StreaklineConfig::default())
            .unwrap();
        assert!(engines.streak_particles() > 0);
        env.remove_rake(0, id).unwrap();
        engines
            .advance_streaks(&env, &store, &domain, &StreaklineConfig::default())
            .unwrap();
        assert_eq!(engines.streak_particles(), 0);
        let frame = compute_frame(
            &env,
            &mut engines,
            &store,
            &grid,
            &domain,
            &ComputeConfig::default(),
        )
        .unwrap();
        assert_eq!(frame.paths.len(), 0);
    }

    #[test]
    fn users_appear_in_frame() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.update_user(9, vecmath::Pose::IDENTITY);
        let mut engines = ToolEngines::new();
        let frame = compute_frame(
            &env,
            &mut engines,
            &store,
            &grid,
            &domain,
            &ComputeConfig::default(),
        )
        .unwrap();
        assert_eq!(frame.users.len(), 1);
        assert_eq!(frame.users[0].id, 9);
    }

    #[test]
    fn geometry_cache_hits_when_nothing_changed() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::Streamline));
        env.add_rake(Rake::new(
            Vec3::new(3.0, 2.0, 4.0),
            Vec3::new(3.0, 6.0, 4.0),
            2,
            ToolKind::Streamline,
        ));
        let mut engines = ToolEngines::new();
        let mut cache = GeometryCache::new();
        let cfg = ComputeConfig::default();
        let (f0, s0) =
            compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg)
                .unwrap();
        assert_eq!(s0.geom_misses, 2);
        assert_eq!(s0.geom_hits, 0);
        let (f1, s1) =
            compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg)
                .unwrap();
        assert_eq!(s1.geom_hits, 2);
        assert_eq!(s1.geom_misses, 0);
        assert_eq!(f0, f1, "cached frame must equal the computed one");
        assert_eq!(cache.cumulative(), (2, 2));
    }

    #[test]
    fn mutating_one_rake_retraces_only_that_rake() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        let a = env.add_rake(rake(ToolKind::Streamline));
        env.add_rake(Rake::new(
            Vec3::new(3.0, 2.0, 4.0),
            Vec3::new(3.0, 6.0, 4.0),
            2,
            ToolKind::Streamline,
        ));
        let mut engines = ToolEngines::new();
        let mut cache = GeometryCache::new();
        let cfg = ComputeConfig::default();
        compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg).unwrap();
        env.set_seed_count(a, 5).unwrap();
        let (frame, stats) =
            compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg)
                .unwrap();
        assert_eq!(
            stats.geom_hits, 1,
            "untouched rake must be served from cache"
        );
        assert_eq!(stats.geom_misses, 1, "mutated rake must be re-traced");
        assert_eq!(
            frame.paths.iter().filter(|p| p.rake_id == a).count(),
            5,
            "re-trace must see the new seed count"
        );
    }

    #[test]
    fn head_pose_update_is_all_cache_hits() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::Streamline));
        let mut engines = ToolEngines::new();
        let mut cache = GeometryCache::new();
        let cfg = ComputeConfig::default();
        compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg).unwrap();
        env.update_user(9, vecmath::Pose::IDENTITY);
        let (frame, stats) =
            compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg)
                .unwrap();
        assert_eq!(stats.geom_misses, 0, "a head pose is not a geometry change");
        assert_eq!(stats.geom_hits, 1);
        assert_eq!(frame.users.len(), 1);
        assert_eq!(
            frame.revision,
            env.revision(),
            "frame still reflects new state"
        );
    }

    #[test]
    fn streak_advance_invalidates_smoke_but_not_streamlines() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        let smoke = env.add_rake(rake(ToolKind::Streakline));
        env.add_rake(Rake::new(
            Vec3::new(3.0, 2.0, 4.0),
            Vec3::new(3.0, 6.0, 4.0),
            2,
            ToolKind::Streamline,
        ));
        let mut engines = ToolEngines::new();
        let mut cache = GeometryCache::new();
        let cfg = ComputeConfig::default();
        engines
            .advance_streaks(&env, &store, &domain, &cfg.streak)
            .unwrap();
        compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg).unwrap();
        engines
            .advance_streaks(&env, &store, &domain, &cfg.streak)
            .unwrap();
        let (frame, stats) =
            compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg)
                .unwrap();
        assert_eq!(stats.geom_misses, 1, "only the streak rake re-traces");
        assert_eq!(stats.geom_hits, 1);
        assert_eq!(
            frame
                .paths
                .iter()
                .filter(|p| p.rake_id == smoke)
                .map(|p| p.points.len())
                .max()
                .unwrap(),
            2,
            "smoke must reflect the second advance"
        );
    }

    #[test]
    fn removed_rake_evicted_from_cache() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        let id = env.add_rake(rake(ToolKind::Streamline));
        let mut engines = ToolEngines::new();
        let mut cache = GeometryCache::new();
        let cfg = ComputeConfig::default();
        compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg).unwrap();
        env.remove_rake(0, id).unwrap();
        let (frame, _) =
            compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg)
                .unwrap();
        assert!(frame.paths.is_empty());
        assert!(cache.entries.is_empty());
    }

    /// A store that refuses a fixed set of timesteps, as a quarantining
    /// fault-tolerant store would.
    struct FailingStore {
        inner: MemoryStore,
        bad: Vec<usize>,
    }

    impl TimestepStore for FailingStore {
        fn meta(&self) -> &flowfield::DatasetMeta {
            self.inner.meta()
        }
        fn fetch(&self, index: usize) -> Result<Arc<VectorField>, FieldError> {
            if self.bad.contains(&index) {
                return Err(FieldError::Quarantined { index });
            }
            self.inner.fetch(index)
        }
    }

    #[test]
    fn quarantined_timestep_substituted_with_nearest_healthy() {
        let (inner, grid, domain) = test_store();
        let store = FailingStore {
            inner,
            bad: vec![3],
        };
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::Streamline));
        env.time.jump(3);
        let mut engines = ToolEngines::new();
        let mut cache = GeometryCache::new();
        let cfg = ComputeConfig::default();
        let (frame, stats) =
            compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg)
                .unwrap();
        assert_eq!(stats.substituted_fetches, 1);
        assert_eq!(
            frame.timestep, 3,
            "the frame still reports the requested timestep"
        );
        assert_eq!(frame.paths.len(), 3, "paths drawn from the substitute");
        // A healthy request is not counted as substituted.
        env.time.jump(1);
        let (_, s2) =
            compute_frame_cached(&env, &mut engines, &mut cache, &store, &grid, &domain, &cfg)
                .unwrap();
        assert_eq!(s2.substituted_fetches, 0);
    }

    #[test]
    fn streak_advance_survives_unreadable_bracket() {
        let (inner, _grid, domain) = test_store();
        let store = FailingStore {
            inner,
            bad: vec![0, 1],
        };
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::Streakline));
        let mut engines = ToolEngines::new();
        // Bracket (0, 1) is entirely unreadable: the advance substitutes
        // the nearest healthy field instead of failing the tick.
        engines
            .advance_streaks(&env, &store, &domain, &StreaklineConfig::default())
            .unwrap();
        assert!(engines.streak_particles() > 0, "smoke still advected");
        assert!(engines.substituted_fetches() >= 1);
    }

    #[test]
    fn fully_unreadable_dataset_is_an_error_not_a_panic() {
        let (inner, grid, domain) = test_store();
        let store = FailingStore {
            inner,
            bad: (0..6).collect(),
        };
        let env = EnvironmentState::new(store.timestep_count());
        let mut engines = ToolEngines::new();
        assert!(compute_frame(
            &env,
            &mut engines,
            &store,
            &grid,
            &domain,
            &ComputeConfig::default(),
        )
        .is_err());
        // Streak advance skips (leaves smoke in place) rather than erring.
        engines
            .advance_streaks(&env, &store, &domain, &StreaklineConfig::default())
            .unwrap();
        assert_eq!(engines.streak_particles(), 0, "nothing advected");
    }

    #[test]
    fn frame_reports_revision_and_timestep() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.time.jump(3);
        let mut engines = ToolEngines::new();
        let frame = compute_frame(
            &env,
            &mut engines,
            &store,
            &grid,
            &domain,
            &ComputeConfig::default(),
        )
        .unwrap();
        assert_eq!(frame.timestep, 3);
        assert_eq!(frame.revision, env.revision());
    }
}
