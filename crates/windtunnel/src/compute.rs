//! Per-frame visualization computation on the remote system.
//!
//! §5.2: "The remote system updates the virtual environment including if
//! necessary loading the data for the current timestep, computes the
//! current visualizations, and transfers the environment state back to
//! the workstations." This module is the "computes the current
//! visualizations" box of figure 8: for every rake, run its tool over the
//! current timestep (streamlines), the timestep window (particle paths),
//! or the persistent particle system (streaklines), then convert all
//! geometry to physical space for the wire.

use crate::env::{EnvironmentState, RakeId};
use crate::proto::{GeometryFrame, PathKind, PathMsg, RakeMsg, UserMsg};
use flowfield::{CurvilinearGrid, FieldError, VectorField};
use std::collections::HashMap;
use std::sync::Arc;
use storage::TimestepStore;
use tracer::{
    trace_batch_parallel, Domain, Integrator, Streakline, StreaklineConfig, ToolKind, TraceConfig,
};
use vecmath::Vec3;

/// Compute-side configuration.
#[derive(Debug, Clone, Copy)]
pub struct ComputeConfig {
    /// Streamline tracing parameters.
    pub trace: TraceConfig,
    /// Streakline particle-system parameters.
    pub streak: StreaklineConfig,
    /// Maximum timesteps a particle path may span — bounded by the
    /// resident window (§5.1's particle-path length limit).
    pub pathline_window: usize,
}

impl Default for ComputeConfig {
    fn default() -> Self {
        ComputeConfig {
            trace: TraceConfig::default(),
            streak: StreaklineConfig::default(),
            pathline_window: 50,
        }
    }
}

/// Stateful per-rake engines (streaklines persist across frames).
#[derive(Default)]
pub struct ToolEngines {
    streaks: HashMap<RakeId, Streakline>,
}

impl ToolEngines {
    pub fn new() -> ToolEngines {
        ToolEngines::default()
    }

    /// Drop engines whose rakes no longer exist or changed tool.
    fn prune(&mut self, env: &EnvironmentState) {
        self.streaks.retain(|id, _| {
            env.rake(*id)
                .map(|e| e.rake.tool == ToolKind::Streakline)
                .unwrap_or(false)
        });
    }

    /// Advance all streak systems one step in the current field — called
    /// exactly once per time advance, not per client frame request.
    pub fn advance_streaks(
        &mut self,
        env: &EnvironmentState,
        field: &VectorField,
        domain: &Domain,
        cfg: &StreaklineConfig,
    ) {
        self.prune(env);
        for (id, entry) in env.rakes() {
            if entry.rake.tool != ToolKind::Streakline {
                continue;
            }
            let seeds = entry.rake.seeds();
            let streak = self
                .streaks
                .entry(id)
                .or_insert_with(|| Streakline::new(seeds.clone(), *cfg));
            streak.set_seeds(seeds);
            streak.advance(field, domain);
        }
    }

    /// Reset all particle systems (time jumped discontinuously).
    pub fn clear(&mut self) {
        for s in self.streaks.values_mut() {
            s.clear();
        }
    }

    /// Total live streak particles (diagnostics).
    pub fn streak_particles(&self) -> usize {
        self.streaks.values().map(|s| s.particle_count()).sum()
    }
}

/// Integrate a particle path starting at `seed` (grid coords) from
/// timestep `start`, fetching fields from the store as it goes — the
/// windowed variant of §5.1's particle paths. One RK2 step per timestep.
fn pathline_over_store(
    store: &dyn TimestepStore,
    domain: &Domain,
    seed: Vec3,
    start: usize,
    window: usize,
    integrator: Integrator,
    dt: f32,
) -> Result<Vec<Vec3>, FieldError> {
    let Some(mut p) = domain.canonicalize(seed) else {
        return Ok(Vec::new());
    };
    let mut path = vec![p];
    let end = (start + window).min(store.timestep_count());
    for ts in start..end {
        let field: Arc<VectorField> = store.fetch(ts)?;
        match integrator.step(field.as_ref(), domain, p, dt) {
            Some(next) => {
                p = next;
                path.push(p);
            }
            None => break,
        }
    }
    Ok(path)
}

/// Compute a full [`GeometryFrame`] for the current environment state.
///
/// `timestep` is the integer timestep to visualize (from the time
/// controller). Streak systems are *read*, not advanced — advancing
/// happens once per clock tick via [`ToolEngines::advance_streaks`].
pub fn compute_frame(
    env: &EnvironmentState,
    engines: &mut ToolEngines,
    store: &dyn TimestepStore,
    grid: &CurvilinearGrid,
    domain: &Domain,
    cfg: &ComputeConfig,
) -> Result<GeometryFrame, FieldError> {
    let timestep = env.time.timestep();
    let field = store.fetch(timestep)?;
    let mut paths = Vec::new();
    let mut rakes = Vec::new();

    for (id, entry) in env.rakes() {
        let rake = &entry.rake;
        // Rake state for client rendering (physical endpoints; endpoints
        // may sit outside the grid mid-drag — clamp to the grid domain
        // for display).
        let dims = grid.dims();
        let a_phys = grid
            .to_physical(dims.clamp_grid_coord(rake.a))
            .unwrap_or(Vec3::ZERO);
        let b_phys = grid
            .to_physical(dims.clamp_grid_coord(rake.b))
            .unwrap_or(Vec3::ZERO);
        rakes.push(RakeMsg {
            id,
            a: a_phys,
            b: b_phys,
            seed_count: rake.seed_count,
            tool: rake.tool,
            owner: entry.grab.map(|(u, _)| u).unwrap_or(0),
        });

        let seeds = rake.seeds();
        match rake.tool {
            ToolKind::Streamline => {
                let lines = trace_batch_parallel(field.as_ref(), domain, &seeds, &cfg.trace);
                for line in lines {
                    if line.is_empty() {
                        continue;
                    }
                    paths.push(PathMsg {
                        rake_id: id,
                        kind: PathKind::Streamline,
                        points: grid.path_to_physical(&line),
                    });
                }
            }
            ToolKind::ParticlePath => {
                for seed in seeds {
                    let line = pathline_over_store(
                        store,
                        domain,
                        seed,
                        timestep,
                        cfg.pathline_window,
                        cfg.trace.integrator,
                        cfg.trace.dt,
                    )?;
                    if line.is_empty() {
                        continue;
                    }
                    paths.push(PathMsg {
                        rake_id: id,
                        kind: PathKind::ParticlePath,
                        points: grid.path_to_physical(&line),
                    });
                }
            }
            ToolKind::Streakline => {
                if let Some(streak) = engines.streaks.get(&id) {
                    for filament in streak.filaments() {
                        if filament.is_empty() {
                            continue;
                        }
                        paths.push(PathMsg {
                            rake_id: id,
                            kind: PathKind::Streak,
                            points: grid.path_to_physical(&filament),
                        });
                    }
                }
            }
        }
    }

    let users = env
        .users()
        .map(|(id, pose)| UserMsg { id, head: *pose })
        .collect();

    Ok(GeometryFrame {
        timestep: timestep as u32,
        time: env.time.time(),
        revision: env.revision(),
        rakes,
        paths,
        users,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::{dataset::VelocityCoords, Dataset, DatasetMeta, Dims};
    use storage::MemoryStore;
    use tracer::Rake;
    use vecmath::Aabb;

    /// Unit Cartesian grid with uniform +i grid velocity.
    fn test_store() -> (MemoryStore, CurvilinearGrid, Domain) {
        let dims = Dims::new(16, 9, 9);
        let grid = CurvilinearGrid::cartesian(
            dims,
            Aabb::new(Vec3::ZERO, Vec3::new(15.0, 8.0, 8.0)),
        )
        .unwrap();
        let meta = DatasetMeta {
            name: "test".into(),
            dims,
            timestep_count: 6,
            dt: 0.1,
            coords: VelocityCoords::Grid,
        };
        let fields = (0..6)
            .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X))
            .collect();
        let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
        (MemoryStore::from_dataset(ds), grid, Domain::boxed(dims))
    }

    fn rake(tool: ToolKind) -> Rake {
        Rake::new(Vec3::new(2.0, 2.0, 4.0), Vec3::new(2.0, 6.0, 4.0), 3, tool)
    }

    #[test]
    fn streamline_frame_has_paths_in_physical_space() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::Streamline));
        let mut engines = ToolEngines::new();
        let cfg = ComputeConfig {
            trace: TraceConfig {
                dt: 1.0,
                max_points: 5,
                ..TraceConfig::default()
            },
            ..ComputeConfig::default()
        };
        let frame = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        assert_eq!(frame.rakes.len(), 1);
        assert_eq!(frame.paths.len(), 3); // one per seed
        for p in &frame.paths {
            assert_eq!(p.kind, PathKind::Streamline);
            assert_eq!(p.points.len(), 6); // seed + 5 steps
            // Unit grid: physical x advances 1 per step from x=2.
            assert!((p.points[1].x - 3.0).abs() < 1e-4);
        }
    }

    #[test]
    fn pathline_respects_window() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::ParticlePath));
        let mut engines = ToolEngines::new();
        let cfg = ComputeConfig {
            pathline_window: 3,
            trace: TraceConfig {
                dt: 1.0,
                ..TraceConfig::default()
            },
            ..ComputeConfig::default()
        };
        let frame = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        for p in &frame.paths {
            assert_eq!(p.kind, PathKind::ParticlePath);
            assert_eq!(p.points.len(), 4); // seed + window of 3
        }
    }

    #[test]
    fn pathline_window_clipped_by_dataset_end() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::ParticlePath));
        env.time.jump(4); // two timesteps left (4, 5)
        let mut engines = ToolEngines::new();
        let cfg = ComputeConfig {
            pathline_window: 50,
            trace: TraceConfig {
                dt: 1.0,
                ..TraceConfig::default()
            },
            ..ComputeConfig::default()
        };
        let frame = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        for p in &frame.paths {
            assert_eq!(p.points.len(), 3); // seed + 2
        }
    }

    #[test]
    fn streaklines_accumulate_only_on_advance() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.add_rake(rake(ToolKind::Streakline));
        let mut engines = ToolEngines::new();
        let cfg = ComputeConfig::default();

        // No advance yet: no smoke.
        let f0 = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        assert_eq!(f0.paths.len(), 0);

        // Three clock ticks.
        let field = store.fetch(0).unwrap();
        for _ in 0..3 {
            engines.advance_streaks(&env, field.as_ref(), &domain, &cfg.streak);
        }
        let f1 = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        assert_eq!(f1.paths.len(), 3); // one filament per seed
        for p in &f1.paths {
            assert_eq!(p.kind, PathKind::Streak);
            assert_eq!(p.points.len(), 3); // one particle per tick
        }
        // Reading a frame twice does not advance anything.
        let f2 = compute_frame(&env, &mut engines, &store, &grid, &domain, &cfg).unwrap();
        assert_eq!(f2.particle_count(), f1.particle_count());
    }

    #[test]
    fn engines_prune_deleted_rakes() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        let id = env.add_rake(rake(ToolKind::Streakline));
        let mut engines = ToolEngines::new();
        let field = store.fetch(0).unwrap();
        engines.advance_streaks(&env, field.as_ref(), &domain, &StreaklineConfig::default());
        assert!(engines.streak_particles() > 0);
        env.remove_rake(0, id).unwrap();
        engines.advance_streaks(&env, field.as_ref(), &domain, &StreaklineConfig::default());
        assert_eq!(engines.streak_particles(), 0);
        let frame = compute_frame(&env, &mut engines, &store, &grid, &domain, &ComputeConfig::default()).unwrap();
        assert_eq!(frame.paths.len(), 0);
    }

    #[test]
    fn users_appear_in_frame() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.update_user(9, vecmath::Pose::IDENTITY);
        let mut engines = ToolEngines::new();
        let frame = compute_frame(&env, &mut engines, &store, &grid, &domain, &ComputeConfig::default()).unwrap();
        assert_eq!(frame.users.len(), 1);
        assert_eq!(frame.users[0].id, 9);
    }

    #[test]
    fn frame_reports_revision_and_timestep() {
        let (store, grid, domain) = test_store();
        let mut env = EnvironmentState::new(store.timestep_count());
        env.time.jump(3);
        let mut engines = ToolEngines::new();
        let frame = compute_frame(&env, &mut engines, &store, &grid, &domain, &ComputeConfig::default()).unwrap();
        assert_eq!(frame.timestep, 3);
        assert_eq!(frame.revision, env.revision());
    }
}
