//! The figure-9 workstation split: network conversation on its own
//! thread, rendering free-running on the latest received state.
//!
//! §5.2: "On the workstation, at least two processors are desirable so
//! the rendering of the graphics and the handling of the network traffic
//! can be run in parallel. In this way the graphics performance is not
//! tied to the network and remote computation performance, so the
//! head-tracked display of the virtual environment can run at very high
//! rates."
//!
//! [`BackgroundSession`] owns the dlib conversation on a worker thread:
//! commands are queued in, the latest [`GeometryFrame`] is published out
//! through a mailbox, and the render loop reads that mailbox at whatever
//! rate the display runs — never blocking on the network.

use crate::client::ResilientClient;
use crate::proto::{Command, GeometryFrame, HelloReply};
use crossbeam_channel::{unbounded, Receiver, Sender};
use dlib::{DlibError, Result};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Outbound {
    Command(Command),
    Stop,
}

/// Shared mailbox between the network thread and the render loop.
struct Mailbox {
    latest: Mutex<Option<GeometryFrame>>,
    frames_fetched: AtomicU64,
    errors: AtomicU64,
    running: AtomicBool,
}

/// A windtunnel session running its network conversation on a background
/// thread.
pub struct BackgroundSession {
    hello: HelloReply,
    tx: Sender<Outbound>,
    mailbox: Arc<Mailbox>,
    worker: Option<JoinHandle<()>>,
}

impl BackgroundSession {
    /// Connect and start the conversation. `drive` makes this session the
    /// one that advances the shared clock with each frame request.
    ///
    /// The worker rides on [`ResilientClient`], so a dropped server
    /// connection shows up as counted errors (skipped frames) and heals
    /// by itself once the server is reachable again — the render loop
    /// keeps spinning on the last good frame throughout.
    pub fn connect(addr: SocketAddr, drive: bool) -> Result<BackgroundSession> {
        let mut client = ResilientClient::connect(addr)?;
        let hello = client.hello();
        let (tx, rx): (Sender<Outbound>, Receiver<Outbound>) = unbounded();
        let mailbox = Arc::new(Mailbox {
            latest: Mutex::new(None),
            frames_fetched: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            running: AtomicBool::new(true),
        });
        let mb = Arc::clone(&mailbox);
        let worker = std::thread::Builder::new()
            .name("dvw-session".into())
            .spawn(move || {
                loop {
                    // Drain all queued commands first (cheap, ordered).
                    loop {
                        match rx.try_recv() {
                            Ok(Outbound::Command(cmd)) => {
                                if client.send(&cmd).is_err() {
                                    mb.errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(Outbound::Stop) => {
                                mb.running.store(false, Ordering::SeqCst);
                                return;
                            }
                            Err(_) => break,
                        }
                    }
                    // One frame round trip (the slow part the render loop
                    // no longer waits on). Delta transport: after a
                    // reconnect the stale baseline falls back to a
                    // keyframe automatically.
                    match client.frame_delta(drive) {
                        Ok(frame) => {
                            *mb.latest.lock() = Some(frame);
                            mb.frames_fetched.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            mb.errors.fetch_add(1, Ordering::Relaxed);
                            // Back off briefly; the server may be mid-
                            // restart or the link congested.
                            #[allow(clippy::disallowed_methods)]
                            // reconnect backoff between dial attempts; nothing else runs on this thread
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                    }
                    if !mb.running.load(Ordering::SeqCst) {
                        return;
                    }
                }
            })
            .map_err(DlibError::Io)?;
        Ok(BackgroundSession {
            hello,
            tx,
            mailbox,
            worker: Some(worker),
        })
    }

    /// Session metadata from the handshake.
    pub fn hello(&self) -> &HelloReply {
        &self.hello
    }

    /// Queue a command (sent in order by the network thread).
    pub fn send(&self, cmd: Command) {
        let _ = self.tx.send(Outbound::Command(cmd));
    }

    /// The most recent frame, if any has arrived yet. Cloning the frame
    /// keeps the mailbox lock short — render with it as long as you like.
    pub fn latest_frame(&self) -> Option<GeometryFrame> {
        self.mailbox.latest.lock().clone()
    }

    /// How many frames the network thread has fetched.
    pub fn frames_fetched(&self) -> u64 {
        self.mailbox.frames_fetched.load(Ordering::Relaxed)
    }

    /// Network errors observed (session keeps retrying).
    pub fn errors(&self) -> u64 {
        self.mailbox.errors.load(Ordering::Relaxed)
    }

    /// Stop the conversation and join the thread.
    pub fn stop(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        self.mailbox.running.store(false, Ordering::SeqCst);
        let _ = self.tx.send(Outbound::Stop);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for BackgroundSession {
    fn drop(&mut self) {
        if self.worker.is_some() {
            self.stop_impl();
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests sleep to let real threads make progress
mod tests {
    use super::*;
    use crate::proto::TimeCommand;
    use crate::server::{serve, ServerOptions};
    use flowfield::{
        dataset::VelocityCoords, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField,
    };
    use storage::MemoryStore;
    use tracer::ToolKind;
    use vecmath::{Aabb, Vec3};

    fn test_server() -> crate::server::WindtunnelHandle {
        let dims = Dims::new(16, 9, 9);
        let grid =
            CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(15.0, 8.0, 8.0)))
                .unwrap();
        let meta = DatasetMeta {
            name: "bg".into(),
            dims,
            timestep_count: 6,
            dt: 0.1,
            coords: VelocityCoords::Grid,
        };
        let fields = (0..6)
            .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X))
            .collect();
        let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
        serve(
            std::sync::Arc::new(MemoryStore::from_dataset(ds)),
            grid,
            ServerOptions::default(),
            "127.0.0.1:0",
        )
        .unwrap()
    }

    fn wait_for<T>(mut f: impl FnMut() -> Option<T>) -> T {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if let Some(v) = f() {
                return v;
            }
            assert!(std::time::Instant::now() < deadline, "timed out");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    #[test]
    fn frames_flow_without_blocking_the_caller() {
        let server = test_server();
        let session = BackgroundSession::connect(server.addr(), false).unwrap();
        assert_eq!(session.hello().dataset_name, "bg");
        let frame = wait_for(|| session.latest_frame());
        assert_eq!(frame.timestep, 0);
        // The fetch counter climbs on its own.
        let n0 = session.frames_fetched();
        wait_for(|| (session.frames_fetched() > n0 + 3).then_some(()));
        session.stop();
        server.shutdown();
    }

    #[test]
    fn queued_commands_are_applied_in_order() {
        let server = test_server();
        let session = BackgroundSession::connect(server.addr(), false).unwrap();
        session.send(Command::AddRake {
            a: Vec3::new(2.0, 2.0, 4.0),
            b: Vec3::new(2.0, 6.0, 4.0),
            seed_count: 3,
            tool: ToolKind::Streamline,
        });
        session.send(Command::Time(TimeCommand::Jump(2)));
        let frame = wait_for(|| {
            session
                .latest_frame()
                .filter(|f| !f.rakes.is_empty() && f.timestep == 2)
        });
        assert_eq!(frame.rakes.len(), 1);
        assert_eq!(frame.paths.len(), 3);
        session.stop();
        server.shutdown();
    }

    #[test]
    fn driver_session_advances_the_clock() {
        let server = test_server();
        let driver = BackgroundSession::connect(server.addr(), true).unwrap();
        driver.send(Command::Time(TimeCommand::Play));
        let frame = wait_for(|| driver.latest_frame().filter(|f| f.timestep >= 3));
        assert!(frame.timestep >= 3);
        driver.stop();
        server.shutdown();
    }

    #[test]
    fn session_survives_server_death_with_errors_counted() {
        let server = test_server();
        let session = BackgroundSession::connect(server.addr(), false).unwrap();
        wait_for(|| session.latest_frame());
        server.shutdown();
        wait_for(|| (session.errors() > 0).then_some(()));
        // Stop cleanly even though the server is gone.
        session.stop();
    }

    #[test]
    fn drop_stops_cleanly() {
        let server = test_server();
        {
            let session = BackgroundSession::connect(server.addr(), false).unwrap();
            wait_for(|| session.latest_frame());
        } // dropped
        server.shutdown();
    }
}
