//! The frame-budget governor.
//!
//! §1.2: "Slower performance destroys the illusion… a tradeoff must be
//! made between a rich environment and frame rate." And §5.3: "the speed
//! of the computation places a limit on particle number." The 1992 system
//! left that tradeoff to the user; this governor automates it: it watches
//! the measured compute time of each frame and scales a *detail factor*
//! (multiplied into the streamline point budget) so the compute stays
//! inside the 1/8-s budget — Table 3's "maximum number of particles"
//! column, applied continuously.

use std::time::Duration;

/// Adaptive detail controller. Multiplicative decrease when a frame
/// blows the budget, slow recovery when there is headroom.
#[derive(Debug, Clone, Copy)]
pub struct FrameGovernor {
    budget: Duration,
    detail: f32,
    min_detail: f32,
    /// Recovery multiplier applied when a frame uses < half the budget.
    recovery: f32,
}

impl FrameGovernor {
    /// Governor for a compute budget (the paper's 1/8 s minus transfer
    /// and render margins; `Duration::from_millis(100)` is the 10 fps
    /// target).
    pub fn new(budget: Duration) -> FrameGovernor {
        FrameGovernor {
            budget,
            detail: 1.0,
            min_detail: 0.05,
            recovery: 1.1,
        }
    }

    /// Current detail factor in `[min_detail, 1]`.
    pub fn detail(&self) -> f32 {
        self.detail
    }

    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Record one frame's compute time; returns the updated detail.
    pub fn observe(&mut self, compute: Duration) -> f32 {
        let t = compute.as_secs_f64();
        let b = self.budget.as_secs_f64();
        if b <= 0.0 {
            return self.detail;
        }
        if t > b {
            // Overshoot: cut proportionally (Table 3's linear-scaling
            // assumption, inverted), with a floor so the scene never
            // disappears entirely.
            let cut = (b / t) as f32;
            self.detail = (self.detail * cut).max(self.min_detail);
        } else if t < 0.5 * b && self.detail < 1.0 {
            // Headroom: creep back up.
            self.detail = (self.detail * self.recovery).min(1.0);
        }
        self.detail
    }

    /// Apply the detail factor to a point budget (≥ 2 so a path is still
    /// a line).
    pub fn scaled_points(&self, max_points: usize) -> usize {
        ((max_points as f32 * self.detail) as usize).max(2)
    }

    /// Overload signal from outside the compute loop (the dlib dispatcher
    /// shed calls with `Busy`): cut detail multiplicatively, same floor as
    /// a budget overshoot. Cheaper frames drain the queue faster, and the
    /// recovery path restores detail once shedding stops.
    pub fn shed(&mut self) -> f32 {
        self.detail = (self.detail * 0.5).max(self.min_detail);
        self.detail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov() -> FrameGovernor {
        FrameGovernor::new(Duration::from_millis(100))
    }

    #[test]
    fn starts_at_full_detail() {
        let g = gov();
        assert_eq!(g.detail(), 1.0);
        assert_eq!(g.scaled_points(200), 200);
    }

    #[test]
    fn overshoot_cuts_proportionally() {
        let mut g = gov();
        // 400 ms against a 100 ms budget: detail → ~0.25.
        g.observe(Duration::from_millis(400));
        assert!((g.detail() - 0.25).abs() < 0.01, "{}", g.detail());
        assert_eq!(g.scaled_points(200), 50);
    }

    #[test]
    fn repeated_overshoot_converges_to_floor() {
        let mut g = gov();
        for _ in 0..50 {
            g.observe(Duration::from_secs(10));
        }
        assert!((g.detail() - 0.05).abs() < 1e-6);
        assert!(g.scaled_points(200) >= 2);
    }

    #[test]
    fn headroom_recovers_slowly() {
        let mut g = gov();
        g.observe(Duration::from_millis(400)); // → 0.25
        let low = g.detail();
        for _ in 0..5 {
            g.observe(Duration::from_millis(10));
        }
        assert!(g.detail() > low);
        assert!(g.detail() <= 1.0);
        // Full recovery eventually.
        for _ in 0..50 {
            g.observe(Duration::from_millis(10));
        }
        assert_eq!(g.detail(), 1.0);
    }

    #[test]
    fn within_budget_no_change() {
        let mut g = gov();
        g.observe(Duration::from_millis(80)); // 0.5·b < t ≤ b: hold
        assert_eq!(g.detail(), 1.0);
    }

    #[test]
    fn simulated_convergence_to_budget() {
        // A synthetic workload whose compute time is proportional to
        // detail (the Table 3 scaling assumption): cost = detail · 300 ms.
        // The governor should settle where cost ≈ budget: detail ≈ 1/3.
        let mut g = gov();
        for _ in 0..30 {
            let cost = Duration::from_secs_f64(0.3 * g.detail() as f64);
            g.observe(cost);
        }
        let settled = g.detail();
        assert!(
            (0.2..=0.45).contains(&settled),
            "settled at {settled}, expected ≈ 1/3"
        );
    }

    #[test]
    fn shed_halves_detail_with_floor_and_recovers() {
        let mut g = gov();
        assert_eq!(g.shed(), 0.5);
        assert_eq!(g.shed(), 0.25);
        for _ in 0..20 {
            g.shed();
        }
        assert!((g.detail() - 0.05).abs() < 1e-6, "floored at min_detail");
        for _ in 0..60 {
            g.observe(Duration::from_millis(10));
        }
        assert_eq!(g.detail(), 1.0, "recovery path restores detail");
    }

    #[test]
    fn scaled_points_floor() {
        let mut g = gov();
        for _ in 0..50 {
            g.observe(Duration::from_secs(100));
        }
        assert_eq!(g.scaled_points(3), 2);
    }
}
