//! The remote system: a dlib server hosting the shared windtunnel.
//!
//! Figure 8's architecture: commands arrive from the network, a single
//! serial dispatcher (dlib's multi-client rule) updates the environment,
//! the visualization is computed against the timestep store (whose
//! prefetching/caching layers hide the disk), and geometry frames go back
//! out. One designated client "drives" the clock by passing
//! `advance = true` in its frame requests; every other client just reads
//! the latest state, which is served from a cache keyed on the
//! environment revision.

use crate::compute::{compute_frame_cached, ComputeConfig, GeometryCache, ToolEngines};
use crate::env::EnvironmentState;
use crate::governor::FrameGovernor;
use crate::interaction::{process_hand, HandStates, InteractionConfig};
use crate::proto::{
    Command, FrameRequest, FrameStats, HelloReply, TimeCommand, PROC_COMMAND, PROC_FRAME,
    PROC_HELLO, PROC_STATS,
};
use bytes::{Bytes, BytesMut};
use dlib::server::{DlibServer, ServerHandle, Session};
use flowfield::CurvilinearGrid;
use std::net::SocketAddr;
use std::sync::Arc;
use storage::TimestepStore;
use tracer::Domain;
use vecmath::Pose;

/// Server configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerOptions {
    pub compute: ComputeConfig,
    pub interaction: InteractionConfig,
    /// Treat the grid as an O-grid (periodic in `i`).
    pub periodic_i: bool,
    /// Compute budget per frame; when set, the governor scales streamline
    /// detail to stay inside it (§1.2's rich-environment/frame-rate
    /// tradeoff, automated). `None` disables governing.
    pub frame_budget: Option<std::time::Duration>,
}

struct ServerState {
    env: EnvironmentState,
    engines: ToolEngines,
    hands: HandStates,
    store: Arc<dyn TimestepStore>,
    grid: CurvilinearGrid,
    domain: Domain,
    opts: ServerOptions,
    governor: Option<FrameGovernor>,
    /// Encoded frame cache: (revision it was computed at, bytes).
    frame_cache: Option<(u64, Bytes)>,
    /// Per-rake geometry cache, layered beneath the frame cache: when the
    /// revision moved but a rake's geometry inputs didn't (head pose,
    /// another rake dragged), its paths are reused instead of re-traced.
    geom_cache: GeometryCache,
    /// Scratch buffer frames are encoded into (reused across frames).
    scratch: BytesMut,
    /// Pipeline stats served by [`PROC_STATS`].
    stats: FrameStats,
}

impl ServerState {
    fn apply_command(&mut self, session: Session, cmd: Command) -> Result<(), String> {
        let user = session.client_id;
        match cmd {
            Command::AddRake { a, b, seed_count, tool } => {
                let ga = self
                    .grid
                    .locate(a)
                    .ok_or_else(|| format!("rake endpoint {a:?} is outside the grid"))?;
                let gb = self
                    .grid
                    .locate(b)
                    .ok_or_else(|| format!("rake endpoint {b:?} is outside the grid"))?;
                self.env
                    .add_rake(tracer::Rake::new(ga, gb, seed_count, tool));
                Ok(())
            }
            Command::RemoveRake { id } => self.env.remove_rake(user, id).map_err(|e| e.to_string()),
            Command::SetTool { id, tool } => {
                self.env.set_tool(id, tool).map_err(|e| e.to_string())
            }
            Command::SetSeedCount { id, n } => {
                self.env.set_seed_count(id, n).map_err(|e| e.to_string())
            }
            Command::Hand { position, gesture } => {
                process_hand(
                    &mut self.env,
                    &self.grid,
                    &mut self.hands,
                    user,
                    position,
                    gesture,
                    &self.opts.interaction,
                );
                Ok(())
            }
            Command::HeadPose { pose } => {
                self.env.update_user(user, pose);
                Ok(())
            }
            Command::Time(tc) => {
                match tc {
                    TimeCommand::Play => self.env.time.play(),
                    TimeCommand::Pause => self.env.time.pause(),
                    TimeCommand::Reverse => self.env.time.reverse(),
                    TimeCommand::SetRate(r) => self.env.time.set_rate(r),
                    TimeCommand::Jump(t) => {
                        self.env.time.jump(t as usize);
                        // Discontinuous jump: existing smoke is no longer
                        // meaningful.
                        self.engines.clear();
                    }
                    TimeCommand::Step(d) => self.env.time.step(d),
                }
                self.env.bump_revision();
                Ok(())
            }
            Command::Goodbye => {
                self.env.disconnect_user(user);
                crate::interaction::forget_user(&mut self.hands, user);
                Ok(())
            }
        }
    }

    fn frame_bytes(&mut self, advance: bool) -> Result<Bytes, String> {
        if advance {
            self.env.time.advance();
            // Streaklines advance once per clock tick, in the *current*
            // field (§2.1), whether or not the integer timestep moved —
            // time can be paused with smoke still streaming.
            let field = self
                .store
                .fetch(self.env.time.timestep())
                .map_err(|e| e.to_string())?;
            self.engines.advance_streaks(
                &self.env,
                field.as_ref(),
                &self.domain,
                &self.opts.compute.streak,
            );
            self.env.bump_revision();
        }
        let revision = self.env.revision();
        self.stats.cum_frames += 1;
        if let Some((cached_rev, bytes)) = &self.frame_cache {
            if *cached_rev == revision {
                self.stats.cum_frame_hits += 1;
                return Ok(bytes.clone());
            }
        }
        // The governor scales the streamline point budget before the
        // compute, then observes the measured time after it.
        let mut cfg = self.opts.compute;
        if let Some(gov) = &self.governor {
            cfg.trace.max_points = gov.scaled_points(cfg.trace.max_points);
            cfg.pathline_window = gov.scaled_points(cfg.pathline_window);
        }
        let started = std::time::Instant::now();
        let (frame, cstats) = compute_frame_cached(
            &self.env,
            &self.engines,
            &mut self.geom_cache,
            self.store.as_ref(),
            &self.grid,
            &self.domain,
            &cfg,
        )
        .map_err(|e| e.to_string())?;
        let encode_started = std::time::Instant::now();
        self.scratch.clear();
        frame.encode_into(&mut self.scratch);
        let bytes = self.scratch.split().freeze();
        if let Some(gov) = &mut self.governor {
            // Wall-clock over compute + encode: the budget governs what a
            // client actually waits for.
            gov.observe(started.elapsed());
        }
        let (cum_geom_hits, cum_geom_misses) = self.geom_cache.cumulative();
        self.stats = FrameStats {
            revision,
            fetch_us: cstats.fetch_us,
            integrate_us: cstats.integrate_us,
            map_us: cstats.map_us,
            encode_us: encode_started.elapsed().as_micros() as u64,
            geom_hits: cstats.geom_hits,
            geom_misses: cstats.geom_misses,
            cum_geom_hits,
            cum_geom_misses,
            cum_frame_hits: self.stats.cum_frame_hits,
            cum_frames: self.stats.cum_frames,
        };
        self.frame_cache = Some((revision, bytes.clone()));
        Ok(bytes)
    }
}

/// A running windtunnel server.
pub struct WindtunnelHandle {
    inner: ServerHandle,
}

impl WindtunnelHandle {
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

/// Start a windtunnel server for one dataset. `addr` is typically
/// `"127.0.0.1:0"`.
pub fn serve(
    store: Arc<dyn TimestepStore>,
    grid: CurvilinearGrid,
    opts: ServerOptions,
    addr: &str,
) -> dlib::Result<WindtunnelHandle> {
    let timestep_count = store.timestep_count();
    let meta = store.meta().clone();
    let bounds = grid.bounds();
    let domain = if opts.periodic_i {
        Domain::o_grid(grid.dims())
    } else {
        Domain::boxed(grid.dims())
    };
    let state = ServerState {
        env: EnvironmentState::new(timestep_count),
        engines: ToolEngines::new(),
        hands: HandStates::new(),
        store,
        grid,
        domain,
        governor: opts.frame_budget.map(FrameGovernor::new),
        opts,
        frame_cache: None,
        geom_cache: GeometryCache::new(),
        scratch: BytesMut::new(),
        stats: FrameStats::default(),
    };

    let mut server = DlibServer::new(state);
    server.register(PROC_HELLO, move |state, session: Session, _args| {
        // Joining announces presence (head pose arrives later).
        state.env.update_user(session.client_id, Pose::IDENTITY);
        let reply = HelloReply {
            dataset_name: meta.name.clone(),
            dims: meta.dims,
            timestep_count: meta.timestep_count as u32,
            dt: meta.dt,
            bounds_min: bounds.min,
            bounds_max: bounds.max,
            user_id: session.client_id,
        };
        Ok(reply.encode())
    });
    server.register(PROC_COMMAND, |state, session, args| {
        let cmd = Command::decode(args).map_err(|e| e.to_string())?;
        state.apply_command(session, cmd)?;
        Ok(Bytes::new())
    });
    server.register(PROC_FRAME, |state, _session, args| {
        let req = FrameRequest::decode(args).map_err(|e| e.to_string())?;
        state.frame_bytes(req.advance)
    });
    server.register(PROC_STATS, |state, _session, _args| Ok(state.stats.encode()));

    let inner = server.serve(addr)?;
    Ok(WindtunnelHandle { inner })
}
