//! The remote system: a dlib server hosting the shared windtunnel.
//!
//! Figure 8's architecture: commands arrive from the network, a single
//! serial dispatcher (dlib's multi-client rule) updates the environment,
//! the visualization is computed against the timestep store (whose
//! prefetching/caching layers hide the disk), and geometry frames go back
//! out. One designated client "drives" the clock by passing
//! `advance = true` in its frame requests; every other client just reads
//! the latest state, which is served from a cache keyed on the
//! environment revision.

use crate::compute::{compute_frame_cached, ComputeConfig, GeometryCache, ToolEngines};
use crate::env::{EnvironmentState, RakeId, UserId};
use crate::governor::FrameGovernor;
use crate::interaction::{process_hand, HandStates, InteractionConfig};
use crate::proto::{
    splice_delta, Command, DeltaRequest, FrameRequest, FrameStats, GeometryFrame, HelloReply,
    RakeChunkMsg, TimeCommand, PROC_COMMAND, PROC_FRAME, PROC_FRAME_DELTA, PROC_HELLO, PROC_STATS,
};
use bytes::{Bytes, BytesMut};
use dlib::server::{DlibServer, ServerConfig, ServerHandle, Session, SessionEvent};
use dlib::wire::len_u32;
use flowfield::CurvilinearGrid;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::TimestepStore;
use tracer::Domain;
use vecmath::Pose;

/// Tombstones kept for delta patching before falling back to keyframes.
/// Once pruned, clients whose baseline predates the oldest retained
/// tombstone get a full keyframe instead — correct either way, so the cap
/// only bounds memory on delete-heavy sessions.
const MAX_TOMBSTONES: usize = 512;

/// Server configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerOptions {
    pub compute: ComputeConfig,
    pub interaction: InteractionConfig,
    /// Treat the grid as an O-grid (periodic in `i`).
    pub periodic_i: bool,
    /// Compute budget per frame; when set, the governor scales streamline
    /// detail to stay inside it (§1.2's rich-environment/frame-rate
    /// tradeoff, automated). `None` disables governing.
    pub frame_budget: Option<std::time::Duration>,
    /// Force a full keyframe on every Nth FRAME_DELTA reply per session
    /// (0 = only when a client actually needs one). A periodic keyframe
    /// bounds how long a corrupted client scene could persist.
    pub keyframe_interval: u32,
    /// Reap sessions that deliver no frame (not even a PING) for this
    /// long; their rake grabs and delta baselines are released. `None`
    /// reaps only on connection drop.
    pub heartbeat_timeout: Option<Duration>,
    /// Dispatch queue depth before calls are shed with `Busy`
    /// (0 = dlib's default).
    pub queue_capacity: usize,
}

/// One rake's paths, pre-encoded for FRAME_DELTA replies. Shared across
/// every connected client: the bytes are encoded once per content change
/// and spliced (refcounted, not copied) into each reply that needs them.
struct ChunkEntry {
    /// Geometry-cache stamp the bytes were encoded from; a differing
    /// stamp means the rake's paths were re-traced since.
    stamp: u64,
    /// Revision at which this content first became visible — clients
    /// whose baseline is older get the chunk resent.
    content_rev: u64,
    bytes: Bytes,
}

/// Per-client delta bookkeeping.
#[derive(Default)]
struct DeltaSession {
    /// Revision of the last FRAME_DELTA reply this client received.
    last_sent: u64,
    /// Deltas since the last keyframe (drives `keyframe_interval`).
    frames_since_key: u32,
}

struct ServerState {
    env: EnvironmentState,
    engines: ToolEngines,
    hands: HandStates,
    store: Arc<dyn TimestepStore>,
    grid: CurvilinearGrid,
    domain: Domain,
    opts: ServerOptions,
    governor: Option<FrameGovernor>,
    /// The typed frame for the current revision — computed at most once
    /// per revision no matter how many clients or RPC kinds request it,
    /// so FRAME and FRAME_DELTA describe identical content.
    frame: Option<GeometryFrame>,
    /// Wall-clock of the last fresh compute (governor input).
    compute_elapsed: Duration,
    /// Encoded frame cache: (revision it was computed at, bytes).
    frame_cache: Option<(u64, Bytes)>,
    /// Per-rake geometry cache, layered beneath the frame cache: when the
    /// revision moved but a rake's geometry inputs didn't (head pose,
    /// another rake dragged), its paths are reused instead of re-traced.
    geom_cache: GeometryCache,
    /// Broadcast cache of per-rake *encoded* chunks for FRAME_DELTA.
    chunk_cache: HashMap<RakeId, ChunkEntry>,
    /// Rakes deleted recently: (id, revision the deletion bumped to).
    tombstones: Vec<(RakeId, u64)>,
    /// Baselines below this can no longer be delta-patched (their
    /// tombstones were pruned) and are served a keyframe.
    delta_floor: u64,
    /// Per-client delta state, dropped on Goodbye.
    sessions: HashMap<UserId, DeltaSession>,
    /// Scratch buffer frames are encoded into (reused across frames).
    scratch: BytesMut,
    /// Pipeline stats served by [`PROC_STATS`].
    stats: FrameStats,
    /// Lifetime frame fetches served by a substituted neighbouring
    /// timestep (the streak engine counts its own separately).
    cum_substituted: u64,
    /// Shared with the dlib transport: total calls shed with `Busy`.
    shed_counter: Arc<AtomicU64>,
    /// How much of `shed_counter` the governor has already reacted to.
    shed_seen: u64,
}

impl ServerState {
    fn apply_command(&mut self, session: Session, cmd: Command) -> Result<(), String> {
        let user = session.client_id;
        match cmd {
            Command::AddRake {
                a,
                b,
                seed_count,
                tool,
            } => {
                let ga = self
                    .grid
                    .locate(a)
                    .ok_or_else(|| format!("rake endpoint {a:?} is outside the grid"))?;
                let gb = self
                    .grid
                    .locate(b)
                    .ok_or_else(|| format!("rake endpoint {b:?} is outside the grid"))?;
                self.env
                    .add_rake(tracer::Rake::new(ga, gb, seed_count, tool));
                Ok(())
            }
            Command::RemoveRake { id } => {
                self.env.remove_rake(user, id).map_err(|e| e.to_string())?;
                self.record_tombstone(id);
                Ok(())
            }
            Command::SetTool { id, tool } => self.env.set_tool(id, tool).map_err(|e| e.to_string()),
            Command::SetSeedCount { id, n } => {
                self.env.set_seed_count(id, n).map_err(|e| e.to_string())
            }
            Command::Hand { position, gesture } => {
                process_hand(
                    &mut self.env,
                    &self.grid,
                    &mut self.hands,
                    user,
                    position,
                    gesture,
                    &self.opts.interaction,
                );
                Ok(())
            }
            Command::HeadPose { pose } => {
                self.env.update_user(user, pose);
                Ok(())
            }
            Command::Time(tc) => {
                match tc {
                    TimeCommand::Play => self.env.time.play(),
                    TimeCommand::Pause => self.env.time.pause(),
                    TimeCommand::Reverse => self.env.time.reverse(),
                    TimeCommand::SetRate(r) => self.env.time.set_rate(r),
                    TimeCommand::Jump(t) => {
                        self.env.time.jump(t as usize);
                        // Discontinuous jump: existing smoke is no longer
                        // meaningful.
                        self.engines.clear();
                    }
                    TimeCommand::Step(d) => self.env.time.step(d),
                }
                self.env.bump_revision();
                Ok(())
            }
            Command::Goodbye => {
                self.env.disconnect_user(user);
                crate::interaction::forget_user(&mut self.hands, user);
                self.sessions.remove(&user);
                Ok(())
            }
        }
    }

    fn record_tombstone(&mut self, id: RakeId) {
        self.tombstones.push((id, self.env.revision()));
        if self.tombstones.len() > MAX_TOMBSTONES {
            let excess = self.tombstones.len() - MAX_TOMBSTONES;
            for (_, rev) in self.tombstones.drain(..excess) {
                self.delta_floor = self.delta_floor.max(rev);
            }
        }
    }

    /// Advance the clock (and the persistent smoke) for a driving client.
    fn tick(&mut self, advance: bool) -> Result<(), String> {
        if !advance {
            return Ok(());
        }
        // Tell the store which way the clock is running so a prefetching
        // backend aims its read-ahead before the stride is observable —
        // including the instant playback reverses.
        if self.env.time.is_playing() {
            self.store
                .hint_direction(self.env.time.rate().signum() as i64);
        }
        self.env.time.advance();
        // Streaklines advance once per clock tick, in the field at the
        // *fractional* current time (§2.1, blended between the two
        // bracketing timesteps), whether or not the integer timestep
        // moved — time can be paused with smoke still streaming.
        let adv = self
            .engines
            .advance_streaks(
                &self.env,
                self.store.as_ref(),
                &self.domain,
                &self.opts.compute.streak,
            )
            .map_err(|e| e.to_string())?;
        // Stage breakdown of the advance, surfaced via PROC_STATS. The
        // streak_* fields describe the latest tick and survive frame
        // refreshes through the `..self.stats` spread there.
        self.stats.streak_sample_us = adv.sample_ns / 1_000;
        self.stats.streak_integrate_us = adv.integrate_ns / 1_000;
        self.stats.streak_compact_us = adv.compact_ns / 1_000;
        self.stats.streak_inject_us = adv.inject_ns / 1_000;
        let step_ns = adv.sample_ns + adv.integrate_ns;
        self.stats.streak_particles_per_s = adv
            .stepped
            .saturating_mul(1_000_000_000)
            .checked_div(step_ns)
            .unwrap_or(0);
        self.env.bump_revision();
        Ok(())
    }

    /// Compute the typed frame for the current revision unless it is
    /// already computed. Both the full-frame and the delta paths go
    /// through here, so within one revision every client — whatever RPC
    /// it speaks — sees the same content. Returns whether a fresh compute
    /// happened.
    fn refresh_frame(&mut self) -> Result<bool, String> {
        let revision = self.env.revision();
        if self.frame.as_ref().map(|f| f.revision) == Some(revision) {
            return Ok(false);
        }
        // The governor scales the streamline point budget before the
        // compute, then observes the measured time after the reply is
        // encoded.
        let mut cfg = self.opts.compute;
        if let Some(gov) = &self.governor {
            cfg.trace.max_points = gov.scaled_points(cfg.trace.max_points);
            cfg.pathline_window = gov.scaled_points(cfg.pathline_window);
        }
        let started = Instant::now();
        let (frame, cstats) = compute_frame_cached(
            &self.env,
            &mut self.engines,
            &mut self.geom_cache,
            self.store.as_ref(),
            &self.grid,
            &self.domain,
            &cfg,
        )
        .map_err(|e| e.to_string())?;
        self.compute_elapsed = started.elapsed();
        self.cum_substituted += u64::from(cstats.substituted_fetches);
        let (cum_geom_hits, cum_geom_misses) = self.geom_cache.cumulative();
        self.stats = FrameStats {
            revision,
            fetch_us: cstats.fetch_us,
            integrate_us: cstats.integrate_us,
            map_us: cstats.map_us,
            encode_us: 0,
            geom_hits: cstats.geom_hits,
            geom_misses: cstats.geom_misses,
            cum_geom_hits,
            cum_geom_misses,
            chunk_encode_us: 0,
            delta_encode_us: 0,
            ..self.stats
        };
        self.frame = Some(frame);
        Ok(true)
    }

    /// Bring the broadcast chunk cache up to date with the current frame:
    /// encode rakes whose paths changed (once, for all clients), evict
    /// deleted ones.
    fn refresh_chunks(&mut self) {
        // No frame computed yet means nothing to refresh.
        let Some(frame) = self.frame.as_ref() else {
            return;
        };
        let revision = frame.revision;
        let live: Vec<RakeId> = frame.rakes.iter().map(|r| r.id).collect();
        self.chunk_cache.retain(|id, _| live.contains(id));
        let started = Instant::now();
        let mut encoded = 0u64;
        for id in live {
            let Some((paths, stamp)) = self.geom_cache.rake_geometry(id) else {
                continue;
            };
            if self.chunk_cache.get(&id).map(|e| e.stamp) == Some(stamp) {
                continue;
            }
            let mut b = BytesMut::new();
            RakeChunkMsg::encode_parts(&mut b, id, revision, paths);
            self.chunk_cache.insert(
                id,
                ChunkEntry {
                    stamp,
                    content_rev: revision,
                    bytes: b.freeze(),
                },
            );
            encoded += 1;
        }
        if encoded > 0 {
            self.stats.chunk_encode_us = started.elapsed().as_micros() as u64;
            self.stats.cum_chunk_encodes += encoded;
        }
    }

    /// React to transport-level load shedding since the last frame: each
    /// batch of `Busy` replies cuts frame detail once, so cheaper frames
    /// drain the queue (the governor's recovery path restores detail when
    /// shedding stops). Also mirrors the counter into PROC_STATS.
    fn note_shedding(&mut self) {
        let total = self.shed_counter.load(std::sync::atomic::Ordering::Relaxed);
        if total > self.shed_seen {
            self.shed_seen = total;
            self.stats.cum_shed_calls = total;
            if let Some(gov) = &mut self.governor {
                gov.shed();
            }
        }
    }

    /// Session-lifecycle bookkeeping, registered as the dlib event hook:
    /// a vanished client (connection drop, protocol violation, or missed
    /// heartbeats) must release everything it held — rake grabs, presence,
    /// and its delta baseline — exactly as a polite `Goodbye` would.
    fn session_event(&mut self, session: Session, event: SessionEvent) {
        match event {
            SessionEvent::Connected => {
                self.stats.live_sessions += 1;
            }
            SessionEvent::Disconnected(_reason) => {
                let user = session.client_id;
                self.env.disconnect_user(user);
                crate::interaction::forget_user(&mut self.hands, user);
                self.sessions.remove(&user);
                self.stats.live_sessions = self.stats.live_sessions.saturating_sub(1);
                self.stats.cum_reaped_sessions += 1;
            }
        }
    }

    fn frame_bytes(&mut self, advance: bool) -> Result<Bytes, String> {
        self.note_shedding();
        self.tick(advance)?;
        let revision = self.env.revision();
        self.stats.cum_frames += 1;
        if let Some((cached_rev, bytes)) = &self.frame_cache {
            if *cached_rev == revision {
                self.stats.cum_frame_hits += 1;
                let bytes = bytes.clone();
                self.stats.cum_bytes_sent += bytes.len() as u64;
                return Ok(bytes);
            }
        }
        let fresh = self.refresh_frame()?;
        let encode_started = Instant::now();
        self.scratch.clear();
        let Some(frame) = self.frame.as_ref() else {
            return Err("no frame computed yet".into());
        };
        frame.encode_into(&mut self.scratch);
        let bytes = self.scratch.split().freeze();
        self.stats.encode_us = encode_started.elapsed().as_micros() as u64;
        if fresh {
            if let Some(gov) = &mut self.governor {
                // Wall-clock over compute + encode: the budget governs
                // what a client actually waits for.
                gov.observe(self.compute_elapsed + encode_started.elapsed());
            }
        }
        self.stats.cum_bytes_sent += bytes.len() as u64;
        self.frame_cache = Some((revision, bytes.clone()));
        Ok(bytes)
    }

    fn delta_bytes(&mut self, client: UserId, req: DeltaRequest) -> Result<Bytes, String> {
        self.note_shedding();
        self.tick(req.advance)?;
        let revision = self.env.revision();
        self.stats.cum_frames += 1;
        let fresh = self.refresh_frame()?;
        self.refresh_chunks();

        let assemble_started = Instant::now();
        let sess = self.sessions.entry(client).or_default();
        let interval = self.opts.keyframe_interval;
        let forced = interval > 0 && sess.frames_since_key >= interval;
        // A usable baseline is one this client actually received from us,
        // no newer than the current revision, and no older than the
        // tombstone horizon. Anything else resyncs with a keyframe.
        let keyframe = forced
            || req.baseline == 0
            || req.baseline > sess.last_sent
            || req.baseline > revision
            || req.baseline < self.delta_floor;
        let baseline = if keyframe { 0 } else { req.baseline };

        let Some(frame) = self.frame.as_ref() else {
            return Err("no frame computed yet".into());
        };
        // frame.rakes ascends by id (environment BTreeMap order), so the
        // spliced chunks do too — matching the full-frame path order.
        let chunk_blobs: Vec<Bytes> = frame
            .rakes
            .iter()
            .filter_map(|rk| self.chunk_cache.get(&rk.id))
            .filter(|e| keyframe || e.content_rev > baseline)
            .map(|e| e.bytes.clone())
            .collect();
        let tombstones: Vec<RakeId> = if keyframe {
            Vec::new()
        } else {
            self.tombstones
                .iter()
                .filter(|(_, rev)| *rev > baseline)
                .map(|(id, _)| *id)
                .collect()
        };
        self.scratch.clear();
        splice_delta(
            &mut self.scratch,
            keyframe,
            frame.timestep,
            frame.time,
            revision,
            baseline,
            &frame.rakes,
            &chunk_blobs,
            &tombstones,
            &frame.users,
        );
        let bytes = self.scratch.split().freeze();

        self.stats.delta_encode_us = assemble_started.elapsed().as_micros() as u64;
        if keyframe {
            self.stats.cum_keyframes += 1;
        } else {
            self.stats.cum_delta_frames += 1;
        }
        self.stats.cum_bytes_sent += bytes.len() as u64;
        if fresh {
            if let Some(gov) = &mut self.governor {
                gov.observe(self.compute_elapsed + assemble_started.elapsed());
            }
        }
        let sess = self.sessions.entry(client).or_default();
        sess.last_sent = revision;
        if keyframe {
            sess.frames_since_key = 0;
        } else {
            sess.frames_since_key += 1;
        }
        Ok(bytes)
    }
}

/// A running windtunnel server.
pub struct WindtunnelHandle {
    inner: ServerHandle,
}

impl WindtunnelHandle {
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

/// Start a windtunnel server for one dataset. `addr` is typically
/// `"127.0.0.1:0"`.
pub fn serve(
    store: Arc<dyn TimestepStore>,
    grid: CurvilinearGrid,
    opts: ServerOptions,
    addr: &str,
) -> dlib::Result<WindtunnelHandle> {
    let timestep_count = store.timestep_count();
    let meta = store.meta().clone();
    let bounds = grid.bounds();
    let domain = if opts.periodic_i {
        Domain::o_grid(grid.dims())
    } else {
        Domain::boxed(grid.dims())
    };
    let mut transport = ServerConfig {
        heartbeat_timeout: opts.heartbeat_timeout,
        ..ServerConfig::default()
    };
    if opts.queue_capacity > 0 {
        transport.queue_capacity = opts.queue_capacity;
    }
    let shed_counter: Arc<AtomicU64> = Arc::clone(&transport.shed_counter);
    let state = ServerState {
        env: EnvironmentState::new(timestep_count),
        engines: ToolEngines::new(),
        hands: HandStates::new(),
        store,
        grid,
        domain,
        governor: opts.frame_budget.map(FrameGovernor::new),
        opts,
        frame: None,
        compute_elapsed: Duration::ZERO,
        frame_cache: None,
        geom_cache: GeometryCache::new(),
        chunk_cache: HashMap::new(),
        tombstones: Vec::new(),
        delta_floor: 0,
        sessions: HashMap::new(),
        scratch: BytesMut::new(),
        stats: FrameStats::default(),
        cum_substituted: 0,
        shed_counter,
        shed_seen: 0,
    };

    let mut server = DlibServer::new(state);
    server.on_session_event(|state, session, event| state.session_event(session, event));
    server.register(PROC_HELLO, move |state, session: Session, _args| {
        // Joining announces presence (head pose arrives later).
        state.env.update_user(session.client_id, Pose::IDENTITY);
        let reply = HelloReply {
            dataset_name: meta.name.clone(),
            dims: meta.dims,
            timestep_count: len_u32(meta.timestep_count),
            dt: meta.dt,
            bounds_min: bounds.min,
            bounds_max: bounds.max,
            user_id: session.client_id,
        };
        Ok(reply.encode())
    });
    server.register(PROC_COMMAND, |state, session, args| {
        let cmd = Command::decode(args).map_err(|e| e.to_string())?;
        state.apply_command(session, cmd)?;
        Ok(Bytes::new())
    });
    server.register(PROC_FRAME, |state, _session, args| {
        let req = FrameRequest::decode(args).map_err(|e| e.to_string())?;
        state.frame_bytes(req.advance)
    });
    server.register(PROC_FRAME_DELTA, |state, session, args| {
        let req = DeltaRequest::decode(args).map_err(|e| e.to_string())?;
        state.delta_bytes(session.client_id, req)
    });
    server.register(PROC_STATS, |state, _session, _args| {
        // Storage counters are polled at reply time so they are current
        // even when no frame has been recomputed since the last call.
        let io = state.store.io_stats();
        state.stats.cum_io_wait_us = io.io_wait_us;
        state.stats.cum_decode_us = io.decode_us;
        state.stats.cum_prefetch_hits = io.prefetch_hits;
        state.stats.cum_prefetch_misses = io.prefetch_misses;
        let health = state.store.health_stats();
        state.stats.cum_store_retries = health.retried_reads;
        state.stats.cum_salvaged_chunks = health.salvaged_chunks;
        state.stats.cum_zero_filled_chunks = health.zero_filled_chunks;
        state.stats.cum_quarantined_steps = health.quarantined_steps;
        state.stats.cum_substituted_fetches =
            state.cum_substituted + state.engines.substituted_fetches();
        Ok(state.stats.encode())
    });

    let inner = server.serve_with(addr, transport)?;
    Ok(WindtunnelHandle { inner })
}
