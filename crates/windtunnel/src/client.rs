//! The workstation side: commands out, geometry in, frames rendered.
//!
//! Figure 9: the workstation runs a network conversation (this module's
//! blocking calls, meant to live on a dedicated thread) and a renderer
//! (the `vr` substrate) that draws the last received environment state
//! from the head-tracked point of view at full rate.

use crate::proto::{
    Command, FrameRequest, FrameStats, GeometryFrame, HelloReply, PathKind, PROC_COMMAND,
    PROC_FRAME, PROC_HELLO, PROC_STATS,
};
use dlib::{DlibClient, Result};
use std::net::SocketAddr;
use vecmath::Vec3;
use vr::render::Rgb;
use vr::stereo::{render_anaglyph, StereoCamera};
use vr::Framebuffer;

/// Per-kind line shades for the anaglyph display (applied to both eyes).
#[derive(Debug, Clone, Copy)]
pub struct Palette {
    pub streamline: u8,
    pub particle_path: u8,
    pub streak: u8,
    pub rake: u8,
}

impl Default for Palette {
    fn default() -> Self {
        Palette {
            streamline: 235,
            particle_path: 180,
            streak: 140,
            rake: 255,
        }
    }
}

/// A connected windtunnel client.
pub struct WindtunnelClient {
    dlib: DlibClient,
    hello: HelloReply,
    said_goodbye: bool,
}

impl WindtunnelClient {
    /// Connect and perform the session handshake.
    pub fn connect(addr: SocketAddr) -> Result<WindtunnelClient> {
        let mut dlib = DlibClient::connect(addr)?;
        let reply = dlib.call(PROC_HELLO, b"")?;
        let hello = HelloReply::decode(&reply)?;
        Ok(WindtunnelClient {
            dlib,
            hello,
            said_goodbye: false,
        })
    }

    /// Session metadata learned at connect time.
    pub fn hello(&self) -> &HelloReply {
        &self.hello
    }

    /// This client's user id (for recognizing its own rake locks).
    pub fn user_id(&self) -> u64 {
        self.hello.user_id
    }

    /// Send one environment command.
    pub fn send(&mut self, cmd: &Command) -> Result<()> {
        self.dlib.call(PROC_COMMAND, &cmd.encode())?;
        if matches!(cmd, Command::Goodbye) {
            self.said_goodbye = true;
        }
        Ok(())
    }

    /// Request the current geometry frame; `advance` drives the shared
    /// clock (exactly one client per session should pass `true`).
    pub fn frame(&mut self, advance: bool) -> Result<GeometryFrame> {
        let bytes = self
            .dlib
            .call(PROC_FRAME, &FrameRequest { advance }.encode())?;
        GeometryFrame::decode(&bytes)
    }

    /// Fetch the server's frame-pipeline stats (stage timings + cache
    /// counters). Purely observational: never advances time or touches
    /// the environment.
    pub fn stats(&mut self) -> Result<FrameStats> {
        let bytes = self.dlib.call(PROC_STATS, b"")?;
        FrameStats::decode(&bytes)
    }

    /// Render a frame into an anaglyph stereo framebuffer from the given
    /// head-tracked camera — the full client-side display path. Draws the
    /// other participants' heads too (§5.1: "indicating to participants
    /// in the environment where everyone is"); pass your own user id so
    /// your head is not drawn over your eyes.
    pub fn render_stereo_for_user(
        frame: &GeometryFrame,
        fb: &mut Framebuffer,
        camera: &StereoCamera,
        palette: &Palette,
        self_user: u64,
    ) {
        let mut lines: Vec<(Vec<Vec3>, u8)> =
            Vec::with_capacity(frame.paths.len() + frame.rakes.len() + frame.users.len() * 2);
        for p in &frame.paths {
            let shade = match p.kind {
                PathKind::Streamline => palette.streamline,
                PathKind::ParticlePath => palette.particle_path,
                PathKind::Streak => palette.streak,
            };
            lines.push((p.points.clone(), shade));
        }
        for r in &frame.rakes {
            lines.push((vec![r.a, r.b], palette.rake));
        }
        for u in &frame.users {
            if u.id == self_user {
                continue;
            }
            for glyph in head_glyph(&u.head) {
                lines.push((glyph, palette.rake));
            }
        }
        render_anaglyph(fb, camera, &lines);
    }

    /// [`WindtunnelClient::render_stereo_for_user`] drawing every user's
    /// head (suitable for spectator views).
    pub fn render_stereo(
        frame: &GeometryFrame,
        fb: &mut Framebuffer,
        camera: &StereoCamera,
        palette: &Palette,
    ) {
        Self::render_stereo_for_user(frame, fb, camera, palette, u64::MAX);
    }

    /// Render a frame in mono (the "conventional screen and mouse
    /// environment" §6 mentions as the other use of the architecture).
    pub fn render_mono(
        frame: &GeometryFrame,
        fb: &mut Framebuffer,
        mvp: &vecmath::Mat4,
        palette: &Palette,
    ) {
        for p in &frame.paths {
            let color = match p.kind {
                PathKind::Streamline => Rgb::new(80, 200, 255),
                PathKind::ParticlePath => Rgb::new(255, 180, 60),
                PathKind::Streak => Rgb::new(220, 220, 220),
            };
            fb.draw_polyline(mvp, &p.points, color);
        }
        for r in &frame.rakes {
            fb.draw_polyline(mvp, &[r.a, r.b], Rgb::new(palette.rake, 60, 60));
        }
    }
}

/// A simple head marker: a diamond around the head position plus a gaze
/// tick along the head's forward (-Z) axis.
pub fn head_glyph(head: &vecmath::Pose) -> Vec<Vec<Vec3>> {
    let c = head.position;
    let r = 0.25;
    let x = Vec3::new(r, 0.0, 0.0);
    let y = Vec3::new(0.0, r, 0.0);
    let z = Vec3::new(0.0, 0.0, r);
    let diamond = vec![
        c + x, c + y, c - x, c - y, c + x, c + z, c - x, c - z, c + x,
    ];
    let gaze_dir = head.orientation.rotate(Vec3::new(0.0, 0.0, -1.0));
    let gaze = vec![c, c + gaze_dir * (3.0 * r)];
    vec![diamond, gaze]
}

impl Drop for WindtunnelClient {
    fn drop(&mut self) {
        if !self.said_goodbye {
            let _ = self.dlib.call(PROC_COMMAND, &Command::Goodbye.encode());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeConfig;
    use crate::proto::TimeCommand;
    use crate::server::{serve, ServerOptions};
    use flowfield::{dataset::VelocityCoords, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField};
    use std::sync::Arc;
    use storage::MemoryStore;
    use tracer::{ToolKind, TraceConfig};
    use vecmath::{Aabb, Pose};
    use vr::Gesture;

    /// Spin up a server over a unit-spacing Cartesian grid with uniform
    /// +x flow.
    fn test_server() -> (crate::server::WindtunnelHandle, SocketAddr) {
        let dims = Dims::new(16, 9, 9);
        let grid = CurvilinearGrid::cartesian(
            dims,
            Aabb::new(Vec3::ZERO, Vec3::new(15.0, 8.0, 8.0)),
        )
        .unwrap();
        let meta = DatasetMeta {
            name: "uniform".into(),
            dims,
            timestep_count: 8,
            dt: 0.1,
            coords: VelocityCoords::Grid,
        };
        let fields = (0..8)
            .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X))
            .collect();
        let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
        let store = Arc::new(MemoryStore::from_dataset(ds));
        let opts = ServerOptions {
            compute: ComputeConfig {
                trace: TraceConfig {
                    dt: 1.0,
                    max_points: 6,
                    ..TraceConfig::default()
                },
                ..ComputeConfig::default()
            },
            ..ServerOptions::default()
        };
        let handle = serve(store, grid, opts, "127.0.0.1:0").unwrap();
        let addr = handle.addr();
        (handle, addr)
    }

    #[test]
    fn handshake_reports_dataset() {
        let (handle, addr) = test_server();
        let client = WindtunnelClient::connect(addr).unwrap();
        assert_eq!(client.hello().dataset_name, "uniform");
        assert_eq!(client.hello().timestep_count, 8);
        assert!(client.user_id() > 0);
        handle.shutdown();
    }

    #[test]
    fn add_rake_and_receive_streamlines() {
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(2.0, 2.0, 4.0),
                b: Vec3::new(2.0, 6.0, 4.0),
                seed_count: 4,
                tool: ToolKind::Streamline,
            })
            .unwrap();
        let frame = client.frame(false).unwrap();
        assert_eq!(frame.rakes.len(), 1);
        assert_eq!(frame.paths.len(), 4);
        // Physical-space paths flow in +x on the unit grid.
        let p = &frame.paths[0].points;
        assert!(p.last().unwrap().x > p.first().unwrap().x);
        handle.shutdown();
    }

    #[test]
    fn rake_outside_grid_rejected() {
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        let err = client.send(&Command::AddRake {
            a: Vec3::splat(1.0e5),
            b: Vec3::splat(1.0e5 + 1.0),
            seed_count: 2,
            tool: ToolKind::Streamline,
        });
        assert!(err.is_err());
        handle.shutdown();
    }

    #[test]
    fn shared_session_lock_over_the_wire() {
        // The §5.1 scenario end-to-end: two workstations, one rake.
        let (handle, addr) = test_server();
        let mut alice = WindtunnelClient::connect(addr).unwrap();
        let mut bob = WindtunnelClient::connect(addr).unwrap();
        alice
            .send(&Command::AddRake {
                a: Vec3::new(4.0, 4.0, 4.0),
                b: Vec3::new(6.0, 4.0, 4.0),
                seed_count: 2,
                tool: ToolKind::Streamline,
            })
            .unwrap();
        // Alice grabs the center (5, 4, 4).
        alice
            .send(&Command::Hand {
                position: Vec3::new(5.0, 4.0, 4.0),
                gesture: Gesture::Fist,
            })
            .unwrap();
        let f = alice.frame(false).unwrap();
        assert_eq!(f.rakes[0].owner, alice.user_id());
        // Bob tries the same handle: locked out.
        bob.send(&Command::Hand {
            position: Vec3::new(5.0, 4.0, 4.0),
            gesture: Gesture::Fist,
        })
        .unwrap();
        let f = bob.frame(false).unwrap();
        assert_eq!(f.rakes[0].owner, alice.user_id());
        // Bob's drag does nothing.
        bob.send(&Command::Hand {
            position: Vec3::new(5.0, 6.0, 4.0),
            gesture: Gesture::Fist,
        })
        .unwrap();
        let f = bob.frame(false).unwrap();
        assert!((f.rakes[0].a.y - 4.0).abs() < 1e-3);
        // Alice drags: the rake moves for everyone.
        alice
            .send(&Command::Hand {
                position: Vec3::new(5.0, 5.0, 4.0),
                gesture: Gesture::Fist,
            })
            .unwrap();
        let f = bob.frame(false).unwrap();
        assert!((f.rakes[0].a.y - 5.0).abs() < 1e-3);
        // Alice releases; Bob can now grab.
        alice
            .send(&Command::Hand {
                position: Vec3::new(5.0, 5.0, 4.0),
                gesture: Gesture::Open,
            })
            .unwrap();
        bob.send(&Command::Hand {
            position: Vec3::new(5.0, 5.0, 4.0),
            gesture: Gesture::Fist,
        })
        .unwrap();
        let f = bob.frame(false).unwrap();
        assert_eq!(f.rakes[0].owner, bob.user_id());
        handle.shutdown();
    }

    #[test]
    fn time_advances_only_for_driver() {
        let (handle, addr) = test_server();
        let mut driver = WindtunnelClient::connect(addr).unwrap();
        let mut passenger = WindtunnelClient::connect(addr).unwrap();
        driver.send(&Command::Time(TimeCommand::Play)).unwrap();
        let f0 = passenger.frame(false).unwrap();
        assert_eq!(f0.timestep, 0);
        driver.frame(true).unwrap();
        driver.frame(true).unwrap();
        let f = passenger.frame(false).unwrap();
        assert_eq!(f.timestep, 2);
        handle.shutdown();
    }

    #[test]
    fn frame_cache_consistent_between_clients() {
        let (handle, addr) = test_server();
        let mut a = WindtunnelClient::connect(addr).unwrap();
        let mut b = WindtunnelClient::connect(addr).unwrap();
        a.send(&Command::AddRake {
            a: Vec3::new(2.0, 4.0, 4.0),
            b: Vec3::new(2.0, 5.0, 4.0),
            seed_count: 2,
            tool: ToolKind::Streamline,
        })
        .unwrap();
        let fa = a.frame(false).unwrap();
        let fb = b.frame(false).unwrap();
        assert_eq!(fa, fb); // same revision, identical frame
        handle.shutdown();
    }

    #[test]
    fn goodbye_releases_locks() {
        let (handle, addr) = test_server();
        let mut a = WindtunnelClient::connect(addr).unwrap();
        let mut b = WindtunnelClient::connect(addr).unwrap();
        a.send(&Command::AddRake {
            a: Vec3::new(4.0, 4.0, 4.0),
            b: Vec3::new(6.0, 4.0, 4.0),
            seed_count: 2,
            tool: ToolKind::Streamline,
        })
        .unwrap();
        a.send(&Command::Hand {
            position: Vec3::new(5.0, 4.0, 4.0),
            gesture: Gesture::Fist,
        })
        .unwrap();
        drop(a); // sends Goodbye
        let f = b.frame(false).unwrap();
        assert_eq!(f.rakes[0].owner, 0, "lock must be released on goodbye");
        handle.shutdown();
    }

    #[test]
    fn head_poses_shared() {
        let (handle, addr) = test_server();
        let mut a = WindtunnelClient::connect(addr).unwrap();
        let mut b = WindtunnelClient::connect(addr).unwrap();
        let pose = Pose::new(Vec3::new(1.0, 1.7, 3.0), Default::default());
        a.send(&Command::HeadPose { pose }).unwrap();
        let f = b.frame(false).unwrap();
        let a_user = f.users.iter().find(|u| u.id == a.user_id()).unwrap();
        assert!(a_user.head.position.distance(pose.position) < 1e-5);
        handle.shutdown();
    }

    #[test]
    fn stereo_render_of_live_frame() {
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(2.0, 3.0, 4.0),
                b: Vec3::new(2.0, 5.0, 4.0),
                seed_count: 4,
                tool: ToolKind::Streamline,
            })
            .unwrap();
        let frame = client.frame(false).unwrap();
        let mut fb = Framebuffer::new(160, 160);
        let camera = StereoCamera::new(Pose::new(
            Vec3::new(7.5, 4.0, 20.0),
            Default::default(),
        ));
        WindtunnelClient::render_stereo(&frame, &mut fb, &camera, &Palette::default());
        assert!(fb.count_pixels(|c| c.r > 0) > 20);
        assert!(fb.count_pixels(|c| c.b > 0) > 20);
        handle.shutdown();
    }

    #[test]
    fn other_users_heads_are_drawn_but_not_own() {
        let (handle, addr) = test_server();
        let mut a = WindtunnelClient::connect(addr).unwrap();
        let mut b = WindtunnelClient::connect(addr).unwrap();
        // b announces a head pose in front of a's camera.
        b.send(&Command::HeadPose {
            pose: Pose::new(Vec3::new(7.5, 4.0, 4.0), Default::default()),
        })
        .unwrap();
        let frame = a.frame(false).unwrap();
        let camera = StereoCamera::new(Pose::new(Vec3::new(7.5, 4.0, 20.0), Default::default()));

        // Rendering for user a: b's head glyph appears.
        let mut fb = Framebuffer::new(160, 160);
        WindtunnelClient::render_stereo_for_user(&frame, &mut fb, &camera, &Palette::default(), a.user_id());
        let with_b = fb.count_pixels(|c| c.r > 0 || c.b > 0);
        assert!(with_b > 5, "b's head should be visible");

        // Rendering for user b: own head excluded, scene now empty.
        let mut fb2 = Framebuffer::new(160, 160);
        WindtunnelClient::render_stereo_for_user(&frame, &mut fb2, &camera, &Palette::default(), b.user_id());
        let without_b = fb2.count_pixels(|c| c.r > 0 || c.b > 0);
        // a's head pose is identity-at-origin (behind the camera's far
        // plane region) — only b's glyph differs between the two renders.
        assert!(without_b < with_b, "own head must not be drawn: {without_b} vs {with_b}");
        handle.shutdown();
    }

    #[test]
    fn head_pose_only_mutation_skips_integration() {
        // The §5.1 shared scenario stress case: users nodding their
        // heads must not re-run the tracers. Observable through the
        // PROC_STATS cache counters.
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(2.0, 2.0, 4.0),
                b: Vec3::new(2.0, 6.0, 4.0),
                seed_count: 4,
                tool: ToolKind::Streamline,
            })
            .unwrap();
        let f0 = client.frame(false).unwrap();
        let s0 = client.stats().unwrap();
        assert_eq!(s0.geom_misses, 1, "first frame traces the rake");

        // Head-pose-only mutation: revision moves (the frame cache
        // misses) but no geometry input changed.
        client
            .send(&Command::HeadPose {
                pose: Pose::new(Vec3::new(0.0, 1.7, 5.0), Default::default()),
            })
            .unwrap();
        let f1 = client.frame(false).unwrap();
        let s1 = client.stats().unwrap();
        assert_eq!(s1.geom_misses, 0, "head pose must not re-run integration");
        assert_eq!(s1.geom_hits, 1, "rake geometry served from cache");
        assert_eq!(s1.cum_geom_misses, s0.cum_geom_misses);
        assert!(f1.revision > f0.revision, "frame still reflects the update");
        assert_eq!(f1.paths, f0.paths, "identical geometry either way");

        // Identical request again: whole-frame encoded cache hit, stats
        // otherwise untouched.
        let before = client.stats().unwrap();
        client.frame(false).unwrap();
        let after = client.stats().unwrap();
        assert_eq!(after.cum_frame_hits, before.cum_frame_hits + 1);
        assert_eq!(after.cum_geom_misses, before.cum_geom_misses);
        handle.shutdown();
    }

    #[test]
    fn streakline_session_accumulates_smoke() {
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(2.0, 3.0, 4.0),
                b: Vec3::new(2.0, 5.0, 4.0),
                seed_count: 3,
                tool: ToolKind::Streakline,
            })
            .unwrap();
        for _ in 0..5 {
            client.frame(true).unwrap();
        }
        let f = client.frame(false).unwrap();
        let streaks: Vec<_> = f
            .paths
            .iter()
            .filter(|p| p.kind == PathKind::Streak)
            .collect();
        assert_eq!(streaks.len(), 3);
        assert!(streaks.iter().all(|p| p.points.len() >= 4));
        handle.shutdown();
    }
}
