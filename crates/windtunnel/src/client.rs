//! The workstation side: commands out, geometry in, frames rendered.
//!
//! Figure 9: the workstation runs a network conversation (this module's
//! blocking calls, meant to live on a dedicated thread) and a renderer
//! (the `vr` substrate) that draws the last received environment state
//! from the head-tracked point of view at full rate.

use crate::env::RakeId;
use crate::proto::{
    Command, DeltaFrame, DeltaRequest, FrameRequest, FrameStats, GeometryFrame, HelloReply,
    PathKind, PathMsg, PROC_COMMAND, PROC_FRAME, PROC_FRAME_DELTA, PROC_HELLO, PROC_STATS,
};
use dlib::{ClientConfig, DlibClient, DlibError, ReconnectingClient, Result, RetryPolicy};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use vecmath::Vec3;
use vr::render::Rgb;
use vr::stereo::{render_anaglyph, StereoCamera};
use vr::Framebuffer;

/// Per-kind line shades for the anaglyph display (applied to both eyes).
#[derive(Debug, Clone, Copy)]
pub struct Palette {
    pub streamline: u8,
    pub particle_path: u8,
    pub streak: u8,
    pub rake: u8,
}

impl Default for Palette {
    fn default() -> Self {
        Palette {
            streamline: 235,
            particle_path: 180,
            streak: 140,
            rake: 255,
        }
    }
}

/// The client's retained copy of the server's computed geometry, keyed
/// by rake id. FRAME_DELTA replies patch it — chunks upsert, tombstones
/// delete, keyframes replace wholesale — and a full [`GeometryFrame`]
/// is reassembled from it after every patch, byte-identical to what the
/// full-frame RPC would have returned at the same revision.
#[derive(Default)]
pub struct RetainedScene {
    /// Revision of the last applied delta — the baseline acknowledged
    /// back to the server. Zero means "no scene": the next reply must be
    /// a keyframe.
    revision: u64,
    /// Per-rake paths, ascending by rake id to match the server's frame
    /// assembly order.
    chunks: BTreeMap<RakeId, Vec<PathMsg>>,
}

impl RetainedScene {
    pub fn new() -> RetainedScene {
        RetainedScene::default()
    }

    /// The baseline to acknowledge in the next [`DeltaRequest`].
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Rakes currently retained.
    pub fn rake_count(&self) -> usize {
        self.chunks.len()
    }

    /// Apply one delta (or keyframe) and reassemble the resulting full
    /// frame.
    pub fn apply(&mut self, delta: DeltaFrame) -> Result<GeometryFrame> {
        if delta.keyframe {
            self.chunks.clear();
        } else {
            if delta.baseline != self.revision {
                return Err(DlibError::Protocol(format!(
                    "delta patches baseline {} but the scene is at {}",
                    delta.baseline, self.revision
                )));
            }
            for id in &delta.tombstones {
                self.chunks.remove(id);
            }
        }
        for chunk in delta.chunks {
            self.chunks.insert(chunk.rake_id, chunk.paths);
        }
        self.revision = delta.revision;
        let paths: Vec<PathMsg> = self
            .chunks
            .values()
            .flat_map(|p| p.iter().cloned())
            .collect();
        Ok(GeometryFrame {
            timestep: delta.timestep,
            time: delta.time,
            revision: delta.revision,
            rakes: delta.rakes,
            paths,
            users: delta.users,
        })
    }
}

/// A connected windtunnel client.
pub struct WindtunnelClient {
    dlib: DlibClient,
    hello: HelloReply,
    scene: RetainedScene,
    said_goodbye: bool,
}

impl WindtunnelClient {
    /// Connect and perform the session handshake.
    pub fn connect(addr: SocketAddr) -> Result<WindtunnelClient> {
        let mut dlib = DlibClient::connect(addr)?;
        let reply = dlib.call(PROC_HELLO, b"")?;
        let hello = HelloReply::decode(&reply)?;
        Ok(WindtunnelClient {
            dlib,
            hello,
            scene: RetainedScene::new(),
            said_goodbye: false,
        })
    }

    /// Session metadata learned at connect time.
    pub fn hello(&self) -> &HelloReply {
        &self.hello
    }

    /// This client's user id (for recognizing its own rake locks).
    pub fn user_id(&self) -> u64 {
        self.hello.user_id
    }

    /// Send one environment command.
    pub fn send(&mut self, cmd: &Command) -> Result<()> {
        self.dlib.call(PROC_COMMAND, &cmd.encode())?;
        if matches!(cmd, Command::Goodbye) {
            self.said_goodbye = true;
        }
        Ok(())
    }

    /// Request the current geometry frame; `advance` drives the shared
    /// clock (exactly one client per session should pass `true`).
    pub fn frame(&mut self, advance: bool) -> Result<GeometryFrame> {
        self.frame_measured(advance).map(|(f, _)| f)
    }

    /// [`WindtunnelClient::frame`], also reporting the reply's payload
    /// size in bytes (benchmark harnesses measure wire traffic with it).
    pub fn frame_measured(&mut self, advance: bool) -> Result<(GeometryFrame, usize)> {
        let bytes = self
            .dlib
            .call(PROC_FRAME, &FrameRequest { advance }.encode())?;
        Ok((GeometryFrame::decode(&bytes)?, bytes.len()))
    }

    /// Request the current frame incrementally: the server sends only the
    /// rakes whose geometry changed since this client's last delta (or a
    /// full keyframe when there is no usable baseline), and the retained
    /// scene reassembles the complete frame. Mixing [`Self::frame`] and
    /// this is safe — the full-frame RPC neither reads nor moves the
    /// baseline.
    pub fn frame_delta(&mut self, advance: bool) -> Result<GeometryFrame> {
        self.frame_delta_measured(advance).map(|(f, _)| f)
    }

    /// [`WindtunnelClient::frame_delta`], also reporting the reply's
    /// payload size in bytes.
    pub fn frame_delta_measured(&mut self, advance: bool) -> Result<(GeometryFrame, usize)> {
        let req = DeltaRequest {
            advance,
            baseline: self.scene.revision(),
        };
        let bytes = self.dlib.call(PROC_FRAME_DELTA, &req.encode())?;
        let delta = DeltaFrame::decode(&bytes)?;
        Ok((self.scene.apply(delta)?, bytes.len()))
    }

    /// Drop the retained scene: the next [`Self::frame_delta`] call
    /// acknowledges no baseline and resyncs via a full keyframe.
    pub fn reset_scene(&mut self) {
        self.scene = RetainedScene::new();
    }

    /// The retained scene the delta path patches (for inspection).
    pub fn scene(&self) -> &RetainedScene {
        &self.scene
    }

    /// Fetch the server's frame-pipeline stats (stage timings + cache
    /// counters). Purely observational: never advances time or touches
    /// the environment.
    pub fn stats(&mut self) -> Result<FrameStats> {
        let bytes = self.dlib.call(PROC_STATS, b"")?;
        FrameStats::decode(&bytes)
    }

    /// Convenience probe over [`Self::stats`]: true when the server's
    /// storage stack has reported any fault-tolerance activity (retries,
    /// chunk salvage, zero-fill, quarantine, neighbour substitution) —
    /// the cue to surface a data-health warning next to the clock.
    pub fn store_degraded(&mut self) -> Result<bool> {
        Ok(self.stats()?.store_degraded())
    }

    /// Render a frame into an anaglyph stereo framebuffer from the given
    /// head-tracked camera — the full client-side display path. Draws the
    /// other participants' heads too (§5.1: "indicating to participants
    /// in the environment where everyone is"); pass your own user id so
    /// your head is not drawn over your eyes.
    pub fn render_stereo_for_user(
        frame: &GeometryFrame,
        fb: &mut Framebuffer,
        camera: &StereoCamera,
        palette: &Palette,
        self_user: u64,
    ) {
        let mut lines: Vec<(Vec<Vec3>, u8)> =
            Vec::with_capacity(frame.paths.len() + frame.rakes.len() + frame.users.len() * 2);
        for p in &frame.paths {
            let shade = match p.kind {
                PathKind::Streamline => palette.streamline,
                PathKind::ParticlePath => palette.particle_path,
                PathKind::Streak => palette.streak,
            };
            lines.push((p.points.clone(), shade));
        }
        for r in &frame.rakes {
            lines.push((vec![r.a, r.b], palette.rake));
        }
        for u in &frame.users {
            if u.id == self_user {
                continue;
            }
            for glyph in head_glyph(&u.head) {
                lines.push((glyph, palette.rake));
            }
        }
        render_anaglyph(fb, camera, &lines);
    }

    /// [`WindtunnelClient::render_stereo_for_user`] drawing every user's
    /// head (suitable for spectator views).
    pub fn render_stereo(
        frame: &GeometryFrame,
        fb: &mut Framebuffer,
        camera: &StereoCamera,
        palette: &Palette,
    ) {
        Self::render_stereo_for_user(frame, fb, camera, palette, u64::MAX);
    }

    /// Render a frame in mono (the "conventional screen and mouse
    /// environment" §6 mentions as the other use of the architecture).
    pub fn render_mono(
        frame: &GeometryFrame,
        fb: &mut Framebuffer,
        mvp: &vecmath::Mat4,
        palette: &Palette,
    ) {
        for p in &frame.paths {
            let color = match p.kind {
                PathKind::Streamline => Rgb::new(80, 200, 255),
                PathKind::ParticlePath => Rgb::new(255, 180, 60),
                PathKind::Streak => Rgb::new(220, 220, 220),
            };
            fb.draw_polyline(mvp, &p.points, color);
        }
        for r in &frame.rakes {
            fb.draw_polyline(mvp, &[r.a, r.b], Rgb::new(palette.rake, 60, 60));
        }
    }
}

/// A self-healing windtunnel session: wraps [`dlib::ReconnectingClient`]
/// so a dropped or wedged connection re-dials with backoff, replays the
/// `HELLO` handshake, and resynchronizes the retained delta scene.
///
/// Resync needs no special protocol: a fresh server session has no
/// `last_sent` baseline for us, so our stale baseline is "unknown" to it
/// and the next `FRAME_DELTA` reply falls back to a full keyframe — the
/// retained scene is also reset locally whenever the connection
/// generation changes, keeping memory honest. The frame loop degrades to
/// skipped frames while the server is unreachable; it never panics or
/// wedges.
pub struct ResilientClient {
    rc: ReconnectingClient,
    /// Filled by the session hook on every (re-)dial. Invariant: `Some`
    /// after `connect` returns, since the first dial ran the hook.
    hello: Arc<Mutex<Option<HelloReply>>>,
    scene: RetainedScene,
    /// Connection generation the scene was last synced against.
    seen_generation: u64,
    said_goodbye: bool,
}

impl ResilientClient {
    /// Connect (performing the handshake) with default deadlines and
    /// retry policy.
    pub fn connect(addr: SocketAddr) -> Result<ResilientClient> {
        Self::connect_with(addr, ClientConfig::default(), RetryPolicy::default())
    }

    pub fn connect_with(
        addr: SocketAddr,
        config: ClientConfig,
        policy: RetryPolicy,
    ) -> Result<ResilientClient> {
        let mut rc = ReconnectingClient::with_config(addr, config, policy);
        let hello: Arc<Mutex<Option<HelloReply>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&hello);
        rc.on_session(Box::new(move |client| {
            let reply = client.call(PROC_HELLO, b"")?;
            *slot.lock() = Some(HelloReply::decode(&reply)?);
            Ok(())
        }));
        rc.ensure_connected()?;
        let seen_generation = rc.generation();
        Ok(ResilientClient {
            rc,
            hello,
            scene: RetainedScene::new(),
            seen_generation,
            said_goodbye: false,
        })
    }

    /// Session metadata from the most recent handshake. Note the
    /// `user_id` changes across reconnects — each dial is a new dlib
    /// session.
    pub fn hello(&self) -> HelloReply {
        self.hello
            .lock()
            .clone()
            // lint:allow(panic-path): the HELLO hook populates this before connect() returns, on every dial
            .expect("handshake ran during connect")
    }

    /// This client's *current* user id.
    pub fn user_id(&self) -> u64 {
        self.hello().user_id
    }

    /// How many connections have been established (1 = never reconnected).
    pub fn generation(&self) -> u64 {
        self.rc.generation()
    }

    /// The underlying reconnecting client — tests use this to install
    /// fault plans on the live connection.
    pub fn dlib_mut(&mut self) -> &mut ReconnectingClient {
        &mut self.rc
    }

    /// Heartbeat the server (reconnecting if needed).
    pub fn ping(&mut self) -> Result<()> {
        self.rc.ping()
    }

    /// Send one environment command, at most once: `Busy` is retried, but
    /// a transport failure mid-call surfaces (the command may or may not
    /// have applied — the caller decides whether to repeat it). The next
    /// call self-heals.
    pub fn send(&mut self, cmd: &Command) -> Result<()> {
        self.rc.call(PROC_COMMAND, &cmd.encode())?;
        if matches!(cmd, Command::Goodbye) {
            self.said_goodbye = true;
        }
        Ok(())
    }

    /// Drop the retained scene if the connection was rebuilt since the
    /// last frame — the new server session doesn't know our baseline, so
    /// the next reply is a keyframe either way; resetting keeps the local
    /// memory accounting honest too.
    fn sync_scene_generation(&mut self) {
        let gen = self.rc.generation();
        if gen != self.seen_generation {
            self.scene = RetainedScene::new();
            self.seen_generation = gen;
        }
    }

    /// Fetch the current frame incrementally, reconnecting and resyncing
    /// (keyframe fallback) as needed. With `advance = false` the request
    /// is idempotent and transport failures are retried transparently;
    /// with `advance = true` (the clock driver) a transport failure
    /// surfaces after one attempt so a retry cannot double-advance time —
    /// the driving loop just skips that frame.
    pub fn frame_delta(&mut self, advance: bool) -> Result<GeometryFrame> {
        self.sync_scene_generation();
        let req = DeltaRequest {
            advance,
            baseline: self.scene.revision(),
        };
        let bytes = if advance {
            self.rc.call(PROC_FRAME_DELTA, &req.encode())?
        } else {
            self.rc.call_idempotent(PROC_FRAME_DELTA, &req.encode())?
        };
        let delta = DeltaFrame::decode(&bytes)?;
        let frame = self.scene.apply(delta)?;
        // A reconnect during the call produced a keyframe reply; the
        // apply above rebuilt the scene from it, so the new generation is
        // now synced.
        self.seen_generation = self.rc.generation();
        Ok(frame)
    }

    /// Fetch a full frame (no delta state involved). Same advance/retry
    /// split as [`Self::frame_delta`].
    pub fn frame(&mut self, advance: bool) -> Result<GeometryFrame> {
        let req = FrameRequest { advance }.encode();
        let bytes = if advance {
            self.rc.call(PROC_FRAME, &req)?
        } else {
            self.rc.call_idempotent(PROC_FRAME, &req)?
        };
        GeometryFrame::decode(&bytes)
    }

    /// Server pipeline stats (idempotent read).
    pub fn stats(&mut self) -> Result<FrameStats> {
        let bytes = self.rc.call_idempotent(PROC_STATS, b"")?;
        FrameStats::decode(&bytes)
    }

    /// The retained scene (for inspection).
    pub fn scene(&self) -> &RetainedScene {
        &self.scene
    }
}

impl Drop for ResilientClient {
    fn drop(&mut self) {
        // Best-effort polite sign-off on the live connection only — a
        // drop must never dial.
        if !self.said_goodbye {
            if let Some(c) = self.rc.client_mut() {
                let _ = c.call(PROC_COMMAND, &Command::Goodbye.encode());
            }
        }
    }
}

/// A simple head marker: a diamond around the head position plus a gaze
/// tick along the head's forward (-Z) axis.
pub fn head_glyph(head: &vecmath::Pose) -> Vec<Vec<Vec3>> {
    let c = head.position;
    let r = 0.25;
    let x = Vec3::new(r, 0.0, 0.0);
    let y = Vec3::new(0.0, r, 0.0);
    let z = Vec3::new(0.0, 0.0, r);
    let diamond = vec![
        c + x,
        c + y,
        c - x,
        c - y,
        c + x,
        c + z,
        c - x,
        c - z,
        c + x,
    ];
    let gaze_dir = head.orientation.rotate(Vec3::new(0.0, 0.0, -1.0));
    let gaze = vec![c, c + gaze_dir * (3.0 * r)];
    vec![diamond, gaze]
}

impl Drop for WindtunnelClient {
    fn drop(&mut self) {
        if !self.said_goodbye {
            let _ = self.dlib.call(PROC_COMMAND, &Command::Goodbye.encode());
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests sleep to let real threads make progress
mod tests {
    use super::*;
    use crate::compute::ComputeConfig;
    use crate::proto::TimeCommand;
    use crate::server::{serve, ServerOptions};
    use flowfield::{
        dataset::VelocityCoords, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField,
    };
    use std::sync::Arc;
    use storage::MemoryStore;
    use tracer::{ToolKind, TraceConfig};
    use vecmath::{Aabb, Pose};
    use vr::Gesture;

    /// Spin up a server over a unit-spacing Cartesian grid with uniform
    /// +x flow.
    fn test_server() -> (crate::server::WindtunnelHandle, SocketAddr) {
        let dims = Dims::new(16, 9, 9);
        let grid =
            CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(15.0, 8.0, 8.0)))
                .unwrap();
        let meta = DatasetMeta {
            name: "uniform".into(),
            dims,
            timestep_count: 8,
            dt: 0.1,
            coords: VelocityCoords::Grid,
        };
        let fields = (0..8)
            .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X))
            .collect();
        let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
        let store = Arc::new(MemoryStore::from_dataset(ds));
        let opts = ServerOptions {
            compute: ComputeConfig {
                trace: TraceConfig {
                    dt: 1.0,
                    max_points: 6,
                    ..TraceConfig::default()
                },
                ..ComputeConfig::default()
            },
            ..ServerOptions::default()
        };
        let handle = serve(store, grid, opts, "127.0.0.1:0").unwrap();
        let addr = handle.addr();
        (handle, addr)
    }

    #[test]
    fn handshake_reports_dataset() {
        let (handle, addr) = test_server();
        let client = WindtunnelClient::connect(addr).unwrap();
        assert_eq!(client.hello().dataset_name, "uniform");
        assert_eq!(client.hello().timestep_count, 8);
        assert!(client.user_id() > 0);
        handle.shutdown();
    }

    #[test]
    fn add_rake_and_receive_streamlines() {
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(2.0, 2.0, 4.0),
                b: Vec3::new(2.0, 6.0, 4.0),
                seed_count: 4,
                tool: ToolKind::Streamline,
            })
            .unwrap();
        let frame = client.frame(false).unwrap();
        assert_eq!(frame.rakes.len(), 1);
        assert_eq!(frame.paths.len(), 4);
        // Physical-space paths flow in +x on the unit grid.
        let p = &frame.paths[0].points;
        assert!(p.last().unwrap().x > p.first().unwrap().x);
        handle.shutdown();
    }

    #[test]
    fn rake_outside_grid_rejected() {
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        let err = client.send(&Command::AddRake {
            a: Vec3::splat(1.0e5),
            b: Vec3::splat(1.0e5 + 1.0),
            seed_count: 2,
            tool: ToolKind::Streamline,
        });
        assert!(err.is_err());
        handle.shutdown();
    }

    #[test]
    fn shared_session_lock_over_the_wire() {
        // The §5.1 scenario end-to-end: two workstations, one rake.
        let (handle, addr) = test_server();
        let mut alice = WindtunnelClient::connect(addr).unwrap();
        let mut bob = WindtunnelClient::connect(addr).unwrap();
        alice
            .send(&Command::AddRake {
                a: Vec3::new(4.0, 4.0, 4.0),
                b: Vec3::new(6.0, 4.0, 4.0),
                seed_count: 2,
                tool: ToolKind::Streamline,
            })
            .unwrap();
        // Alice grabs the center (5, 4, 4).
        alice
            .send(&Command::Hand {
                position: Vec3::new(5.0, 4.0, 4.0),
                gesture: Gesture::Fist,
            })
            .unwrap();
        let f = alice.frame(false).unwrap();
        assert_eq!(f.rakes[0].owner, alice.user_id());
        // Bob tries the same handle: locked out.
        bob.send(&Command::Hand {
            position: Vec3::new(5.0, 4.0, 4.0),
            gesture: Gesture::Fist,
        })
        .unwrap();
        let f = bob.frame(false).unwrap();
        assert_eq!(f.rakes[0].owner, alice.user_id());
        // Bob's drag does nothing.
        bob.send(&Command::Hand {
            position: Vec3::new(5.0, 6.0, 4.0),
            gesture: Gesture::Fist,
        })
        .unwrap();
        let f = bob.frame(false).unwrap();
        assert!((f.rakes[0].a.y - 4.0).abs() < 1e-3);
        // Alice drags: the rake moves for everyone.
        alice
            .send(&Command::Hand {
                position: Vec3::new(5.0, 5.0, 4.0),
                gesture: Gesture::Fist,
            })
            .unwrap();
        let f = bob.frame(false).unwrap();
        assert!((f.rakes[0].a.y - 5.0).abs() < 1e-3);
        // Alice releases; Bob can now grab.
        alice
            .send(&Command::Hand {
                position: Vec3::new(5.0, 5.0, 4.0),
                gesture: Gesture::Open,
            })
            .unwrap();
        bob.send(&Command::Hand {
            position: Vec3::new(5.0, 5.0, 4.0),
            gesture: Gesture::Fist,
        })
        .unwrap();
        let f = bob.frame(false).unwrap();
        assert_eq!(f.rakes[0].owner, bob.user_id());
        handle.shutdown();
    }

    #[test]
    fn time_advances_only_for_driver() {
        let (handle, addr) = test_server();
        let mut driver = WindtunnelClient::connect(addr).unwrap();
        let mut passenger = WindtunnelClient::connect(addr).unwrap();
        driver.send(&Command::Time(TimeCommand::Play)).unwrap();
        let f0 = passenger.frame(false).unwrap();
        assert_eq!(f0.timestep, 0);
        driver.frame(true).unwrap();
        driver.frame(true).unwrap();
        let f = passenger.frame(false).unwrap();
        assert_eq!(f.timestep, 2);
        handle.shutdown();
    }

    #[test]
    fn frame_cache_consistent_between_clients() {
        let (handle, addr) = test_server();
        let mut a = WindtunnelClient::connect(addr).unwrap();
        let mut b = WindtunnelClient::connect(addr).unwrap();
        a.send(&Command::AddRake {
            a: Vec3::new(2.0, 4.0, 4.0),
            b: Vec3::new(2.0, 5.0, 4.0),
            seed_count: 2,
            tool: ToolKind::Streamline,
        })
        .unwrap();
        let fa = a.frame(false).unwrap();
        let fb = b.frame(false).unwrap();
        assert_eq!(fa, fb); // same revision, identical frame
        handle.shutdown();
    }

    #[test]
    fn goodbye_releases_locks() {
        let (handle, addr) = test_server();
        let mut a = WindtunnelClient::connect(addr).unwrap();
        let mut b = WindtunnelClient::connect(addr).unwrap();
        a.send(&Command::AddRake {
            a: Vec3::new(4.0, 4.0, 4.0),
            b: Vec3::new(6.0, 4.0, 4.0),
            seed_count: 2,
            tool: ToolKind::Streamline,
        })
        .unwrap();
        a.send(&Command::Hand {
            position: Vec3::new(5.0, 4.0, 4.0),
            gesture: Gesture::Fist,
        })
        .unwrap();
        drop(a); // sends Goodbye
        let f = b.frame(false).unwrap();
        assert_eq!(f.rakes[0].owner, 0, "lock must be released on goodbye");
        handle.shutdown();
    }

    #[test]
    fn head_poses_shared() {
        let (handle, addr) = test_server();
        let mut a = WindtunnelClient::connect(addr).unwrap();
        let mut b = WindtunnelClient::connect(addr).unwrap();
        let pose = Pose::new(Vec3::new(1.0, 1.7, 3.0), Default::default());
        a.send(&Command::HeadPose { pose }).unwrap();
        let f = b.frame(false).unwrap();
        let a_user = f.users.iter().find(|u| u.id == a.user_id()).unwrap();
        assert!(a_user.head.position.distance(pose.position) < 1e-5);
        handle.shutdown();
    }

    #[test]
    fn stereo_render_of_live_frame() {
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(2.0, 3.0, 4.0),
                b: Vec3::new(2.0, 5.0, 4.0),
                seed_count: 4,
                tool: ToolKind::Streamline,
            })
            .unwrap();
        let frame = client.frame(false).unwrap();
        let mut fb = Framebuffer::new(160, 160);
        let camera = StereoCamera::new(Pose::new(Vec3::new(7.5, 4.0, 20.0), Default::default()));
        WindtunnelClient::render_stereo(&frame, &mut fb, &camera, &Palette::default());
        assert!(fb.count_pixels(|c| c.r > 0) > 20);
        assert!(fb.count_pixels(|c| c.b > 0) > 20);
        handle.shutdown();
    }

    #[test]
    fn other_users_heads_are_drawn_but_not_own() {
        let (handle, addr) = test_server();
        let mut a = WindtunnelClient::connect(addr).unwrap();
        let mut b = WindtunnelClient::connect(addr).unwrap();
        // b announces a head pose in front of a's camera.
        b.send(&Command::HeadPose {
            pose: Pose::new(Vec3::new(7.5, 4.0, 4.0), Default::default()),
        })
        .unwrap();
        let frame = a.frame(false).unwrap();
        let camera = StereoCamera::new(Pose::new(Vec3::new(7.5, 4.0, 20.0), Default::default()));

        // Rendering for user a: b's head glyph appears.
        let mut fb = Framebuffer::new(160, 160);
        WindtunnelClient::render_stereo_for_user(
            &frame,
            &mut fb,
            &camera,
            &Palette::default(),
            a.user_id(),
        );
        let with_b = fb.count_pixels(|c| c.r > 0 || c.b > 0);
        assert!(with_b > 5, "b's head should be visible");

        // Rendering for user b: own head excluded, scene now empty.
        let mut fb2 = Framebuffer::new(160, 160);
        WindtunnelClient::render_stereo_for_user(
            &frame,
            &mut fb2,
            &camera,
            &Palette::default(),
            b.user_id(),
        );
        let without_b = fb2.count_pixels(|c| c.r > 0 || c.b > 0);
        // a's head pose is identity-at-origin (behind the camera's far
        // plane region) — only b's glyph differs between the two renders.
        assert!(
            without_b < with_b,
            "own head must not be drawn: {without_b} vs {with_b}"
        );
        handle.shutdown();
    }

    #[test]
    fn head_pose_only_mutation_skips_integration() {
        // The §5.1 shared scenario stress case: users nodding their
        // heads must not re-run the tracers. Observable through the
        // PROC_STATS cache counters.
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(2.0, 2.0, 4.0),
                b: Vec3::new(2.0, 6.0, 4.0),
                seed_count: 4,
                tool: ToolKind::Streamline,
            })
            .unwrap();
        let f0 = client.frame(false).unwrap();
        let s0 = client.stats().unwrap();
        assert_eq!(s0.geom_misses, 1, "first frame traces the rake");

        // Head-pose-only mutation: revision moves (the frame cache
        // misses) but no geometry input changed.
        client
            .send(&Command::HeadPose {
                pose: Pose::new(Vec3::new(0.0, 1.7, 5.0), Default::default()),
            })
            .unwrap();
        let f1 = client.frame(false).unwrap();
        let s1 = client.stats().unwrap();
        assert_eq!(s1.geom_misses, 0, "head pose must not re-run integration");
        assert_eq!(s1.geom_hits, 1, "rake geometry served from cache");
        assert_eq!(s1.cum_geom_misses, s0.cum_geom_misses);
        assert!(f1.revision > f0.revision, "frame still reflects the update");
        assert_eq!(f1.paths, f0.paths, "identical geometry either way");

        // Identical request again: whole-frame encoded cache hit, stats
        // otherwise untouched.
        let before = client.stats().unwrap();
        client.frame(false).unwrap();
        let after = client.stats().unwrap();
        assert_eq!(after.cum_frame_hits, before.cum_frame_hits + 1);
        assert_eq!(after.cum_geom_misses, before.cum_geom_misses);
        handle.shutdown();
    }

    #[test]
    fn delta_stream_reconstructs_full_frames_byte_identically() {
        let (handle, addr) = test_server();
        let mut full = WindtunnelClient::connect(addr).unwrap();
        let mut inc = WindtunnelClient::connect(addr).unwrap();
        inc.send(&Command::AddRake {
            a: Vec3::new(2.0, 2.0, 4.0),
            b: Vec3::new(2.0, 6.0, 4.0),
            seed_count: 4,
            tool: ToolKind::Streamline,
        })
        .unwrap();

        // First contact: keyframe (no baseline yet).
        let (f0, n0) = inc.frame_delta_measured(false).unwrap();
        assert_eq!(f0.encode(), full.frame(false).unwrap().encode());

        // Head-pose-only change: the delta must carry no path chunks, so
        // it is far smaller than the keyframe — yet reassemble the exact
        // frame.
        inc.send(&Command::HeadPose {
            pose: Pose::new(Vec3::new(0.0, 1.7, 5.0), Default::default()),
        })
        .unwrap();
        let (f1, n1) = inc.frame_delta_measured(false).unwrap();
        assert_eq!(f1.encode(), full.frame(false).unwrap().encode());
        assert!(
            n1 * 2 < n0,
            "head-pose delta ({n1} B) should be far smaller than the keyframe ({n0} B)"
        );

        // Geometry change: the chunk comes back, still byte-identical.
        inc.send(&Command::SetSeedCount { id: 1, n: 6 }).unwrap();
        let f2 = inc.frame_delta(false).unwrap();
        assert_eq!(f2.encode(), full.frame(false).unwrap().encode());

        // Deletion: tombstone erases the rake from the retained scene.
        inc.send(&Command::RemoveRake { id: 1 }).unwrap();
        let f3 = inc.frame_delta(false).unwrap();
        assert_eq!(f3.encode(), full.frame(false).unwrap().encode());
        assert_eq!(inc.scene().rake_count(), 0);

        // Forced resync rebuilds from a keyframe.
        inc.reset_scene();
        let f4 = inc.frame_delta(false).unwrap();
        assert_eq!(f4.encode(), full.frame(false).unwrap().encode());
        handle.shutdown();
    }

    #[test]
    fn chunks_encoded_once_across_clients() {
        let (handle, addr) = test_server();
        let mut a = WindtunnelClient::connect(addr).unwrap();
        let mut b = WindtunnelClient::connect(addr).unwrap();
        let mut c = WindtunnelClient::connect(addr).unwrap();
        a.send(&Command::AddRake {
            a: Vec3::new(2.0, 2.0, 4.0),
            b: Vec3::new(2.0, 6.0, 4.0),
            seed_count: 4,
            tool: ToolKind::Streamline,
        })
        .unwrap();
        a.frame_delta(false).unwrap();
        let after_first = a.stats().unwrap().cum_chunk_encodes;
        assert_eq!(after_first, 1, "one rake, one chunk encode");
        // Two more clients pull the same revision: served from the
        // broadcast cache, no further encodes.
        b.frame_delta(false).unwrap();
        c.frame_delta(false).unwrap();
        assert_eq!(
            a.stats().unwrap().cum_chunk_encodes,
            after_first,
            "same revision must not re-encode chunks per client"
        );
        // A geometry change re-encodes exactly once more, again shared.
        a.send(&Command::SetSeedCount { id: 1, n: 5 }).unwrap();
        a.frame_delta(false).unwrap();
        b.frame_delta(false).unwrap();
        c.frame_delta(false).unwrap();
        assert_eq!(a.stats().unwrap().cum_chunk_encodes, after_first + 1);
        handle.shutdown();
    }

    #[test]
    fn keyframe_interval_forces_periodic_keyframes() {
        let (handle, addr) = {
            let dims = Dims::new(16, 9, 9);
            let grid =
                CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(15.0, 8.0, 8.0)))
                    .unwrap();
            let meta = DatasetMeta {
                name: "uniform".into(),
                dims,
                timestep_count: 8,
                dt: 0.1,
                coords: VelocityCoords::Grid,
            };
            let fields = (0..8)
                .map(|_| VectorField::from_fn(dims, |_, _, _| Vec3::X))
                .collect();
            let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
            let store = Arc::new(MemoryStore::from_dataset(ds));
            let opts = ServerOptions {
                keyframe_interval: 2,
                ..ServerOptions::default()
            };
            let handle = serve(store, grid, opts, "127.0.0.1:0").unwrap();
            let addr = handle.addr();
            (handle, addr)
        };
        let mut client = WindtunnelClient::connect(addr).unwrap();
        for _ in 0..7 {
            // Mutate so every request sees a new revision.
            client
                .send(&Command::HeadPose {
                    pose: Pose::new(Vec3::new(0.0, 1.7, 5.0), Default::default()),
                })
                .unwrap();
            client.frame_delta(false).unwrap();
        }
        let stats = client.stats().unwrap();
        // 7 replies at interval 2: keyframes at frames 1, 4, 7.
        assert_eq!(stats.cum_keyframes, 3);
        assert_eq!(stats.cum_delta_frames, 4);
        handle.shutdown();
    }

    #[test]
    fn stats_track_bytes_and_delta_counts() {
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(2.0, 2.0, 4.0),
                b: Vec3::new(2.0, 6.0, 4.0),
                seed_count: 4,
                tool: ToolKind::Streamline,
            })
            .unwrap();
        let (_, nd) = client.frame_delta_measured(false).unwrap();
        let (_, nf) = client.frame_measured(false).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.cum_keyframes, 1);
        assert_eq!(stats.cum_delta_frames, 0);
        assert_eq!(stats.cum_bytes_sent, (nd + nf) as u64);
        handle.shutdown();
    }

    #[test]
    fn stats_report_storage_pipeline_from_live_ticks() {
        // End-to-end observability: a server over a compressed on-disk
        // dataset behind a simulated disk and read-ahead must surface
        // io-wait, decode time and prefetch hit/miss counts through
        // PROC_STATS after real playback ticks.
        use storage::{DiskModel, DiskStore, ReadAhead, SimulatedDisk};
        let dims = Dims::new(12, 8, 8);
        let grid =
            CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::new(11.0, 7.0, 7.0)))
                .unwrap();
        let meta = DatasetMeta {
            name: "disk-v2".into(),
            dims,
            timestep_count: 6,
            dt: 0.1,
            coords: VelocityCoords::Grid,
        };
        let fields = (0..6)
            .map(|t| {
                VectorField::from_fn(dims, move |i, _, _| {
                    Vec3::new(1.0 + 0.01 * (t + i) as f32, 0.0, 0.0)
                })
            })
            .collect();
        let ds = Dataset::new(meta, grid.clone(), fields).unwrap();
        let dir = tempfile::tempdir().unwrap();
        flowfield::format::write_dataset_v2(dir.path(), &ds).unwrap();
        let disk = DiskStore::open(dir.path()).unwrap();
        let model = DiskModel {
            bandwidth_bytes_per_sec: 30.0e6,
            seek: std::time::Duration::from_millis(1),
        };
        let store = Arc::new(ReadAhead::new(Arc::new(SimulatedDisk::new(disk, model)), 2));
        let opts = ServerOptions::default();
        let handle = serve(store, grid, opts, "127.0.0.1:0").unwrap();
        let mut client = WindtunnelClient::connect(handle.addr()).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(2.0, 2.0, 4.0),
                b: Vec3::new(2.0, 5.0, 4.0),
                seed_count: 3,
                tool: ToolKind::Streakline,
            })
            .unwrap();
        client.send(&Command::Time(TimeCommand::Play)).unwrap();
        for _ in 0..8 {
            client.frame(true).unwrap(); // advance: ticks fetch timesteps
        }
        let stats = client.stats().unwrap();
        assert!(stats.cum_io_wait_us > 0, "no io wait recorded: {stats:?}");
        assert!(stats.cum_decode_us > 0, "no decode time recorded");
        assert!(
            stats.cum_prefetch_hits + stats.cum_prefetch_misses > 0,
            "no fetches classified: {stats:?}"
        );
        handle.shutdown();
    }

    /// A fault plan that kills the connection on the next outgoing frame.
    fn kill_switch() -> dlib::FaultPlan {
        dlib::FaultPlan::new(
            7,
            dlib::FaultConfig {
                disconnect: 1.0,
                ..dlib::FaultConfig::quiet()
            },
        )
    }

    #[test]
    fn resilient_client_reconnects_and_resyncs_byte_identically() {
        let (handle, addr) = test_server();
        let mut full = WindtunnelClient::connect(addr).unwrap();
        let mut inc = ResilientClient::connect(addr).unwrap();
        inc.send(&Command::AddRake {
            a: Vec3::new(2.0, 2.0, 4.0),
            b: Vec3::new(2.0, 6.0, 4.0),
            seed_count: 4,
            tool: ToolKind::Streamline,
        })
        .unwrap();
        let f0 = inc.frame_delta(false).unwrap();
        assert_eq!(f0.encode(), full.frame(false).unwrap().encode());
        assert_eq!(inc.generation(), 1);
        let first_user = inc.user_id();

        // Kill the live connection mid-session. The delta request is
        // idempotent, so the client re-dials, re-handshakes, and the
        // stale baseline forces a keyframe — the reconstructed frame is
        // still byte-identical to a full fetch.
        inc.dlib_mut()
            .client_mut()
            .unwrap()
            .set_fault_plan(kill_switch());
        let f1 = inc.frame_delta(false).unwrap();
        assert_eq!(f1.encode(), full.frame(false).unwrap().encode());
        assert_eq!(inc.generation(), 2, "one reconnect");
        assert_ne!(inc.user_id(), first_user, "new dlib session after re-dial");

        // Delta flow resumes on the new baseline.
        inc.send(&Command::HeadPose {
            pose: Pose::new(Vec3::new(0.0, 1.7, 5.0), Default::default()),
        })
        .unwrap();
        let f2 = inc.frame_delta(false).unwrap();
        assert_eq!(f2.encode(), full.frame(false).unwrap().encode());
        assert_eq!(inc.generation(), 2, "no extra reconnects");

        // The server reaps the dead session (asynchronously — its reader
        // thread sees the EOF): only `full` + the current incarnation of
        // `inc` remain.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let stats = inc.stats().unwrap();
            if stats.live_sessions == 2 && stats.cum_reaped_sessions >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "dead session never reaped: {stats:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        handle.shutdown();
    }

    #[test]
    fn resilient_advance_failure_skips_frame_then_heals() {
        let (handle, addr) = test_server();
        let mut driver = ResilientClient::connect(addr).unwrap();
        driver.send(&Command::Time(TimeCommand::Play)).unwrap();
        let t0 = driver.frame_delta(true).unwrap().timestep;

        // Clock-advancing calls are at-most-once: a transport fault
        // surfaces as an error (a skipped frame) rather than retrying and
        // double-stepping time.
        driver
            .dlib_mut()
            .client_mut()
            .unwrap()
            .set_fault_plan(kill_switch());
        assert!(driver.frame_delta(true).is_err(), "skipped frame surfaces");

        // The very next call heals: reconnect, keyframe resync, and the
        // clock advanced exactly once more in total.
        let f = driver.frame_delta(true).unwrap();
        assert_eq!(f.timestep, t0 + 1, "failed advance must not step time");
        assert_eq!(driver.generation(), 2);
        handle.shutdown();
    }

    #[test]
    fn streakline_session_accumulates_smoke() {
        let (handle, addr) = test_server();
        let mut client = WindtunnelClient::connect(addr).unwrap();
        client
            .send(&Command::AddRake {
                a: Vec3::new(2.0, 3.0, 4.0),
                b: Vec3::new(2.0, 5.0, 4.0),
                seed_count: 3,
                tool: ToolKind::Streakline,
            })
            .unwrap();
        for _ in 0..5 {
            client.frame(true).unwrap();
        }
        let f = client.frame(false).unwrap();
        let streaks: Vec<_> = f
            .paths
            .iter()
            .filter(|p| p.kind == PathKind::Streak)
            .collect();
        assert_eq!(streaks.len(), 3);
        assert!(streaks.iter().all(|p| p.points.len() >= 4));
        handle.shutdown();
    }
}
