//! Exactly-solvable steady velocity fields.
//!
//! Every integrator and every visualization tool in the windtunnel is
//! validated against these: a tracer that cannot follow a solid-body
//! vortex in a circle has no business tracing vortex streets.

use vecmath::Vec3;

/// A continuous velocity field `v(x, t)` in physical space.
pub trait AnalyticField {
    /// Velocity at physical position `p` and time `t`.
    fn velocity(&self, p: Vec3, t: f32) -> Vec3;
}

/// Uniform freestream: `v = u` everywhere. Particle paths are straight
/// lines `p(t) = p0 + u t`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    pub u: Vec3,
}

impl AnalyticField for Uniform {
    fn velocity(&self, _p: Vec3, _t: f32) -> Vec3 {
        self.u
    }
}

/// Solid-body rotation about the z axis with angular velocity `omega`:
/// `v = ω × r`. Particle paths are circles of constant radius; a particle
/// at radius r completes an orbit in `2π/ω`.
#[derive(Debug, Clone, Copy)]
pub struct SolidBodyVortex {
    pub omega: f32,
}

impl AnalyticField for SolidBodyVortex {
    fn velocity(&self, p: Vec3, _t: f32) -> Vec3 {
        Vec3::new(-self.omega * p.y, self.omega * p.x, 0.0)
    }
}

/// Plane Couette shear: `v = (shear_rate * y, 0, 0)`. Particle paths:
/// `x(t) = x0 + ẏ·y0·t`, `y`, `z` constant. Streamlines are straight lines.
#[derive(Debug, Clone, Copy)]
pub struct Shear {
    pub shear_rate: f32,
}

impl AnalyticField for Shear {
    fn velocity(&self, p: Vec3, _t: f32) -> Vec3 {
        Vec3::new(self.shear_rate * p.y, 0.0, 0.0)
    }
}

/// Arnold–Beltrami–Childress flow — steady, divergence-free, and famously
/// chaotic. Good stress test: streamlines wander the whole domain.
#[derive(Debug, Clone, Copy)]
pub struct AbcFlow {
    pub a: f32,
    pub b: f32,
    pub c: f32,
}

impl Default for AbcFlow {
    fn default() -> Self {
        // The classic parameter choice.
        AbcFlow {
            a: 3f32.sqrt(),
            b: 2f32.sqrt(),
            c: 1.0,
        }
    }
}

impl AnalyticField for AbcFlow {
    fn velocity(&self, p: Vec3, _t: f32) -> Vec3 {
        Vec3::new(
            self.a * p.z.sin() + self.c * p.y.cos(),
            self.b * p.x.sin() + self.a * p.z.cos(),
            self.c * p.y.sin() + self.b * p.x.cos(),
        )
    }
}

/// Time-oscillating uniform flow `v = (cos ωt, sin ωt, 0) · u0`: the
/// simplest *unsteady* field, separating streamlines (straight lines at
/// any instant) from particle paths (cycloids) and streaklines — the
/// conceptual distinction §2.1 of the paper is careful about.
#[derive(Debug, Clone, Copy)]
pub struct RotatingUniform {
    pub u0: f32,
    pub omega: f32,
}

impl AnalyticField for RotatingUniform {
    fn velocity(&self, _p: Vec3, t: f32) -> Vec3 {
        Vec3::new(
            self.u0 * (self.omega * t).cos(),
            self.u0 * (self.omega * t).sin(),
            0.0,
        )
    }
}

/// Finite-difference divergence of an analytic field — test helper for
/// checking incompressibility.
pub fn divergence(field: &impl AnalyticField, p: Vec3, t: f32, h: f32) -> f32 {
    let dx =
        (field.velocity(p + Vec3::X * h, t).x - field.velocity(p - Vec3::X * h, t).x) / (2.0 * h);
    let dy =
        (field.velocity(p + Vec3::Y * h, t).y - field.velocity(p - Vec3::Y * h, t).y) / (2.0 * h);
    let dz =
        (field.velocity(p + Vec3::Z * h, t).z - field.velocity(p - Vec3::Z * h, t).z) / (2.0 * h);
    dx + dy + dz
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_is_uniform() {
        let f = Uniform {
            u: Vec3::new(1.0, 2.0, 3.0),
        };
        assert_eq!(
            f.velocity(Vec3::ZERO, 0.0),
            f.velocity(Vec3::splat(9.0), 5.0)
        );
    }

    #[test]
    fn vortex_velocity_is_tangential() {
        let f = SolidBodyVortex { omega: 2.0 };
        let p = Vec3::new(3.0, 0.0, 0.0);
        let v = f.velocity(p, 0.0);
        // Perpendicular to radius, magnitude ω·r.
        assert!(v.dot(p).abs() < 1e-6);
        assert!((v.length() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn vortex_axis_is_stagnant() {
        let f = SolidBodyVortex { omega: 2.0 };
        assert_eq!(f.velocity(Vec3::new(0.0, 0.0, 5.0), 1.0), Vec3::ZERO);
    }

    #[test]
    fn shear_profile() {
        let f = Shear { shear_rate: 0.5 };
        assert_eq!(
            f.velocity(Vec3::new(0.0, 4.0, 0.0), 0.0),
            Vec3::new(2.0, 0.0, 0.0)
        );
        assert_eq!(f.velocity(Vec3::new(7.0, 0.0, 0.0), 0.0), Vec3::ZERO);
    }

    #[test]
    fn rotating_uniform_cycles() {
        let f = RotatingUniform {
            u0: 1.0,
            omega: std::f32::consts::TAU,
        };
        let v0 = f.velocity(Vec3::ZERO, 0.0);
        let v1 = f.velocity(Vec3::ZERO, 1.0);
        assert!(v0.distance(v1) < 1e-4);
        let vq = f.velocity(Vec3::ZERO, 0.25);
        assert!(vq.distance(Vec3::Y) < 1e-4);
    }

    proptest! {
        #[test]
        fn prop_abc_divergence_free(x in -3.0f32..3.0, y in -3.0f32..3.0, z in -3.0f32..3.0) {
            let f = AbcFlow::default();
            let div = divergence(&f, Vec3::new(x, y, z), 0.0, 1e-2);
            prop_assert!(div.abs() < 1e-2);
        }

        #[test]
        fn prop_vortex_divergence_free(x in -3.0f32..3.0, y in -3.0f32..3.0) {
            let f = SolidBodyVortex { omega: 1.3 };
            let div = divergence(&f, Vec3::new(x, y, 0.0), 0.0, 1e-2);
            prop_assert!(div.abs() < 1e-3);
        }

        #[test]
        fn prop_abc_speed_bounded(x in -10.0f32..10.0, y in -10.0f32..10.0, z in -10.0f32..10.0) {
            let f = AbcFlow::default();
            let v = f.velocity(Vec3::new(x, y, z), 0.0);
            let bound = (f.a.abs() + f.b.abs() + f.c.abs()) * 1.5;
            prop_assert!(v.length() <= bound);
        }
    }
}
