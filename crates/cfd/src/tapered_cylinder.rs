//! Analytic unsteady model of the flow past a tapered cylinder.
//!
//! A physically-motivated stand-in for the Jespersen & Levit Navier-Stokes
//! solution (see DESIGN.md §2). Per spanwise cross-section the velocity is
//! the superposition of
//!
//! 1. 2-D potential flow around a circular cylinder of the local radius
//!    `a(z)` (exact: zero normal velocity on the body, freestream far
//!    away), and
//! 2. a von Kármán vortex street: a staggered double row of Lamb-Oseen
//!    vortices shed at the local Strouhal frequency
//!    `f(z) = St · U∞ / (2 a(z))` and convected downstream at a fraction
//!    of the freestream speed.
//!
//! Because `a` varies along the span, the shedding frequency varies along
//! the span — neighbouring cross-sections drift out of phase, producing
//! the oblique shedding and vortex dislocations that made the tapered
//! cylinder a visualization benchmark. That is precisely the structure
//! figures 1–3 of the paper show streaklines and streamlines wrapping
//! around.

use crate::analytic::AnalyticField;
use crate::ogrid::OGridSpec;
use flowfield::{dataset::VelocityCoords, Dataset, DatasetMeta, VectorField};
use rayon::prelude::*;
use vecmath::Vec3;

/// Parameters of the analytic tapered-cylinder flow model.
#[derive(Debug, Clone, Copy)]
pub struct TaperedCylinderFlow {
    /// Grid/geometry description (provides the local radius `a(z)`).
    pub spec: OGridSpec,
    /// Freestream speed, along +x.
    pub u_inf: f32,
    /// Strouhal number (≈ 0.2 for a circular cylinder at these Reynolds
    /// numbers).
    pub strouhal: f32,
    /// Wake convection speed as a fraction of `u_inf` (≈ 0.8).
    pub convection_fraction: f32,
    /// Lateral half-spacing of the vortex rows, in units of `a(z)`.
    pub row_halfwidth: f32,
    /// Circulation magnitude of each shed vortex, in units of `u_inf · a`.
    pub vortex_strength: f32,
    /// Lamb-Oseen core radius, in units of `a(z)`.
    pub core_radius: f32,
    /// Downstream distance at which vortices are dropped from the sum.
    pub wake_length: f32,
}

impl Default for TaperedCylinderFlow {
    fn default() -> Self {
        TaperedCylinderFlow {
            spec: OGridSpec::default(),
            u_inf: 1.0,
            strouhal: 0.2,
            convection_fraction: 0.8,
            row_halfwidth: 0.6,
            vortex_strength: 2.5,
            core_radius: 0.45,
            wake_length: 10.0,
        }
    }
}

impl TaperedCylinderFlow {
    /// A small, fast configuration for tests.
    pub fn small() -> TaperedCylinderFlow {
        TaperedCylinderFlow {
            spec: OGridSpec::small(),
            ..TaperedCylinderFlow::default()
        }
    }

    /// Local shedding frequency at span position `z`:
    /// `f = St · U / (2 a(z))` (diameter-based Strouhal relation).
    pub fn shedding_frequency(&self, z: f32) -> f32 {
        self.strouhal * self.u_inf / (2.0 * self.spec.radius_at(z))
    }

    /// Potential-flow velocity around the local cylinder cross-section.
    fn potential(&self, x: f32, y: f32, a: f32) -> Vec3 {
        let r2 = x * x + y * y;
        if r2 < a * a {
            return Vec3::ZERO; // inside the body
        }
        let u = self.u_inf;
        let a2r2 = a * a / r2;
        // Cartesian form of the doublet + freestream solution.
        let cos2 = (x * x - y * y) / r2;
        let sin2 = 2.0 * x * y / r2;
        Vec3::new(u * (1.0 - a2r2 * cos2), -u * a2r2 * sin2, 0.0)
    }

    /// Lamb-Oseen vortex velocity at offset (dx, dy) from the core.
    fn lamb_oseen(&self, dx: f32, dy: f32, gamma: f32, rc: f32) -> Vec3 {
        let r2 = dx * dx + dy * dy;
        if r2 < 1.0e-12 {
            return Vec3::ZERO;
        }
        let factor = gamma / (std::f32::consts::TAU * r2) * (1.0 - (-r2 / (rc * rc)).exp());
        Vec3::new(-dy * factor, dx * factor, 0.0)
    }

    /// Summed vortex-street contribution at `(x, y)` for span position `z`
    /// and time `t`.
    fn street(&self, x: f32, y: f32, z: f32, t: f32) -> Vec3 {
        let a = self.spec.radius_at(z);
        let f = self.shedding_frequency(z);
        let period = 1.0 / f;
        let c = self.convection_fraction * self.u_inf;
        let x_origin = 1.5 * a; // vortices materialize just aft of the body
        let rc = self.core_radius * a;
        let h = self.row_halfwidth * a;
        let gamma0 = self.vortex_strength * self.u_inf * a;

        // Vortex n was shed at t_n = n·period and sits at
        // x = x_origin + c·(t - t_n). Include those inside the wake window.
        let newest = (t / period).floor() as i64;
        let oldest = ((t - self.wake_length / c) / period).ceil() as i64;
        let mut v = Vec3::ZERO;
        for n in oldest..=newest {
            let age = t - n as f32 * period;
            if age < 0.0 {
                continue;
            }
            let xv = x_origin + c * age;
            if xv > x_origin + self.wake_length {
                continue;
            }
            // Alternating rows: even vortices on +h with negative
            // circulation, odd on -h with positive (classic Kármán
            // arrangement for flow in +x).
            let (yv, gamma) = if n.rem_euclid(2) == 0 {
                (h, -gamma0)
            } else {
                (-h, gamma0)
            };
            // Strength fades in over the first quarter period so vortices
            // don't pop into existence discontinuously.
            let ramp = (age / (0.25 * period)).min(1.0);
            v += self.lamb_oseen(x - xv, y - yv, gamma * ramp, rc);
        }
        v
    }
}

impl AnalyticField for TaperedCylinderFlow {
    /// Velocity at physical position `p` and time `t`. The model is 2-D
    /// per cross-section (w = 0); three-dimensionality enters through the
    /// spanwise variation of radius and shedding phase.
    fn velocity(&self, p: Vec3, t: f32) -> Vec3 {
        let a = self.spec.radius_at(p.z);
        let r2 = p.x * p.x + p.y * p.y;
        if r2 < a * a {
            return Vec3::ZERO;
        }
        let mut v = self.potential(p.x, p.y, a);
        // Suppress the street inside/near the body so the superposition
        // does not violate the body boundary too badly.
        let body_fade = ((r2.sqrt() - a) / a).clamp(0.0, 1.0);
        v += self.street(p.x, p.y, p.z, t) * body_fade;
        v
    }
}

/// Sample the analytic model onto its O-grid for `timestep_count` steps of
/// `dt`, convert to grid coordinates, and assemble a [`Dataset`] — the
/// synthetic stand-in for the pre-computed NAS dataset. Parallelized over
/// timesteps with rayon.
pub fn generate_dataset(
    flow: &TaperedCylinderFlow,
    name: &str,
    timestep_count: usize,
    dt: f32,
) -> flowfield::Result<Dataset> {
    let grid = flow.spec.build()?;
    let inv_jac = grid.precompute_inverse_jacobians()?;
    let dims = flow.spec.dims;

    let timesteps: Vec<VectorField> = (0..timestep_count)
        .into_par_iter()
        .map(|step| {
            let t = step as f32 * dt;
            let physical = VectorField::from_fn(dims, |i, j, k| {
                flow.velocity(flow.spec.node_position(i, j, k), t)
            });
            grid.convert_field_with(&inv_jac, &physical)
        })
        .collect::<flowfield::Result<Vec<_>>>()?;

    let meta = DatasetMeta {
        name: name.to_string(),
        dims,
        timestep_count,
        dt,
        coords: VelocityCoords::Grid,
    };
    Dataset::new(meta, grid, timesteps)
}

/// Sample the analytic model in *physical* coordinates on its grid — used
/// by tests and by tools that want the raw solver output.
pub fn sample_physical(flow: &TaperedCylinderFlow, t: f32) -> VectorField {
    VectorField::from_fn(flow.spec.dims, |i, j, k| {
        flow.velocity(flow.spec.node_position(i, j, k), t)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::divergence;

    #[test]
    fn interior_of_body_is_stagnant() {
        let flow = TaperedCylinderFlow::small();
        assert_eq!(flow.velocity(Vec3::new(0.1, 0.1, 0.0), 3.0), Vec3::ZERO);
    }

    #[test]
    fn far_field_approaches_freestream() {
        let flow = TaperedCylinderFlow::small();
        let v = flow.velocity(Vec3::new(-10.0, 6.0, 1.0), 0.0);
        assert!(v.distance(Vec3::new(flow.u_inf, 0.0, 0.0)) < 0.05 * flow.u_inf);
    }

    #[test]
    fn surface_normal_velocity_vanishes_without_street() {
        let flow = TaperedCylinderFlow::small();
        let a = flow.spec.radius_at(0.0);
        // Potential-only component: sample on the surface at several angles.
        for deg in [10.0f32, 45.0, 120.0, 250.0] {
            let th = deg.to_radians();
            let p = Vec3::new(a * th.cos() * 1.0001, a * th.sin() * 1.0001, 0.0);
            let v = flow.potential(p.x, p.y, a);
            let n = Vec3::new(th.cos(), th.sin(), 0.0);
            assert!(v.dot(n).abs() < 0.01 * flow.u_inf, "angle {deg}");
        }
    }

    #[test]
    fn wake_is_unsteady() {
        let flow = TaperedCylinderFlow::small();
        let probe = Vec3::new(3.0, 0.3, 0.0);
        let period = 1.0 / flow.shedding_frequency(0.0);
        let v0 = flow.velocity(probe, 5.0 * period);
        let v1 = flow.velocity(probe, 5.25 * period);
        assert!(v0.distance(v1) > 0.05 * flow.u_inf, "wake should oscillate");
    }

    #[test]
    fn upstream_is_nearly_steady() {
        let flow = TaperedCylinderFlow::small();
        let probe = Vec3::new(-12.0, 0.0, 0.0);
        let v0 = flow.velocity(probe, 0.0);
        let v1 = flow.velocity(probe, 7.3);
        // The street is downstream; upstream only feels its weak far
        // field, which alternating circulations largely cancel.
        assert!(
            v0.distance(v1) < 0.08 * flow.u_inf,
            "drift {}",
            v0.distance(v1)
        );
    }

    #[test]
    fn shedding_frequency_varies_along_span() {
        // The signature tapered-cylinder effect: thinner end sheds faster.
        let flow = TaperedCylinderFlow::small();
        let f_thick = flow.shedding_frequency(0.0);
        let f_thin = flow.shedding_frequency(flow.spec.span);
        assert!(f_thin > f_thick * 1.2, "{f_thin} vs {f_thick}");
    }

    #[test]
    fn planar_divergence_is_small_in_wake() {
        // Potential flow and Lamb-Oseen vortices are both divergence-free
        // in the plane; the superposition (with slowly-varying fades)
        // should stay close to divergence-free.
        let flow = TaperedCylinderFlow::small();
        let p = Vec3::new(4.0, 0.8, 0.0);
        let div = divergence(&flow, p, 3.0, 1e-2);
        assert!(div.abs() < 0.05, "div = {div}");
    }

    #[test]
    fn vortex_street_alternates_sign() {
        let flow = TaperedCylinderFlow::small();
        // Sample transverse velocity on the wake axis over one period; it
        // must change sign (vortices pass alternately above and below).
        let period = 1.0 / flow.shedding_frequency(0.0);
        let probe = Vec3::new(4.0, 0.0, 0.0);
        let n = 24;
        let mut signs = (0..n)
            .map(|s| {
                flow.velocity(probe, 10.0 * period + s as f32 * period / n as f32)
                    .y
            })
            .collect::<Vec<_>>();
        signs.retain(|v| v.abs() > 1e-4);
        assert!(signs.iter().any(|&v| v > 0.0) && signs.iter().any(|&v| v < 0.0));
    }

    #[test]
    fn generate_small_dataset() {
        let flow = TaperedCylinderFlow::small();
        let ds = generate_dataset(&flow, "tc-small", 4, 0.2).unwrap();
        assert_eq!(ds.timestep_count(), 4);
        assert_eq!(ds.dims(), flow.spec.dims);
        assert_eq!(ds.meta().coords, VelocityCoords::Grid);
        // Fields should contain finite, nonzero data.
        let f = ds.timestep(0).unwrap();
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
        assert!(f.max_magnitude() > 0.0);
    }

    #[test]
    fn dataset_timesteps_differ() {
        let flow = TaperedCylinderFlow::small();
        let ds = generate_dataset(&flow, "tc-small", 3, 0.5).unwrap();
        let a = ds.timestep(0).unwrap();
        let b = ds.timestep(2).unwrap();
        let max_diff = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| x.distance(*y))
            .fold(0.0f32, f32::max);
        assert!(max_diff > 1e-3, "unsteady data must change over time");
    }
}
