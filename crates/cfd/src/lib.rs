#![deny(unsafe_op_in_unsafe_fn, unused_must_use)]
//! Synthetic unsteady-flow generation for the distributed virtual
//! windtunnel.
//!
//! The paper visualizes *pre-computed* solutions of the time-accurate
//! Navier-Stokes equations — specifically Jespersen & Levit's unsteady flow
//! past a **tapered cylinder** (64×64×32 grid, 800 timesteps). That dataset
//! is not publicly distributable, so this crate builds the closest
//! synthetic equivalents (see DESIGN.md §2 for the substitution argument):
//!
//! * [`analytic`] — exactly-solvable steady fields (uniform, solid-body
//!   vortex, shear, ABC) used to validate the tracer against closed-form
//!   particle paths;
//! * [`ogrid`] — the curvilinear O-grid around a tapered cylinder, the
//!   same topology the NAS dataset used;
//! * [`tapered_cylinder`] — an analytic unsteady model of the flow: 2-D
//!   potential flow around each spanwise cross-section superposed with a
//!   von Kármán vortex street whose shedding frequency varies along the
//!   span (the taper effect the dataset is famous for — oblique shedding
//!   and vortex dislocations);
//! * [`solver`] — an honest 2-D incompressible projection-method
//!   Navier-Stokes solver with an immersed cylinder, solved independently
//!   per spanwise layer (each layer sees its own cylinder radius) to build
//!   genuinely simulation-derived unsteady 3-D data.

pub mod analytic;
pub mod ogrid;
pub mod solver;
pub mod tapered_cylinder;

pub use ogrid::OGridSpec;
pub use tapered_cylinder::TaperedCylinderFlow;
