//! The curvilinear O-grid around a tapered cylinder.
//!
//! The Jespersen & Levit dataset the paper visualizes lives on an O-type
//! grid: one index wraps around the cylinder, one marches radially outward
//! from the body surface to the far field, one runs along the span. The
//! cylinder is *tapered* — its radius shrinks linearly along the span —
//! which makes the vortex shedding frequency vary with span and produces
//! the vortex dislocations that made this dataset a visualization
//! showpiece.
//!
//! Index convention (matching the 64×64×32 point counts of the paper):
//!
//! * `i` ∈ [0, ni)  — angular, wrapping; node `ni-1` duplicates node `0`
//!   (the standard O-grid seam),
//! * `j` ∈ [0, nj)  — radial, geometrically stretched from the body
//!   surface to the far-field radius,
//! * `k` ∈ [0, nk)  — spanwise.

use flowfield::{CurvilinearGrid, Dims};
use vecmath::Vec3;

/// Geometry of a tapered-cylinder O-grid.
#[derive(Debug, Clone, Copy)]
pub struct OGridSpec {
    /// Grid dimensions (angular × radial × spanwise).
    pub dims: Dims,
    /// Cylinder radius at the `z = 0` end of the span.
    pub radius0: f32,
    /// Radius decrease per unit span (0 = straight cylinder). The paper's
    /// tapered cylinder shrinks linearly along the span.
    pub taper: f32,
    /// Span length along the z axis.
    pub span: f32,
    /// Far-field boundary radius (constant along the span).
    pub far_radius: f32,
}

impl Default for OGridSpec {
    fn default() -> Self {
        OGridSpec {
            dims: Dims::TAPERED_CYLINDER,
            radius0: 1.0,
            taper: 0.3 / 8.0, // a 30 % radius reduction over a span of 8
            span: 8.0,
            far_radius: 12.0,
        }
    }
}

impl OGridSpec {
    /// A small grid with the same topology, for fast tests.
    pub fn small() -> OGridSpec {
        OGridSpec {
            dims: Dims::new(17, 9, 5),
            ..OGridSpec::default()
        }
    }

    /// Cylinder radius at spanwise position `z`.
    pub fn radius_at(&self, z: f32) -> f32 {
        (self.radius0 - self.taper * z).max(1.0e-3)
    }

    /// Spanwise coordinate of layer `k`.
    pub fn z_of_layer(&self, k: usize) -> f32 {
        self.span * k as f32 / (self.dims.nk - 1).max(1) as f32
    }

    /// Angle of angular index `i` (node `ni-1` wraps to 2π ≡ 0).
    pub fn theta_of(&self, i: usize) -> f32 {
        std::f32::consts::TAU * i as f32 / (self.dims.ni - 1).max(1) as f32
    }

    /// Radial coordinate of index `j` at span position `z`: geometric
    /// stretching from the body surface to the far field, concentrating
    /// cells near the body where the flow structure is.
    pub fn r_of(&self, j: usize, z: f32) -> f32 {
        let a = self.radius_at(z);
        let ratio = self.far_radius / a;
        let s = j as f32 / (self.dims.nj - 1).max(1) as f32;
        a * ratio.powf(s)
    }

    /// Physical position of node `(i, j, k)`.
    pub fn node_position(&self, i: usize, j: usize, k: usize) -> Vec3 {
        let z = self.z_of_layer(k);
        let theta = self.theta_of(i);
        let r = self.r_of(j, z);
        Vec3::new(r * theta.cos(), r * theta.sin(), z)
    }

    /// Build the curvilinear grid.
    pub fn build(&self) -> flowfield::Result<CurvilinearGrid> {
        CurvilinearGrid::from_fn(self.dims, |i, j, k| self.node_position(i, j, k))
    }

    /// The O-grid wraps in `i`: callers integrating in grid coordinates
    /// should wrap `i` modulo `ni - 1` (the seam node is duplicated).
    pub fn angular_period(&self) -> f32 {
        (self.dims.ni - 1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_dims() {
        let spec = OGridSpec::default();
        assert_eq!(spec.dims.point_count(), 131_072);
    }

    #[test]
    fn taper_shrinks_radius() {
        let spec = OGridSpec::default();
        assert!(spec.radius_at(spec.span) < spec.radius_at(0.0));
        assert!((spec.radius_at(0.0) - 1.0).abs() < 1e-6);
        assert!((spec.radius_at(8.0) - 0.7).abs() < 1e-5);
    }

    #[test]
    fn radius_never_collapses() {
        let spec = OGridSpec {
            taper: 100.0,
            ..OGridSpec::default()
        };
        assert!(spec.radius_at(1.0e3) > 0.0);
    }

    #[test]
    fn seam_nodes_coincide() {
        let spec = OGridSpec::small();
        for k in 0..spec.dims.nk as usize {
            for j in 0..spec.dims.nj as usize {
                let a = spec.node_position(0, j, k);
                let b = spec.node_position(spec.dims.ni as usize - 1, j, k);
                assert!(a.distance(b) < 1e-4, "seam mismatch at j={j} k={k}");
            }
        }
    }

    #[test]
    fn surface_nodes_sit_on_cylinder() {
        let spec = OGridSpec::small();
        for k in 0..spec.dims.nk as usize {
            let z = spec.z_of_layer(k);
            let a = spec.radius_at(z);
            for i in 0..spec.dims.ni as usize {
                let p = spec.node_position(i, 0, k);
                let r = (p.x * p.x + p.y * p.y).sqrt();
                assert!((r - a).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn outer_boundary_at_far_radius() {
        let spec = OGridSpec::small();
        let j_max = spec.dims.nj as usize - 1;
        let p = spec.node_position(3, j_max, 2);
        let r = (p.x * p.x + p.y * p.y).sqrt();
        assert!((r - spec.far_radius).abs() < 1e-3);
    }

    #[test]
    fn radial_spacing_is_stretched() {
        // Cells near the body must be finer than cells at the far field.
        let spec = OGridSpec::small();
        let inner = spec.r_of(1, 0.0) - spec.r_of(0, 0.0);
        let outer =
            spec.r_of(spec.dims.nj as usize - 1, 0.0) - spec.r_of(spec.dims.nj as usize - 2, 0.0);
        assert!(inner < outer);
    }

    #[test]
    fn grid_builds_and_is_nonsingular_off_seam() {
        let spec = OGridSpec::small();
        let grid = spec.build().unwrap();
        assert_eq!(grid.dims(), spec.dims);
        // Interior Jacobians must be invertible.
        let j = grid.jacobian(Vec3::new(3.0, 4.0, 2.0)).unwrap();
        assert!(j.determinant().abs() > 1e-6);
    }

    #[test]
    fn bounds_contain_far_field() {
        let spec = OGridSpec::small();
        let grid = spec.build().unwrap();
        let b = grid.bounds();
        assert!(b.max.x >= spec.far_radius * 0.99);
        assert!(b.min.x <= -spec.far_radius * 0.99);
        assert!((b.max.z - spec.span).abs() < 1e-4);
    }
}
