//! A 2-D incompressible Navier-Stokes solver (Chorin projection method)
//! with an immersed cylinder, extruded along the span.
//!
//! The paper consumes *pre-computed* time-accurate Navier-Stokes solutions.
//! [`tapered_cylinder`](crate::tapered_cylinder) gives a cheap analytic
//! stand-in; this module gives an honest (if modest) simulation-derived
//! alternative: a staggered-grid (MAC) projection solver per spanwise
//! layer, each layer seeing the local cylinder radius of the taper, run in
//! parallel with rayon. Semi-Lagrangian advection keeps it unconditionally
//! stable, explicit diffusion adds viscosity, and a Gauss-Seidel pressure
//! solve projects the field to (discretely) divergence-free.
//!
//! Boundary conditions: prescribed inflow on the left, zero-gradient
//! outflow on the right, free-slip top and bottom, no-slip on cells inside
//! the cylinder.

use flowfield::{
    dataset::VelocityCoords, CurvilinearGrid, Dataset, DatasetMeta, Dims, VectorField,
};
use rayon::prelude::*;
use vecmath::{Aabb, Vec3};

/// Configuration for one 2-D solver layer.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Pressure/velocity cells in x.
    pub nx: usize,
    /// Pressure/velocity cells in y.
    pub ny: usize,
    /// Domain size in x.
    pub lx: f32,
    /// Domain size in y.
    pub ly: f32,
    /// Inflow speed.
    pub u_inflow: f32,
    /// Kinematic viscosity.
    pub viscosity: f32,
    /// Cylinder center.
    pub cylinder_center: (f32, f32),
    /// Cylinder radius.
    pub cylinder_radius: f32,
    /// Time step.
    pub dt: f32,
    /// Gauss-Seidel iterations for the pressure solve.
    pub pressure_iters: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            nx: 96,
            ny: 48,
            lx: 12.0,
            ly: 6.0,
            u_inflow: 1.0,
            viscosity: 1.0e-3,
            cylinder_center: (3.0, 3.0),
            cylinder_radius: 0.5,
            dt: 0.02,
            pressure_iters: 60,
        }
    }
}

impl SolverConfig {
    /// Tiny configuration for unit tests.
    pub fn tiny() -> SolverConfig {
        SolverConfig {
            nx: 32,
            ny: 16,
            pressure_iters: 40,
            ..SolverConfig::default()
        }
    }

    #[inline]
    pub fn dx(&self) -> f32 {
        self.lx / self.nx as f32
    }

    #[inline]
    pub fn dy(&self) -> f32 {
        self.ly / self.ny as f32
    }
}

/// 2-D MAC-grid fluid state.
///
/// Staggering: `u[i][j]` lives on the vertical face between cells
/// `(i-1, j)` and `(i, j)` (so `u` is `(nx+1) × ny`); `v[i][j]` lives on
/// the horizontal face (so `v` is `nx × (ny+1)`); pressure is
/// cell-centered (`nx × ny`). Flat storage, i-fastest.
pub struct Solver2D {
    cfg: SolverConfig,
    u: Vec<f32>,
    v: Vec<f32>,
    p: Vec<f32>,
    solid: Vec<bool>,
    time: f32,
    step_count: usize,
    // scratch buffers reused across steps
    u_tmp: Vec<f32>,
    v_tmp: Vec<f32>,
    div: Vec<f32>,
}

impl Solver2D {
    pub fn new(cfg: SolverConfig) -> Solver2D {
        let (nx, ny) = (cfg.nx, cfg.ny);
        let mut s = Solver2D {
            u: vec![0.0; (nx + 1) * ny],
            v: vec![0.0; nx * (ny + 1)],
            p: vec![0.0; nx * ny],
            solid: vec![false; nx * ny],
            time: 0.0,
            step_count: 0,
            u_tmp: vec![0.0; (nx + 1) * ny],
            v_tmp: vec![0.0; nx * (ny + 1)],
            div: vec![0.0; nx * ny],
            cfg,
        };
        // Mark solid cells (cell centers inside the cylinder).
        let (cx, cy) = cfg.cylinder_center;
        for j in 0..ny {
            for i in 0..nx {
                let x = (i as f32 + 0.5) * cfg.dx();
                let y = (j as f32 + 0.5) * cfg.dy();
                let dx = x - cx;
                let dy = y - cy;
                s.solid[i + nx * j] = dx * dx + dy * dy < cfg.cylinder_radius * cfg.cylinder_radius;
            }
        }
        // Initialize with the inflow everywhere plus a tiny asymmetric
        // perturbation to break symmetry and start the shedding.
        for j in 0..ny {
            for i in 0..=nx {
                let y = (j as f32 + 0.5) * cfg.dy();
                let pert = 0.02 * cfg.u_inflow * (7.0 * y / cfg.ly).sin();
                s.u[i + (nx + 1) * j] = cfg.u_inflow + pert;
            }
        }
        s.enforce_solid();
        s
    }

    #[inline]
    fn ui(&self, i: usize, j: usize) -> usize {
        i + (self.cfg.nx + 1) * j
    }

    #[inline]
    fn vi(&self, i: usize, j: usize) -> usize {
        i + self.cfg.nx * j
    }

    #[inline]
    fn pi(&self, i: usize, j: usize) -> usize {
        i + self.cfg.nx * j
    }

    pub fn time(&self) -> f32 {
        self.time
    }

    pub fn step_count(&self) -> usize {
        self.step_count
    }

    pub fn is_solid(&self, i: usize, j: usize) -> bool {
        self.solid[self.pi(i, j)]
    }

    /// Bilinear sample of the u-component at physical `(x, y)`.
    fn sample_u(&self, x: f32, y: f32) -> f32 {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let fx = (x / self.cfg.dx()).clamp(0.0, nx as f32);
        let fy = (y / self.cfg.dy() - 0.5).clamp(0.0, (ny - 1) as f32);
        let i0 = (fx as usize).min(nx - 1);
        let j0 = (fy as usize).min(ny.saturating_sub(2));
        let tx = fx - i0 as f32;
        let ty = fy - j0 as f32;
        let j1 = (j0 + 1).min(ny - 1);
        let a = self.u[self.ui(i0, j0)] * (1.0 - tx) + self.u[self.ui(i0 + 1, j0)] * tx;
        let b = self.u[self.ui(i0, j1)] * (1.0 - tx) + self.u[self.ui(i0 + 1, j1)] * tx;
        a * (1.0 - ty) + b * ty
    }

    /// Bilinear sample of the v-component at physical `(x, y)`.
    fn sample_v(&self, x: f32, y: f32) -> f32 {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let fx = (x / self.cfg.dx() - 0.5).clamp(0.0, (nx - 1) as f32);
        let fy = (y / self.cfg.dy()).clamp(0.0, ny as f32);
        let i0 = (fx as usize).min(nx.saturating_sub(2));
        let j0 = (fy as usize).min(ny - 1);
        let tx = fx - i0 as f32;
        let ty = fy - j0 as f32;
        let i1 = (i0 + 1).min(nx - 1);
        let a = self.v[self.vi(i0, j0)] * (1.0 - tx) + self.v[self.vi(i1, j0)] * tx;
        let b = self.v[self.vi(i0, j0 + 1)] * (1.0 - tx) + self.v[self.vi(i1, j0 + 1)] * tx;
        a * (1.0 - ty) + b * ty
    }

    /// Velocity at an arbitrary physical point (for tracing back and for
    /// sampling onto output grids).
    pub fn velocity_at(&self, x: f32, y: f32) -> (f32, f32) {
        (self.sample_u(x, y), self.sample_v(x, y))
    }

    /// Semi-Lagrangian advection of both velocity components.
    fn advect(&mut self) {
        let dt = self.cfg.dt;
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let (dx, dy) = (self.cfg.dx(), self.cfg.dy());
        let ui = |i: usize, j: usize| i + (nx + 1) * j;
        let vi = |i: usize, j: usize| i + nx * j;
        for j in 0..ny {
            for i in 0..=nx {
                let x = i as f32 * dx;
                let y = (j as f32 + 0.5) * dy;
                let (uu, vv) = self.velocity_at(x, y);
                self.u_tmp[ui(i, j)] = self.sample_u(x - dt * uu, y - dt * vv);
            }
        }
        for j in 0..=ny {
            for i in 0..nx {
                let x = (i as f32 + 0.5) * dx;
                let y = j as f32 * dy;
                let (uu, vv) = self.velocity_at(x, y);
                self.v_tmp[vi(i, j)] = self.sample_v(x - dt * uu, y - dt * vv);
            }
        }
        std::mem::swap(&mut self.u, &mut self.u_tmp);
        std::mem::swap(&mut self.v, &mut self.v_tmp);
    }

    /// Explicit viscous diffusion (5-point Laplacian).
    fn diffuse(&mut self) {
        let nu = self.cfg.viscosity;
        if nu <= 0.0 {
            return;
        }
        let dt = self.cfg.dt;
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let inv_dx2 = 1.0 / (self.cfg.dx() * self.cfg.dx());
        let inv_dy2 = 1.0 / (self.cfg.dy() * self.cfg.dy());
        let ui = |i: usize, j: usize| i + (nx + 1) * j;
        let vi = |i: usize, j: usize| i + nx * j;
        for j in 1..ny.saturating_sub(1) {
            for i in 1..nx {
                let c = self.u[ui(i, j)];
                let lap = (self.u[ui(i + 1, j)] - 2.0 * c + self.u[ui(i - 1, j)]) * inv_dx2
                    + (self.u[ui(i, j + 1)] - 2.0 * c + self.u[ui(i, j - 1)]) * inv_dy2;
                self.u_tmp[ui(i, j)] = c + dt * nu * lap;
            }
        }
        for j in 1..ny.saturating_sub(1) {
            for i in 1..nx {
                let idx = ui(i, j);
                self.u[idx] = self.u_tmp[idx];
            }
        }
        for j in 1..ny {
            for i in 1..nx.saturating_sub(1) {
                let c = self.v[vi(i, j)];
                let lap = (self.v[vi(i + 1, j)] - 2.0 * c + self.v[vi(i - 1, j)]) * inv_dx2
                    + (self.v[vi(i, j + 1)] - 2.0 * c + self.v[vi(i, j - 1)]) * inv_dy2;
                self.v_tmp[vi(i, j)] = c + dt * nu * lap;
            }
        }
        for j in 1..ny {
            for i in 1..nx.saturating_sub(1) {
                let idx = vi(i, j);
                self.v[idx] = self.v_tmp[idx];
            }
        }
    }

    /// Apply boundary conditions: inflow, outflow, slip walls, body.
    fn apply_boundaries(&mut self) {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let ui = |i: usize, j: usize| i + (nx + 1) * j;
        let vi = |i: usize, j: usize| i + nx * j;
        // Inflow (left): fixed u, zero v.
        for j in 0..ny {
            self.u[ui(0, j)] = self.cfg.u_inflow;
        }
        for j in 0..=ny {
            self.v[vi(0, j)] = 0.0;
        }
        // Outflow (right): zero-gradient.
        for j in 0..ny {
            self.u[ui(nx, j)] = self.u[ui(nx - 1, j)];
        }
        for j in 0..=ny {
            self.v[vi(nx - 1, j)] = self.v[vi(nx - 2, j)];
        }
        // Top/bottom: free slip — v = 0 at walls, u unchanged.
        for i in 0..nx {
            self.v[vi(i, 0)] = 0.0;
            self.v[vi(i, ny)] = 0.0;
        }
        self.enforce_solid();
    }

    /// Zero all face velocities adjacent to solid cells (no-slip body).
    fn enforce_solid(&mut self) {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let ui = |i: usize, j: usize| i + (nx + 1) * j;
        let vi = |i: usize, j: usize| i + nx * j;
        let pi = |i: usize, j: usize| i + nx * j;
        for j in 0..ny {
            for i in 0..nx {
                if self.solid[pi(i, j)] {
                    self.u[ui(i, j)] = 0.0;
                    self.u[ui(i + 1, j)] = 0.0;
                    self.v[vi(i, j)] = 0.0;
                    self.v[vi(i, j + 1)] = 0.0;
                }
            }
        }
    }

    /// Divergence of the face velocities, per cell.
    fn compute_divergence(&mut self) {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let inv_dx = 1.0 / self.cfg.dx();
        let inv_dy = 1.0 / self.cfg.dy();
        let ui = |i: usize, j: usize| i + (nx + 1) * j;
        let vi = |i: usize, j: usize| i + nx * j;
        let pi = |i: usize, j: usize| i + nx * j;
        for j in 0..ny {
            for i in 0..nx {
                let d = (self.u[ui(i + 1, j)] - self.u[ui(i, j)]) * inv_dx
                    + (self.v[vi(i, j + 1)] - self.v[vi(i, j)]) * inv_dy;
                self.div[pi(i, j)] = d;
            }
        }
    }

    /// Gauss-Seidel pressure solve and velocity correction.
    fn project(&mut self) {
        self.compute_divergence();
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let dx = self.cfg.dx();
        let dy = self.cfg.dy();
        let dt = self.cfg.dt;
        let inv_dx2 = 1.0 / (dx * dx);
        let inv_dy2 = 1.0 / (dy * dy);
        let ui = |i: usize, j: usize| i + (nx + 1) * j;
        let vi = |i: usize, j: usize| i + nx * j;
        let pi = |i: usize, j: usize| i + nx * j;
        // Solve ∇²p = div/dt with Neumann-ish handling at solids/walls.
        for _ in 0..self.cfg.pressure_iters {
            for j in 0..ny {
                for i in 0..nx {
                    if self.solid[pi(i, j)] {
                        continue;
                    }
                    let mut diag = 0.0;
                    let mut sum = 0.0;
                    // Each fluid neighbour contributes; solid/wall
                    // neighbours drop out (Neumann).
                    if i > 0 && !self.solid[pi(i - 1, j)] {
                        sum += self.p[pi(i - 1, j)] * inv_dx2;
                        diag += inv_dx2;
                    }
                    if i + 1 < nx && !self.solid[pi(i + 1, j)] {
                        sum += self.p[pi(i + 1, j)] * inv_dx2;
                        diag += inv_dx2;
                    }
                    // Outflow column: Dirichlet p = 0 reference.
                    if i + 1 == nx {
                        diag += inv_dx2;
                    }
                    if j > 0 && !self.solid[pi(i, j - 1)] {
                        sum += self.p[pi(i, j - 1)] * inv_dy2;
                        diag += inv_dy2;
                    }
                    if j + 1 < ny && !self.solid[pi(i, j + 1)] {
                        sum += self.p[pi(i, j + 1)] * inv_dy2;
                        diag += inv_dy2;
                    }
                    if diag > 0.0 {
                        self.p[pi(i, j)] = (sum - self.div[pi(i, j)] / dt) / diag;
                    }
                }
            }
        }
        // Velocity correction: u -= dt ∂p/∂x on interior fluid faces.
        for j in 0..ny {
            for i in 1..nx {
                if !self.solid[pi(i - 1, j)] && !self.solid[pi(i, j)] {
                    self.u[ui(i, j)] -= dt * (self.p[pi(i, j)] - self.p[pi(i - 1, j)]) / dx;
                }
            }
        }
        for j in 1..ny {
            for i in 0..nx {
                if !self.solid[pi(i, j - 1)] && !self.solid[pi(i, j)] {
                    self.v[vi(i, j)] -= dt * (self.p[pi(i, j)] - self.p[pi(i, j - 1)]) / dy;
                }
            }
        }
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        self.advect();
        self.diffuse();
        self.apply_boundaries();
        self.project();
        self.apply_boundaries();
        self.time += self.cfg.dt;
        self.step_count += 1;
    }

    /// Maximum absolute cell divergence (diagnostic; small after
    /// projection).
    pub fn max_divergence(&mut self) -> f32 {
        self.compute_divergence();
        let solid = &self.solid;
        self.div
            .iter()
            .zip(solid.iter())
            .filter(|(_, &s)| !s)
            .map(|(d, _)| d.abs())
            .fold(0.0f32, f32::max)
    }

    /// Maximum velocity magnitude (diagnostic; bounded if stable).
    pub fn max_speed(&self) -> f32 {
        let u_max = self.u.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let v_max = self.v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        (u_max * u_max + v_max * v_max).sqrt()
    }
}

/// Run `nk` independent 2-D layers (each with the taper's local radius),
/// snapshot every `steps_per_snapshot` solver steps, and assemble an
/// unsteady 3-D dataset on a Cartesian grid (w = 0; three-dimensionality
/// enters through the spanwise radius variation). Layers run in parallel.
pub struct ExtrudeConfig {
    pub base: SolverConfig,
    /// Spanwise layers (nk of the output grid).
    pub layers: usize,
    /// Span length in z.
    pub span: f32,
    /// Cylinder radius at layer 0.
    pub radius0: f32,
    /// Radius decrease per unit span.
    pub taper: f32,
    /// Solver steps to run before the first snapshot (spin-up).
    pub warmup_steps: usize,
    /// Solver steps between snapshots.
    pub steps_per_snapshot: usize,
    /// Number of snapshots (timesteps of the output dataset).
    pub snapshots: usize,
    /// Output grid nodes in x and y (sampled from the MAC grid).
    pub out_nx: u32,
    pub out_ny: u32,
}

impl Default for ExtrudeConfig {
    fn default() -> Self {
        ExtrudeConfig {
            base: SolverConfig::default(),
            layers: 8,
            span: 8.0,
            radius0: 0.5,
            taper: 0.15 / 8.0,
            warmup_steps: 200,
            steps_per_snapshot: 10,
            snapshots: 16,
            out_nx: 48,
            out_ny: 24,
        }
    }
}

/// Run the extruded simulation and build a [`Dataset`].
pub fn simulate_extruded(cfg: &ExtrudeConfig, name: &str) -> flowfield::Result<Dataset> {
    let nk = cfg.layers.max(2);
    // Per-layer solve: returns snapshots of (u, v) sampled on the output
    // x-y lattice.
    let per_layer: Vec<Vec<Vec<(f32, f32)>>> = (0..nk)
        .into_par_iter()
        .map(|k| {
            let z = cfg.span * k as f32 / (nk - 1) as f32;
            let mut layer_cfg = cfg.base;
            layer_cfg.cylinder_radius = (cfg.radius0 - cfg.taper * z).max(1e-3);
            let mut solver = Solver2D::new(layer_cfg);
            for _ in 0..cfg.warmup_steps {
                solver.step();
            }
            let mut snaps = Vec::with_capacity(cfg.snapshots);
            for s in 0..cfg.snapshots {
                if s > 0 {
                    for _ in 0..cfg.steps_per_snapshot {
                        solver.step();
                    }
                }
                let mut frame = Vec::with_capacity((cfg.out_nx * cfg.out_ny) as usize);
                for jy in 0..cfg.out_ny {
                    for ix in 0..cfg.out_nx {
                        let x = layer_cfg.lx * ix as f32 / (cfg.out_nx - 1) as f32;
                        let y = layer_cfg.ly * jy as f32 / (cfg.out_ny - 1) as f32;
                        frame.push(solver.velocity_at(x, y));
                    }
                }
                snaps.push(frame);
            }
            snaps
        })
        .collect();

    let dims = Dims::new(cfg.out_nx, cfg.out_ny, nk as u32);
    let bounds = Aabb::new(Vec3::ZERO, Vec3::new(cfg.base.lx, cfg.base.ly, cfg.span));
    let grid = CurvilinearGrid::cartesian(dims, bounds)?;
    let inv_jac = grid.precompute_inverse_jacobians()?;

    let mut timesteps = Vec::with_capacity(cfg.snapshots);
    #[allow(clippy::needless_range_loop)] // `s` indexes the inner snapshot axis
    for s in 0..cfg.snapshots {
        let physical = VectorField::from_fn(dims, |i, j, k| {
            let (u, v) = per_layer[k][s][i + cfg.out_nx as usize * j];
            Vec3::new(u, v, 0.0)
        });
        timesteps.push(grid.convert_field_with(&inv_jac, &physical)?);
    }

    let dt = cfg.base.dt * cfg.steps_per_snapshot as f32;
    let meta = DatasetMeta {
        name: name.to_string(),
        dims,
        timestep_count: cfg.snapshots,
        dt,
        coords: VelocityCoords::Grid,
    };
    Dataset::new(meta, grid, timesteps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_initializes_with_inflow() {
        let s = Solver2D::new(SolverConfig::tiny());
        let (u, v) = s.velocity_at(1.0, 3.0);
        assert!(u > 0.5);
        assert!(v.abs() < 0.1);
    }

    #[test]
    fn solid_cells_marked_inside_cylinder() {
        let cfg = SolverConfig::tiny();
        let s = Solver2D::new(cfg);
        // Cell containing the cylinder center must be solid.
        let ci = (cfg.cylinder_center.0 / cfg.dx()) as usize;
        let cj = (cfg.cylinder_center.1 / cfg.dy()) as usize;
        assert!(s.is_solid(ci, cj));
        // Far corner is fluid.
        assert!(!s.is_solid(cfg.nx - 1, cfg.ny - 1));
    }

    #[test]
    fn projection_reduces_divergence() {
        let mut s = Solver2D::new(SolverConfig::tiny());
        for _ in 0..5 {
            s.step();
        }
        let div = s.max_divergence();
        assert!(div < 0.75, "divergence after projection: {div}");
    }

    #[test]
    fn solver_remains_stable() {
        let mut s = Solver2D::new(SolverConfig::tiny());
        for _ in 0..100 {
            s.step();
        }
        let speed = s.max_speed();
        assert!(speed.is_finite());
        assert!(speed < 10.0 * s.cfg.u_inflow, "max speed {speed}");
    }

    #[test]
    fn body_stays_no_slip() {
        let cfg = SolverConfig::tiny();
        let mut s = Solver2D::new(cfg);
        for _ in 0..20 {
            s.step();
        }
        let (u, v) = s.velocity_at(cfg.cylinder_center.0, cfg.cylinder_center.1);
        assert!(u.abs() < 1e-4 && v.abs() < 1e-4);
    }

    #[test]
    fn wake_develops_downstream_deficit() {
        let cfg = SolverConfig::tiny();
        let mut s = Solver2D::new(cfg);
        for _ in 0..150 {
            s.step();
        }
        // Speed just behind the cylinder is lower than the freestream
        // above it.
        let (u_wake, _) = s.velocity_at(
            cfg.cylinder_center.0 + 3.0 * cfg.cylinder_radius,
            cfg.cylinder_center.1,
        );
        let (u_free, _) = s.velocity_at(cfg.cylinder_center.0, cfg.ly - 0.5);
        assert!(u_wake < u_free, "wake {u_wake} vs free {u_free}");
    }

    #[test]
    fn time_advances() {
        let mut s = Solver2D::new(SolverConfig::tiny());
        s.step();
        s.step();
        assert_eq!(s.step_count(), 2);
        assert!((s.time() - 2.0 * SolverConfig::tiny().dt).abs() < 1e-6);
    }

    #[test]
    fn extruded_simulation_builds_dataset() {
        let cfg = ExtrudeConfig {
            base: SolverConfig::tiny(),
            layers: 3,
            // Strong taper so the coarse test grid rasterizes distinct
            // solid masks per layer (0.9 → 0.3 over the span).
            radius0: 0.9,
            taper: 0.6 / 8.0,
            warmup_steps: 60,
            steps_per_snapshot: 10,
            snapshots: 3,
            out_nx: 12,
            out_ny: 8,
            ..ExtrudeConfig::default()
        };
        let ds = simulate_extruded(&cfg, "ns-tiny").unwrap();
        assert_eq!(ds.timestep_count(), 3);
        assert_eq!(ds.dims(), Dims::new(12, 8, 3));
        assert!(ds
            .timesteps()
            .iter()
            .all(|f| f.as_slice().iter().all(|v| v.is_finite())));
        // Layers differ (different radii ⇒ different flow): compare the
        // whole k=0 and k=2 slices.
        let f = ds.timestep(2).unwrap();
        let mut layer_diff = 0.0f32;
        for j in 0..8usize {
            for i in 0..12usize {
                layer_diff = layer_diff.max(f.at(i, j, 0).distance(f.at(i, j, 2)));
            }
        }
        assert!(layer_diff > 1e-4, "layer diff {layer_diff}");
    }
}
