//! Dataset generator CLI.
//!
//! ```text
//! dvw-gen <out-dir> [--dims NI NJ NK] [--timesteps N] [--dt SECONDS]
//!         [--model analytic|navier-stokes] [--name NAME]
//! ```
//!
//! Writes a dataset directory (grid + meta + one velocity file per
//! timestep) that `dvw-server` can serve. The default is the analytic
//! tapered-cylinder model at the paper's 64×64×32 resolution.

use cfd::solver::{simulate_extruded, ExtrudeConfig, SolverConfig};
use cfd::tapered_cylinder::{generate_dataset, TaperedCylinderFlow};
use cfd::OGridSpec;
use flowfield::{format, Dims};
use std::path::PathBuf;
use std::process::exit;

struct Args {
    out: PathBuf,
    dims: Dims,
    timesteps: usize,
    dt: f32,
    model: String,
    name: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: dvw-gen <out-dir> [--dims NI NJ NK] [--timesteps N] [--dt S] \
         [--model analytic|navier-stokes] [--name NAME]"
    );
    exit(2)
}

fn parse() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(out) = argv.next() else { usage() };
    if out.starts_with("--") {
        usage();
    }
    let mut args = Args {
        out: PathBuf::from(out),
        dims: Dims::TAPERED_CYLINDER,
        timesteps: 64,
        dt: 0.25,
        model: "analytic".into(),
        name: "tapered-cylinder".into(),
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--dims" => {
                let mut next = || {
                    argv.next()
                        .and_then(|v| v.parse::<u32>().ok())
                        .unwrap_or_else(|| usage())
                };
                args.dims = Dims::new(next(), next(), next());
            }
            "--timesteps" => {
                args.timesteps = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--dt" => {
                args.dt = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--model" => {
                args.model = argv.next().unwrap_or_else(|| usage());
            }
            "--name" => {
                args.name = argv.next().unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse();
    let dataset = match args.model.as_str() {
        "analytic" => {
            let flow = TaperedCylinderFlow {
                spec: OGridSpec {
                    dims: args.dims,
                    ..OGridSpec::default()
                },
                ..TaperedCylinderFlow::default()
            };
            eprintln!(
                "generating analytic tapered-cylinder dataset: {} x {} timesteps ({:.1} MB total)",
                args.dims,
                args.timesteps,
                args.dims.timestep_bytes() as f64 * args.timesteps as f64 / 1e6
            );
            generate_dataset(&flow, &args.name, args.timesteps, args.dt)
        }
        "navier-stokes" => {
            let cfg = ExtrudeConfig {
                base: SolverConfig::default(),
                layers: args.dims.nk as usize,
                snapshots: args.timesteps,
                out_nx: args.dims.ni,
                out_ny: args.dims.nj,
                ..ExtrudeConfig::default()
            };
            eprintln!(
                "running projection-method solver: {} layers x {} snapshots",
                cfg.layers, cfg.snapshots
            );
            simulate_extruded(&cfg, &args.name)
        }
        other => {
            eprintln!("unknown model '{other}'");
            usage()
        }
    };
    match dataset {
        Ok(ds) => {
            if let Err(e) = format::write_dataset(&args.out, &ds) {
                eprintln!("error writing dataset: {e}");
                exit(1);
            }
            println!(
                "wrote {} ({} timesteps, {} points each)",
                args.out.display(),
                ds.timestep_count(),
                ds.dims().point_count()
            );
        }
        Err(e) => {
            eprintln!("generation failed: {e}");
            exit(1);
        }
    }
}
