//! Batch streamline kernels — the §5.3 optimization study.
//!
//! The paper compares two ways of computing 100 streamlines on the Convex:
//!
//! * **scalar, parallelized across streamlines** — "optimized scalar C
//!   techniques such as pointer manipulation and striding … successfully
//!   parallelizes across the four processors … by distributing the
//!   streamlines among the processors" (0.24 s);
//! * **vectorized across streamlines** — "Each component of each point in
//!   the streamline is handled in parallel … the only possibility, as the
//!   computation of an individual streamline is an iterative process"
//!   (0.19 s);
//!
//! and proposes the hybrid — "parallelize across groups of streamlines and
//! vectorize across streamlines in a group" — as future work. All three
//! are implemented here:
//!
//! * [`trace_batch_scalar`] — one streamline at a time over the AoS field,
//! * [`trace_batch_parallel`] — scalar kernel distributed over threads
//!   with rayon (streamline granularity),
//! * [`trace_batch_vector`] — all streamlines advanced in lockstep over
//!   the SoA field, with component-separated inner loops (the analog of
//!   the Convex's 128-entry vector registers),
//! * [`trace_batch_vector_parallel`] — the proposed hybrid: rayon across
//!   groups of [`VECTOR_GROUP`] streamlines, lockstep within each group.

use crate::domain::Domain;
use crate::streamline::{streamline, TraceConfig};
use crate::Polyline;
use flowfield::{VectorField, VectorFieldSoA};
use rayon::prelude::*;
use vecmath::Vec3;

/// Streamlines per vector group in the hybrid kernel — the Convex C3240's
/// vector registers held 128 entries (§5.1).
pub const VECTOR_GROUP: usize = 128;

/// Scalar kernel: trace each seed independently (single thread).
pub fn trace_batch_scalar(
    field: &VectorField,
    domain: &Domain,
    seeds: &[Vec3],
    cfg: &TraceConfig,
) -> Vec<Polyline> {
    seeds
        .iter()
        .map(|&s| streamline(field, domain, s, cfg))
        .collect()
}

/// Scalar kernel distributed across threads, streamline granularity —
/// the paper's "parallelize across streamlines".
pub fn trace_batch_parallel(
    field: &VectorField,
    domain: &Domain,
    seeds: &[Vec3],
    cfg: &TraceConfig,
) -> Vec<Polyline> {
    seeds
        .par_iter()
        .map(|&s| streamline(field, domain, s, cfg))
        .collect()
}

/// Lockstep RK2 advance of a set of particle fronts. Returns when all are
/// dead or `max_points` steps have been taken. Pushes each surviving step
/// onto the per-seed polylines.
fn lockstep_rk2(
    field: &VectorFieldSoA,
    domain: &Domain,
    front: &mut [Vec3],
    alive: &mut [bool],
    lines: &mut [Polyline],
    cfg: &TraceConfig,
) {
    let n = front.len();
    let mut k1 = vec![Vec3::ZERO; n];
    let mut mid = vec![Vec3::ZERO; n];
    let mut k2 = vec![Vec3::ZERO; n];
    let half_dt = cfg.dt * 0.5;
    for _ in 0..cfg.max_points {
        if !alive.iter().any(|&a| a) {
            break;
        }
        // k1 = v(front); kills out-of-domain particles.
        field.sample_batch(front, &mut k1, alive);
        // Stagnation check.
        for i in 0..n {
            if alive[i] && k1[i].length() < cfg.min_speed {
                alive[i] = false;
            }
        }
        // mid = canonicalize(front + k1·dt/2).
        for i in 0..n {
            if alive[i] {
                match domain.canonicalize(front[i] + k1[i] * half_dt) {
                    Some(p) => mid[i] = p,
                    None => alive[i] = false,
                }
            }
        }
        // k2 = v(mid).
        field.sample_batch(&mid, &mut k2, alive);
        // front = canonicalize(front + k2·dt); record.
        for i in 0..n {
            if alive[i] {
                match domain.canonicalize(front[i] + k2[i] * cfg.dt) {
                    Some(p) => {
                        front[i] = p;
                        lines[i].push(p);
                    }
                    None => alive[i] = false,
                }
            }
        }
    }
}

/// Vectorized kernel: advance *all* streamlines in lockstep over the SoA
/// field. RK2 only (the paper's integrator); `cfg.integrator` and
/// `cfg.both_directions` are ignored.
pub fn trace_batch_vector(
    field: &VectorFieldSoA,
    domain: &Domain,
    seeds: &[Vec3],
    cfg: &TraceConfig,
) -> Vec<Polyline> {
    let n = seeds.len();
    let mut front = Vec::with_capacity(n);
    let mut alive = Vec::with_capacity(n);
    let mut lines: Vec<Polyline> = Vec::with_capacity(n);
    for &s in seeds {
        match domain.canonicalize(s) {
            Some(p) => {
                front.push(p);
                alive.push(true);
                lines.push(vec![p]);
            }
            None => {
                front.push(Vec3::ZERO);
                alive.push(false);
                lines.push(Vec::new());
            }
        }
    }
    lockstep_rk2(field, domain, &mut front, &mut alive, &mut lines, cfg);
    lines
}

/// The hybrid kernel the paper proposes as future work: parallelize
/// across groups of streamlines (rayon), vectorize across the streamlines
/// inside each group (lockstep over SoA).
pub fn trace_batch_vector_parallel(
    field: &VectorFieldSoA,
    domain: &Domain,
    seeds: &[Vec3],
    cfg: &TraceConfig,
) -> Vec<Polyline> {
    seeds
        .par_chunks(VECTOR_GROUP)
        .flat_map_iter(|chunk| trace_batch_vector(field, domain, chunk, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::Dims;
    use flowfield::FieldSample;

    fn vortex_field() -> VectorField {
        VectorField::from_fn(Dims::new(33, 33, 5), |i, j, _| {
            let c = 16.0;
            Vec3::new(-(j as f32 - c), i as f32 - c, 0.0)
        })
    }

    fn seeds(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|s| Vec3::new(18.0 + 0.35 * s as f32, 16.0, 2.0))
            .collect()
    }

    fn cfg() -> TraceConfig {
        TraceConfig {
            dt: 0.05,
            max_points: 60,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn scalar_and_parallel_agree_exactly() {
        let f = vortex_field();
        let d = Domain::boxed(f.dims());
        let s = seeds(12);
        let a = trace_batch_scalar(&f, &d, &s, &cfg());
        let b = trace_batch_parallel(&f, &d, &s, &cfg());
        assert_eq!(a, b); // identical arithmetic, identical results
    }

    #[test]
    fn vector_kernel_matches_scalar_paths() {
        let f = vortex_field();
        let soa = f.to_soa();
        let d = Domain::boxed(f.dims());
        let s = seeds(8);
        let a = trace_batch_scalar(&f, &d, &s, &cfg());
        let b = trace_batch_vector(&soa, &d, &s, &cfg());
        assert_eq!(a.len(), b.len());
        for (la, lb) in a.iter().zip(&b) {
            assert_eq!(la.len(), lb.len(), "path lengths differ");
            for (pa, pb) in la.iter().zip(lb) {
                assert!(pa.distance(*pb) < 1e-4, "{pa:?} vs {pb:?}");
            }
        }
    }

    #[test]
    fn hybrid_matches_vector() {
        let f = vortex_field();
        let soa = f.to_soa();
        let d = Domain::boxed(f.dims());
        let s = seeds(20);
        let a = trace_batch_vector(&soa, &d, &s, &cfg());
        let b = trace_batch_vector_parallel(&soa, &d, &s, &cfg());
        assert_eq!(a.len(), b.len());
        for (la, lb) in a.iter().zip(&b) {
            for (pa, pb) in la.iter().zip(lb) {
                assert!(pa.distance(*pb) < 1e-5);
            }
        }
    }

    #[test]
    fn dead_seed_yields_empty_line_in_vector_kernel() {
        let f = vortex_field();
        let soa = f.to_soa();
        let d = Domain::boxed(f.dims());
        let s = vec![Vec3::splat(-5.0), Vec3::new(18.0, 16.0, 2.0)];
        let lines = trace_batch_vector(&soa, &d, &s, &cfg());
        assert!(lines[0].is_empty());
        assert!(lines[1].len() > 10);
    }

    #[test]
    fn lockstep_survivors_continue_after_others_die() {
        // One seed near the boundary dies early; the other keeps going.
        let f = VectorField::from_fn(Dims::new(16, 8, 8), |_, _, _| Vec3::X);
        let soa = f.to_soa();
        let d = Domain::boxed(f.dims());
        let s = vec![Vec3::new(13.0, 4.0, 4.0), Vec3::new(1.0, 4.0, 4.0)];
        let c = TraceConfig {
            dt: 1.0,
            max_points: 10,
            ..TraceConfig::default()
        };
        let lines = trace_batch_vector(&soa, &d, &s, &c);
        assert!(lines[0].len() < lines[1].len());
        assert_eq!(lines[1].len(), 11);
    }

    #[test]
    fn empty_seed_list_is_fine() {
        let f = vortex_field();
        let d = Domain::boxed(f.dims());
        assert!(trace_batch_scalar(&f, &d, &[], &cfg()).is_empty());
        assert!(trace_batch_vector(&f.to_soa(), &d, &[], &cfg()).is_empty());
        assert!(trace_batch_parallel(&f, &d, &[], &cfg()).is_empty());
    }

    #[test]
    fn group_boundary_does_not_change_results() {
        // More seeds than one vector group: results must equal ungrouped.
        let f = vortex_field();
        let soa = f.to_soa();
        let d = Domain::boxed(f.dims());
        let many: Vec<Vec3> = (0..VECTOR_GROUP + 7)
            .map(|s| Vec3::new(17.0 + 0.05 * (s % 50) as f32, 16.0, 2.0))
            .collect();
        let a = trace_batch_vector(&soa, &d, &many, &cfg());
        let b = trace_batch_vector_parallel(&soa, &d, &many, &cfg());
        assert_eq!(a.len(), b.len());
        for (la, lb) in a.iter().zip(&b) {
            assert_eq!(la.len(), lb.len());
        }
    }
}
