//! Streamlines: integral curves of the instantaneous field.
//!
//! §2.1: "Streamlines take as input the seed points and iteratively
//! integrate the particle position without incrementing the current
//! timestep. This results in an array of positions which is displayed as
//! the streamline." And crucially: "the virtual environment system must be
//! capable of computing the entire path in a single frame time" — which is
//! why the whole path is a single tight loop and why §5.3 benchmarks it.

use crate::domain::Domain;
use crate::integrate::Integrator;
use crate::Polyline;
use flowfield::FieldSample;
use vecmath::Vec3;

/// Parameters of a streamline trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Integration scheme.
    pub integrator: Integrator,
    /// Step size in grid-time units.
    pub dt: f32,
    /// Maximum number of points in the path (the paper's benchmark uses
    /// 200 per streamline).
    pub max_points: usize,
    /// Terminate when the local speed (grid units / time) drops below
    /// this — the particle has hit a stagnation region and further steps
    /// add no visible path.
    pub min_speed: f32,
    /// Also integrate backwards from the seed, producing a path through
    /// (not just downstream of) the seed.
    pub both_directions: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            integrator: Integrator::Rk2,
            dt: 0.1,
            max_points: 200,
            min_speed: 1.0e-6,
            both_directions: false,
        }
    }
}

impl TraceConfig {
    /// The paper's benchmark configuration: 200-point streamlines, RK2.
    pub fn paper_benchmark() -> TraceConfig {
        TraceConfig {
            max_points: 200,
            ..TraceConfig::default()
        }
    }
}

/// Trace one direction from `seed`; appends points after the seed.
fn trace_one_direction<F: FieldSample>(
    field: &F,
    domain: &Domain,
    seed: Vec3,
    cfg: &TraceConfig,
    dt: f32,
    out: &mut Polyline,
) {
    let mut p = match domain.canonicalize(seed) {
        Some(p) => p,
        None => return,
    };
    while out.len() < cfg.max_points {
        // Stagnation check on the local velocity.
        match field.sample(p) {
            Some(v) if v.length() >= cfg.min_speed => {}
            _ => break,
        }
        match cfg.integrator.step(field, domain, p, dt) {
            Some(next) => {
                p = next;
                out.push(p);
            }
            None => break,
        }
    }
}

/// Compute a streamline from `seed` through the instantaneous `field`.
/// The seed itself is always the first point of the result (or the middle
/// point when tracing both directions); an out-of-domain seed yields an
/// empty polyline.
pub fn streamline<F: FieldSample>(
    field: &F,
    domain: &Domain,
    seed: Vec3,
    cfg: &TraceConfig,
) -> Polyline {
    let Some(seed) = domain.canonicalize(seed) else {
        return Vec::new();
    };
    let mut forward = Vec::with_capacity(cfg.max_points);
    trace_one_direction(field, domain, seed, cfg, cfg.dt, &mut forward);
    if !cfg.both_directions {
        let mut path = Vec::with_capacity(forward.len() + 1);
        path.push(seed);
        path.extend(forward);
        return path;
    }
    let mut backward = Vec::with_capacity(cfg.max_points);
    trace_one_direction(field, domain, seed, cfg, -cfg.dt, &mut backward);
    // Stitch: reversed backward, seed, forward.
    let mut path = Vec::with_capacity(backward.len() + forward.len() + 1);
    path.extend(backward.iter().rev().copied());
    path.push(seed);
    path.extend(forward);
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::FieldSample;
    use flowfield::{Dims, VectorField};

    fn uniform_x() -> VectorField {
        VectorField::from_fn(Dims::new(16, 8, 8), |_, _, _| Vec3::X)
    }

    #[test]
    fn straight_line_in_uniform_flow() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let cfg = TraceConfig {
            dt: 0.5,
            max_points: 10,
            ..TraceConfig::default()
        };
        let path = streamline(&f, &d, Vec3::new(1.0, 4.0, 4.0), &cfg);
        assert_eq!(path.len(), 11); // seed + 10
        for (n, p) in path.iter().enumerate() {
            assert!(p.distance(Vec3::new(1.0 + 0.5 * n as f32, 4.0, 4.0)) < 1e-4);
        }
    }

    #[test]
    fn terminates_at_domain_boundary() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let cfg = TraceConfig {
            dt: 1.0,
            max_points: 100,
            ..TraceConfig::default()
        };
        let path = streamline(&f, &d, Vec3::new(12.0, 4.0, 4.0), &cfg);
        // Can take at most 3 steps (12 → 15), then leaves.
        assert!(path.len() <= 4);
        assert!(path.last().unwrap().x <= 15.0);
    }

    #[test]
    fn out_of_domain_seed_gives_empty_path() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        assert!(streamline(&f, &d, Vec3::splat(-5.0), &TraceConfig::default()).is_empty());
    }

    #[test]
    fn stagnation_terminates() {
        let f = VectorField::zeros(Dims::new(8, 8, 8));
        let d = Domain::boxed(Dims::new(8, 8, 8));
        let path = streamline(&f, &d, Vec3::splat(4.0), &TraceConfig::default());
        assert_eq!(path.len(), 1); // just the seed
    }

    #[test]
    fn both_directions_passes_through_seed() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let cfg = TraceConfig {
            dt: 0.5,
            max_points: 4,
            both_directions: true,
            ..TraceConfig::default()
        };
        let seed = Vec3::new(8.0, 4.0, 4.0);
        let path = streamline(&f, &d, seed, &cfg);
        // 4 back + seed + 4 forward.
        assert_eq!(path.len(), 9);
        assert!(path[4].distance(seed) < 1e-5);
        // Monotone in x.
        for w in path.windows(2) {
            assert!(w[1].x > w[0].x);
        }
    }

    #[test]
    fn max_points_bounds_path() {
        let f = VectorField::from_fn(Dims::new(9, 9, 3), |i, j, _| {
            let c = 4.0;
            Vec3::new(-(j as f32 - c), i as f32 - c, 0.0)
        });
        let d = Domain::boxed(f.dims());
        let cfg = TraceConfig {
            dt: 0.05,
            max_points: 200,
            ..TraceConfig::default()
        };
        // Orbiting forever, so only max_points stops it.
        let path = streamline(&f, &d, Vec3::new(6.0, 4.0, 1.0), &cfg);
        assert_eq!(path.len(), 201);
    }

    #[test]
    fn paper_benchmark_config_is_200_points() {
        assert_eq!(TraceConfig::paper_benchmark().max_points, 200);
        assert_eq!(TraceConfig::paper_benchmark().integrator, Integrator::Rk2);
    }

    #[test]
    fn streamline_follows_circles_in_vortex() {
        let f = VectorField::from_fn(Dims::new(17, 17, 3), |i, j, _| {
            let c = 8.0;
            Vec3::new(-(j as f32 - c), i as f32 - c, 0.0)
        });
        let d = Domain::boxed(f.dims());
        let cfg = TraceConfig {
            dt: 0.02,
            max_points: 300,
            ..TraceConfig::default()
        };
        let c = Vec3::new(8.0, 8.0, 1.0);
        let path = streamline(&f, &d, c + Vec3::new(4.0, 0.0, 0.0), &cfg);
        for p in &path {
            let r = (*p - c).length();
            assert!((r - 4.0).abs() < 0.05, "radius drifted to {r}");
        }
    }
}
