//! Numerical integrators over sampled velocity fields.
//!
//! §5.3: "The integration algorithm for the computation is second-order
//! Runge-Kutta, which requires two accesses of the vector field data from
//! memory each involving eight floating point loads to set up for
//! trilinear interpolation…". RK2 (midpoint) is therefore the default;
//! Euler is provided as the cheap/inaccurate baseline and RK4 as the
//! expensive/accurate one, which the ablation benchmarks compare.

use crate::domain::Domain;
use flowfield::FieldSample;
use vecmath::Vec3;

/// Integration scheme for advancing a particle through a velocity field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Forward Euler: one field access per step.
    Euler,
    /// Midpoint (second-order Runge-Kutta) — the paper's integrator; two
    /// field accesses per step.
    #[default]
    Rk2,
    /// Classic fourth-order Runge-Kutta: four field accesses per step.
    Rk4,
}

impl Integrator {
    /// Field samples per step — the memory-traffic model of §5.3.
    pub fn samples_per_step(&self) -> usize {
        match self {
            Integrator::Euler => 1,
            Integrator::Rk2 => 2,
            Integrator::Rk4 => 4,
        }
    }

    /// Advance a particle at grid coordinate `p` by `dt` through `field`
    /// (whose values are grid-coordinate velocities). Returns the new
    /// canonical coordinate, or `None` when the particle leaves the
    /// domain mid-step.
    pub fn step<F: FieldSample>(
        &self,
        field: &F,
        domain: &Domain,
        p: Vec3,
        dt: f32,
    ) -> Option<Vec3> {
        let p = domain.canonicalize(p)?;
        match self {
            Integrator::Euler => {
                let k1 = field.sample(p)?;
                domain.canonicalize(p + k1 * dt)
            }
            Integrator::Rk2 => {
                let k1 = field.sample(p)?;
                let mid = domain.canonicalize(p + k1 * (dt * 0.5))?;
                let k2 = field.sample(mid)?;
                domain.canonicalize(p + k2 * dt)
            }
            Integrator::Rk4 => {
                let k1 = field.sample(p)?;
                let p2 = domain.canonicalize(p + k1 * (dt * 0.5))?;
                let k2 = field.sample(p2)?;
                let p3 = domain.canonicalize(p + k2 * (dt * 0.5))?;
                let k3 = field.sample(p3)?;
                let p4 = domain.canonicalize(p + k3 * dt)?;
                let k4 = field.sample(p4)?;
                let avg = (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (1.0 / 6.0);
                domain.canonicalize(p + avg * dt)
            }
        }
    }

    /// Step using velocity sampled from two consecutive timestep fields
    /// blended at interpolation factor `alpha` (0 = `f0`, 1 = `f1`) —
    /// used by pathlines, whose integration spans timestep boundaries.
    pub fn step_blended<F: FieldSample>(
        &self,
        f0: &F,
        f1: &F,
        alpha: f32,
        domain: &Domain,
        p: Vec3,
        dt: f32,
    ) -> Option<Vec3> {
        // Wrap the pair in the shared blending sampler and reuse the
        // scheme. `BlendedPair` runs the full lerp even at alpha == 0 so
        // its arithmetic is bit-identical to the fused SoA kernel.
        let blend = flowfield::BlendedPair::new(f0, f1, alpha);
        self.step(&blend, domain, p, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::FieldSample;
    use flowfield::{Dims, VectorField};
    use proptest::prelude::*;

    /// Constant velocity (1, 0.5, 0.25) in grid coords.
    fn const_field() -> VectorField {
        VectorField::from_fn(Dims::new(8, 8, 8), |_, _, _| Vec3::new(1.0, 0.5, 0.25))
    }

    /// Solid-body rotation about the grid-center axis (i=c, j=c), ω = 1.
    fn vortex_field(n: u32) -> VectorField {
        let c = (n - 1) as f32 / 2.0;
        VectorField::from_fn(Dims::new(n, n, 3), |i, j, _| {
            Vec3::new(-(j as f32 - c), i as f32 - c, 0.0)
        })
    }

    #[test]
    fn euler_step_on_constant_field() {
        let f = const_field();
        let d = Domain::boxed(f.dims());
        let p = Integrator::Euler
            .step(&f, &d, Vec3::splat(1.0), 2.0)
            .unwrap();
        assert!(p.distance(Vec3::new(3.0, 2.0, 1.5)) < 1e-5);
    }

    #[test]
    fn all_schemes_agree_on_constant_field() {
        let f = const_field();
        let d = Domain::boxed(f.dims());
        let start = Vec3::splat(2.0);
        let e = Integrator::Euler.step(&f, &d, start, 1.0).unwrap();
        let r2 = Integrator::Rk2.step(&f, &d, start, 1.0).unwrap();
        let r4 = Integrator::Rk4.step(&f, &d, start, 1.0).unwrap();
        assert!(e.distance(r2) < 1e-5);
        assert!(e.distance(r4) < 1e-5);
    }

    #[test]
    fn step_out_of_domain_is_none() {
        let f = const_field();
        let d = Domain::boxed(f.dims());
        assert!(Integrator::Rk2
            .step(&f, &d, Vec3::splat(6.9), 10.0)
            .is_none());
        assert!(Integrator::Rk2
            .step(&f, &d, Vec3::splat(-1.0), 0.1)
            .is_none());
    }

    #[test]
    fn rk2_conserves_radius_better_than_euler() {
        let f = vortex_field(33);
        let d = Domain::boxed(f.dims());
        let c = Vec3::new(16.0, 16.0, 1.0);
        let start = c + Vec3::new(5.0, 0.0, 0.0);
        let dt = 0.05;
        let steps = 200; // a bit over one and a half orbits
        let run = |scheme: Integrator| {
            let mut p = start;
            for _ in 0..steps {
                p = scheme.step(&f, &d, p, dt).expect("stayed inside");
            }
            ((p - c).length() - 5.0).abs()
        };
        let euler_err = run(Integrator::Euler);
        let rk2_err = run(Integrator::Rk2);
        let rk4_err = run(Integrator::Rk4);
        assert!(
            rk2_err < euler_err * 0.25,
            "rk2 {rk2_err} vs euler {euler_err}"
        );
        assert!(rk4_err < rk2_err + 1e-3, "rk4 {rk4_err} vs rk2 {rk2_err}");
    }

    #[test]
    fn rk4_orbit_angle_is_accurate() {
        let f = vortex_field(33);
        let d = Domain::boxed(f.dims());
        let c = Vec3::new(16.0, 16.0, 1.0);
        let mut p = c + Vec3::new(4.0, 0.0, 0.0);
        let dt = 0.01;
        // ω = 1 rad per unit time ⇒ after π time, half orbit.
        let steps = (std::f32::consts::PI / dt) as usize;
        for _ in 0..steps {
            p = Integrator::Rk4.step(&f, &d, p, dt).unwrap();
        }
        assert!(p.distance(c + Vec3::new(-4.0, 0.0, 0.0)) < 0.05);
    }

    #[test]
    fn samples_per_step_counts() {
        assert_eq!(Integrator::Euler.samples_per_step(), 1);
        assert_eq!(Integrator::Rk2.samples_per_step(), 2);
        assert_eq!(Integrator::Rk4.samples_per_step(), 4);
    }

    #[test]
    fn blended_step_interpolates_fields() {
        let dims = Dims::new(6, 6, 6);
        let f0 = VectorField::from_fn(dims, |_, _, _| Vec3::X);
        let f1 = VectorField::from_fn(dims, |_, _, _| Vec3::Y);
        let d = Domain::boxed(dims);
        let start = Vec3::splat(2.0);
        let half = Integrator::Euler
            .step_blended(&f0, &f1, 0.5, &d, start, 1.0)
            .unwrap();
        assert!(half.distance(start + Vec3::new(0.5, 0.5, 0.0)) < 1e-5);
        let zero = Integrator::Euler
            .step_blended(&f0, &f1, 0.0, &d, start, 1.0)
            .unwrap();
        assert!(zero.distance(start + Vec3::X) < 1e-5);
    }

    #[test]
    fn periodic_wrap_during_step() {
        // Constant +i velocity on an O-grid domain: the particle circles
        // forever instead of exiting.
        let f = VectorField::from_fn(Dims::new(8, 8, 8), |_, _, _| Vec3::X);
        let d = Domain::o_grid(f.dims());
        let mut p = Vec3::new(6.5, 1.0, 1.0);
        for _ in 0..100 {
            p = Integrator::Rk2.step(&f, &d, p, 0.5).unwrap();
        }
        assert!(p.x >= 0.0 && p.x < 7.0);
    }

    proptest! {
        #[test]
        fn prop_step_scales_linearly_on_uniform(dt in 0.01f32..0.5, x in 1.0f32..5.0) {
            let f = const_field();
            let d = Domain::boxed(f.dims());
            let start = Vec3::new(x, 2.0, 2.0);
            let p = Integrator::Rk2.step(&f, &d, start, dt).unwrap();
            let expected = start + Vec3::new(1.0, 0.5, 0.25) * dt;
            prop_assert!(p.distance(expected) < 1e-4);
        }

        #[test]
        fn prop_reverse_step_returns(dt in 0.01f32..0.2, x in 2.0f32..5.0, y in 2.0f32..5.0) {
            // RK2 forward then backward lands near the start (it is not an
            // exactly reversible scheme, so allow O(dt³) slack).
            let f = vortex_field(9);
            let d = Domain::boxed(f.dims());
            let start = Vec3::new(x, y, 1.0);
            if let Some(fwd) = Integrator::Rk2.step(&f, &d, start, dt) {
                if let Some(back) = Integrator::Rk2.step(&f, &d, fwd, -dt) {
                    prop_assert!(back.distance(start) < 20.0 * dt * dt * dt + 1e-4);
                }
            }
        }
    }
}
