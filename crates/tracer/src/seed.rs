//! Seed points and rakes.
//!
//! §2.1: "Control over the seed points for all of the above tools are
//! provided by lines of seed points called rakes. … These rakes are
//! grabbed at one of three points: center for rigid translation of the
//! rake, or at either end for movement of that end of the rake. In this
//! way rakes may be oriented in an arbitrary manner. Several rakes may be
//! defined simultaneously. The type and number of seedpoints in a
//! particular rake is determined by the user."
//!
//! Rake geometry lives in *grid coordinates* (like everything the tracer
//! touches); the client converts to physical space for display.

use serde::{Deserialize, Serialize};
use vecmath::Vec3;

/// Which visualization tool a rake drives (§2.1's three techniques).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ToolKind {
    #[default]
    Streamline,
    ParticlePath,
    Streakline,
}

/// The three grab points of a rake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Handle {
    /// Rigid translation of the whole rake.
    Center,
    /// Move endpoint A only.
    EndA,
    /// Move endpoint B only.
    EndB,
}

/// A line of seed points between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rake {
    /// First endpoint (grid coordinates).
    pub a: Vec3,
    /// Second endpoint (grid coordinates).
    pub b: Vec3,
    /// Number of seed points along the line (≥ 1).
    pub seed_count: u32,
    /// Tool this rake drives.
    pub tool: ToolKind,
}

impl Rake {
    pub fn new(a: Vec3, b: Vec3, seed_count: u32, tool: ToolKind) -> Rake {
        Rake {
            a,
            b,
            seed_count: seed_count.max(1),
            tool,
        }
    }

    /// Midpoint of the rake — the "center" grab point.
    pub fn center(&self) -> Vec3 {
        (self.a + self.b) * 0.5
    }

    /// Rake length.
    pub fn length(&self) -> f32 {
        self.a.distance(self.b)
    }

    /// The seed points: `seed_count` points evenly spaced from `a` to `b`
    /// inclusive (a single seed sits at the center).
    pub fn seeds(&self) -> Vec<Vec3> {
        let n = self.seed_count.max(1);
        if n == 1 {
            return vec![self.center()];
        }
        (0..n)
            .map(|s| self.a.lerp(self.b, s as f32 / (n - 1) as f32))
            .collect()
    }

    /// Position of the given handle.
    pub fn handle_position(&self, handle: Handle) -> Vec3 {
        match handle {
            Handle::Center => self.center(),
            Handle::EndA => self.a,
            Handle::EndB => self.b,
        }
    }

    /// Which handle (if any) is within `radius` of `point` — the glove's
    /// grab test. Ends win over center when both are in range, because
    /// the ends are what you aim for when reorienting.
    pub fn hit_test(&self, point: Vec3, radius: f32) -> Option<Handle> {
        if self.a.distance(point) <= radius {
            return Some(Handle::EndA);
        }
        if self.b.distance(point) <= radius {
            return Some(Handle::EndB);
        }
        if self.center().distance(point) <= radius {
            return Some(Handle::Center);
        }
        None
    }

    /// Drag the given handle by `delta`: center translates rigidly, an
    /// end moves alone (reorienting the rake about the other end).
    pub fn drag(&mut self, handle: Handle, delta: Vec3) {
        match handle {
            Handle::Center => {
                self.a += delta;
                self.b += delta;
            }
            Handle::EndA => self.a += delta,
            Handle::EndB => self.b += delta,
        }
    }

    /// Move the given handle to an absolute position.
    pub fn set_handle(&mut self, handle: Handle, position: Vec3) {
        match handle {
            Handle::Center => {
                let delta = position - self.center();
                self.a += delta;
                self.b += delta;
            }
            Handle::EndA => self.a = position,
            Handle::EndB => self.b = position,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rake() -> Rake {
        Rake::new(
            Vec3::ZERO,
            Vec3::new(4.0, 0.0, 0.0),
            5,
            ToolKind::Streamline,
        )
    }

    #[test]
    fn seeds_evenly_spaced_inclusive() {
        let s = rake().seeds();
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], Vec3::ZERO);
        assert_eq!(s[4], Vec3::new(4.0, 0.0, 0.0));
        assert!(s[2].distance(Vec3::new(2.0, 0.0, 0.0)) < 1e-6);
    }

    #[test]
    fn single_seed_at_center() {
        let r = Rake::new(
            Vec3::ZERO,
            Vec3::new(2.0, 2.0, 0.0),
            1,
            ToolKind::Streakline,
        );
        assert_eq!(r.seeds(), vec![Vec3::new(1.0, 1.0, 0.0)]);
    }

    #[test]
    fn zero_seed_count_clamped() {
        let r = Rake::new(Vec3::ZERO, Vec3::X, 0, ToolKind::Streamline);
        assert_eq!(r.seed_count, 1);
        assert_eq!(r.seeds().len(), 1);
    }

    #[test]
    fn center_drag_is_rigid() {
        let mut r = rake();
        let len = r.length();
        r.drag(Handle::Center, Vec3::new(0.0, 3.0, 0.0));
        assert_eq!(r.a, Vec3::new(0.0, 3.0, 0.0));
        assert_eq!(r.b, Vec3::new(4.0, 3.0, 0.0));
        assert!((r.length() - len).abs() < 1e-6);
    }

    #[test]
    fn end_drag_reorients() {
        let mut r = rake();
        r.drag(Handle::EndB, Vec3::new(0.0, 4.0, 0.0));
        assert_eq!(r.a, Vec3::ZERO); // other end fixed
        assert_eq!(r.b, Vec3::new(4.0, 4.0, 0.0));
    }

    #[test]
    fn set_handle_center_translates() {
        let mut r = rake();
        r.set_handle(Handle::Center, Vec3::new(10.0, 0.0, 0.0));
        assert!(r.center().distance(Vec3::new(10.0, 0.0, 0.0)) < 1e-5);
        assert!((r.length() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn hit_test_prefers_ends() {
        let r = rake();
        assert_eq!(
            r.hit_test(Vec3::new(0.1, 0.0, 0.0), 0.5),
            Some(Handle::EndA)
        );
        assert_eq!(
            r.hit_test(Vec3::new(3.9, 0.1, 0.0), 0.5),
            Some(Handle::EndB)
        );
        assert_eq!(
            r.hit_test(Vec3::new(2.0, 0.2, 0.0), 0.5),
            Some(Handle::Center)
        );
        assert_eq!(r.hit_test(Vec3::new(2.0, 5.0, 0.0), 0.5), None);
    }

    #[test]
    fn hit_test_end_beats_center_on_short_rake() {
        // Rake shorter than the grab radius: both end and center are in
        // range; the end must win.
        let r = Rake::new(
            Vec3::ZERO,
            Vec3::new(0.2, 0.0, 0.0),
            3,
            ToolKind::Streamline,
        );
        assert_eq!(
            r.hit_test(Vec3::new(0.0, 0.0, 0.0), 0.5),
            Some(Handle::EndA)
        );
    }

    proptest! {
        #[test]
        fn prop_seeds_lie_on_segment(n in 1u32..20, t in 0.0f32..1.0) {
            let r = Rake::new(Vec3::ZERO, Vec3::new(3.0, 1.0, -2.0), n, ToolKind::Streamline);
            let seeds = r.seeds();
            prop_assert_eq!(seeds.len(), n as usize);
            for s in &seeds {
                // Each seed is a convex combination of a and b.
                let along = s.dot(r.b - r.a) / (r.b - r.a).length_squared();
                prop_assert!((-1e-4..=1.0 + 1e-4).contains(&along));
                let proj = r.a.lerp(r.b, along.clamp(0.0, 1.0));
                prop_assert!(proj.distance(*s) < 1e-4);
            }
            // t unused beyond exercising the strategy; keeps seeds varied.
            let _ = t;
        }

        #[test]
        fn prop_center_drag_preserves_seed_spacing(dx in -5.0f32..5.0, dy in -5.0f32..5.0) {
            let mut r = rake();
            let before = r.seeds();
            r.drag(Handle::Center, Vec3::new(dx, dy, 0.0));
            let after = r.seeds();
            for (b, a) in before.iter().zip(&after) {
                prop_assert!((*a - *b).distance(Vec3::new(dx, dy, 0.0)) < 1e-4);
            }
        }
    }
}
