//! Streaklines: smoke injection.
//!
//! §2.1: "The streaklines take as input the current positions of all the
//! particles, including those recently added at the seed points. All of
//! the particles are 'moved' by integrating each one once using the data
//! in the current time step. The particles may be rendered as individual
//! points or connected in a way to simulate smoke."
//!
//! [`Streakline`] is a persistent particle system: every frame,
//! [`Streakline::advance`] moves all live particles one step through the
//! current field and injects fresh particles at the seed points. Particles
//! die when they leave the domain or exceed the age limit. For smoke
//! rendering, particles injected from the same seed are chained in
//! injection order.

use crate::domain::Domain;
use crate::integrate::Integrator;
use crate::Polyline;
use flowfield::FieldSample;
use vecmath::Vec3;

/// Configuration of a streakline particle system.
#[derive(Debug, Clone, Copy)]
pub struct StreaklineConfig {
    pub integrator: Integrator,
    /// Time step per frame advance.
    pub dt: f32,
    /// Maximum particle age in frames (0 = immortal); bounds memory.
    pub max_age: u32,
    /// Particles injected per seed per advance.
    pub inject_per_frame: u32,
}

impl Default for StreaklineConfig {
    fn default() -> Self {
        StreaklineConfig {
            integrator: Integrator::Rk2,
            dt: 0.1,
            max_age: 400,
            inject_per_frame: 1,
        }
    }
}

/// One virtual smoke particle.
#[derive(Debug, Clone, Copy)]
struct Particle {
    pos: Vec3,
    age: u32,
    /// Which seed injected it (for smoke connectivity).
    seed_id: u32,
}

/// A streakline particle system fed by a set of seed points.
#[derive(Debug, Clone)]
pub struct Streakline {
    seeds: Vec<Vec3>,
    cfg: StreaklineConfig,
    particles: Vec<Particle>,
    frames: u64,
}

impl Streakline {
    /// Create an empty system for the given seed points.
    pub fn new(seeds: Vec<Vec3>, cfg: StreaklineConfig) -> Streakline {
        Streakline {
            seeds,
            cfg,
            particles: Vec::new(),
            frames: 0,
        }
    }

    /// Number of live particles.
    pub fn particle_count(&self) -> usize {
        self.particles.len()
    }

    /// Frames advanced so far.
    pub fn frame_count(&self) -> u64 {
        self.frames
    }

    /// Replace the seed points (the user dragged the rake); existing
    /// smoke keeps advecting from where it is, which is exactly what real
    /// smoke does when the probe moves.
    pub fn set_seeds(&mut self, seeds: Vec<Vec3>) {
        self.seeds = seeds;
    }

    /// Drop all particles (e.g. when time is rewound).
    pub fn clear(&mut self) {
        self.particles.clear();
    }

    /// One frame: move every particle one step through `field`, retire
    /// the dead, inject fresh particles at the seeds.
    pub fn advance<F: FieldSample>(&mut self, field: &F, domain: &Domain) {
        let cfg = self.cfg;
        // Move + age in place, dropping dead particles.
        self.particles.retain_mut(|pt| {
            pt.age += 1;
            if cfg.max_age > 0 && pt.age > cfg.max_age {
                return false;
            }
            match cfg.integrator.step(field, domain, pt.pos, cfg.dt) {
                Some(next) => {
                    pt.pos = next;
                    true
                }
                None => false,
            }
        });
        // Inject at seeds (skipping seeds outside the domain).
        for (sid, &seed) in self.seeds.iter().enumerate() {
            if let Some(p) = domain.canonicalize(seed) {
                for _ in 0..cfg.inject_per_frame {
                    self.particles.push(Particle {
                        pos: p,
                        age: 0,
                        // lint:allow(panic-path): seed counts are set via a u32 wire field
                        seed_id: sid as u32,
                    });
                }
            }
        }
        self.frames += 1;
    }

    /// All particle positions (point-cloud rendering).
    pub fn positions(&self) -> Vec<Vec3> {
        self.particles.iter().map(|p| p.pos).collect()
    }

    /// Smoke filaments: one polyline per seed, particles ordered from the
    /// most recently injected (at the seed) to the oldest (downstream) —
    /// the connected rendering of §2.1.
    pub fn filaments(&self) -> Vec<Polyline> {
        let mut lines = vec![Vec::new(); self.seeds.len()];
        // particles is in injection order (oldest first); walk in reverse
        // so each filament starts at the seed.
        for p in self.particles.iter().rev() {
            if let Some(line) = lines.get_mut(p.seed_id as usize) {
                line.push(p.pos);
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::FieldSample;
    use flowfield::{Dims, VectorField};

    fn uniform_x() -> VectorField {
        VectorField::from_fn(Dims::new(32, 8, 8), |_, _, _| Vec3::X)
    }

    fn cfg(dt: f32) -> StreaklineConfig {
        StreaklineConfig {
            dt,
            ..StreaklineConfig::default()
        }
    }

    #[test]
    fn particles_accumulate_one_per_frame() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::new(1.0, 4.0, 4.0)], cfg(0.5));
        for _ in 0..5 {
            s.advance(&f, &d);
        }
        assert_eq!(s.particle_count(), 5);
        assert_eq!(s.frame_count(), 5);
    }

    #[test]
    fn streak_trails_downstream_of_seed() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let seed = Vec3::new(1.0, 4.0, 4.0);
        let mut s = Streakline::new(vec![seed], cfg(0.5));
        for _ in 0..4 {
            s.advance(&f, &d);
        }
        let fil = s.filaments();
        assert_eq!(fil.len(), 1);
        let line = &fil[0];
        assert_eq!(line.len(), 4);
        // Head is freshest (injected this frame, not yet moved), tail
        // farthest downstream.
        assert!(line[0].x < line[line.len() - 1].x);
        assert!((line[0].x - 1.0).abs() < 1e-4); // just injected
        assert!((line[3].x - 2.5).abs() < 1e-4); // oldest: moved 3 times
    }

    #[test]
    fn particles_die_at_domain_exit() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::new(29.0, 4.0, 4.0)], cfg(1.0));
        for _ in 0..10 {
            s.advance(&f, &d);
        }
        // Each particle survives only ~2 steps (29 → 31), so the
        // population saturates instead of growing.
        assert!(s.particle_count() <= 3);
    }

    #[test]
    fn max_age_retires_particles() {
        let f = VectorField::zeros(Dims::new(8, 8, 8));
        let d = Domain::boxed(Dims::new(8, 8, 8));
        let mut s = Streakline::new(
            vec![Vec3::splat(4.0)],
            StreaklineConfig {
                max_age: 3,
                dt: 0.1,
                ..StreaklineConfig::default()
            },
        );
        for _ in 0..10 {
            s.advance(&f, &d);
        }
        // Steady state holds ages 0..=max_age: max_age + 1 particles.
        assert_eq!(s.particle_count(), 4);
    }

    #[test]
    fn out_of_domain_seed_injects_nothing() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::splat(-10.0)], cfg(0.5));
        s.advance(&f, &d);
        assert_eq!(s.particle_count(), 0);
    }

    #[test]
    fn moving_seed_leaves_old_smoke_behind() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::new(1.0, 2.0, 4.0)], cfg(0.25));
        for _ in 0..3 {
            s.advance(&f, &d);
        }
        s.set_seeds(vec![Vec3::new(1.0, 6.0, 4.0)]);
        for _ in 0..3 {
            s.advance(&f, &d);
        }
        let pos = s.positions();
        // Both y-levels are populated: old smoke persists.
        assert!(pos.iter().any(|p| (p.y - 2.0).abs() < 0.1));
        assert!(pos.iter().any(|p| (p.y - 6.0).abs() < 0.1));
    }

    #[test]
    fn multiple_seeds_make_separate_filaments() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(
            vec![Vec3::new(1.0, 2.0, 4.0), Vec3::new(1.0, 6.0, 4.0)],
            cfg(0.5),
        );
        for _ in 0..4 {
            s.advance(&f, &d);
        }
        let fil = s.filaments();
        assert_eq!(fil.len(), 2);
        assert!(fil.iter().all(|l| l.len() == 4));
        assert!(fil[0].iter().all(|p| (p.y - 2.0).abs() < 1e-4));
        assert!(fil[1].iter().all(|p| (p.y - 6.0).abs() < 1e-4));
    }

    #[test]
    fn clear_empties_system() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::new(1.0, 4.0, 4.0)], cfg(0.5));
        for _ in 0..5 {
            s.advance(&f, &d);
        }
        s.clear();
        assert_eq!(s.particle_count(), 0);
    }

    #[test]
    fn inject_per_frame_multiplies_particles() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(
            vec![Vec3::new(1.0, 4.0, 4.0)],
            StreaklineConfig {
                inject_per_frame: 3,
                dt: 0.1,
                ..StreaklineConfig::default()
            },
        );
        for _ in 0..4 {
            s.advance(&f, &d);
        }
        assert_eq!(s.particle_count(), 12);
    }
}
