//! Streaklines: smoke injection.
//!
//! §2.1: "The streaklines take as input the current positions of all the
//! particles, including those recently added at the seed points. All of
//! the particles are 'moved' by integrating each one once using the data
//! in the current time step. The particles may be rendered as individual
//! points or connected in a way to simulate smoke."
//!
//! [`Streakline`] is a persistent particle system: every frame, an
//! advance moves all live particles one step through the current field
//! and injects fresh particles at the seed points. Particles die when
//! they leave the domain or exceed the age limit. For smoke rendering,
//! particles injected from the same seed are chained newest-to-oldest.
//!
//! # The two advance paths
//!
//! * [`Streakline::advance`] — the scalar reference: one particle at a
//!   time through [`Integrator`]-style stepping. Simple, obviously
//!   correct, and the semantic baseline the batch path is tested
//!   against.
//! * [`Streakline::advance_batch`] — the §5.3 fast path: the whole pool
//!   is RK2-stepped in lockstep through the fused
//!   [`BlendedPairSoA::sample_batch_blended`] kernel, chunked across
//!   rayon once the pool is large enough to amortize fan-out. All
//!   scratch lives on the struct, so after warm-up a frame advance
//!   performs no heap allocation.
//!
//! Both paths produce *bitwise identical* pools: the same particles die
//! (deadness is intrinsic to a particle, not to its position in the
//! pool), the survivors land at the same bits (the fused kernel is
//! bit-equal to scalar sampling, and each arithmetic stage mirrors
//! [`Integrator::step`] op for op), and both compact with the same
//! swap-remove sweep. `tests/streak_equiv.rs` holds this equality under
//! proptest, down to the bit pattern of every `f32`.
//!
//! # Pool layout
//!
//! Particles live in structure-of-arrays form (`pos_x/pos_y/pos_z`,
//! `age`, `seed_id`) so the batch sampler reads contiguous `f32` lanes.
//! Compaction is swap-remove, which scrambles injection order; filament
//! extraction restores it by sorting on `(seed_id, age)` — particles
//! that tie (same seed, same injection frame) are identical in every
//! coordinate bit, so the order within a tie is immaterial.

use crate::domain::Domain;
use crate::integrate::Integrator;
use crate::Polyline;
use flowfield::{BlendedPairSoA, FieldSample};
use rayon::prelude::*;
use std::time::Instant;
use vecmath::Vec3;

/// What to do with a particle whose sampled velocity is below
/// `min_speed` — the stagnation policy.
///
/// The steady streamline batch kernels always *retire* stagnant
/// particles: a streamline integration that stops moving would otherwise
/// never terminate. Streaklines are different — `max_age` already bounds
/// every particle's lifetime, and real smoke *pools* at stagnation
/// points rather than vanishing — so the default here is [`Keep`].
/// Whichever policy is configured applies identically to the scalar and
/// batch advance paths.
///
/// [`Keep`]: StagnationPolicy::Keep
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StagnationPolicy {
    /// Let stagnant particles linger until `max_age` retires them (the
    /// default: smoke accumulates at stagnation points, which is
    /// physically what smoke does).
    #[default]
    Keep,
    /// Retire a particle as soon as its sampled velocity magnitude drops
    /// below `min_speed`, matching the streamline batch kernels.
    Retire,
}

/// Configuration of a streakline particle system.
#[derive(Debug, Clone, Copy)]
pub struct StreaklineConfig {
    pub integrator: Integrator,
    /// Time step per frame advance.
    pub dt: f32,
    /// Maximum particle age in frames (0 = immortal); bounds memory.
    pub max_age: u32,
    /// Particles injected per seed per advance.
    pub inject_per_frame: u32,
    /// What happens to particles slower than `min_speed`.
    pub stagnation: StagnationPolicy,
    /// Speed threshold for [`StagnationPolicy::Retire`]; ignored under
    /// [`StagnationPolicy::Keep`].
    pub min_speed: f32,
}

impl Default for StreaklineConfig {
    fn default() -> Self {
        StreaklineConfig {
            integrator: Integrator::Rk2,
            dt: 0.1,
            max_age: 400,
            inject_per_frame: 1,
            stagnation: StagnationPolicy::Keep,
            min_speed: 1.0e-6,
        }
    }
}

/// Per-advance stage timings (summed CPU work across rayon chunks, not
/// wall clock) and throughput inputs, reported by
/// [`Streakline::advance_batch`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AdvanceStats {
    /// Time in the fused field-sampling kernel (k1 + k2 gathers).
    pub sample_ns: u64,
    /// Time in the arithmetic stages: canonicalize, midpoint, final
    /// position, stagnation checks.
    pub integrate_ns: u64,
    /// Time compacting the pool (swap-remove sweep).
    pub compact_ns: u64,
    /// Time injecting fresh particles at the seeds.
    pub inject_ns: u64,
    /// Particles that entered the integration step this advance.
    pub stepped: u64,
}

impl AdvanceStats {
    /// Merge another advance's stats into this one (per-frame totals
    /// across many rakes).
    pub fn accumulate(&mut self, other: AdvanceStats) {
        self.sample_ns += other.sample_ns;
        self.integrate_ns += other.integrate_ns;
        self.compact_ns += other.compact_ns;
        self.inject_ns += other.inject_ns;
        self.stepped += other.stepped;
    }
}

/// The particle pool in structure-of-arrays layout.
#[derive(Debug, Clone, Default)]
struct Pool {
    px: Vec<f32>,
    py: Vec<f32>,
    pz: Vec<f32>,
    age: Vec<u32>,
    seed: Vec<u32>,
}

impl Pool {
    fn len(&self) -> usize {
        self.px.len()
    }

    fn get(&self, i: usize) -> Vec3 {
        Vec3::new(self.px[i], self.py[i], self.pz[i])
    }

    fn set(&mut self, i: usize, p: Vec3) {
        self.px[i] = p.x;
        self.py[i] = p.y;
        self.pz[i] = p.z;
    }

    fn push(&mut self, p: Vec3, age: u32, seed: u32) {
        self.px.push(p.x);
        self.py.push(p.y);
        self.pz.push(p.z);
        self.age.push(age);
        self.seed.push(seed);
    }

    fn swap_remove(&mut self, i: usize) {
        self.px.swap_remove(i);
        self.py.swap_remove(i);
        self.pz.swap_remove(i);
        self.age.swap_remove(i);
        self.seed.swap_remove(i);
    }

    fn clear(&mut self) {
        self.px.clear();
        self.py.clear();
        self.pz.clear();
        self.age.clear();
        self.seed.clear();
    }
}

/// Pools below this size advance sequentially: rayon fan-out (thread
/// spawn + join in the shim) costs more than stepping a few thousand
/// particles.
const PAR_THRESHOLD: usize = 8192;

/// A streakline particle system fed by a set of seed points.
#[derive(Debug, Clone)]
pub struct Streakline {
    seeds: Vec<Vec3>,
    cfg: StreaklineConfig,
    pool: Pool,
    frames: u64,
    // Scratch for the batch path — resized, never shrunk, so a frame
    // advance allocates nothing once the pool size plateaus.
    alive: Vec<bool>,
    k1x: Vec<f32>,
    k1y: Vec<f32>,
    k1z: Vec<f32>,
    k2x: Vec<f32>,
    k2y: Vec<f32>,
    k2z: Vec<f32>,
    fil_keys: Vec<(u64, usize)>,
}

impl Streakline {
    /// Create an empty system for the given seed points.
    pub fn new(seeds: Vec<Vec3>, cfg: StreaklineConfig) -> Streakline {
        Streakline {
            seeds,
            cfg,
            pool: Pool::default(),
            frames: 0,
            alive: Vec::new(),
            k1x: Vec::new(),
            k1y: Vec::new(),
            k1z: Vec::new(),
            k2x: Vec::new(),
            k2y: Vec::new(),
            k2z: Vec::new(),
            fil_keys: Vec::new(),
        }
    }

    /// Number of live particles.
    pub fn particle_count(&self) -> usize {
        self.pool.len()
    }

    /// Frames advanced so far.
    pub fn frame_count(&self) -> u64 {
        self.frames
    }

    /// Replace the seed points (the user dragged the rake). Existing
    /// smoke keeps advecting from where it is — exactly what real smoke
    /// does when the probe moves — *except* particles whose seed no
    /// longer exists (the seed count shrank): those are retired here,
    /// immediately and deterministically, so every live particle always
    /// has a filament to belong to and `positions()` / `filaments()`
    /// agree on the particle count.
    pub fn set_seeds(&mut self, seeds: Vec<Vec3>) {
        self.seeds = seeds;
        let limit = self.seeds.len();
        let mut i = 0;
        while i < self.pool.len() {
            if (self.pool.seed[i] as usize) >= limit {
                self.pool.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Drop all particles (e.g. when time is rewound).
    pub fn clear(&mut self) {
        self.pool.clear();
    }

    /// One frame, scalar reference path: move every particle one step
    /// through `field`, retire the dead, inject fresh particles at the
    /// seeds. Produces a pool bitwise identical to
    /// [`Streakline::advance_batch`] over the same field.
    pub fn advance<F: FieldSample>(&mut self, field: &F, domain: &Domain) {
        let cfg = self.cfg;
        let mut i = 0;
        while i < self.pool.len() {
            self.pool.age[i] += 1;
            let keep = if cfg.max_age > 0 && self.pool.age[i] > cfg.max_age {
                false
            } else {
                match policy_step(&cfg, field, domain, self.pool.get(i)) {
                    Some(next) => {
                        self.pool.set(i, next);
                        true
                    }
                    None => false,
                }
            };
            if keep {
                i += 1;
            } else {
                // Swap-remove: the particle pulled in from the end has
                // not been stepped yet, so do not advance `i`.
                self.pool.swap_remove(i);
            }
        }
        self.inject(domain);
        self.frames += 1;
    }

    /// One frame, batch fast path: RK2-step the whole pool in lockstep
    /// through the fused time-blended kernel, chunked across rayon above
    /// [`PAR_THRESHOLD`] particles. Integrators other than RK2 fall back
    /// to per-particle stepping (still allocation-free and compacted
    /// identically).
    pub fn advance_batch(&mut self, pair: &BlendedPairSoA, domain: &Domain) -> AdvanceStats {
        let cfg = self.cfg;
        let n = self.pool.len();
        let mut stats = AdvanceStats::default();

        // Age pass: mark the age-expired dead before any sampling.
        let t0 = Instant::now();
        self.alive.clear();
        self.alive.resize(n, true);
        for i in 0..n {
            self.pool.age[i] += 1;
            if cfg.max_age > 0 && self.pool.age[i] > cfg.max_age {
                self.alive[i] = false;
            }
        }
        stats.stepped = self.alive.iter().filter(|a| **a).count() as u64;
        stats.integrate_ns += elapsed_ns(t0);

        if cfg.integrator == Integrator::Rk2 {
            self.k1x.resize(n, 0.0);
            self.k1y.resize(n, 0.0);
            self.k1z.resize(n, 0.0);
            self.k2x.resize(n, 0.0);
            self.k2y.resize(n, 0.0);
            self.k2z.resize(n, 0.0);
            let threads = rayon::current_num_threads();
            if n >= PAR_THRESHOLD && threads > 1 {
                let chunk = n.div_ceil(threads);
                let mut px = &mut self.pool.px[..];
                let mut py = &mut self.pool.py[..];
                let mut pz = &mut self.pool.pz[..];
                let mut alive = &mut self.alive[..];
                let mut k1x = &mut self.k1x[..];
                let mut k1y = &mut self.k1y[..];
                let mut k1z = &mut self.k1z[..];
                let mut k2x = &mut self.k2x[..];
                let mut k2y = &mut self.k2y[..];
                let mut k2z = &mut self.k2z[..];
                let mut jobs = Vec::with_capacity(threads);
                while !px.is_empty() {
                    jobs.push(Rk2Chunk {
                        px: take_chunk(&mut px, chunk),
                        py: take_chunk(&mut py, chunk),
                        pz: take_chunk(&mut pz, chunk),
                        alive: take_chunk(&mut alive, chunk),
                        k1x: take_chunk(&mut k1x, chunk),
                        k1y: take_chunk(&mut k1y, chunk),
                        k1z: take_chunk(&mut k1z, chunk),
                        k2x: take_chunk(&mut k2x, chunk),
                        k2y: take_chunk(&mut k2y, chunk),
                        k2z: take_chunk(&mut k2z, chunk),
                    });
                }
                // Per-chunk timings are summed: CPU work, not wall clock
                // (the same convention FrameComputeStats uses for rakes).
                let timings: Vec<(u64, u64)> = jobs
                    .into_par_iter()
                    .map(|c| rk2_chunk(pair, domain, &cfg, c))
                    .collect();
                for (sample, integrate) in timings {
                    stats.sample_ns += sample;
                    stats.integrate_ns += integrate;
                }
            } else {
                let (sample, integrate) = rk2_chunk(
                    pair,
                    domain,
                    &cfg,
                    Rk2Chunk {
                        px: &mut self.pool.px,
                        py: &mut self.pool.py,
                        pz: &mut self.pool.pz,
                        alive: &mut self.alive,
                        k1x: &mut self.k1x,
                        k1y: &mut self.k1y,
                        k1z: &mut self.k1z,
                        k2x: &mut self.k2x,
                        k2y: &mut self.k2y,
                        k2z: &mut self.k2z,
                    },
                );
                stats.sample_ns += sample;
                stats.integrate_ns += integrate;
            }
        } else {
            // Non-RK2 fallback: per-particle stepping over the SoA
            // arrays through the same policy helper as the scalar path
            // (sampling time is folded into integrate here).
            let t = Instant::now();
            for i in 0..n {
                if !self.alive[i] {
                    continue;
                }
                match policy_step(&cfg, pair, domain, self.pool.get(i)) {
                    Some(next) => self.pool.set(i, next),
                    None => self.alive[i] = false,
                }
            }
            stats.integrate_ns += elapsed_ns(t);
        }

        // Compact: the same swap-remove sweep as the scalar path — the
        // mask travels with the arrays so swapped-in elements are
        // re-examined before `i` advances.
        let t = Instant::now();
        let mut i = 0;
        while i < self.pool.len() {
            if self.alive[i] {
                i += 1;
            } else {
                self.pool.swap_remove(i);
                self.alive.swap_remove(i);
            }
        }
        stats.compact_ns += elapsed_ns(t);

        let t = Instant::now();
        self.inject(domain);
        stats.inject_ns += elapsed_ns(t);
        self.frames += 1;
        stats
    }

    /// Inject fresh particles at the seeds (skipping seeds outside the
    /// domain) — shared tail of both advance paths.
    fn inject(&mut self, domain: &Domain) {
        for (sid, &seed) in self.seeds.iter().enumerate() {
            if let Some(p) = domain.canonicalize(seed) {
                for _ in 0..self.cfg.inject_per_frame {
                    // lint:allow(panic-path): seed counts are set via a u32 wire field
                    self.pool.push(p, 0, sid as u32);
                }
            }
        }
    }

    /// All particle positions (point-cloud rendering), written into a
    /// caller-owned buffer. Pool order (not injection order).
    pub fn positions_into(&self, out: &mut Vec<Vec3>) {
        out.clear();
        out.reserve(self.pool.len());
        for i in 0..self.pool.len() {
            out.push(self.pool.get(i));
        }
    }

    /// All particle positions (point-cloud rendering).
    pub fn positions(&self) -> Vec<Vec3> {
        let mut out = Vec::new();
        self.positions_into(&mut out);
        out
    }

    /// Smoke filaments written into a caller-owned buffer: one polyline
    /// per seed, particles ordered from the most recently injected (at
    /// the seed) to the oldest (downstream) — the connected rendering of
    /// §2.1. Inner vectors are reused; with a warm `out` this performs
    /// no allocation beyond capacity growth.
    pub fn filaments_into(&mut self, out: &mut Vec<Polyline>) {
        let mut keys = std::mem::take(&mut self.fil_keys);
        filaments_core(&self.pool, self.seeds.len(), &mut keys, out);
        self.fil_keys = keys;
    }

    /// Smoke filaments as a fresh vector (compatibility wrapper around
    /// [`Streakline::filaments_into`]).
    pub fn filaments(&self) -> Vec<Polyline> {
        let mut keys = Vec::new();
        let mut out = Vec::new();
        filaments_core(&self.pool, self.seeds.len(), &mut keys, &mut out);
        out
    }
}

fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Carve the leading `n`-element chunk off a mutable slice.
fn take_chunk<'a, T>(s: &mut &'a mut [T], n: usize) -> &'a mut [T] {
    let take = n.min(s.len());
    let (head, tail) = std::mem::take(s).split_at_mut(take);
    *s = tail;
    head
}

/// One integration step under the configured stagnation policy. With
/// [`StagnationPolicy::Keep`] this is exactly [`Integrator::step`]
/// (same operation sequence, bit for bit); with `Retire` the particle
/// dies when its first velocity sample is slower than `min_speed` —
/// the same `length() < min_speed` test the streamline batch kernels
/// apply.
fn policy_step<F: FieldSample>(
    cfg: &StreaklineConfig,
    field: &F,
    domain: &Domain,
    p: Vec3,
) -> Option<Vec3> {
    let p = domain.canonicalize(p)?;
    let dt = cfg.dt;
    let retire = cfg.stagnation == StagnationPolicy::Retire;
    match cfg.integrator {
        Integrator::Euler => {
            let k1 = field.sample(p)?;
            if retire && k1.length() < cfg.min_speed {
                return None;
            }
            domain.canonicalize(p + k1 * dt)
        }
        Integrator::Rk2 => {
            let k1 = field.sample(p)?;
            if retire && k1.length() < cfg.min_speed {
                return None;
            }
            let mid = domain.canonicalize(p + k1 * (dt * 0.5))?;
            let k2 = field.sample(mid)?;
            domain.canonicalize(p + k2 * dt)
        }
        Integrator::Rk4 => {
            let k1 = field.sample(p)?;
            if retire && k1.length() < cfg.min_speed {
                return None;
            }
            let p2 = domain.canonicalize(p + k1 * (dt * 0.5))?;
            let k2 = field.sample(p2)?;
            let p3 = domain.canonicalize(p + k2 * (dt * 0.5))?;
            let k3 = field.sample(p3)?;
            let p4 = domain.canonicalize(p + k3 * dt)?;
            let k4 = field.sample(p4)?;
            let avg = (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (1.0 / 6.0);
            domain.canonicalize(p + avg * dt)
        }
    }
}

/// Mutable slice views for one rayon chunk of the RK2 lockstep.
struct Rk2Chunk<'a> {
    px: &'a mut [f32],
    py: &'a mut [f32],
    pz: &'a mut [f32],
    alive: &'a mut [bool],
    /// k1 on entry to the midpoint sweep, overwritten in place with
    /// the midpoint coordinates (k1 is dead after the midpoint is
    /// formed, so RK2 needs only two scratch triples, not three).
    k1x: &'a mut [f32],
    k1y: &'a mut [f32],
    k1z: &'a mut [f32],
    k2x: &'a mut [f32],
    k2y: &'a mut [f32],
    k2z: &'a mut [f32],
}

/// Cache block for the RK2 lockstep: all stages of one block complete
/// before the next block starts, so a block's ten lanes (~150 KB at
/// 4096 particles) stay resident across the whole stage sequence
/// instead of streaming the full pool through cache once per stage.
/// Blocking only regroups *independent* per-particle work, so the
/// results are bitwise unchanged.
const RK2_BLOCK: usize = 2048;

/// RK2 lockstep over one chunk: canonicalize → k1 (fused batch sample)
/// → stagnation policy → midpoint → k2 (fused batch sample) → final
/// position, cache-blocked in runs of [`RK2_BLOCK`] particles. Every
/// arithmetic stage mirrors the RK2 arm of [`policy_step`] op for op,
/// so the surviving positions are bitwise identical to scalar
/// stepping. Returns `(sample_ns, integrate_ns)`.
fn rk2_chunk(
    pair: &BlendedPairSoA,
    domain: &Domain,
    cfg: &StreaklineConfig,
    c: Rk2Chunk<'_>,
) -> (u64, u64) {
    let n = c.px.len();
    let retire = cfg.stagnation == StagnationPolicy::Retire;
    let dt = cfg.dt;
    let half = dt * 0.5;
    let t_all = Instant::now();
    let mut sample_ns = 0u64;

    let mut start = 0;
    while start < n {
        let end = (start + RK2_BLOCK).min(n);
        let px = &mut c.px[start..end];
        let py = &mut c.py[start..end];
        let pz = &mut c.pz[start..end];
        let alive = &mut c.alive[start..end];
        let k1x = &mut c.k1x[start..end];
        let k1y = &mut c.k1y[start..end];
        let k1z = &mut c.k1z[start..end];
        let k2x = &mut c.k2x[start..end];
        let k2y = &mut c.k2y[start..end];
        let k2z = &mut c.k2z[start..end];
        let m = px.len();

        // No entry canonicalize sweep: pool positions are invariantly
        // canonical — every position was produced by this function's
        // final `canonicalize` or by `inject` (which canonicalizes the
        // seed), and `Domain::wrap` returns in-range coordinates
        // unchanged, so the sweep the scalar path performs at the top
        // of `policy_step` is a bitwise no-op here and is skipped.

        // k1 = field(p): the fused blended gather.
        let t = Instant::now();
        pair.sample_batch_blended(px, py, pz, k1x, k1y, k1z, alive);
        sample_ns += elapsed_ns(t);

        // Stagnation policy (on the first sample, as in the scalar
        // path) and mid = canonicalize(p + k1 * (dt/2)) in one sweep.
        // k1 is consumed here, so the midpoint overwrites it in place.
        for i in 0..m {
            if !alive[i] {
                continue;
            }
            let k1 = Vec3::new(k1x[i], k1y[i], k1z[i]);
            if retire && k1.length() < cfg.min_speed {
                alive[i] = false;
                continue;
            }
            let p = Vec3::new(px[i], py[i], pz[i]);
            match domain.canonicalize(p + k1 * half) {
                Some(mid) => {
                    k1x[i] = mid.x;
                    k1y[i] = mid.y;
                    k1z[i] = mid.z;
                }
                None => alive[i] = false,
            }
        }

        // k2 = field(mid) — the midpoint now lives in the k1 arrays.
        let t = Instant::now();
        pair.sample_batch_blended(k1x, k1y, k1z, k2x, k2y, k2z, alive);
        sample_ns += elapsed_ns(t);

        // p' = canonicalize(p + k2 * dt), written back into the pool.
        for i in 0..m {
            if !alive[i] {
                continue;
            }
            let p = Vec3::new(px[i], py[i], pz[i]);
            let k2 = Vec3::new(k2x[i], k2y[i], k2z[i]);
            match domain.canonicalize(p + k2 * dt) {
                Some(next) => {
                    px[i] = next.x;
                    py[i] = next.y;
                    pz[i] = next.z;
                }
                None => alive[i] = false,
            }
        }

        start = end;
    }

    let integrate_ns = elapsed_ns(t_all).saturating_sub(sample_ns);
    (sample_ns, integrate_ns)
}

/// Rebuild per-seed filaments from a swap-remove-scrambled pool: sort
/// particle indices by `(seed_id, age)` ascending, then slice the sorted
/// run into per-seed polylines (age ascending = newest first). Ties —
/// same seed, same age — are particles injected by the same seed in the
/// same frame, identical in every coordinate bit, so the index
/// tie-break only makes the order deterministic, never different.
fn filaments_core(
    pool: &Pool,
    seeds_len: usize,
    keys: &mut Vec<(u64, usize)>,
    out: &mut Vec<Polyline>,
) {
    out.truncate(seeds_len);
    for line in out.iter_mut() {
        line.clear();
    }
    while out.len() < seeds_len {
        out.push(Vec::new());
    }
    keys.clear();
    keys.reserve(pool.len());
    for i in 0..pool.len() {
        keys.push((((pool.seed[i] as u64) << 32) | (pool.age[i] as u64), i));
    }
    keys.sort_unstable();
    for &(key, i) in keys.iter() {
        let sid = (key >> 32) as usize;
        if let Some(line) = out.get_mut(sid) {
            line.push(Vec3::new(pool.px[i], pool.py[i], pool.pz[i]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::FieldSample;
    use flowfield::{Dims, VectorField};

    fn uniform_x() -> VectorField {
        VectorField::from_fn(Dims::new(32, 8, 8), |_, _, _| Vec3::X)
    }

    fn cfg(dt: f32) -> StreaklineConfig {
        StreaklineConfig {
            dt,
            ..StreaklineConfig::default()
        }
    }

    #[test]
    fn particles_accumulate_one_per_frame() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::new(1.0, 4.0, 4.0)], cfg(0.5));
        for _ in 0..5 {
            s.advance(&f, &d);
        }
        assert_eq!(s.particle_count(), 5);
        assert_eq!(s.frame_count(), 5);
    }

    #[test]
    fn streak_trails_downstream_of_seed() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let seed = Vec3::new(1.0, 4.0, 4.0);
        let mut s = Streakline::new(vec![seed], cfg(0.5));
        for _ in 0..4 {
            s.advance(&f, &d);
        }
        let fil = s.filaments();
        assert_eq!(fil.len(), 1);
        let line = &fil[0];
        assert_eq!(line.len(), 4);
        // Head is freshest (injected this frame, not yet moved), tail
        // farthest downstream.
        assert!(line[0].x < line[line.len() - 1].x);
        assert!((line[0].x - 1.0).abs() < 1e-4); // just injected
        assert!((line[3].x - 2.5).abs() < 1e-4); // oldest: moved 3 times
    }

    #[test]
    fn particles_die_at_domain_exit() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::new(29.0, 4.0, 4.0)], cfg(1.0));
        for _ in 0..10 {
            s.advance(&f, &d);
        }
        // Each particle survives only ~2 steps (29 → 31), so the
        // population saturates instead of growing.
        assert!(s.particle_count() <= 3);
    }

    #[test]
    fn max_age_retires_particles() {
        let f = VectorField::zeros(Dims::new(8, 8, 8));
        let d = Domain::boxed(Dims::new(8, 8, 8));
        let mut s = Streakline::new(
            vec![Vec3::splat(4.0)],
            StreaklineConfig {
                max_age: 3,
                dt: 0.1,
                ..StreaklineConfig::default()
            },
        );
        for _ in 0..10 {
            s.advance(&f, &d);
        }
        // Steady state holds ages 0..=max_age: max_age + 1 particles.
        assert_eq!(s.particle_count(), 4);
    }

    #[test]
    fn out_of_domain_seed_injects_nothing() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::splat(-10.0)], cfg(0.5));
        s.advance(&f, &d);
        assert_eq!(s.particle_count(), 0);
    }

    #[test]
    fn moving_seed_leaves_old_smoke_behind() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::new(1.0, 2.0, 4.0)], cfg(0.25));
        for _ in 0..3 {
            s.advance(&f, &d);
        }
        s.set_seeds(vec![Vec3::new(1.0, 6.0, 4.0)]);
        for _ in 0..3 {
            s.advance(&f, &d);
        }
        let pos = s.positions();
        // Both y-levels are populated: old smoke persists.
        assert!(pos.iter().any(|p| (p.y - 2.0).abs() < 0.1));
        assert!(pos.iter().any(|p| (p.y - 6.0).abs() < 0.1));
    }

    #[test]
    fn multiple_seeds_make_separate_filaments() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(
            vec![Vec3::new(1.0, 2.0, 4.0), Vec3::new(1.0, 6.0, 4.0)],
            cfg(0.5),
        );
        for _ in 0..4 {
            s.advance(&f, &d);
        }
        let fil = s.filaments();
        assert_eq!(fil.len(), 2);
        assert!(fil.iter().all(|l| l.len() == 4));
        assert!(fil[0].iter().all(|p| (p.y - 2.0).abs() < 1e-4));
        assert!(fil[1].iter().all(|p| (p.y - 6.0).abs() < 1e-4));
    }

    #[test]
    fn clear_empties_system() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::new(1.0, 4.0, 4.0)], cfg(0.5));
        for _ in 0..5 {
            s.advance(&f, &d);
        }
        s.clear();
        assert_eq!(s.particle_count(), 0);
    }

    #[test]
    fn inject_per_frame_multiplies_particles() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(
            vec![Vec3::new(1.0, 4.0, 4.0)],
            StreaklineConfig {
                inject_per_frame: 3,
                dt: 0.1,
                ..StreaklineConfig::default()
            },
        );
        for _ in 0..4 {
            s.advance(&f, &d);
        }
        assert_eq!(s.particle_count(), 12);
    }

    #[test]
    fn shrinking_seeds_retires_stale_particles() {
        // The satellite-fix regression: shrink the rake mid-flight and
        // both renderings must agree on the particle count (previously
        // stale seed_ids were shipped in positions() but silently
        // dropped from filaments()).
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(
            vec![Vec3::new(1.0, 2.0, 4.0), Vec3::new(1.0, 6.0, 4.0)],
            cfg(0.25),
        );
        for _ in 0..4 {
            s.advance(&f, &d);
        }
        s.set_seeds(vec![Vec3::new(1.0, 2.0, 4.0)]);
        let fil_points: usize = s.filaments().iter().map(|l| l.len()).sum();
        assert_eq!(s.positions().len(), fil_points);
        assert_eq!(fil_points, 4, "only the surviving seed's smoke remains");
        // And the invariant holds after further advances too.
        for _ in 0..3 {
            s.advance(&f, &d);
        }
        let fil_points: usize = s.filaments().iter().map(|l| l.len()).sum();
        assert_eq!(s.positions().len(), fil_points);
        assert!(s.positions().iter().all(|p| (p.y - 2.0).abs() < 0.1));
    }

    #[test]
    fn stagnation_default_keeps_particles() {
        // Zero field, default policy: smoke pools at the seed until
        // max_age retires it — identical to the historical behavior.
        let f = VectorField::zeros(Dims::new(8, 8, 8));
        let d = Domain::boxed(Dims::new(8, 8, 8));
        let mut s = Streakline::new(vec![Vec3::splat(4.0)], cfg(0.1));
        for _ in 0..5 {
            s.advance(&f, &d);
        }
        assert_eq!(s.particle_count(), 5);
    }

    #[test]
    fn stagnation_retire_matches_in_scalar_and_batch() {
        // Zero field + Retire: every particle dies on its first step, so
        // only this frame's injection survives — in both paths.
        let f = VectorField::zeros(Dims::new(8, 8, 8));
        let soa = f.to_soa();
        let d = Domain::boxed(Dims::new(8, 8, 8));
        let cfg = StreaklineConfig {
            stagnation: StagnationPolicy::Retire,
            ..StreaklineConfig::default()
        };
        let mut scalar = Streakline::new(vec![Vec3::splat(4.0)], cfg);
        let mut batch = Streakline::new(vec![Vec3::splat(4.0)], cfg);
        let pair = flowfield::BlendedPairSoA::steady(&soa);
        for _ in 0..5 {
            scalar.advance(&f, &d);
            batch.advance_batch(&pair, &d);
        }
        assert_eq!(scalar.particle_count(), 1);
        assert_eq!(batch.particle_count(), 1);
    }

    #[test]
    fn batch_advance_matches_scalar_bitwise() {
        let f = uniform_x();
        let soa = f.to_soa();
        let d = Domain::boxed(f.dims());
        let seeds = vec![Vec3::new(1.0, 2.0, 4.0), Vec3::new(1.0, 6.0, 4.0)];
        let mut scalar = Streakline::new(seeds.clone(), cfg(0.5));
        let mut batch = Streakline::new(seeds, cfg(0.5));
        let pair = flowfield::BlendedPairSoA::steady(&soa);
        for _ in 0..6 {
            scalar.advance(&soa, &d);
            let stats = batch.advance_batch(&pair, &d);
            assert!(stats.stepped <= scalar.particle_count() as u64 + 2);
        }
        let (sp, bp) = (scalar.positions(), batch.positions());
        assert_eq!(sp.len(), bp.len());
        for (a, b) in sp.iter().zip(&bp) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        assert_eq!(scalar.filaments(), batch.filaments());
    }

    #[test]
    fn batch_advance_parallel_path_matches_sequential() {
        // Push the pool over PAR_THRESHOLD so the rayon-chunked path
        // runs, and check it against the scalar reference.
        let f = uniform_x();
        let soa = f.to_soa();
        let d = Domain::boxed(f.dims());
        let seeds: Vec<Vec3> = (0..40)
            .map(|i| Vec3::new(1.0, 1.0 + (i as f32) * 0.12, 4.0))
            .collect();
        let cfg = StreaklineConfig {
            dt: 0.05,
            inject_per_frame: 64,
            ..StreaklineConfig::default()
        };
        let mut scalar = Streakline::new(seeds.clone(), cfg);
        let mut batch = Streakline::new(seeds, cfg);
        let pair = flowfield::BlendedPairSoA::steady(&soa);
        for _ in 0..5 {
            scalar.advance(&soa, &d);
            batch.advance_batch(&pair, &d);
        }
        assert!(
            batch.particle_count() > PAR_THRESHOLD,
            "test must exercise the parallel path"
        );
        let (sp, bp) = (scalar.positions(), batch.positions());
        assert_eq!(sp.len(), bp.len());
        for (a, b) in sp.iter().zip(&bp) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
        }
    }

    #[test]
    fn filaments_into_reuses_buffers() {
        let f = uniform_x();
        let d = Domain::boxed(f.dims());
        let mut s = Streakline::new(vec![Vec3::new(1.0, 4.0, 4.0)], cfg(0.5));
        for _ in 0..3 {
            s.advance(&f, &d);
        }
        let mut out = Vec::new();
        s.filaments_into(&mut out);
        assert_eq!(out, s.filaments());
        s.advance(&f, &d);
        s.filaments_into(&mut out);
        assert_eq!(out, s.filaments());
    }
}
