//! Particle paths (pathlines): the trajectory of one fluid element
//! through the *unsteady* flow.
//!
//! §2.1: "Particle paths take as input the seed point(s) and iteratively
//! integrate the particle position, incrementing the timestep with each
//! integration." And §5.1's consequence: "Construction of particle paths
//! in particular require the entire data set for all timesteps, as the
//! particle paths may extend throughout the entire data set… the number
//! of timesteps that can fit in physical memory places a limit on the
//! length of the particle paths." [`pathline`] works over any window of
//! timesteps, so both the all-in-memory and the windowed disk-streaming
//! regimes use the same code.

use crate::domain::Domain;
use crate::integrate::Integrator;
use crate::Polyline;
use flowfield::VectorField;
use vecmath::Vec3;

/// Parameters for a particle-path trace.
#[derive(Debug, Clone, Copy)]
pub struct PathlineConfig {
    pub integrator: Integrator,
    /// Integration substeps per timestep interval (≥ 1). The paper uses
    /// one integration per timestep; more substeps improve accuracy when
    /// timesteps are coarse.
    pub substeps_per_timestep: usize,
    /// Physical time between consecutive timestep fields.
    pub dt_per_timestep: f32,
    /// Blend velocity linearly between the bracketing timesteps
    /// (time-accurate); `false` reproduces the paper's
    /// one-field-per-interval behaviour.
    pub time_interpolate: bool,
}

impl Default for PathlineConfig {
    fn default() -> Self {
        PathlineConfig {
            integrator: Integrator::Rk2,
            substeps_per_timestep: 1,
            dt_per_timestep: 1.0,
            time_interpolate: false,
        }
    }
}

/// Integrate a particle path from `seed`, starting at timestep
/// `start_timestep` of `timesteps`, until the particle leaves the domain
/// or the window of timesteps is exhausted. Returns one point per
/// substep, beginning with the seed.
pub fn pathline(
    timesteps: &[VectorField],
    domain: &Domain,
    seed: Vec3,
    start_timestep: usize,
    cfg: &PathlineConfig,
) -> Polyline {
    let Some(mut p) = domain.canonicalize(seed) else {
        return Vec::new();
    };
    let substeps = cfg.substeps_per_timestep.max(1);
    let sub_dt = cfg.dt_per_timestep / substeps as f32;
    let mut path = vec![p];
    if start_timestep >= timesteps.len() {
        return path;
    }
    'outer: for ts in start_timestep..timesteps.len() {
        let f0 = &timesteps[ts];
        let f1 = timesteps.get(ts + 1);
        for sub in 0..substeps {
            let next = if cfg.time_interpolate {
                let alpha = (sub as f32 + 0.5) / substeps as f32;
                match f1 {
                    Some(f1) => cfg
                        .integrator
                        .step_blended(f0, f1, alpha, domain, p, sub_dt),
                    None => cfg.integrator.step(f0, domain, p, sub_dt),
                }
            } else {
                cfg.integrator.step(f0, domain, p, sub_dt)
            };
            match next {
                Some(next) => {
                    p = next;
                    path.push(p);
                }
                None => break 'outer,
            }
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::FieldSample;
    use flowfield::{Dims, VectorField};

    fn steady_x(n_steps: usize) -> Vec<VectorField> {
        (0..n_steps)
            .map(|_| VectorField::from_fn(Dims::new(32, 8, 8), |_, _, _| Vec3::X))
            .collect()
    }

    /// Velocity +X on even timesteps, +Y on odd — maximally unsteady.
    fn alternating(n_steps: usize) -> Vec<VectorField> {
        (0..n_steps)
            .map(|t| {
                let v = if t % 2 == 0 { Vec3::X } else { Vec3::Y };
                VectorField::from_fn(Dims::new(32, 32, 4), move |_, _, _| v)
            })
            .collect()
    }

    #[test]
    fn steady_pathline_matches_streamline_shape() {
        let ts = steady_x(10);
        let d = Domain::boxed(ts[0].dims());
        let cfg = PathlineConfig::default();
        let path = pathline(&ts, &d, Vec3::new(1.0, 4.0, 4.0), 0, &cfg);
        assert_eq!(path.len(), 11);
        for (n, p) in path.iter().enumerate() {
            assert!(p.distance(Vec3::new(1.0 + n as f32, 4.0, 4.0)) < 1e-4);
        }
    }

    #[test]
    fn path_is_limited_by_available_timesteps() {
        // §5.1: path length is limited by the resident timestep window.
        let ts = steady_x(5);
        let d = Domain::boxed(ts[0].dims());
        let path = pathline(
            &ts,
            &d,
            Vec3::new(1.0, 4.0, 4.0),
            0,
            &PathlineConfig::default(),
        );
        assert_eq!(path.len(), 6); // seed + one step per timestep

        let path_short = pathline(
            &ts,
            &d,
            Vec3::new(1.0, 4.0, 4.0),
            3,
            &PathlineConfig::default(),
        );
        assert_eq!(path_short.len(), 3); // seed + timesteps 3 and 4
    }

    #[test]
    fn start_beyond_window_returns_seed_only() {
        let ts = steady_x(3);
        let d = Domain::boxed(ts[0].dims());
        let path = pathline(
            &ts,
            &d,
            Vec3::new(1.0, 4.0, 4.0),
            99,
            &PathlineConfig::default(),
        );
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn unsteady_pathline_tracks_changing_field() {
        let ts = alternating(4);
        let d = Domain::boxed(ts[0].dims());
        let path = pathline(
            &ts,
            &d,
            Vec3::new(2.0, 2.0, 2.0),
            0,
            &PathlineConfig::default(),
        );
        // Steps: +X, +Y, +X, +Y.
        assert_eq!(path.len(), 5);
        assert!(path[1].distance(Vec3::new(3.0, 2.0, 2.0)) < 1e-4);
        assert!(path[2].distance(Vec3::new(3.0, 3.0, 2.0)) < 1e-4);
        assert!(path[4].distance(Vec3::new(4.0, 4.0, 2.0)) < 1e-4);
    }

    #[test]
    fn substeps_refine_the_path() {
        let ts = steady_x(3);
        let d = Domain::boxed(ts[0].dims());
        let cfg = PathlineConfig {
            substeps_per_timestep: 4,
            ..PathlineConfig::default()
        };
        let path = pathline(&ts, &d, Vec3::new(1.0, 4.0, 4.0), 0, &cfg);
        assert_eq!(path.len(), 13); // seed + 3·4
        assert!(path[1].distance(Vec3::new(1.25, 4.0, 4.0)) < 1e-4);
    }

    #[test]
    fn time_interpolation_blends_between_fields() {
        let ts = alternating(2); // +X then +Y
        let d = Domain::boxed(ts[0].dims());
        let cfg = PathlineConfig {
            time_interpolate: true,
            integrator: Integrator::Euler,
            ..PathlineConfig::default()
        };
        let path = pathline(&ts, &d, Vec3::new(2.0, 2.0, 2.0), 0, &cfg);
        // First step uses the α=0.5 blend of +X and +Y.
        assert!(path[1].distance(Vec3::new(2.5, 2.5, 2.0)) < 1e-4);
    }

    #[test]
    fn terminates_on_domain_exit() {
        let ts = steady_x(100);
        let d = Domain::boxed(ts[0].dims());
        let path = pathline(
            &ts,
            &d,
            Vec3::new(28.0, 4.0, 4.0),
            0,
            &PathlineConfig::default(),
        );
        // 28 → 31 is 3 steps; the 4th leaves.
        assert_eq!(path.len(), 4);
    }

    #[test]
    fn out_of_domain_seed_is_empty() {
        let ts = steady_x(3);
        let d = Domain::boxed(ts[0].dims());
        assert!(pathline(&ts, &d, Vec3::splat(-1.0), 0, &PathlineConfig::default()).is_empty());
    }
}
