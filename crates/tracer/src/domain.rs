//! Integration domain: grid bounds plus topology.
//!
//! O-grids (the tapered-cylinder topology) wrap in the angular index: node
//! `ni-1` duplicates node `0`, so a particle crossing the seam should have
//! its `i` coordinate wrapped modulo `ni-1` instead of being terminated.
//! [`Domain`] centralizes that decision so every integrator and every
//! kernel treats the seam identically.

use flowfield::Dims;
use vecmath::Vec3;

/// The integration domain of a field: dimensions plus per-axis
/// periodicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    dims: Dims,
    /// Axis `i` wraps with period `ni - 1` (O-grid seam).
    pub periodic_i: bool,
    /// Axis `j` wraps with period `nj - 1`.
    pub periodic_j: bool,
    /// Axis `k` wraps with period `nk - 1`.
    pub periodic_k: bool,
}

impl Domain {
    /// Non-periodic box domain.
    pub fn boxed(dims: Dims) -> Domain {
        Domain {
            dims,
            periodic_i: false,
            periodic_j: false,
            periodic_k: false,
        }
    }

    /// O-grid domain: periodic in `i` (the angular index).
    pub fn o_grid(dims: Dims) -> Domain {
        Domain {
            periodic_i: true,
            ..Domain::boxed(dims)
        }
    }

    #[inline]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Wrap one periodic coordinate into `[0, period)` — equivalent to
    /// `x.rem_euclid(period)` bit for bit, but skips the libm `fmod`
    /// call in the overwhelmingly common already-in-range case (`fmod`
    /// is exact, so for `0 <= x < period` it returns `x` unchanged;
    /// `-0.0` takes the fast path and stays `-0.0`, which is also what
    /// `rem_euclid` produces). Particles cross a periodic seam on a
    /// tiny fraction of steps, so this keeps the per-step wrap cost to
    /// two compares on the integration hot path.
    #[inline]
    fn wrap(x: f32, period: f32) -> f32 {
        if (0.0..period).contains(&x) {
            x
        } else {
            x.rem_euclid(period)
        }
    }

    /// Wrap periodic axes into range and bounds-check the rest. Returns
    /// the canonical coordinate, or `None` when the particle has left the
    /// domain through a non-periodic face.
    #[inline]
    pub fn canonicalize(&self, mut p: Vec3) -> Option<Vec3> {
        if !p.is_finite() {
            return None;
        }
        if self.periodic_i {
            p.x = Domain::wrap(p.x, (self.dims.ni - 1) as f32);
        } else if p.x < 0.0 || p.x > (self.dims.ni - 1) as f32 {
            return None;
        }
        if self.periodic_j {
            p.y = Domain::wrap(p.y, (self.dims.nj - 1) as f32);
        } else if p.y < 0.0 || p.y > (self.dims.nj - 1) as f32 {
            return None;
        }
        if self.periodic_k {
            p.z = Domain::wrap(p.z, (self.dims.nk - 1) as f32);
        } else if p.z < 0.0 || p.z > (self.dims.nk - 1) as f32 {
            return None;
        }
        Some(p)
    }

    /// True when the point is representable in this domain (after
    /// canonicalization).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        self.canonicalize(p).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn boxed_rejects_outside() {
        let d = Domain::boxed(Dims::new(5, 5, 5));
        assert!(d.canonicalize(Vec3::splat(2.0)).is_some());
        assert!(d.canonicalize(Vec3::new(4.01, 0.0, 0.0)).is_none());
        assert!(d.canonicalize(Vec3::new(0.0, -0.01, 0.0)).is_none());
        assert!(d.canonicalize(Vec3::new(0.0, 0.0, 5.0)).is_none());
    }

    #[test]
    fn boxed_accepts_boundary() {
        let d = Domain::boxed(Dims::new(5, 5, 5));
        assert_eq!(d.canonicalize(Vec3::splat(4.0)), Some(Vec3::splat(4.0)));
        assert_eq!(d.canonicalize(Vec3::ZERO), Some(Vec3::ZERO));
    }

    #[test]
    fn ogrid_wraps_i() {
        // ni = 5 → period 4: i = 4.5 wraps to 0.5, i = -0.5 wraps to 3.5.
        let d = Domain::o_grid(Dims::new(5, 5, 5));
        let p = d.canonicalize(Vec3::new(4.5, 1.0, 1.0)).unwrap();
        assert!((p.x - 0.5).abs() < 1e-5);
        let q = d.canonicalize(Vec3::new(-0.5, 1.0, 1.0)).unwrap();
        assert!((q.x - 3.5).abs() < 1e-5);
    }

    #[test]
    fn ogrid_still_bounds_j_k() {
        let d = Domain::o_grid(Dims::new(5, 5, 5));
        assert!(d.canonicalize(Vec3::new(2.0, 4.5, 0.0)).is_none());
        assert!(d.canonicalize(Vec3::new(2.0, 0.0, -0.1)).is_none());
    }

    #[test]
    fn nan_rejected() {
        let d = Domain::o_grid(Dims::new(5, 5, 5));
        assert!(d.canonicalize(Vec3::new(f32::NAN, 1.0, 1.0)).is_none());
        assert!(d.canonicalize(Vec3::new(1.0, f32::INFINITY, 1.0)).is_none());
    }

    #[test]
    fn wrap_fast_path_matches_rem_euclid_bitwise() {
        // Includes the edge cases the fast path must not disturb:
        // -0.0 (in range, preserved), exactly `period` (slow path, wraps
        // to 0), and a tiny negative (slow path; rem_euclid itself
        // rounds up to exactly `period` — preserved verbatim).
        let d = Domain::o_grid(Dims::new(5, 5, 5));
        for x in [
            -0.0f32, 0.0, 0.5, 3.999, 4.0, 4.5, -0.5, -1.0e-10, 123.75, -123.75,
        ] {
            let p = d.canonicalize(Vec3::new(x, 1.0, 1.0)).unwrap();
            assert_eq!(p.x.to_bits(), x.rem_euclid(4.0).to_bits(), "x = {x}");
        }
    }

    #[test]
    fn multiple_wraps() {
        let d = Domain::o_grid(Dims::new(5, 5, 5));
        // i = 9.0 → 9 mod 4 = 1.0.
        let p = d.canonicalize(Vec3::new(9.0, 1.0, 1.0)).unwrap();
        assert!((p.x - 1.0).abs() < 1e-4);
    }

    proptest! {
        #[test]
        fn prop_canonical_in_range(x in -100.0f32..100.0, y in 0.0f32..4.0, z in 0.0f32..4.0) {
            let d = Domain::o_grid(Dims::new(5, 5, 5));
            let p = d.canonicalize(Vec3::new(x, y, z)).unwrap();
            prop_assert!(p.x >= 0.0 && p.x < 4.0 + 1e-4);
            prop_assert!(d.dims().contains_grid_coord(p));
        }

        #[test]
        fn prop_canonicalize_idempotent(x in -50.0f32..50.0, y in 0.0f32..4.0, z in 0.0f32..4.0) {
            let d = Domain::o_grid(Dims::new(5, 5, 5));
            let once = d.canonicalize(Vec3::new(x, y, z)).unwrap();
            let twice = d.canonicalize(once).unwrap();
            prop_assert!(once.distance(twice) < 1e-5);
        }
    }
}
