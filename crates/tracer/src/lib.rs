#![deny(unsafe_op_in_unsafe_fn, unused_must_use)]
//! Flow-visualization tools for the distributed virtual windtunnel.
//!
//! §2.1 of the paper defines the three tools, all built on injecting
//! virtual particles at *seed points* arranged in *rakes* and integrating
//! the velocity field:
//!
//! * **streamline** — integral curve of the *instantaneous* field through a
//!   seed ([`fn@streamline`]),
//! * **particle path** — locus of one fluid element over time, incrementing
//!   the timestep with each integration ([`fn@pathline`]),
//! * **streakline** — locus of all elements that previously passed through
//!   the seed; every frame all particles advance one step in the *current*
//!   field and fresh particles are injected at the seeds
//!   ([`streakline`]).
//!
//! Integration is second-order Runge-Kutta (§5.3; Euler and RK4 are also
//! provided) and runs in **grid coordinates** so no point-location search
//! is ever needed (§2.1). The O-grid's angular seam is handled by
//! [`Domain`], which wraps periodic axes.
//!
//! The paper's §5.3 performance study — scalar code parallelized across
//! streamlines vs. code vectorized across streamlines — is reproduced by
//! the [`batch`] kernels; [`benchmark`] packages the exact benchmark
//! scenario (100 streamlines × 200 points).

pub mod adaptive;
pub mod batch;
pub mod benchmark;
pub mod domain;
pub mod integrate;
pub mod isosurface;
pub mod multizone;
pub mod pathline;
pub mod seed;
pub mod streakline;
pub mod streamline;

pub use adaptive::{adaptive_streamline, AdaptiveConfig, AdaptiveTrace};
pub use batch::{
    trace_batch_parallel, trace_batch_scalar, trace_batch_vector, trace_batch_vector_parallel,
};
pub use domain::Domain;
pub use integrate::Integrator;
pub use isosurface::{isosurface, Triangle};
pub use multizone::{trace_multizone, Zone, ZonedPoint};
pub use pathline::{pathline, PathlineConfig};
pub use seed::{Handle, Rake, ToolKind};
pub use streakline::{AdvanceStats, StagnationPolicy, Streakline, StreaklineConfig};
pub use streamline::{streamline, TraceConfig};

/// A computed path: polyline vertices in grid coordinates. Convert to
/// physical space with `CurvilinearGrid::path_to_physical` before
/// rendering or shipping to a client.
pub type Polyline = Vec<vecmath::Vec3>;
