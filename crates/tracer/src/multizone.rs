//! Multiple-grid datasets — the first item of the paper's further work.
//!
//! §7: "Further work includes the extension of the computational
//! algorithms to handle multiple grid data sets…". Real NAS datasets
//! (the Harrier, full aircraft) were multi-zone: several curvilinear
//! grids abutting or overlapping, each with its own velocity data. A
//! particle integrated in zone A's grid coordinates that exits zone A
//! must be re-located in whichever zone contains its physical position
//! and continue in *that* zone's coordinates.
//!
//! [`trace_multizone`] implements exactly that hand-off: integrate in
//! grid coordinates as usual (cheap), and only when a particle leaves its
//! zone pay one physical-space point location (`CurvilinearGrid::locate`)
//! against the other zones — the economics the paper's single-grid
//! design established, generalized.

use crate::domain::Domain;
use crate::streamline::TraceConfig;
use flowfield::{CurvilinearGrid, FieldSample, VectorField};
use vecmath::Vec3;

/// One grid zone: geometry + grid-coordinate velocity field + topology.
pub struct Zone {
    pub grid: CurvilinearGrid,
    pub field: VectorField,
    pub domain: Domain,
}

impl Zone {
    pub fn new(grid: CurvilinearGrid, field: VectorField, domain: Domain) -> Zone {
        Zone {
            grid,
            field,
            domain,
        }
    }
}

/// A point on a multizone path: physical position plus the zone it was
/// integrated in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZonedPoint {
    pub position: Vec3,
    pub zone: usize,
}

/// Find a zone containing physical point `p`, preferring `hint` (the
/// zone the particle just left is checked last — it already failed).
fn locate_in_zones(zones: &[Zone], p: Vec3, exclude: usize) -> Option<(usize, Vec3)> {
    for (zi, zone) in zones.iter().enumerate() {
        if zi == exclude {
            continue;
        }
        // Cheap reject by bounding box before the expensive search.
        if !zone.grid.bounds().inflated(1.0e-4).contains(p) {
            continue;
        }
        if let Some(gc) = zone.grid.locate(p) {
            if let Some(gc) = zone.domain.canonicalize(gc) {
                return Some((zi, gc));
            }
        }
    }
    None
}

/// Trace a streamline across zones. `seed` is a physical-space point; the
/// result is a physical-space polyline annotated with the zone each point
/// was computed in. Terminates when no zone contains the particle, on
/// stagnation, or at `cfg.max_points`.
pub fn trace_multizone(zones: &[Zone], seed: Vec3, cfg: &TraceConfig) -> Vec<ZonedPoint> {
    let mut path = Vec::with_capacity(cfg.max_points + 1);
    // Initial placement: any zone that contains the seed.
    let Some((mut zi, mut gc)) = locate_in_zones(zones, seed, usize::MAX) else {
        return path;
    };
    let start_phys = match zones[zi].grid.to_physical(gc) {
        Some(p) => p,
        None => return path,
    };
    path.push(ZonedPoint {
        position: start_phys,
        zone: zi,
    });

    while path.len() <= cfg.max_points {
        let zone = &zones[zi];
        // Stagnation check.
        match zone.field.sample(gc) {
            Some(v) if v.length() >= cfg.min_speed => {}
            _ => break,
        }
        match cfg.integrator.step(&zone.field, &zone.domain, gc, cfg.dt) {
            Some(next) => {
                gc = next;
                let phys = match zone.grid.to_physical(gc) {
                    Some(p) => p,
                    None => break,
                };
                path.push(ZonedPoint {
                    position: phys,
                    zone: zi,
                });
            }
            None => {
                // Left this zone: one half-step forward in physical space
                // (Euler estimate) to poke into the neighbour, then
                // re-locate.
                let phys = match zone
                    .grid
                    .to_physical(zone.domain.canonicalize(gc).unwrap_or(gc))
                {
                    Some(p) => p,
                    None => break,
                };
                let v_grid = zone.field.sample(gc).unwrap_or(Vec3::ZERO);
                let v_phys = zone
                    .grid
                    .jacobian(gc)
                    .map(|j| j.mul_vec(v_grid))
                    .unwrap_or(Vec3::ZERO);
                let probe = phys + v_phys * cfg.dt;
                match locate_in_zones(zones, probe, zi) {
                    Some((nzi, ngc)) => {
                        zi = nzi;
                        gc = ngc;
                        path.push(ZonedPoint {
                            position: probe,
                            zone: zi,
                        });
                    }
                    None => break,
                }
            }
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Integrator;
    use flowfield::Dims;
    use vecmath::Aabb;

    /// Two abutting unit Cartesian zones: zone 0 covers x ∈ [0, 8],
    /// zone 1 covers x ∈ [8, 16]; both span y, z ∈ [0, 8]. Uniform +x
    /// physical flow (unit grids ⇒ grid velocity = +i too).
    fn two_zones() -> Vec<Zone> {
        let dims = Dims::new(9, 9, 9);
        let make = |x0: f32| {
            let grid = CurvilinearGrid::cartesian(
                dims,
                Aabb::new(Vec3::new(x0, 0.0, 0.0), Vec3::new(x0 + 8.0, 8.0, 8.0)),
            )
            .unwrap();
            let field = VectorField::from_fn(dims, |_, _, _| Vec3::X);
            Zone::new(grid, field, Domain::boxed(dims))
        };
        vec![make(0.0), make(8.0)]
    }

    fn cfg(dt: f32, max_points: usize) -> TraceConfig {
        TraceConfig {
            dt,
            max_points,
            integrator: Integrator::Rk2,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn path_crosses_the_zone_boundary() {
        let zones = two_zones();
        let path = trace_multizone(&zones, Vec3::new(1.0, 4.0, 4.0), &cfg(1.0, 14));
        assert!(path.len() >= 13, "path too short: {}", path.len());
        // Starts in zone 0, ends in zone 1.
        assert_eq!(path.first().unwrap().zone, 0);
        assert_eq!(path.last().unwrap().zone, 1);
        // The physical trajectory stays the straight line y = z = 4.
        for p in &path {
            assert!((p.position.y - 4.0).abs() < 1e-2, "{:?}", p);
            assert!((p.position.z - 4.0).abs() < 1e-2);
        }
        // And x is monotone through the seam.
        for w in path.windows(2) {
            assert!(w[1].position.x > w[0].position.x - 1e-4);
        }
    }

    #[test]
    fn terminates_when_no_zone_contains_particle() {
        let zones = two_zones();
        // Seed near the downstream end of zone 1: exits the world.
        let path = trace_multizone(&zones, Vec3::new(14.5, 4.0, 4.0), &cfg(1.0, 50));
        assert!(path.len() <= 4);
        assert!(path.last().unwrap().position.x <= 17.0);
    }

    #[test]
    fn seed_outside_all_zones_is_empty() {
        let zones = two_zones();
        assert!(trace_multizone(&zones, Vec3::new(-5.0, 4.0, 4.0), &cfg(1.0, 10)).is_empty());
        assert!(trace_multizone(&zones, Vec3::new(4.0, 40.0, 4.0), &cfg(1.0, 10)).is_empty());
    }

    #[test]
    fn single_zone_matches_plain_streamline() {
        let zones = two_zones();
        let seed = Vec3::new(1.0, 3.0, 5.0);
        let multi = trace_multizone(&zones[..1], seed, &cfg(0.5, 10));
        let plain = crate::streamline(
            &zones[0].field,
            &zones[0].domain,
            seed, // unit grid: physical == grid coords for zone 0
            &cfg(0.5, 10),
        );
        let plain_phys = zones[0].grid.path_to_physical(&plain);
        assert_eq!(multi.len(), plain_phys.len());
        for (m, p) in multi.iter().zip(&plain_phys) {
            assert!(m.position.distance(*p) < 1e-3);
        }
    }

    #[test]
    fn stagnation_terminates_in_any_zone() {
        let dims = Dims::new(9, 9, 9);
        let grid =
            CurvilinearGrid::cartesian(dims, Aabb::new(Vec3::ZERO, Vec3::splat(8.0))).unwrap();
        let field = VectorField::zeros(dims);
        let zones = vec![Zone::new(grid, field, Domain::boxed(dims))];
        let path = trace_multizone(&zones, Vec3::splat(4.0), &cfg(1.0, 50));
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn mismatched_zone_resolutions_still_hand_off() {
        // Zone 1 at twice the resolution of zone 0: the hand-off relocates
        // into the finer grid's coordinates and the physical line stays
        // straight.
        let coarse_dims = Dims::new(9, 9, 9);
        let fine_dims = Dims::new(17, 17, 17);
        let z0 = Zone::new(
            CurvilinearGrid::cartesian(coarse_dims, Aabb::new(Vec3::ZERO, Vec3::splat(8.0)))
                .unwrap(),
            VectorField::from_fn(coarse_dims, |_, _, _| Vec3::X),
            Domain::boxed(coarse_dims),
        );
        // Fine zone: physical x ∈ [8, 16] over 17 nodes ⇒ spacing 0.5 ⇒
        // physical +x flow needs grid velocity 2·i.
        let z1 = Zone::new(
            CurvilinearGrid::cartesian(
                fine_dims,
                Aabb::new(Vec3::new(8.0, 0.0, 0.0), Vec3::new(16.0, 8.0, 8.0)),
            )
            .unwrap(),
            VectorField::from_fn(fine_dims, |_, _, _| Vec3::new(2.0, 0.0, 0.0)),
            Domain::boxed(fine_dims),
        );
        let zones = vec![z0, z1];
        let path = trace_multizone(&zones, Vec3::new(6.0, 4.0, 4.0), &cfg(1.0, 8));
        assert!(path.last().unwrap().zone == 1);
        assert!(path.last().unwrap().position.x > 9.0);
        for p in &path {
            assert!((p.position.y - 4.0).abs() < 1e-2);
        }
        // Physical speed is ~1 in both zones despite different grid
        // velocities: consecutive x gaps ≈ dt.
        for w in path.windows(2) {
            let dx = w[1].position.x - w[0].position.x;
            assert!((dx - 1.0).abs() < 0.2, "dx = {dx}");
        }
    }
}
