//! The paper's §5.3 benchmark scenario, packaged.
//!
//! "To evaluate the computational performance, a benchmark computation of
//! 100 streamlines each containing 200 points was performed. This scenario
//! contains 20,000 points with a transfer over the networks of 240,000
//! bytes of data."
//!
//! Table 3 then derives the maximum particle count sustainable at ten
//! frames per second from the measured benchmark time, "assuming that the
//! performance scales with the number of particles".

use crate::batch::{
    trace_batch_parallel, trace_batch_scalar, trace_batch_vector, trace_batch_vector_parallel,
};
use crate::domain::Domain;
use crate::streamline::TraceConfig;
use crate::Polyline;
use flowfield::{Dims, VectorField, VectorFieldSoA};
use std::time::{Duration, Instant};
use vecmath::Vec3;

/// Streamlines in the paper's benchmark.
pub const PAPER_STREAMLINES: usize = 100;
/// Points per streamline in the paper's benchmark.
pub const PAPER_POINTS: usize = 200;
/// Total particles: 20 000.
pub const PAPER_PARTICLES: usize = PAPER_STREAMLINES * PAPER_POINTS;
/// Wire bytes for the benchmark at 12 B/point: 240 000.
pub const PAPER_WIRE_BYTES: usize = PAPER_PARTICLES * 12;
/// Frame budget of the virtual environment: 1/8 s reaction, 10 fps target.
pub const FRAME_BUDGET: Duration = Duration::from_millis(100);

/// Which kernel to run (§5.3's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Scalar, single thread.
    Scalar,
    /// Scalar parallelized across streamlines (the Convex's 0.24 s row).
    Parallel,
    /// Vectorized across streamlines, single thread (the 0.19 s row).
    Vector,
    /// Parallel across groups, vectorized within (the proposed hybrid).
    VectorParallel,
}

impl Kernel {
    pub const ALL: [Kernel; 4] = [
        Kernel::Scalar,
        Kernel::Parallel,
        Kernel::Vector,
        Kernel::VectorParallel,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar x1",
            Kernel::Parallel => "scalar-parallel",
            Kernel::Vector => "vectorized x1",
            Kernel::VectorParallel => "vector+parallel",
        }
    }
}

/// Benchmark inputs: both field layouts plus the domain.
pub struct BenchField {
    pub aos: VectorField,
    pub soa: VectorFieldSoA,
    pub domain: Domain,
}

impl BenchField {
    pub fn new(aos: VectorField, domain: Domain) -> BenchField {
        BenchField {
            soa: aos.to_soa(),
            aos,
            domain,
        }
    }
}

/// Seeds for the benchmark: `n` seeds on a diagonal rake through the grid
/// interior, positioned so most streamlines can run the full 200 steps.
pub fn benchmark_seeds(dims: Dims, n: usize) -> Vec<Vec3> {
    let lo = Vec3::new(
        dims.ni as f32 * 0.2,
        dims.nj as f32 * 0.25,
        dims.nk as f32 * 0.3,
    );
    let hi = Vec3::new(
        dims.ni as f32 * 0.3,
        dims.nj as f32 * 0.75,
        dims.nk as f32 * 0.7,
    );
    (0..n)
        .map(|s| {
            lo.lerp(
                hi,
                if n > 1 {
                    s as f32 / (n - 1) as f32
                } else {
                    0.5
                },
            )
        })
        .collect()
}

/// Run one kernel over the benchmark scenario; returns the paths and the
/// wall time of the compute only.
pub fn run_kernel(
    kernel: Kernel,
    field: &BenchField,
    seeds: &[Vec3],
    cfg: &TraceConfig,
) -> (Vec<Polyline>, Duration) {
    let start = Instant::now();
    let lines = match kernel {
        Kernel::Scalar => trace_batch_scalar(&field.aos, &field.domain, seeds, cfg),
        Kernel::Parallel => trace_batch_parallel(&field.aos, &field.domain, seeds, cfg),
        Kernel::Vector => trace_batch_vector(&field.soa, &field.domain, seeds, cfg),
        Kernel::VectorParallel => {
            trace_batch_vector_parallel(&field.soa, &field.domain, seeds, cfg)
        }
    };
    (lines, start.elapsed())
}

/// Table 3's derivation: given a measured benchmark time for
/// `bench_particles` particles, the maximum particles sustainable inside
/// `budget`, assuming linear scaling.
pub fn max_particles(bench_time: Duration, bench_particles: usize, budget: Duration) -> usize {
    if bench_time.is_zero() {
        return usize::MAX;
    }
    ((bench_particles as f64) * budget.as_secs_f64() / bench_time.as_secs_f64()) as usize
}

/// Table 3's last column: streamlines of 200 points at that particle count.
pub fn max_streamlines_200(
    bench_time: Duration,
    bench_particles: usize,
    budget: Duration,
) -> usize {
    max_particles(bench_time, bench_particles, budget) / PAPER_POINTS
}

/// Total points actually produced by a batch of polylines (the particle
/// count the tables talk about).
pub fn total_points(lines: &[Polyline]) -> usize {
    lines.iter().map(|l| l.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(PAPER_PARTICLES, 20_000);
        assert_eq!(PAPER_WIRE_BYTES, 240_000);
    }

    #[test]
    fn table3_rows_reproduce() {
        // The paper's Table 3, exactly:
        //   0.25 s → 8 000 particles → 40 streamlines
        //   0.19 s → 10 526         → 52
        //   0.13 s → 15 384         → 76
        //   0.10 s → 20 000         → 100
        //   0.05 s → 40 000         → 200
        let rows = [
            (0.25, 8_000, 40),
            (0.19, 10_526, 52),
            (0.13, 15_384, 76),
            (0.10, 20_000, 100),
            (0.05, 40_000, 200),
        ];
        for (secs, particles, lines) in rows {
            let t = Duration::from_secs_f64(secs);
            assert_eq!(max_particles(t, PAPER_PARTICLES, FRAME_BUDGET), particles);
            assert_eq!(max_streamlines_200(t, PAPER_PARTICLES, FRAME_BUDGET), lines);
        }
    }

    #[test]
    fn seeds_inside_domain() {
        let dims = Dims::new(64, 64, 32);
        let seeds = benchmark_seeds(dims, PAPER_STREAMLINES);
        assert_eq!(seeds.len(), 100);
        for s in &seeds {
            assert!(dims.contains_grid_coord(*s));
        }
    }

    #[test]
    fn kernels_produce_same_point_totals() {
        let dims = Dims::new(24, 24, 8);
        let aos = VectorField::from_fn(dims, |i, j, _| {
            let c = 11.5;
            Vec3::new(-(j as f32 - c) * 0.1, (i as f32 - c) * 0.1, 0.05)
        });
        let field = BenchField::new(aos, Domain::boxed(dims));
        let seeds = benchmark_seeds(dims, 10);
        let cfg = TraceConfig {
            dt: 0.2,
            max_points: 50,
            ..TraceConfig::default()
        };
        let totals: Vec<usize> = Kernel::ALL
            .iter()
            .map(|&k| total_points(&run_kernel(k, &field, &seeds, &cfg).0))
            .collect();
        assert!(totals.iter().all(|&t| t == totals[0]), "{totals:?}");
        assert!(totals[0] > 0);
    }

    #[test]
    fn zero_time_means_unbounded() {
        assert_eq!(max_particles(Duration::ZERO, 100, FRAME_BUDGET), usize::MAX);
    }
}
