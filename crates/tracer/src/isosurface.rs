//! Isosurface extraction — the tool the paper says the budget *excludes*.
//!
//! §1.2: "interactive streamlines of a flow computed with fast integration
//! methods can be used, but interactive isosurfaces, which require
//! computationally intensive algorithms such as marching cubes, can not."
//!
//! To turn that design claim into a measurement (see
//! `benches/ablations.rs`), this module implements isosurface extraction
//! by **marching tetrahedra**: each grid cell is split into six
//! tetrahedra, and each tetrahedron contributes 0–2 triangles depending
//! on which of its corners are above the isovalue. Marching tetrahedra is
//! topologically unambiguous (no marching-cubes case-table holes) and
//! costs the same order of work — every cell of the grid must be
//! visited, which is exactly why it loses to streamlines in the 1/8-s
//! budget: tracer work scales with path points, isosurface work scales
//! with grid cells.

use flowfield::ScalarField;
use vecmath::Vec3;

/// One extracted triangle, vertices in grid coordinates (convert to
/// physical with `CurvilinearGrid::to_physical`, like any other tool
/// output).
pub type Triangle = [Vec3; 3];

/// The six-tetrahedra decomposition of a unit cell. Corner numbering is
/// the trilinear convention: bit 0 = +i, bit 1 = +j, bit 2 = +k. Every
/// tet shares the main diagonal 0–7, which guarantees face-consistent
/// triangulation between neighbouring cells.
const TETS: [[usize; 4]; 6] = [
    [0, 5, 1, 7],
    [0, 1, 3, 7],
    [0, 3, 2, 7],
    [0, 2, 6, 7],
    [0, 6, 4, 7],
    [0, 4, 5, 7],
];

/// Corner offsets (i, j, k) by corner index.
const CORNER_OFFSET: [(usize, usize, usize); 8] = [
    (0, 0, 0),
    (1, 0, 0),
    (0, 1, 0),
    (1, 1, 0),
    (0, 0, 1),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
];

/// Linear interpolation of the iso crossing on the edge a→b.
#[inline]
fn edge_crossing(pa: Vec3, va: f32, pb: Vec3, vb: f32, iso: f32) -> Vec3 {
    let denom = vb - va;
    let t = if denom.abs() < 1.0e-12 {
        0.5
    } else {
        ((iso - va) / denom).clamp(0.0, 1.0)
    };
    pa.lerp(pb, t)
}

/// Emit the triangles of one tetrahedron.
fn march_tet(p: [Vec3; 4], v: [f32; 4], iso: f32, out: &mut Vec<Triangle>) {
    let mut inside = 0u8;
    for (n, &val) in v.iter().enumerate() {
        if val >= iso {
            inside |= 1 << n;
        }
    }
    // Helper: crossing point on tet edge (a, b).
    let cross = |a: usize, b: usize| edge_crossing(p[a], v[a], p[b], v[b], iso);
    match inside {
        0b0000 | 0b1111 => {}
        // One corner on its own side of the surface (inside or outside —
        // same cut, opposite winding; we don't orient consistently since
        // the windtunnel renders wireframe/points).
        0b0001 | 0b1110 => out.push([cross(0, 1), cross(0, 2), cross(0, 3)]),
        0b0010 | 0b1101 => out.push([cross(1, 0), cross(1, 2), cross(1, 3)]),
        0b0100 | 0b1011 => out.push([cross(2, 0), cross(2, 1), cross(2, 3)]),
        0b1000 | 0b0111 => out.push([cross(3, 0), cross(3, 1), cross(3, 2)]),
        // Two corners inside: quad = two triangles.
        0b0011 | 0b1100 => {
            let (q0, q1, q2, q3) = (cross(0, 2), cross(0, 3), cross(1, 3), cross(1, 2));
            out.push([q0, q1, q2]);
            out.push([q0, q2, q3]);
        }
        0b0101 | 0b1010 => {
            let (q0, q1, q2, q3) = (cross(0, 1), cross(0, 3), cross(2, 3), cross(2, 1));
            out.push([q0, q1, q2]);
            out.push([q0, q2, q3]);
        }
        0b0110 | 0b1001 => {
            let (q0, q1, q2, q3) = (cross(1, 0), cross(1, 3), cross(2, 3), cross(2, 0));
            out.push([q0, q1, q2]);
            out.push([q0, q2, q3]);
        }
        _ => unreachable!("4-bit mask"),
    }
}

/// Extract the isosurface `field == iso` over the whole grid. Returns
/// triangles in grid coordinates. Cost is Θ(cells) regardless of how much
/// surface exists — the §1.2 point.
pub fn isosurface(field: &ScalarField, iso: f32) -> Vec<Triangle> {
    let dims = field.dims();
    let mut out = Vec::new();
    if !dims.supports_interpolation() {
        return out;
    }
    let (ni, nj, nk) = (dims.ni as usize, dims.nj as usize, dims.nk as usize);
    for k in 0..nk - 1 {
        for j in 0..nj - 1 {
            for i in 0..ni - 1 {
                // Gather the 8 corners.
                let mut pos = [Vec3::ZERO; 8];
                let mut val = [0.0f32; 8];
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for c in 0..8 {
                    let (oi, oj, ok) = CORNER_OFFSET[c];
                    let (ci, cj, ck) = (i + oi, j + oj, k + ok);
                    pos[c] = Vec3::new(ci as f32, cj as f32, ck as f32);
                    val[c] = field.at(ci, cj, ck);
                    lo = lo.min(val[c]);
                    hi = hi.max(val[c]);
                }
                // Quick reject: cell does not straddle the isovalue.
                if iso < lo || iso > hi {
                    continue;
                }
                for tet in &TETS {
                    march_tet(
                        [pos[tet[0]], pos[tet[1]], pos[tet[2]], pos[tet[3]]],
                        [val[tet[0]], val[tet[1]], val[tet[2]], val[tet[3]]],
                        iso,
                        &mut out,
                    );
                }
            }
        }
    }
    out
}

/// Total area of a triangle soup (validation metric).
pub fn surface_area(tris: &[Triangle]) -> f32 {
    tris.iter()
        .map(|t| (t[1] - t[0]).cross(t[2] - t[0]).length() * 0.5)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::Dims;

    /// Distance-from-center field: isosurfaces are spheres.
    fn sphere_field(n: u32) -> ScalarField {
        let c = (n - 1) as f32 / 2.0;
        ScalarField::from_fn(Dims::new(n, n, n), |i, j, k| {
            Vec3::new(i as f32 - c, j as f32 - c, k as f32 - c).length()
        })
    }

    #[test]
    fn empty_when_iso_out_of_range() {
        let f = sphere_field(9);
        assert!(isosurface(&f, 100.0).is_empty());
        assert!(isosurface(&f, -1.0).is_empty());
    }

    #[test]
    fn sphere_vertices_lie_on_the_sphere() {
        let f = sphere_field(17);
        let r = 5.0;
        let tris = isosurface(&f, r);
        assert!(!tris.is_empty());
        let c = Vec3::splat(8.0);
        for t in &tris {
            for v in t {
                let d = (*v - c).length();
                // Linear interpolation of a radial field on unit cells is
                // accurate to a fraction of a cell.
                assert!((d - r).abs() < 0.3, "vertex at radius {d}");
            }
        }
    }

    #[test]
    fn sphere_area_approximates_4_pi_r2() {
        let f = sphere_field(33);
        let r = 9.0;
        let tris = isosurface(&f, r);
        let area = surface_area(&tris);
        let expect = 4.0 * std::f32::consts::PI * r * r;
        assert!(
            (area - expect).abs() / expect < 0.15,
            "area {area} vs 4πr² = {expect}"
        );
    }

    #[test]
    fn plane_field_gives_flat_surface() {
        // f = x: iso at 3.5 is the plane x = 3.5 across an n³ grid.
        let n = 9u32;
        let f = ScalarField::from_fn(Dims::new(n, n, n), |i, _, _| i as f32);
        let tris = isosurface(&f, 3.5);
        assert!(!tris.is_empty());
        for t in &tris {
            for v in t {
                assert!((v.x - 3.5).abs() < 1e-5);
            }
        }
        // Area = (n-1)² of the cross-section.
        let area = surface_area(&tris);
        let expect = ((n - 1) * (n - 1)) as f32;
        assert!((area - expect).abs() / expect < 0.01, "{area} vs {expect}");
    }

    #[test]
    fn iso_through_node_values_is_robust() {
        // Iso exactly equal to node values (degenerate crossings) must
        // not panic or emit NaN vertices.
        let f = ScalarField::from_fn(Dims::new(5, 5, 5), |i, j, k| ((i + j + k) % 2) as f32);
        let tris = isosurface(&f, 1.0);
        for t in &tris {
            for v in t {
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn degenerate_dims_yield_nothing() {
        let f = ScalarField::zeros(Dims::new(1, 5, 5));
        assert!(isosurface(&f, 0.0).is_empty());
    }

    #[test]
    fn cost_scales_with_cells_not_surface() {
        // The §1.2 argument, as an operation-count property: an isovalue
        // producing *no* surface still visits every cell (we verify via
        // timing ratio staying bounded rather than instrumenting; here we
        // just confirm correctness of the quick-reject: zero triangles
        // but full scan terminates).
        let f = sphere_field(33);
        let none = isosurface(&f, 1.0e6);
        assert!(none.is_empty());
    }
}
