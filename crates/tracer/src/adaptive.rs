//! Adaptive step-size integration.
//!
//! The paper uses fixed-step RK2 because the frame budget is the binding
//! constraint (§5.3). Fixed steps waste work in slow regions and lose
//! accuracy in fast ones — in the tapered-cylinder field, velocity
//! magnitudes span orders of magnitude between the stagnation line and
//! the accelerated flow over the shoulder. This module adds classic
//! step-doubling error control on top of the paper's RK2: take one full
//! step and two half steps, use their difference as the local error
//! estimate, and grow/shrink `dt` to hold a per-step tolerance.
//!
//! `benches/kernels.rs` quantifies the trade; the tests verify the
//! control loop (tight tolerance ⇒ smaller steps ⇒ better orbits).

use crate::domain::Domain;
use crate::integrate::Integrator;
use crate::Polyline;
use flowfield::FieldSample;
use vecmath::Vec3;

/// Adaptive trace parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Base integrator (error order determines the step-growth exponent;
    /// RK2 assumed — others work but adapt suboptimally).
    pub integrator: Integrator,
    /// Per-step position tolerance (grid units).
    pub tolerance: f32,
    /// Initial step size.
    pub dt0: f32,
    /// Step bounds.
    pub dt_min: f32,
    pub dt_max: f32,
    /// Maximum output points.
    pub max_points: usize,
    /// Stagnation cutoff (grid units / time).
    pub min_speed: f32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            integrator: Integrator::Rk2,
            tolerance: 1.0e-3,
            dt0: 0.1,
            dt_min: 1.0e-4,
            dt_max: 2.0,
            max_points: 200,
            min_speed: 1.0e-6,
        }
    }
}

/// Result of an adaptive trace: the path plus step-size diagnostics.
#[derive(Debug, Clone)]
pub struct AdaptiveTrace {
    pub path: Polyline,
    /// dt actually used for each accepted step (`path.len() - 1` entries).
    pub steps: Vec<f32>,
    /// Steps rejected by the error control.
    pub rejected: usize,
}

impl AdaptiveTrace {
    pub fn min_step(&self) -> f32 {
        self.steps.iter().copied().fold(f32::INFINITY, f32::min)
    }

    pub fn max_step(&self) -> f32 {
        self.steps.iter().copied().fold(0.0, f32::max)
    }

    /// Total integration time covered.
    pub fn time_span(&self) -> f32 {
        self.steps.iter().sum()
    }
}

/// Trace a streamline with step-doubling error control.
pub fn adaptive_streamline<F: FieldSample>(
    field: &F,
    domain: &Domain,
    seed: Vec3,
    cfg: &AdaptiveConfig,
) -> AdaptiveTrace {
    let mut out = AdaptiveTrace {
        path: Vec::new(),
        steps: Vec::new(),
        rejected: 0,
    };
    let Some(mut p) = domain.canonicalize(seed) else {
        return out;
    };
    out.path.push(p);
    let mut dt = cfg.dt0.clamp(cfg.dt_min, cfg.dt_max);
    // RK2 local error is O(dt³): exponent 1/3 for step scaling.
    const SAFETY: f32 = 0.9;
    const EXPONENT: f32 = 1.0 / 3.0;

    while out.path.len() <= cfg.max_points {
        match field.sample(p) {
            Some(v) if v.length() >= cfg.min_speed => {}
            _ => break,
        }
        // One full step.
        let Some(full) = cfg.integrator.step(field, domain, p, dt) else {
            break;
        };
        // Two half steps.
        let half = cfg
            .integrator
            .step(field, domain, p, dt * 0.5)
            .and_then(|mid| cfg.integrator.step(field, domain, mid, dt * 0.5));
        let Some(half) = half else {
            // The half-step path left the domain even though the full
            // step survived (seam/boundary grazing): accept the full
            // step, it is the best information we have.
            p = full;
            out.path.push(p);
            out.steps.push(dt);
            continue;
        };
        let err = full.distance(half);
        if err <= cfg.tolerance || dt <= cfg.dt_min * 1.0001 {
            // Accept (using the more accurate two-half-steps result).
            p = half;
            out.path.push(p);
            out.steps.push(dt);
            // Grow for the next step.
            let grow = if err > 0.0 {
                SAFETY * (cfg.tolerance / err).powf(EXPONENT)
            } else {
                2.0
            };
            dt = (dt * grow.clamp(0.5, 2.0)).clamp(cfg.dt_min, cfg.dt_max);
        } else {
            // Reject and shrink.
            out.rejected += 1;
            let shrink = SAFETY * (cfg.tolerance / err).powf(EXPONENT);
            dt = (dt * shrink.clamp(0.1, 0.9)).clamp(cfg.dt_min, cfg.dt_max);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::{Dims, VectorField};

    fn vortex(n: u32) -> VectorField {
        let c = (n - 1) as f32 / 2.0;
        VectorField::from_fn(Dims::new(n, n, 3), |i, j, _| {
            Vec3::new(-(j as f32 - c), i as f32 - c, 0.0)
        })
    }

    #[test]
    fn uniform_flow_grows_to_dt_max() {
        // Zero error ⇒ steps grow to the cap.
        let f = VectorField::from_fn(Dims::new(64, 8, 8), |_, _, _| Vec3::X);
        let d = Domain::boxed(f.dims());
        let trace = adaptive_streamline(
            &f,
            &d,
            Vec3::new(1.0, 4.0, 4.0),
            &AdaptiveConfig {
                dt0: 0.05,
                dt_max: 1.0,
                max_points: 40,
                ..Default::default()
            },
        );
        assert!(trace.path.len() > 5);
        assert!(
            (trace.max_step() - 1.0).abs() < 1e-5,
            "max {}",
            trace.max_step()
        );
        assert_eq!(trace.rejected, 0);
    }

    #[test]
    fn tight_tolerance_uses_smaller_steps() {
        let f = vortex(33);
        let d = Domain::boxed(f.dims());
        let seed = Vec3::new(21.0, 16.0, 1.0);
        let loose = adaptive_streamline(
            &f,
            &d,
            seed,
            &AdaptiveConfig {
                tolerance: 1.0e-1,
                max_points: 100,
                ..Default::default()
            },
        );
        let tight = adaptive_streamline(
            &f,
            &d,
            seed,
            &AdaptiveConfig {
                tolerance: 1.0e-5,
                max_points: 100,
                ..Default::default()
            },
        );
        assert!(
            tight.max_step() < loose.max_step(),
            "tight {} vs loose {}",
            tight.max_step(),
            loose.max_step()
        );
    }

    #[test]
    fn orbit_accuracy_improves_with_tolerance() {
        let f = vortex(33);
        let d = Domain::boxed(f.dims());
        let c = Vec3::new(16.0, 16.0, 1.0);
        let seed = c + Vec3::new(5.0, 0.0, 0.0);
        let radius_err = |tol: f32| {
            let trace = adaptive_streamline(
                &f,
                &d,
                seed,
                &AdaptiveConfig {
                    tolerance: tol,
                    dt0: 0.2,
                    max_points: 3000,
                    ..Default::default()
                },
            );
            // Radius drift across the whole path.
            trace
                .path
                .iter()
                .map(|p| ((*p - c).length() - 5.0).abs())
                .fold(0.0f32, f32::max)
        };
        let loose = radius_err(1.0e-2);
        let tight = radius_err(1.0e-4);
        assert!(tight < loose, "tight {tight} vs loose {loose}");
        assert!(tight < 0.05, "tight drift {tight}");
    }

    #[test]
    fn step_sizes_respect_bounds() {
        let f = vortex(17);
        let d = Domain::boxed(f.dims());
        let trace = adaptive_streamline(
            &f,
            &d,
            Vec3::new(12.0, 8.0, 1.0),
            &AdaptiveConfig {
                tolerance: 1.0e-6,
                dt_min: 0.01,
                dt_max: 0.5,
                max_points: 60,
                ..Default::default()
            },
        );
        for &s in &trace.steps {
            assert!((0.01 - 1e-6..=0.5 + 1e-6).contains(&s), "step {s}");
        }
        assert!((trace.time_span() - trace.steps.iter().sum::<f32>()).abs() < 1e-5);
    }

    #[test]
    fn out_of_domain_seed_is_empty() {
        let f = vortex(9);
        let d = Domain::boxed(f.dims());
        let trace = adaptive_streamline(&f, &d, Vec3::splat(-4.0), &AdaptiveConfig::default());
        assert!(trace.path.is_empty());
        assert!(trace.steps.is_empty());
    }

    #[test]
    fn stagnation_stops() {
        let f = VectorField::zeros(Dims::new(8, 8, 8));
        let d = Domain::boxed(Dims::new(8, 8, 8));
        let trace = adaptive_streamline(&f, &d, Vec3::splat(4.0), &AdaptiveConfig::default());
        assert_eq!(trace.path.len(), 1);
    }
}
