//! Scalar-vs-batch streakline equality, down to the bit pattern.
//!
//! The contract under test: [`Streakline::advance_batch`] (the fused
//! SoA fast path, time-blended pair sampling, lockstep RK2, swap-remove
//! compaction) produces *exactly* the same particle system as the
//! retained scalar reference path [`Streakline::advance`] over the
//! scalar blend of the same two fields — same particle count, same pool
//! order, same filament order, and the same bits in every `f32` — under
//! random fields, domains (boxed and periodic O-grid), configurations,
//! and op sequences that include mid-sequence `set_seeds` (growing and
//! shrinking), `clear`, and domain-exit retirements.

use flowfield::{BlendedPair, BlendedPairSoA, Dims, VectorField};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use tracer::{Domain, Polyline, StagnationPolicy, Streakline, StreaklineConfig};
use vecmath::Vec3;

fn random_field(dims: Dims, seed: u64, scale: f32) -> VectorField {
    let mut rng = StdRng::seed_from_u64(seed);
    VectorField::from_fn(dims, |_, _, _| {
        Vec3::new(
            rng.random_range(-scale..scale),
            rng.random_range(-scale..scale),
            rng.random_range(-scale..scale),
        )
    })
}

/// Random seed points: mostly interior, occasionally outside the grid
/// (those must inject nothing, identically in both paths).
fn random_seeds(dims: Dims, seed: u64, count: usize) -> Vec<Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hi = Vec3::new(
        (dims.ni - 1) as f32,
        (dims.nj - 1) as f32,
        (dims.nk - 1) as f32,
    );
    (0..count)
        .map(|_| {
            if rng.random_range(0..8) == 0 {
                Vec3::new(
                    -3.0,
                    rng.random_range(0.0..hi.y),
                    rng.random_range(0.0..hi.z),
                )
            } else {
                Vec3::new(
                    rng.random_range(0.0..hi.x),
                    rng.random_range(0.0..hi.y),
                    rng.random_range(0.0..hi.z),
                )
            }
        })
        .collect()
}

fn position_bits(s: &Streakline) -> Vec<[u32; 3]> {
    s.positions()
        .iter()
        .map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
        .collect()
}

fn filament_bits(fils: &[Polyline]) -> Vec<Vec<[u32; 3]>> {
    fils.iter()
        .map(|line| {
            line.iter()
                .map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()])
                .collect()
        })
        .collect()
}

proptest! {
    #[test]
    fn prop_batch_advance_bitwise_equals_scalar_reference(
        field_seed in 0u64..1_000_000,
        ni in 4u32..9,
        nj in 4u32..9,
        nk in 4u32..9,
        dt in 0.05f32..1.5,
        max_age in 0u32..12,
        inject in 1u32..3,
        alpha in 0.0f32..1.0,
        o_grid in 0u8..2,
        retire in 0u8..2,
        seed_count in 1usize..5,
        ops in proptest::collection::vec((0u8..8, 0u64..1_000_000), 4..18),
    ) {
        let dims = Dims::new(ni, nj, nk);
        // Velocities up to ~2 cells/step: plenty of domain exits.
        let f0 = random_field(dims, field_seed, 2.0);
        let f1 = random_field(dims, field_seed.wrapping_add(77), 2.0);
        let s0 = f0.to_soa();
        let s1 = f1.to_soa();
        let domain = if o_grid == 1 {
            Domain::o_grid(dims)
        } else {
            Domain::boxed(dims)
        };
        let cfg = StreaklineConfig {
            dt,
            max_age,
            inject_per_frame: inject,
            stagnation: if retire == 1 {
                StagnationPolicy::Retire
            } else {
                StagnationPolicy::Keep
            },
            // High enough that random slow spots actually trigger it.
            min_speed: 0.05,
            ..StreaklineConfig::default()
        };

        // Reference: scalar stepping through the AoS blend. Fast path:
        // fused batch kernel over the SoA pair. Same alpha, same fields.
        let scalar_pair = BlendedPair::new(&f0, &f1, alpha);
        let batch_pair = BlendedPairSoA::new(&s0, &s1, alpha).unwrap();

        let seeds = random_seeds(dims, field_seed ^ 0xD00D, seed_count);
        let mut scalar = Streakline::new(seeds.clone(), cfg);
        let mut batch = Streakline::new(seeds, cfg);

        for (op, op_seed) in ops {
            match op {
                // set_seeds, including shrink-to-smaller (stale seed_id
                // retirement) and occasional growth.
                5 => {
                    let n = (op_seed % 5) as usize; // 0..=4 seeds
                    let next = random_seeds(dims, op_seed, n);
                    scalar.set_seeds(next.clone());
                    batch.set_seeds(next);
                }
                6 => {
                    scalar.clear();
                    batch.clear();
                }
                _ => {
                    scalar.advance(&scalar_pair, &domain);
                    batch.advance_batch(&batch_pair, &domain);
                }
            }
            prop_assert_eq!(scalar.particle_count(), batch.particle_count());
            prop_assert_eq!(scalar.frame_count(), batch.frame_count());
            // Pool order and every coordinate bit must agree.
            prop_assert_eq!(position_bits(&scalar), position_bits(&batch));
            // Filament order (per seed, newest first) and bits too.
            prop_assert_eq!(
                filament_bits(&scalar.filaments()),
                filament_bits(&batch.filaments())
            );
        }
    }

    /// The satellite invariant on its own: after any seed shrink, the
    /// point-cloud and connected renderings agree on particle count.
    #[test]
    fn prop_positions_and_filaments_agree_after_set_seeds(
        field_seed in 0u64..1_000_000,
        shrink_to in 0usize..3,
        frames_before in 1usize..8,
        frames_after in 0usize..5,
    ) {
        let dims = Dims::new(12, 8, 8);
        let f = random_field(dims, field_seed, 0.4);
        let domain = Domain::boxed(dims);
        let seeds = random_seeds(dims, field_seed ^ 0xBEEF, 4);
        let mut s = Streakline::new(seeds, StreaklineConfig::default());
        for _ in 0..frames_before {
            s.advance(&f, &domain);
        }
        let next = random_seeds(dims, field_seed ^ 0xF00D, shrink_to);
        s.set_seeds(next);
        for _ in 0..frames_after {
            s.advance(&f, &domain);
        }
        let filament_points: usize = s.filaments().iter().map(|l| l.len()).sum();
        prop_assert_eq!(s.positions().len(), filament_points);
    }
}
