#![deny(unsafe_op_in_unsafe_fn, unused_must_use)]
//! 3-D linear algebra substrate for the distributed virtual windtunnel.
//!
//! The 1992 system manipulated three kinds of geometric state:
//!
//! * velocity vectors and particle positions (here [`Vec3`]),
//! * the 4×4 position/orientation matrices produced by the BOOM head
//!   tracker and the Polhemus hand tracker (here [`Mat4`]), built by "six
//!   successive translations and rotations" exactly as §3 of the paper
//!   describes,
//! * the graphics transformation stack those matrices were concatenated
//!   onto (here [`transform`]).
//!
//! All types are `f32`-based (the paper transfers 12-byte points — three
//! IEEE-754 single-precision floats — over the network; IEEE f32 was the
//! explicitly chosen compile-time option on the Convex) and `repr(C)` so
//! slices of them can be reinterpreted as raw byte payloads by the wire
//! layer without copying.

pub mod aabb;
pub mod mat3;
pub mod mat4;
pub mod quat;
pub mod transform;
pub mod vec3;

pub use aabb::Aabb;
pub use mat3::Mat3;
pub use mat4::Mat4;
pub use quat::Quat;
pub use transform::{Pose, TransformStack};
pub use vec3::Vec3;

/// Comparison tolerance used across the workspace for "equal enough"
/// floating-point assertions (single precision accumulates error quickly in
/// long Runge-Kutta integrations).
pub const EPSILON: f32 = 1.0e-5;

/// Returns true when `a` and `b` differ by at most `tol` absolutely, or by
/// `tol` relative to the larger magnitude — the standard mixed test.
#[inline]
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-6, 1e-5));
        assert!(!approx_eq(1.0, 1.1, 1e-5));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1.0e6, 1.0e6 + 5.0, 1e-5));
        assert!(!approx_eq(1.0e6, 1.001e6, 1e-5));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, EPSILON));
        assert!(approx_eq(0.0, 1e-7, EPSILON));
    }
}
