//! Axis-aligned bounding boxes.
//!
//! Used for: the physical extent of a dataset (so the client can frame the
//! scene), rake grab-handle hit testing (is the glove near the rake center
//! or an endpoint?), and clamping seed points into the valid grid domain.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// Axis-aligned box `[min, max]`. An "empty" box has `min > max` in some
/// component and contains nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// The canonical empty box — the identity for [`Aabb::union`].
    pub const EMPTY: Aabb = Aabb {
        min: Vec3::splat(f32::INFINITY),
        max: Vec3::splat(f32::NEG_INFINITY),
    };

    /// Box spanning two corners (components sorted for you).
    pub fn new(a: Vec3, b: Vec3) -> Aabb {
        Aabb {
            min: a.min_elem(b),
            max: a.max_elem(b),
        }
    }

    /// Box centered on `c` with half-extent `h` in every direction.
    pub fn centered(c: Vec3, h: f32) -> Aabb {
        Aabb {
            min: c - Vec3::splat(h),
            max: c + Vec3::splat(h),
        }
    }

    /// Smallest box containing all `points`; [`Aabb::EMPTY`] if none.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Aabb {
        points.into_iter().fold(Aabb::EMPTY, |b, p| b.expanded(p))
    }

    /// True when the box contains no points.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Inclusive containment test.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Grow to include a point.
    #[must_use]
    pub fn expanded(&self, p: Vec3) -> Aabb {
        Aabb {
            min: self.min.min_elem(p),
            max: self.max.max_elem(p),
        }
    }

    /// Grow outward by `margin` on every face.
    #[must_use]
    pub fn inflated(&self, margin: f32) -> Aabb {
        Aabb {
            min: self.min - Vec3::splat(margin),
            max: self.max + Vec3::splat(margin),
        }
    }

    /// Union of two boxes.
    #[must_use]
    pub fn union(&self, rhs: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min_elem(rhs.min),
            max: self.max.max_elem(rhs.max),
        }
    }

    /// Overlap test (empty boxes overlap nothing).
    pub fn intersects(&self, rhs: &Aabb) -> bool {
        if self.is_empty() || rhs.is_empty() {
            return false;
        }
        self.min.x <= rhs.max.x
            && self.max.x >= rhs.min.x
            && self.min.y <= rhs.max.y
            && self.max.y >= rhs.min.y
            && self.min.z <= rhs.max.z
            && self.max.z >= rhs.min.z
    }

    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Length of the body diagonal — the natural "scene scale" used to pick
    /// camera distances and integration step sizes.
    pub fn diagonal(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.size().length()
        }
    }

    /// Clamp a point into the box.
    pub fn clamp(&self, p: Vec3) -> Vec3 {
        p.clamp_elem(self.min, self.max)
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_box_properties() {
        let e = Aabb::EMPTY;
        assert!(e.is_empty());
        assert!(!e.contains(Vec3::ZERO));
        assert_eq!(e.diagonal(), 0.0);
    }

    #[test]
    fn new_sorts_corners() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 5.0), Vec3::new(-1.0, 1.0, 0.0));
        assert_eq!(b.min, Vec3::new(-1.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 5.0));
    }

    #[test]
    fn containment() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(b.contains(Vec3::ZERO)); // boundary inclusive
        assert!(b.contains(Vec3::ONE));
        assert!(!b.contains(Vec3::splat(1.01)));
    }

    #[test]
    fn expand_and_union() {
        let b = Aabb::EMPTY.expanded(Vec3::ONE).expanded(-Vec3::ONE);
        assert_eq!(b.min, -Vec3::ONE);
        assert_eq!(b.max, Vec3::ONE);
        let c = b.union(&Aabb::centered(Vec3::splat(3.0), 0.5));
        assert!(c.contains(Vec3::splat(3.4)));
        assert!(c.contains(-Vec3::ONE));
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [Vec3::new(0.0, 5.0, -1.0), Vec3::new(2.0, -3.0, 4.0)];
        let b = Aabb::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.center(), Vec3::new(1.0, 1.0, 1.5));
    }

    #[test]
    fn intersection_tests() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::centered(Vec3::ONE, 0.25);
        let c = Aabb::centered(Vec3::splat(5.0), 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&Aabb::EMPTY));
    }

    #[test]
    fn clamp_into_box() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(b.clamp(Vec3::splat(2.0)), Vec3::ONE);
        assert_eq!(b.clamp(Vec3::splat(-1.0)), Vec3::ZERO);
        assert_eq!(b.clamp(Vec3::splat(0.5)), Vec3::splat(0.5));
    }

    #[test]
    fn inflate() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE).inflated(1.0);
        assert_eq!(b.min, -Vec3::ONE);
        assert_eq!(b.max, Vec3::splat(2.0));
    }

    proptest! {
        #[test]
        fn prop_union_contains_both(ax in -10f32..10.0, ay in -10f32..10.0,
                                    bx in -10f32..10.0, by in -10f32..10.0) {
            let a = Aabb::centered(Vec3::new(ax, ay, 0.0), 1.0);
            let b = Aabb::centered(Vec3::new(bx, by, 0.0), 2.0);
            let u = a.union(&b);
            prop_assert!(u.contains(a.min) && u.contains(a.max));
            prop_assert!(u.contains(b.min) && u.contains(b.max));
        }

        #[test]
        fn prop_clamped_point_inside(px in -50f32..50.0, py in -50f32..50.0, pz in -50f32..50.0) {
            let b = Aabb::new(Vec3::splat(-3.0), Vec3::splat(7.0));
            prop_assert!(b.contains(b.clamp(Vec3::new(px, py, pz))));
        }

        #[test]
        fn prop_from_points_tight(xs in proptest::collection::vec(-100f32..100.0, 3..30)) {
            let pts: Vec<Vec3> = xs.chunks(3).filter(|c| c.len() == 3)
                .map(|c| Vec3::new(c[0], c[1], c[2])).collect();
            prop_assume!(!pts.is_empty());
            let b = Aabb::from_points(pts.iter().copied());
            for p in &pts {
                prop_assert!(b.contains(*p));
            }
            // Tightness: every face is touched by some point.
            let eps = 1e-4;
            prop_assert!(pts.iter().any(|p| (p.x - b.min.x).abs() < eps));
            prop_assert!(pts.iter().any(|p| (p.x - b.max.x).abs() < eps));
        }
    }
}
