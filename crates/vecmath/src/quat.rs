//! Unit quaternions for orientation.
//!
//! The Polhemus 3Space tracker inside the VPL DataGlove reports absolute
//! orientation; quaternions are the robust way to carry that orientation
//! through the command protocol (4 floats instead of 9, and they slerp
//! cleanly when the client interpolates between tracker samples that arrive
//! slower than the render loop runs).

use crate::{Mat3, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// Quaternion `w + xi + yj + zk`. Only unit quaternions represent
/// rotations; constructors that build rotations normalize for you.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    pub w: f32,
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` radians about `axis` (normalized internally).
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Quat {
        let a = axis.normalized_or_zero();
        let (s, c) = (angle * 0.5).sin_cos();
        Quat::new(c, a.x * s, a.y * s, a.z * s)
    }

    /// Build from intrinsic yaw (Y), pitch (X), roll (Z) — the order the
    /// glove calibration uses.
    pub fn from_yaw_pitch_roll(yaw: f32, pitch: f32, roll: f32) -> Quat {
        Quat::from_axis_angle(Vec3::Y, yaw)
            * Quat::from_axis_angle(Vec3::X, pitch)
            * Quat::from_axis_angle(Vec3::Z, roll)
    }

    /// Convert a (proper, orthonormal) rotation matrix to a quaternion
    /// (Shepperd's method).
    pub fn from_mat3(m: &Mat3) -> Quat {
        let t = m.m[0][0] + m.m[1][1] + m.m[2][2];
        let q = if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Quat::new(
                0.25 * s,
                (m.m[2][1] - m.m[1][2]) / s,
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[1][0] - m.m[0][1]) / s,
            )
        } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
            let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m.m[2][1] - m.m[1][2]) / s,
                0.25 * s,
                (m.m[0][1] + m.m[1][0]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
            )
        } else if m.m[1][1] > m.m[2][2] {
            let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[0][1] + m.m[1][0]) / s,
                0.25 * s,
                (m.m[1][2] + m.m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
            Quat::new(
                (m.m[1][0] - m.m[0][1]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
                (m.m[1][2] + m.m[2][1]) / s,
                0.25 * s,
            )
        };
        q.normalized()
    }

    /// Rotation matrix equivalent of this (unit) quaternion.
    pub fn to_mat3(self) -> Mat3 {
        let Quat { w, x, y, z } = self.normalized();
        Mat3 {
            m: [
                [
                    1.0 - 2.0 * (y * y + z * z),
                    2.0 * (x * y - w * z),
                    2.0 * (x * z + w * y),
                ],
                [
                    2.0 * (x * y + w * z),
                    1.0 - 2.0 * (x * x + z * z),
                    2.0 * (y * z - w * x),
                ],
                [
                    2.0 * (x * z - w * y),
                    2.0 * (y * z + w * x),
                    1.0 - 2.0 * (x * x + y * y),
                ],
            ],
        }
    }

    #[inline]
    pub fn norm(self) -> f32 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Normalize; falls back to identity for degenerate input.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n > 1.0e-12 && n.is_finite() {
            Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
        } else {
            Quat::IDENTITY
        }
    }

    /// Conjugate — the inverse for unit quaternions.
    #[inline]
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    #[inline]
    pub fn dot(self, rhs: Quat) -> f32 {
        self.w * rhs.w + self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Rotate a vector by this unit quaternion: `v' = q v q*`.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        let u = Vec3::new(self.x, self.y, self.z);
        let s = self.w;
        u * (2.0 * u.dot(v)) + v * (s * s - u.dot(u)) + u.cross(v) * (2.0 * s)
    }

    /// Spherical linear interpolation taking the short arc.
    pub fn slerp(self, mut rhs: Quat, t: f32) -> Quat {
        let mut cos = self.dot(rhs);
        if cos < 0.0 {
            // Take the short way around.
            cos = -cos;
            rhs = Quat::new(-rhs.w, -rhs.x, -rhs.y, -rhs.z);
        }
        if cos > 0.9995 {
            // Nearly parallel: nlerp to dodge the sin(θ)→0 division.
            return Quat::new(
                self.w + (rhs.w - self.w) * t,
                self.x + (rhs.x - self.x) * t,
                self.y + (rhs.y - self.y) * t,
                self.z + (rhs.z - self.z) * t,
            )
            .normalized();
        }
        let theta = cos.clamp(-1.0, 1.0).acos();
        let sin_theta = theta.sin();
        let a = ((1.0 - t) * theta).sin() / sin_theta;
        let b = (t * theta).sin() / sin_theta;
        Quat::new(
            a * self.w + b * rhs.w,
            a * self.x + b * rhs.x,
            a * self.y + b * rhs.y,
            a * self.z + b * rhs.z,
        )
        .normalized()
    }

    /// Angle (radians, in [0, π]) between two orientations.
    pub fn angle_to(self, rhs: Quat) -> f32 {
        let d = self
            .normalized()
            .dot(rhs.normalized())
            .abs()
            .clamp(0.0, 1.0);
        2.0 * d.acos()
    }
}

impl Mul for Quat {
    type Output = Quat;
    fn mul(self, r: Quat) -> Quat {
        Quat::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_rotates_nothing() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(Quat::IDENTITY.rotate(v).distance(v) < 1e-6);
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!(q.rotate(Vec3::X).distance(Vec3::Y) < 1e-6);
    }

    #[test]
    fn matches_matrix_rotation() {
        let axis = Vec3::new(1.0, -2.0, 0.7);
        let angle = 1.3;
        let q = Quat::from_axis_angle(axis, angle);
        let m = Mat3::rotation_axis(axis, angle);
        for v in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(0.3, -0.5, 2.0)] {
            assert!(q.rotate(v).distance(m.mul_vec(v)) < 1e-5);
        }
    }

    #[test]
    fn mat3_roundtrip() {
        let q = Quat::from_axis_angle(Vec3::new(0.2, 0.9, -0.4), 2.1);
        let q2 = Quat::from_mat3(&q.to_mat3());
        // q and -q are the same rotation.
        assert!(q.angle_to(q2) < 1e-4);
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_axis_angle(Vec3::Y, 0.9);
        let v = Vec3::new(3.0, 1.0, -2.0);
        assert!(q.conjugate().rotate(q.rotate(v)).distance(v) < 1e-5);
    }

    #[test]
    fn composition_order() {
        // q1 * q2 applies q2 first.
        let q1 = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        let q2 = Quat::from_axis_angle(Vec3::X, FRAC_PI_2);
        let v = Vec3::Y;
        let composed = (q1 * q2).rotate(v);
        let sequential = q1.rotate(q2.rotate(v));
        assert!(composed.distance(sequential) < 1e-6);
    }

    #[test]
    fn slerp_endpoints() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.0);
        let b = Quat::from_axis_angle(Vec3::Z, 1.0);
        assert!(a.slerp(b, 0.0).angle_to(a) < 1e-4);
        assert!(a.slerp(b, 1.0).angle_to(b) < 1e-4);
    }

    #[test]
    fn slerp_halfway_is_half_angle() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Y, 1.6);
        let mid = a.slerp(b, 0.5);
        assert!(approx_eq(mid.angle_to(a), 0.8, 1e-3));
    }

    #[test]
    fn slerp_takes_short_arc() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.1);
        // Same rotation as +0.3 but represented with flipped sign.
        let b0 = Quat::from_axis_angle(Vec3::Z, 0.3);
        let b = Quat::new(-b0.w, -b0.x, -b0.y, -b0.z);
        let mid = a.slerp(b, 0.5);
        assert!(mid.angle_to(Quat::from_axis_angle(Vec3::Z, 0.2)) < 1e-3);
    }

    #[test]
    fn yaw_pitch_roll_pure_yaw() {
        let q = Quat::from_yaw_pitch_roll(FRAC_PI_2, 0.0, 0.0);
        assert!(q.rotate(Vec3::Z).distance(Vec3::X) < 1e-5);
    }

    #[test]
    fn degenerate_normalize_is_identity() {
        assert_eq!(Quat::new(0.0, 0.0, 0.0, 0.0).normalized(), Quat::IDENTITY);
    }

    fn arb_quat() -> impl Strategy<Value = Quat> {
        (
            (-1.0f32..1.0),
            (-1.0f32..1.0),
            (-1.0f32..1.0),
            (0.01f32..PI),
        )
            .prop_filter_map("axis", |(x, y, z, a)| {
                let axis = Vec3::new(x, y, z);
                (axis.length() > 1e-3).then(|| Quat::from_axis_angle(axis, a))
            })
    }

    proptest! {
        #[test]
        fn prop_rotation_preserves_length(q in arb_quat(), x in -5.0f32..5.0, y in -5.0f32..5.0, z in -5.0f32..5.0) {
            let v = Vec3::new(x, y, z);
            prop_assert!(approx_eq(q.rotate(v).length(), v.length(), 1e-3));
        }

        #[test]
        fn prop_unit_norm(q in arb_quat()) {
            prop_assert!(approx_eq(q.norm(), 1.0, 1e-4));
        }

        #[test]
        fn prop_mat3_roundtrip(q in arb_quat()) {
            let q2 = Quat::from_mat3(&q.to_mat3());
            prop_assert!(q.angle_to(q2) < 1e-3);
        }

        #[test]
        fn prop_conjugate_is_inverse(q in arb_quat()) {
            let id = q * q.conjugate();
            prop_assert!(id.angle_to(Quat::IDENTITY) < 1e-3);
        }
    }
}
