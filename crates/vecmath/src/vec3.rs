//! Three-component single-precision vector.
//!
//! This is the fundamental quantity of the whole system: a velocity sample,
//! a particle position (in grid or physical coordinates), or a point of a
//! computed path that is shipped over the network as 12 bytes.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-component `f32` vector. `repr(C)` guarantees the x/y/z layout the
/// wire format relies on (12 bytes per point, §5.1 of the paper).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

// The unsafe reinterpretation in `as_f32_slice` is only sound for exactly
// this layout; refuse to compile if the struct ever grows or gets padded.
const _: () = assert!(std::mem::size_of::<Vec3>() == 12 && std::mem::align_of::<Vec3>() == 4);

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Euclidean distance between two points.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f32 {
        (self - rhs).length()
    }

    /// Unit vector in the same direction; `None` for the zero vector
    /// (degenerate velocity samples occur at stagnation points, so the
    /// caller must decide what "direction" means there).
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let len = self.length();
        if len > 0.0 && len.is_finite() {
            Some(self / len)
        } else {
            None
        }
    }

    /// Like [`Vec3::normalized`] but returns the zero vector for degenerate
    /// input — convenient in rendering code where a zero direction is
    /// harmless.
    #[inline]
    pub fn normalized_or_zero(self) -> Vec3 {
        self.normalized().unwrap_or(Vec3::ZERO)
    }

    /// Linear interpolation: `self` at `t == 0`, `rhs` at `t == 1`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f32) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Component-wise product (used for grid-spacing scaling).
    #[inline]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise quotient.
    #[inline]
    pub fn div_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x / rhs.x, self.y / rhs.y, self.z / rhs.z)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise clamp.
    #[inline]
    pub fn clamp_elem(self, lo: Vec3, hi: Vec3) -> Vec3 {
        self.max_elem(lo).min_elem(hi)
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// True when every component is finite (NaN/Inf poisoning is the
    /// classic failure mode of runaway integrations).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The vector as a 3-element array (x, y, z).
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn from_array(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }

    /// Reinterpret a slice of `Vec3` as its raw little-endian-native f32
    /// storage. Safe because `Vec3` is `repr(C)` with no padding.
    pub fn as_f32_slice(points: &[Vec3]) -> &[f32] {
        // SAFETY: Vec3 is repr(C) { f32, f32, f32 }: size 12, align 4, no
        // padding, so `len * 3` f32s exactly cover the same memory.
        unsafe { std::slice::from_raw_parts(points.as_ptr().cast::<f32>(), points.len() * 3) }
    }

    /// Serialize to the 12-byte wire layout used by the geometry protocol.
    pub fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.x.to_le_bytes());
        out.extend_from_slice(&self.y.to_le_bytes());
        out.extend_from_slice(&self.z.to_le_bytes());
    }

    /// Deserialize from the 12-byte wire layout; `None` if `buf` is short.
    pub fn read_le(buf: &[u8]) -> Option<Vec3> {
        if buf.len() < 12 {
            return None;
        }
        Some(Vec3::new(
            f32::from_le_bytes(buf[0..4].try_into().unwrap()),
            f32::from_le_bytes(buf[4..8].try_into().unwrap()),
            f32::from_le_bytes(buf[8..12].try_into().unwrap()),
        ))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f32> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;

    fn close(a: Vec3, b: Vec3) -> bool {
        approx_eq(a.x, b.x, 1e-5) && approx_eq(a.y, b.y, 1e-5) && approx_eq(a.z, b.z, 1e-5)
    }

    #[test]
    fn arithmetic_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(b.cross(a), -Vec3::Z);
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).dot(Vec3::new(4.0, 5.0, 6.0)), 32.0);
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        let n = v.normalized().unwrap();
        assert!(approx_eq(n.length(), 1.0, 1e-6));
        assert!(Vec3::ZERO.normalized().is_none());
        assert_eq!(Vec3::ZERO.normalized_or_zero(), Vec3::ZERO);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 4.0));
    }

    #[test]
    fn elementwise_helpers() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.min_elem(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max_elem(b), Vec3::new(2.0, 5.0, 6.0));
        assert_eq!(a.mul_elem(b), Vec3::new(2.0, 20.0, 18.0));
        assert_eq!(b.div_elem(Vec3::splat(2.0)), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), 1.0);
        assert_eq!(
            Vec3::new(-1.0, 10.0, 0.5).clamp_elem(Vec3::ZERO, Vec3::ONE),
            Vec3::new(0.0, 1.0, 0.5)
        );
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
        v[1] = 0.0;
        assert_eq!(v.y, 0.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn wire_roundtrip() {
        let v = Vec3::new(1.5, -2.25, 3.75);
        let mut buf = Vec::new();
        v.write_le(&mut buf);
        assert_eq!(buf.len(), 12);
        assert_eq!(Vec3::read_le(&buf), Some(v));
        assert_eq!(Vec3::read_le(&buf[..11]), None);
    }

    #[test]
    fn raw_slice_view() {
        let pts = vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)];
        let raw = Vec3::as_f32_slice(&pts);
        assert_eq!(raw, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(Vec3::as_f32_slice(&[]).is_empty());
    }

    #[test]
    fn raw_slice_roundtrips_through_wire_layout() {
        // The zero-copy view and the per-point 12-byte writer must agree on
        // layout: bytes of as_f32_slice == concatenated write_le output.
        let pts = vec![
            Vec3::new(0.5, -1.25, 3.75),
            Vec3::new(f32::MIN_POSITIVE, -0.0, 1.0e20),
        ];
        let mut wire = Vec::new();
        for p in &pts {
            p.write_le(&mut wire);
        }
        let raw = Vec3::as_f32_slice(&pts);
        let view: Vec<u8> = raw.iter().flat_map(|f| f.to_le_bytes()).collect();
        assert_eq!(wire, view);
        let back: Vec<Vec3> = wire.chunks_exact(12).filter_map(Vec3::read_le).collect();
        assert_eq!(back, pts);
    }

    #[test]
    fn finite_detection() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn sum_of_vectors() {
        let total: Vec3 = (0..4).map(|i| Vec3::splat(i as f32)).sum();
        assert_eq!(total, Vec3::splat(6.0));
    }

    fn arb_vec3() -> impl Strategy<Value = Vec3> {
        (-1.0e3f32..1.0e3, -1.0e3f32..1.0e3, -1.0e3f32..1.0e3)
            .prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!(close(a + b, b + a));
        }

        #[test]
        fn prop_cross_orthogonal(a in arb_vec3(), b in arb_vec3()) {
            let c = a.cross(b);
            // |a·(a×b)| should be ~0 relative to the magnitudes involved.
            let scale = a.length() * b.length() * a.length().max(b.length()) + 1.0;
            prop_assert!(c.dot(a).abs() / scale < 1e-4);
            prop_assert!(c.dot(b).abs() / scale < 1e-4);
        }

        #[test]
        fn prop_lerp_bounded(a in arb_vec3(), b in arb_vec3(), t in 0.0f32..1.0) {
            let l = a.lerp(b, t);
            for i in 0..3 {
                let lo = a[i].min(b[i]) - 1e-3;
                let hi = a[i].max(b[i]) + 1e-3;
                prop_assert!(l[i] >= lo && l[i] <= hi);
            }
        }

        #[test]
        fn prop_wire_roundtrip(a in arb_vec3()) {
            let mut buf = Vec::new();
            a.write_le(&mut buf);
            prop_assert_eq!(Vec3::read_le(&buf), Some(a));
        }

        #[test]
        fn prop_normalized_unit_length(a in arb_vec3()) {
            if let Some(n) = a.normalized() {
                prop_assert!((n.length() - 1.0).abs() < 1e-4);
            }
        }
    }
}
