//! Poses and the graphics transformation stack.
//!
//! IRIS GL (the API the 1992 system rendered with) exposed a matrix stack
//! that transforms were pushed onto and popped off of; the paper
//! concatenates the inverted BOOM pose with that stack to render from the
//! head's point of view. [`TransformStack`] reproduces that model so the
//! software renderer and the tests can express the same pipeline.

use crate::{Mat3, Mat4, Quat, Vec3};
use serde::{Deserialize, Serialize};

/// A rigid pose: position + orientation. This is what the Polhemus tracker
/// reports for the hand and what the BOOM kinematics produce for the head.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    pub position: Vec3,
    pub orientation: Quat,
}

impl Pose {
    pub const IDENTITY: Pose = Pose {
        position: Vec3::ZERO,
        orientation: Quat::IDENTITY,
    };

    pub fn new(position: Vec3, orientation: Quat) -> Pose {
        Pose {
            position,
            orientation,
        }
    }

    /// The 4×4 matrix mapping pose-local coordinates to world coordinates.
    pub fn to_mat4(&self) -> Mat4 {
        Mat4::from_rotation_translation(self.orientation.to_mat3(), self.position)
    }

    /// Recover a pose from a rigid matrix.
    pub fn from_mat4(m: &Mat4) -> Pose {
        Pose {
            position: m.translation_part(),
            orientation: Quat::from_mat3(&m.rotation_part()),
        }
    }

    /// The world→local (view) matrix — the inversion step of §3.
    pub fn view_matrix(&self) -> Mat4 {
        self.to_mat4().inverse_rigid()
    }

    /// Transform a local point into world space.
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.orientation.rotate(p) + self.position
    }

    /// Compose: `self` then `child` (child expressed in self's frame).
    pub fn then(&self, child: &Pose) -> Pose {
        Pose {
            position: self.transform_point(child.position),
            orientation: self.orientation * child.orientation,
        }
    }

    /// Interpolate between two tracker samples.
    pub fn lerp(&self, rhs: &Pose, t: f32) -> Pose {
        Pose {
            position: self.position.lerp(rhs.position, t),
            orientation: self.orientation.slerp(rhs.orientation, t),
        }
    }
}

/// An IRIS-GL-style matrix stack. The *top* of the stack is the current
/// transform; `push` duplicates it so a `pop` restores the pre-push state.
#[derive(Debug, Clone)]
pub struct TransformStack {
    stack: Vec<Mat4>,
}

impl TransformStack {
    /// A fresh stack holding a single identity matrix.
    pub fn new() -> TransformStack {
        TransformStack {
            stack: vec![Mat4::IDENTITY],
        }
    }

    /// Current (top) matrix.
    pub fn top(&self) -> &Mat4 {
        self.stack.last().expect("stack is never empty")
    }

    /// Depth of the stack (≥ 1).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Duplicate the top entry.
    pub fn push(&mut self) {
        self.stack.push(*self.top());
    }

    /// Pop the top entry. Returns `false` (and leaves the stack intact) if
    /// that would empty the stack — IRIS GL treated stack underflow as an
    /// error, not a crash.
    pub fn pop(&mut self) -> bool {
        if self.stack.len() > 1 {
            self.stack.pop();
            true
        } else {
            false
        }
    }

    /// Replace the top with an arbitrary matrix.
    pub fn load(&mut self, m: Mat4) {
        *self.stack.last_mut().unwrap() = m;
    }

    /// Post-multiply the top: `top ← top · m` (GL semantics: the new
    /// transform applies *first* to incoming geometry).
    pub fn mult(&mut self, m: Mat4) {
        let top = *self.top();
        self.load(top * m);
    }

    pub fn translate(&mut self, t: Vec3) {
        self.mult(Mat4::translation(t));
    }

    pub fn rotate(&mut self, axis: Vec3, angle: f32) {
        self.mult(Mat4::from_mat3(Mat3::rotation_axis(axis, angle)));
    }

    pub fn scale(&mut self, s: Vec3) {
        self.mult(Mat4::scale(s));
    }

    /// Transform a point by the current matrix.
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.top().transform_point(p)
    }
}

impl Default for TransformStack {
    fn default() -> Self {
        TransformStack::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_2;

    #[test]
    fn pose_roundtrip_through_mat4() {
        let p = Pose::new(
            Vec3::new(1.0, 2.0, 3.0),
            Quat::from_axis_angle(Vec3::new(0.3, 1.0, -0.2), 0.8),
        );
        let q = Pose::from_mat4(&p.to_mat4());
        assert!(p.position.distance(q.position) < 1e-5);
        assert!(p.orientation.angle_to(q.orientation) < 1e-4);
    }

    #[test]
    fn view_matrix_moves_pose_to_origin() {
        let p = Pose::new(
            Vec3::new(5.0, -2.0, 1.0),
            Quat::from_axis_angle(Vec3::Y, 0.4),
        );
        let v = p.view_matrix();
        assert!(v.transform_point(p.position).length() < 1e-5);
    }

    #[test]
    fn pose_composition() {
        let parent = Pose::new(
            Vec3::new(1.0, 0.0, 0.0),
            Quat::from_axis_angle(Vec3::Z, FRAC_PI_2),
        );
        let child = Pose::new(Vec3::X, Quat::IDENTITY);
        let world = parent.then(&child);
        // Child's +X offset is rotated to +Y by the parent before adding.
        assert!(world.position.distance(Vec3::new(1.0, 1.0, 0.0)) < 1e-5);
    }

    #[test]
    fn pose_lerp_halfway() {
        let a = Pose::IDENTITY;
        let b = Pose::new(Vec3::splat(2.0), Quat::from_axis_angle(Vec3::Z, 1.0));
        let mid = a.lerp(&b, 0.5);
        assert!(mid.position.distance(Vec3::splat(1.0)) < 1e-5);
        assert!((mid.orientation.angle_to(Quat::IDENTITY) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn stack_push_pop() {
        let mut s = TransformStack::new();
        assert_eq!(s.depth(), 1);
        s.translate(Vec3::X);
        s.push();
        s.translate(Vec3::Y);
        assert!(s.apply(Vec3::ZERO).distance(Vec3::new(1.0, 1.0, 0.0)) < 1e-6);
        assert!(s.pop());
        assert!(s.apply(Vec3::ZERO).distance(Vec3::X) < 1e-6);
    }

    #[test]
    fn stack_underflow_is_soft_error() {
        let mut s = TransformStack::new();
        assert!(!s.pop());
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn gl_multiplication_order() {
        // translate then rotate == apply rotation first to geometry.
        let mut s = TransformStack::new();
        s.translate(Vec3::new(5.0, 0.0, 0.0));
        s.rotate(Vec3::Z, FRAC_PI_2);
        // X axis point: rotated to +Y, then translated by +5X.
        let p = s.apply(Vec3::X);
        assert!(p.distance(Vec3::new(5.0, 1.0, 0.0)) < 1e-5);
    }

    #[test]
    fn boom_style_view_concatenation() {
        // The paper's pipeline: world geometry rendered through the
        // inverted head pose looks identity when the head is at the
        // geometry's own frame.
        let head = Pose::new(
            Vec3::new(0.0, 1.7, 3.0),
            Quat::from_axis_angle(Vec3::Y, 0.2),
        );
        let mut s = TransformStack::new();
        s.load(head.view_matrix());
        s.mult(head.to_mat4());
        let p = Vec3::new(0.4, -0.6, 2.0);
        assert!(s.apply(p).distance(p) < 1e-4);
    }

    #[test]
    fn load_replaces_top_only() {
        let mut s = TransformStack::new();
        s.translate(Vec3::X);
        s.push();
        s.load(Mat4::IDENTITY);
        assert!(s.apply(Vec3::ZERO).length() < 1e-6);
        s.pop();
        assert!(s.apply(Vec3::ZERO).distance(Vec3::X) < 1e-6);
    }
}
