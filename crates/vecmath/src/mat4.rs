//! 4×4 homogeneous matrices.
//!
//! §3 of the paper: "These angles are converted into a standard 4x4 position
//! and orientation matrix for the position and orientation of the BOOM head
//! by six successive translations and rotations. By inverting this position
//! and orientation matrix and concatenating it with the graphics
//! transformation matrix stack, the computer generated scene is rendered
//! from the user's point of view." This module provides exactly those
//! operations plus the perspective projection the renderer needs.

use crate::{Mat3, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// Row-major 4×4 matrix. Points transform as column vectors: `p' = M · p`.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat4 {
    pub m: [[f32; 4]; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::IDENTITY
    }
}

impl Mat4 {
    pub const IDENTITY: Mat4 = Mat4 {
        m: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    pub const ZERO: Mat4 = Mat4 { m: [[0.0; 4]; 4] };

    /// Pure translation.
    pub fn translation(t: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.m[0][3] = t.x;
        m.m[1][3] = t.y;
        m.m[2][3] = t.z;
        m
    }

    /// Embed a 3×3 rotation/scale block in the upper-left corner.
    pub fn from_mat3(r: Mat3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        for row in 0..3 {
            for col in 0..3 {
                m.m[row][col] = r.m[row][col];
            }
        }
        m
    }

    /// Rigid transform: rotation followed by translation.
    pub fn from_rotation_translation(r: Mat3, t: Vec3) -> Mat4 {
        let mut m = Mat4::from_mat3(r);
        m.m[0][3] = t.x;
        m.m[1][3] = t.y;
        m.m[2][3] = t.z;
        m
    }

    pub fn rotation_x(angle: f32) -> Mat4 {
        Mat4::from_mat3(Mat3::rotation_x(angle))
    }

    pub fn rotation_y(angle: f32) -> Mat4 {
        Mat4::from_mat3(Mat3::rotation_y(angle))
    }

    pub fn rotation_z(angle: f32) -> Mat4 {
        Mat4::from_mat3(Mat3::rotation_z(angle))
    }

    pub fn scale(s: Vec3) -> Mat4 {
        Mat4::from_mat3(Mat3::scale(s))
    }

    /// Upper-left 3×3 block.
    pub fn rotation_part(&self) -> Mat3 {
        let mut r = Mat3::ZERO;
        for row in 0..3 {
            for col in 0..3 {
                r.m[row][col] = self.m[row][col];
            }
        }
        r
    }

    /// Translation column.
    pub fn translation_part(&self) -> Vec3 {
        Vec3::new(self.m[0][3], self.m[1][3], self.m[2][3])
    }

    /// Transform a point (w = 1, with perspective divide if the matrix has a
    /// projective bottom row).
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let x = self.m[0][0] * p.x + self.m[0][1] * p.y + self.m[0][2] * p.z + self.m[0][3];
        let y = self.m[1][0] * p.x + self.m[1][1] * p.y + self.m[1][2] * p.z + self.m[1][3];
        let z = self.m[2][0] * p.x + self.m[2][1] * p.y + self.m[2][2] * p.z + self.m[2][3];
        let w = self.m[3][0] * p.x + self.m[3][1] * p.y + self.m[3][2] * p.z + self.m[3][3];
        if (w - 1.0).abs() < 1.0e-7 || w == 0.0 {
            Vec3::new(x, y, z)
        } else {
            Vec3::new(x / w, y / w, z / w)
        }
    }

    /// Transform a point returning the homogeneous result before the
    /// perspective divide — the renderer clips in homogeneous space.
    pub fn transform_point_h(&self, p: Vec3) -> [f32; 4] {
        [
            self.m[0][0] * p.x + self.m[0][1] * p.y + self.m[0][2] * p.z + self.m[0][3],
            self.m[1][0] * p.x + self.m[1][1] * p.y + self.m[1][2] * p.z + self.m[1][3],
            self.m[2][0] * p.x + self.m[2][1] * p.y + self.m[2][2] * p.z + self.m[2][3],
            self.m[3][0] * p.x + self.m[3][1] * p.y + self.m[3][2] * p.z + self.m[3][3],
        ]
    }

    /// Transform a direction (w = 0: rotation/scale only, no translation).
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        self.rotation_part().mul_vec(v)
    }

    /// Fast inverse for rigid transforms (orthonormal rotation +
    /// translation): `R⁻¹ = Rᵀ`, `t⁻¹ = -Rᵀ·t`. This is the inversion the
    /// paper applies to the BOOM pose each frame.
    pub fn inverse_rigid(&self) -> Mat4 {
        let rt = self.rotation_part().transpose();
        let t = self.translation_part();
        Mat4::from_rotation_translation(rt, -rt.mul_vec(t))
    }

    /// General inverse by Gauss-Jordan elimination with partial pivoting;
    /// `None` when singular. Needed for projection matrices.
    pub fn inverse(&self) -> Option<Mat4> {
        let mut a = self.m;
        let mut inv = Mat4::IDENTITY.m;
        for col in 0..4 {
            // Partial pivot.
            let mut pivot = col;
            for row in (col + 1)..4 {
                if a[row][col].abs() > a[pivot][col].abs() {
                    pivot = row;
                }
            }
            if a[pivot][col].abs() < 1.0e-12 {
                return None;
            }
            a.swap(col, pivot);
            inv.swap(col, pivot);
            let diag = a[col][col];
            for k in 0..4 {
                a[col][k] /= diag;
                inv[col][k] /= diag;
            }
            for row in 0..4 {
                if row != col {
                    let f = a[row][col];
                    if f != 0.0 {
                        for k in 0..4 {
                            a[row][k] -= f * a[col][k];
                            inv[row][k] -= f * inv[col][k];
                        }
                    }
                }
            }
        }
        Some(Mat4 { m: inv })
    }

    /// Right-handed perspective projection mapping the view frustum to
    /// clip space with z ∈ [-1, 1] (OpenGL convention, matching the IRIS GL
    /// heritage of the original system). `fovy` in radians.
    pub fn perspective(fovy: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
        let f = 1.0 / (fovy * 0.5).tan();
        let mut m = Mat4::ZERO;
        m.m[0][0] = f / aspect;
        m.m[1][1] = f;
        m.m[2][2] = (far + near) / (near - far);
        m.m[2][3] = 2.0 * far * near / (near - far);
        m.m[3][2] = -1.0;
        m
    }

    /// Right-handed look-at view matrix (camera at `eye`, looking at
    /// `center`, with `up` roughly up).
    pub fn look_at(eye: Vec3, center: Vec3, up: Vec3) -> Mat4 {
        let f = (center - eye).normalized_or_zero();
        let s = f.cross(up).normalized_or_zero();
        let u = s.cross(f);
        let r = Mat3::from_rows(s, u, -f);
        Mat4::from_rotation_translation(r, -r.mul_vec(eye))
    }

    /// Frobenius distance to another matrix.
    pub fn distance(&self, rhs: &Mat4) -> f32 {
        let mut acc = 0.0;
        for r in 0..4 {
            for c in 0..4 {
                let d = self.m[r][c] - rhs.m[r][c];
                acc += d * d;
            }
        }
        acc.sqrt()
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::ZERO;
        for r in 0..4 {
            for c in 0..4 {
                out.m[r][c] = (0..4).map(|k| self.m[r][k] * rhs.m[k][c]).sum();
            }
        }
        out
    }
}

impl Mul<Vec3> for Mat4 {
    type Output = Vec3;
    fn mul(self, p: Vec3) -> Vec3 {
        self.transform_point(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;
    use std::f32::consts::FRAC_PI_2;

    fn close(a: &Mat4, b: &Mat4, tol: f32) -> bool {
        a.distance(b) < tol
    }

    #[test]
    fn translation_moves_points_not_vectors() {
        let t = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.transform_vector(Vec3::X), Vec3::X);
    }

    #[test]
    fn compose_rotation_translation() {
        // Rotate about Z then translate: p' = T · R · p.
        let m = Mat4::translation(Vec3::new(5.0, 0.0, 0.0)) * Mat4::rotation_z(FRAC_PI_2);
        let p = m.transform_point(Vec3::X);
        assert!(p.distance(Vec3::new(5.0, 1.0, 0.0)) < 1e-5);
    }

    #[test]
    fn rigid_inverse_matches_general() {
        let m = Mat4::translation(Vec3::new(1.0, -2.0, 0.5))
            * Mat4::rotation_y(0.8)
            * Mat4::rotation_x(-0.3);
        let a = m.inverse_rigid();
        let b = m.inverse().unwrap();
        assert!(close(&a, &b, 1e-4));
        assert!(close(&(m * a), &Mat4::IDENTITY, 1e-4));
    }

    #[test]
    fn inverse_of_singular_is_none() {
        assert!(Mat4::ZERO.inverse().is_none());
        let flat = Mat4::scale(Vec3::new(1.0, 1.0, 0.0));
        assert!(flat.inverse().is_none());
    }

    #[test]
    fn perspective_maps_near_and_far() {
        let p = Mat4::perspective(FRAC_PI_2, 1.0, 1.0, 100.0);
        // A point on the near plane (z = -near, camera looks down -Z).
        let near = p.transform_point(Vec3::new(0.0, 0.0, -1.0));
        assert!(approx_eq(near.z, -1.0, 1e-5));
        let far = p.transform_point(Vec3::new(0.0, 0.0, -100.0));
        assert!(approx_eq(far.z, 1.0, 1e-4));
    }

    #[test]
    fn perspective_foreshortens() {
        let p = Mat4::perspective(FRAC_PI_2, 1.0, 0.1, 100.0);
        let close_pt = p.transform_point(Vec3::new(1.0, 0.0, -2.0));
        let far_pt = p.transform_point(Vec3::new(1.0, 0.0, -20.0));
        assert!(close_pt.x.abs() > far_pt.x.abs());
    }

    #[test]
    fn look_at_centers_target() {
        let v = Mat4::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let target = v.transform_point(Vec3::ZERO);
        // Target ends up straight ahead on the -Z axis at distance 5.
        assert!(target.distance(Vec3::new(0.0, 0.0, -5.0)) < 1e-5);
    }

    #[test]
    fn homogeneous_transform_matches_divide() {
        let p = Mat4::perspective(1.0, 1.3, 0.5, 50.0);
        let pt = Vec3::new(0.4, -0.2, -3.0);
        let h = p.transform_point_h(pt);
        let d = p.transform_point(pt);
        assert!(approx_eq(h[0] / h[3], d.x, 1e-5));
        assert!(approx_eq(h[1] / h[3], d.y, 1e-5));
        assert!(approx_eq(h[2] / h[3], d.z, 1e-5));
    }

    #[test]
    fn rotation_translation_parts_roundtrip() {
        let r = Mat3::rotation_axis(Vec3::new(1.0, 1.0, 0.0), 0.4);
        let t = Vec3::new(-2.0, 3.0, 7.0);
        let m = Mat4::from_rotation_translation(r, t);
        assert_eq!(m.translation_part(), t);
        assert!((m.rotation_part().m[0][0] - r.m[0][0]).abs() < 1e-7);
    }

    fn arb_rigid() -> impl Strategy<Value = Mat4> {
        (
            (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
            0.01f32..3.0,
            (-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0),
        )
            .prop_filter_map("nonzero axis", |((ax, ay, az), ang, (tx, ty, tz))| {
                let axis = Vec3::new(ax, ay, az);
                if axis.length() < 1e-3 {
                    return None;
                }
                Some(Mat4::from_rotation_translation(
                    Mat3::rotation_axis(axis, ang),
                    Vec3::new(tx, ty, tz),
                ))
            })
    }

    proptest! {
        #[test]
        fn prop_rigid_inverse_roundtrips_points(m in arb_rigid(), x in -5.0f32..5.0, y in -5.0f32..5.0, z in -5.0f32..5.0) {
            let p = Vec3::new(x, y, z);
            let q = m.inverse_rigid().transform_point(m.transform_point(p));
            prop_assert!(q.distance(p) < 1e-3);
        }

        #[test]
        fn prop_mul_associative_on_points(a in arb_rigid(), b in arb_rigid(), x in -2.0f32..2.0) {
            let p = Vec3::splat(x);
            let lhs = (a * b).transform_point(p);
            let rhs = a.transform_point(b.transform_point(p));
            prop_assert!(lhs.distance(rhs) < 1e-3);
        }

        #[test]
        fn prop_rigid_preserves_distances(m in arb_rigid(), x in -5.0f32..5.0, y in -5.0f32..5.0) {
            let p = Vec3::new(x, y, 0.0);
            let q = Vec3::new(y, x, 1.0);
            let d0 = p.distance(q);
            let d1 = m.transform_point(p).distance(m.transform_point(q));
            prop_assert!((d0 - d1).abs() < 1e-3);
        }
    }
}
