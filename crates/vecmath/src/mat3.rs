//! 3×3 matrices — rotation blocks, Jacobians of the curvilinear mapping.
//!
//! The tracer needs 3×3 machinery in one hot place: the Jacobian
//! ∂(physical)/∂(grid) of a curvilinear grid cell, whose inverse converts a
//! physical-space velocity into grid-coordinate velocity (the trick in §2.1
//! of the paper that avoids point-location searches).

use crate::Vec3;
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// Row-major 3×3 matrix of `f32`.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows of the matrix: `m[r][c]`.
    pub m: [[f32; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mat3 {
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// Build from three rows.
    #[inline]
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 {
            m: [r0.to_array(), r1.to_array(), r2.to_array()],
        }
    }

    /// Build from three columns. Columns of a curvilinear Jacobian are the
    /// physical-space tangent vectors of the three grid directions.
    #[inline]
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Mat3 {
        Mat3 {
            m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    #[inline]
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::from_array(self.m[r])
    }

    #[inline]
    pub fn col(&self, c: usize) -> Vec3 {
        Vec3::new(self.m[0][c], self.m[1][c], self.m[2][c])
    }

    /// Rotation about the X axis by `angle` radians (right-handed).
    pub fn rotation_x(angle: f32) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3 {
            m: [[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]],
        }
    }

    /// Rotation about the Y axis by `angle` radians (right-handed).
    pub fn rotation_y(angle: f32) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3 {
            m: [[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]],
        }
    }

    /// Rotation about the Z axis by `angle` radians (right-handed).
    pub fn rotation_z(angle: f32) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3 {
            m: [[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Rotation about an arbitrary unit axis (Rodrigues formula).
    pub fn rotation_axis(axis: Vec3, angle: f32) -> Mat3 {
        let a = axis.normalized_or_zero();
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (a.x, a.y, a.z);
        Mat3 {
            m: [
                [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
                [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
                [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
            ],
        }
    }

    /// Diagonal scale matrix.
    pub fn scale(s: Vec3) -> Mat3 {
        Mat3 {
            m: [[s.x, 0.0, 0.0], [0.0, s.y, 0.0], [0.0, 0.0, s.z]],
        }
    }

    #[inline]
    pub fn transpose(&self) -> Mat3 {
        Mat3 {
            m: [
                [self.m[0][0], self.m[1][0], self.m[2][0]],
                [self.m[0][1], self.m[1][1], self.m[2][1]],
                [self.m[0][2], self.m[1][2], self.m[2][2]],
            ],
        }
    }

    /// Determinant (the Jacobian determinant is the local cell volume of a
    /// curvilinear grid; a non-positive value flags a degenerate cell).
    pub fn determinant(&self) -> f32 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Inverse via the adjugate; `None` when the determinant is (near) zero.
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.determinant();
        if det.abs() < 1.0e-12 || !det.is_finite() {
            return None;
        }
        let inv_det = 1.0 / det;
        let m = &self.m;
        let adj = [
            [
                m[1][1] * m[2][2] - m[1][2] * m[2][1],
                m[0][2] * m[2][1] - m[0][1] * m[2][2],
                m[0][1] * m[1][2] - m[0][2] * m[1][1],
            ],
            [
                m[1][2] * m[2][0] - m[1][0] * m[2][2],
                m[0][0] * m[2][2] - m[0][2] * m[2][0],
                m[0][2] * m[1][0] - m[0][0] * m[1][2],
            ],
            [
                m[1][0] * m[2][1] - m[1][1] * m[2][0],
                m[0][1] * m[2][0] - m[0][0] * m[2][1],
                m[0][0] * m[1][1] - m[0][1] * m[1][0],
            ],
        ];
        let mut out = Mat3::ZERO;
        for (out_row, adj_row) in out.m.iter_mut().zip(&adj) {
            for (o, a) in out_row.iter_mut().zip(adj_row) {
                *o = a * inv_det;
            }
        }
        Some(out)
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }

    /// Frobenius norm — handy for "how far from identity" assertions.
    pub fn frobenius_norm(&self) -> f32 {
        self.m.iter().flatten().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = (0..3).map(|k| self.m[r][k] * rhs.m[k][c]).sum();
            }
        }
        out
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        self.mul_vec(v)
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] + rhs.m[r][c];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] - rhs.m[r][c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    fn mat_close(a: &Mat3, b: &Mat3, tol: f32) -> bool {
        (0..3).all(|r| (0..3).all(|c| approx_eq(a.m[r][c], b.m[r][c], tol)))
    }

    #[test]
    fn identity_is_neutral() {
        let r = Mat3::rotation_z(0.7);
        assert!(mat_close(&(Mat3::IDENTITY * r), &r, 1e-6));
        assert!(mat_close(&(r * Mat3::IDENTITY), &r, 1e-6));
        assert_eq!(
            Mat3::IDENTITY.mul_vec(Vec3::new(1.0, 2.0, 3.0)),
            Vec3::new(1.0, 2.0, 3.0)
        );
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let r = Mat3::rotation_z(FRAC_PI_2);
        let v = r.mul_vec(Vec3::X);
        assert!(v.distance(Vec3::Y) < 1e-6);
    }

    #[test]
    fn rotation_x_quarter_turn() {
        let r = Mat3::rotation_x(FRAC_PI_2);
        assert!(r.mul_vec(Vec3::Y).distance(Vec3::Z) < 1e-6);
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let r = Mat3::rotation_y(FRAC_PI_2);
        assert!(r.mul_vec(Vec3::Z).distance(Vec3::X) < 1e-6);
    }

    #[test]
    fn rotation_axis_matches_dedicated() {
        let a = Mat3::rotation_axis(Vec3::Z, 1.1);
        let b = Mat3::rotation_z(1.1);
        assert!(mat_close(&a, &b, 1e-6));
    }

    #[test]
    fn half_turn_flips() {
        let r = Mat3::rotation_axis(Vec3::new(0.0, 0.0, 2.0), PI);
        assert!(r.mul_vec(Vec3::X).distance(-Vec3::X) < 1e-5);
    }

    #[test]
    fn determinant_of_rotation_is_one() {
        let r = Mat3::rotation_axis(Vec3::new(1.0, 2.0, 3.0), 0.9);
        assert!(approx_eq(r.determinant(), 1.0, 1e-5));
    }

    #[test]
    fn determinant_of_scale() {
        let s = Mat3::scale(Vec3::new(2.0, 3.0, 4.0));
        assert!(approx_eq(s.determinant(), 24.0, 1e-6));
    }

    #[test]
    fn inverse_of_singular_is_none() {
        let singular = Mat3::from_rows(Vec3::X, Vec3::X, Vec3::Z);
        assert!(singular.inverse().is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        let m =
            Mat3::rotation_x(0.3) * Mat3::scale(Vec3::new(2.0, 1.0, 0.5)) * Mat3::rotation_z(-1.2);
        let inv = m.inverse().unwrap();
        assert!(mat_close(&(m * inv), &Mat3::IDENTITY, 1e-5));
        assert!(mat_close(&(inv * m), &Mat3::IDENTITY, 1e-5));
    }

    #[test]
    fn transpose_of_rotation_is_inverse() {
        let r = Mat3::rotation_axis(Vec3::new(1.0, -1.0, 0.5), 0.77);
        assert!(mat_close(&(r * r.transpose()), &Mat3::IDENTITY, 1e-5));
    }

    #[test]
    fn cols_and_rows() {
        let m = Mat3::from_cols(Vec3::X, Vec3::Y * 2.0, Vec3::Z * 3.0);
        assert_eq!(m.col(1), Vec3::Y * 2.0);
        assert_eq!(m.row(2), Vec3::new(0.0, 0.0, 3.0));
        assert!(approx_eq(m.determinant(), 6.0, 1e-6));
    }

    fn arb_rotation() -> impl Strategy<Value = Mat3> {
        (
            (-1.0f32..1.0),
            (-1.0f32..1.0),
            (-1.0f32..1.0),
            (0.01f32..3.0),
        )
            .prop_filter_map("nonzero axis", |(x, y, z, ang)| {
                let axis = Vec3::new(x, y, z);
                if axis.length() < 1e-3 {
                    None
                } else {
                    Some(Mat3::rotation_axis(axis, ang))
                }
            })
    }

    proptest! {
        #[test]
        fn prop_rotation_preserves_length(r in arb_rotation(), x in -10.0f32..10.0, y in -10.0f32..10.0, z in -10.0f32..10.0) {
            let v = Vec3::new(x, y, z);
            let rv = r.mul_vec(v);
            prop_assert!(approx_eq(rv.length(), v.length(), 1e-3));
        }

        #[test]
        fn prop_det_product(r in arb_rotation(), s in 0.1f32..4.0) {
            let m = r * Mat3::scale(Vec3::splat(s));
            prop_assert!(approx_eq(m.determinant(), s * s * s, 1e-2));
        }

        #[test]
        fn prop_inverse_undoes(r in arb_rotation(), x in -5.0f32..5.0, y in -5.0f32..5.0, z in -5.0f32..5.0) {
            let v = Vec3::new(x, y, z);
            let inv = r.inverse().unwrap();
            prop_assert!(inv.mul_vec(r.mul_vec(v)).distance(v) < 1e-3);
        }
    }
}
