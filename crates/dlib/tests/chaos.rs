//! Chaos proptest for the fault-tolerant session layer.
//!
//! A live `DlibServer` holding a keyed store faces a
//! [`ReconnectingClient`] whose connections are sabotaged by a seeded
//! [`FaultPlan`] (drops, delays, duplicates, truncations, forced
//! disconnects). The property: however the schedule lands,
//!
//! 1. every *acknowledged* put is present in the final store dump,
//! 2. once chaos is switched off, an idempotent call succeeds,
//! 3. the server ends with zero live sessions for departed clients —
//!    every `Connected` event is matched by a `Disconnected` one.
//!
//! Determinism: the proptest shim seeds its RNG from the test name, so
//! every run replays the same fault schedules; `PROPTEST_CASES` bounds
//! the number of rounds (pinned in `scripts/check.sh`).

#![allow(clippy::disallowed_methods)] // tests sleep to let real threads make progress
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dlib::{
    ClientConfig, DlibServer, FaultConfig, FaultPlan, ReconnectingClient, RetryPolicy,
    ServerConfig, SessionEvent,
};
use parking_lot::Mutex;
use proptest::prelude::*;
use proptest::TestCaseError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PROC_PUT: u32 = 1;
const PROC_DUMP: u32 = 2;

#[derive(Default)]
struct Store {
    map: BTreeMap<u64, u64>,
}

type EventLog = Arc<Mutex<Vec<(u64, SessionEvent)>>>;

fn store_server() -> (dlib::ServerHandle, EventLog) {
    let events: EventLog = Arc::new(Mutex::new(Vec::new()));
    let log = Arc::clone(&events);
    let mut server = DlibServer::new(Store::default());
    server.register(PROC_PUT, |state: &mut Store, _, args: &[u8]| {
        if args.len() != 16 {
            return Err(format!("put expects 16 bytes, got {}", args.len()));
        }
        let mut buf = args;
        let key = buf.get_u64_le();
        let val = buf.get_u64_le();
        state.map.insert(key, val);
        Ok(Bytes::from_static(b"ok"))
    });
    server.register(PROC_DUMP, |state: &mut Store, _, _| {
        let mut out = BytesMut::with_capacity(state.map.len() * 16);
        for (k, v) in &state.map {
            out.put_u64_le(*k);
            out.put_u64_le(*v);
        }
        Ok(out.freeze())
    });
    server.on_session_event(move |_, session, event| {
        log.lock().push((session.client_id, event));
    });
    let config = ServerConfig {
        heartbeat_timeout: Some(Duration::from_millis(400)),
        poll_interval: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let handle = server.serve_with("127.0.0.1:0", config).unwrap();
    (handle, events)
}

fn decode_dump(bytes: &[u8]) -> BTreeMap<u64, u64> {
    let mut map = BTreeMap::new();
    let mut buf = bytes;
    while buf.len() >= 16 {
        let k = buf.get_u64_le();
        let v = buf.get_u64_le();
        map.insert(k, v);
    }
    map
}

/// One full chaos round. Returns Err(TestCaseError) on property violation.
fn chaos_round(seed: u64) -> Result<(), TestCaseError> {
    let (server, events) = store_server();

    // Session hook: every fresh connection gets a fault plan derived from
    // the round seed and the dial count — until the chaos switch flips.
    let chaos_on = Arc::new(AtomicBool::new(true));
    let dials = Arc::new(AtomicU64::new(0));
    let (switch, dial_counter) = (Arc::clone(&chaos_on), Arc::clone(&dials));
    let mut rc = ReconnectingClient::with_config(
        server.addr(),
        ClientConfig {
            call_timeout: Some(Duration::from_millis(150)),
            connect_timeout: Some(Duration::from_secs(2)),
        },
        RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            ..RetryPolicy::default()
        },
    );
    rc.on_session(Box::new(move |client| {
        let dial = dial_counter.fetch_add(1, Ordering::SeqCst);
        if switch.load(Ordering::SeqCst) {
            client.set_fault_plan(FaultPlan::new(
                seed ^ dial,
                FaultConfig {
                    drop: 0.04,
                    delay: 0.08,
                    duplicate: 0.05,
                    truncate: 0.02,
                    disconnect: 0.04,
                    max_delay: Duration::from_millis(3),
                },
            ));
        }
        Ok(())
    }));

    // Storm phase: puts under fire. Each put is idempotent (set k = v),
    // so the wrapper may retry it across reconnects; we only track which
    // ones the server *acknowledged*.
    let mut acked: Vec<(u64, u64)> = Vec::new();
    let mut errors = 0u64;
    for i in 0..16u64 {
        let (key, val) = (i, seed.wrapping_mul(31).wrapping_add(i));
        let mut args = BytesMut::with_capacity(16);
        args.put_u64_le(key);
        args.put_u64_le(val);
        match rc.call_idempotent(PROC_PUT, &args) {
            Ok(reply) => {
                prop_assert_eq!(&reply[..], &b"ok"[..]);
                acked.push((key, val));
            }
            Err(e) => {
                prop_assert!(
                    e.is_transport() || matches!(e, dlib::DlibError::Busy),
                    "unexpected failure kind under chaos: {e}"
                );
                errors += 1;
            }
        }
        if i % 5 == 4 {
            let _ = rc.ping(); // heartbeats may fail under chaos too
        }
    }

    // Calm phase: chaos off, shed any still-sabotaged connection. The
    // client must recover and the store must hold every acked put.
    chaos_on.store(false, Ordering::SeqCst);
    rc.disconnect();
    let dump = rc
        .call_idempotent(PROC_DUMP, b"")
        .map_err(|e| TestCaseError::Fail(format!("post-chaos dump failed: {e}")))?;
    let map = decode_dump(&dump);
    for (k, v) in &acked {
        prop_assert!(
            map.get(k) == Some(v),
            "acked put {}={} lost (errors during storm: {})",
            k,
            v,
            errors
        );
    }
    prop_assert!(
        dials.load(Ordering::SeqCst) >= rc.generation(),
        "every established connection came from a hook-run dial"
    );

    // Departure: drop the client, then every connection this round made
    // must end in a Disconnected event (reaped or closed) — zero live
    // sessions remain.
    drop(rc);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let log = events.lock();
        let connected = log
            .iter()
            .filter(|(_, e)| matches!(e, SessionEvent::Connected))
            .count();
        let disconnected = log
            .iter()
            .filter(|(_, e)| matches!(e, SessionEvent::Disconnected(_)))
            .count();
        if connected == disconnected && connected > 0 {
            break;
        }
        drop(log);
        prop_assert!(
            std::time::Instant::now() < deadline,
            "sessions never fully reaped: {} connected, {} disconnected",
            connected,
            disconnected
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    Ok(())
}

proptest! {
    #[test]
    fn random_fault_schedules_never_corrupt_acked_state(seed in 0u64..u64::MAX) {
        chaos_round(seed)?;
    }
}

/// A pinned regression seed, independent of the proptest case budget.
#[test]
fn fixed_seed_chaos_round() {
    chaos_round(0xD15A_57E5_0BAD_CAFE).unwrap();
}
