//! Fault injection for the framed transport.
//!
//! Real networks drop, delay, duplicate, and truncate; peers vanish
//! mid-call. A [`FaultPlan`] is a seeded, reproducible schedule of such
//! faults that [`crate::client::DlibClient`] applies between the framed
//! codec and the socket (see [`DlibClient::set_fault_plan`]). The chaos
//! tests drive random plans against a live server and assert the
//! resilience layer (deadlines, poisoning, reconnect-and-resync, session
//! reaping) converges back to a correct state.
//!
//! Faults are sampled per *outgoing* frame. Inbound corruption is
//! equivalent from the client's point of view (a timeout or a dead
//! connection), so one injection point exercises every recovery path.
//!
//! [`DlibClient::set_fault_plan`]: crate::client::DlibClient::set_fault_plan

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// What to do with one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Send normally.
    Deliver,
    /// Swallow the frame; the peer never sees it (the call times out).
    Drop,
    /// Hold the frame for the given duration, then send it.
    Delay(Duration),
    /// Send the frame twice back-to-back.
    Duplicate,
    /// Send a length prefix announcing the full frame but only this many
    /// payload bytes, then kill the connection — the peer sees a
    /// mid-frame disconnect.
    Truncate(usize),
    /// Kill the connection instead of sending.
    Disconnect,
}

/// Per-frame fault probabilities. Whatever probability mass is left over
/// delivers the frame unharmed.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    pub drop: f64,
    pub delay: f64,
    pub duplicate: f64,
    pub truncate: f64,
    pub disconnect: f64,
    /// Delays are uniform in `(0, max_delay]`.
    pub max_delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            drop: 0.05,
            delay: 0.10,
            duplicate: 0.05,
            truncate: 0.02,
            disconnect: 0.03,
            max_delay: Duration::from_millis(30),
        }
    }
}

impl FaultConfig {
    /// A plan that never injects anything — for A/B-ing test harnesses.
    pub fn quiet() -> FaultConfig {
        FaultConfig {
            drop: 0.0,
            delay: 0.0,
            duplicate: 0.0,
            truncate: 0.0,
            disconnect: 0.0,
            max_delay: Duration::ZERO,
        }
    }
}

/// A seeded schedule of transport faults. Two plans built from the same
/// seed and config produce the same action sequence, so any chaos-test
/// failure replays exactly from its seed.
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: ChaCha8Rng,
    injected: u64,
    delivered: u64,
}

impl FaultPlan {
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            injected: 0,
            delivered: 0,
        }
    }

    /// Sample the action for the next outgoing frame of `frame_len` bytes.
    pub fn next_action(&mut self, frame_len: usize) -> FaultAction {
        let roll: f64 = self.rng.random_range(0.0..1.0);
        let c = &self.cfg;
        let mut edge = c.drop;
        let action = if roll < edge {
            FaultAction::Drop
        } else if roll < {
            edge += c.delay;
            edge
        } {
            let micros = self
                .rng
                .random_range(1..=c.max_delay.as_micros().max(1) as u64);
            FaultAction::Delay(Duration::from_micros(micros))
        } else if roll < {
            edge += c.duplicate;
            edge
        } {
            FaultAction::Duplicate
        } else if roll < {
            edge += c.truncate;
            edge
        } {
            // Cut somewhere strictly inside the payload (or at 0 for
            // empty frames): the peer must see fewer bytes than the
            // length prefix promised.
            let keep = if frame_len == 0 {
                0
            } else {
                self.rng.random_range(0..frame_len)
            };
            FaultAction::Truncate(keep)
        } else if roll < {
            edge += c.disconnect;
            edge
        } {
            FaultAction::Disconnect
        } else {
            FaultAction::Deliver
        };
        match action {
            FaultAction::Deliver => self.delivered += 1,
            _ => self.injected += 1,
        }
        action
    }

    /// How many frames were faulted so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected
    }

    /// How many frames passed through unharmed so far.
    pub fn frames_delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actions(seed: u64, n: usize) -> Vec<FaultAction> {
        let mut p = FaultPlan::new(seed, FaultConfig::default());
        (0..n).map(|_| p.next_action(100)).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(actions(42, 500), actions(42, 500));
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(actions(1, 500), actions(2, 500));
    }

    #[test]
    fn quiet_config_never_faults() {
        let mut p = FaultPlan::new(7, FaultConfig::quiet());
        for _ in 0..200 {
            assert_eq!(p.next_action(64), FaultAction::Deliver);
        }
        assert_eq!(p.faults_injected(), 0);
        assert_eq!(p.frames_delivered(), 200);
    }

    #[test]
    fn default_config_mixes_fault_kinds() {
        let mut p = FaultPlan::new(9, FaultConfig::default());
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..2000 {
            kinds.insert(std::mem::discriminant(&p.next_action(50)));
        }
        // All six variants should appear in 2000 samples at the default
        // probabilities (each has expected count >= 40).
        assert_eq!(kinds.len(), 6, "saw {} action kinds", kinds.len());
        assert!(p.faults_injected() > 0);
        assert!(p.frames_delivered() > p.faults_injected());
    }

    #[test]
    fn truncate_keeps_fewer_bytes_than_frame() {
        let cfg = FaultConfig {
            truncate: 1.0,
            ..FaultConfig::quiet()
        };
        let mut p = FaultPlan::new(3, cfg);
        for len in [1usize, 2, 64, 4096] {
            match p.next_action(len) {
                FaultAction::Truncate(keep) => assert!(keep < len),
                other => panic!("expected truncate, got {other:?}"),
            }
        }
        assert_eq!(p.next_action(0), FaultAction::Truncate(0));
    }
}
