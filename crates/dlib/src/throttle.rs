//! Bandwidth-paced stream wrapper.
//!
//! §5.1: "The UltraNet high-speed network … is rated at 100
//! megabytes/second, but the UltraNet VME interface to the SGI workstation
//! limits the bandwidth to 13 megabytes/second… As of this writing, the
//! actual network performance is only 1 megabyte/second due to software
//! bugs." Table 1's constraint analysis only bites when the link is the
//! bottleneck; [`ThrottledWriter`] recreates each of those three regimes
//! on loopback so the bench harness can measure achieved frame rates
//! against the paper's bandwidth column.

use std::io::Write;
use std::time::{Duration, Instant};

/// Writer that paces its output to a byte rate using a token bucket.
pub struct ThrottledWriter<W> {
    inner: W,
    bytes_per_sec: f64,
    /// Bucket state: accumulated "debt" time when we wrote faster than
    /// the rate.
    earliest_next: Instant,
    bytes_written: u64,
    started: Instant,
}

impl<W: Write> ThrottledWriter<W> {
    /// Wrap `inner`, pacing to `bytes_per_sec` (≤ 0 disables pacing).
    pub fn new(inner: W, bytes_per_sec: f64) -> ThrottledWriter<W> {
        let now = Instant::now();
        ThrottledWriter {
            inner,
            bytes_per_sec,
            earliest_next: now,
            bytes_written: 0,
            started: now,
        }
    }

    /// The three network regimes of §5.1, in bytes/second.
    pub fn ultranet_rated() -> f64 {
        100.0e6
    }
    pub fn ultranet_vme() -> f64 {
        13.0e6
    }
    pub fn ultranet_buggy() -> f64 {
        1.0e6
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Achieved throughput since construction.
    pub fn achieved_bytes_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.bytes_written as f64 / secs
        } else {
            0.0
        }
    }

    pub fn into_inner(self) -> W {
        self.inner
    }

    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for ThrottledWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // Pace in chunks so large writes spread smoothly instead of
        // bursting then sleeping one long time.
        const CHUNK: usize = 64 * 1024;
        let take = buf.len().min(CHUNK);
        if self.bytes_per_sec > 0.0 {
            let now = Instant::now();
            if self.earliest_next > now {
                #[allow(clippy::disallowed_methods)]
                // rate-limiter pacing: the caller asked to block until the next send slot
                std::thread::sleep(self.earliest_next - now);
            }
            let cost = Duration::from_secs_f64(take as f64 / self.bytes_per_sec);
            let base = self
                .earliest_next
                .max(Instant::now() - Duration::from_millis(50));
            self.earliest_next = base + cost;
        }
        let n = self.inner.write(&buf[..take])?;
        self.bytes_written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unthrottled_passes_through_fast() {
        let mut w = ThrottledWriter::new(Vec::new(), 0.0);
        let start = Instant::now();
        w.write_all(&vec![0u8; 1_000_000]).unwrap();
        assert!(start.elapsed() < Duration::from_millis(200));
        assert_eq!(w.bytes_written(), 1_000_000);
        assert_eq!(w.into_inner().len(), 1_000_000);
    }

    #[test]
    fn throttle_enforces_rate() {
        // 1 MB/s: 200 KB should take ≈ 0.2 s.
        let mut w = ThrottledWriter::new(Vec::new(), 1.0e6);
        let start = Instant::now();
        w.write_all(&vec![0u8; 200_000]).unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(120),
            "finished too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(800),
            "paced too slowly: {elapsed:?}"
        );
    }

    #[test]
    fn achieved_rate_close_to_target() {
        let mut w = ThrottledWriter::new(std::io::sink(), 2.0e6);
        w.write_all(&vec![0u8; 400_000]).unwrap();
        let rate = w.achieved_bytes_per_sec();
        assert!(rate < 3.0e6, "rate {rate}");
        assert!(rate > 0.8e6, "rate {rate}");
    }

    #[test]
    fn data_is_intact() {
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let mut w = ThrottledWriter::new(Vec::new(), 50.0e6);
        w.write_all(&payload).unwrap();
        assert_eq!(w.into_inner(), payload);
    }

    #[test]
    fn regime_constants() {
        assert_eq!(ThrottledWriter::<Vec<u8>>::ultranet_rated(), 100.0e6);
        assert_eq!(ThrottledWriter::<Vec<u8>>::ultranet_vme(), 13.0e6);
        assert_eq!(ThrottledWriter::<Vec<u8>>::ultranet_buggy(), 1.0e6);
    }
}
